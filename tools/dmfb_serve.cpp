// dmfb_serve — the synthesis service's front door: a long-running compile
// server speaking the JSON-line protocol of service/server.h.
//
//   dmfb_serve [--workers N] [--queue N]            # stdin/stdout
//   dmfb_serve --socket /tmp/dmfb.sock [--workers N]  # Unix socket
//
// stdin mode serves one client (pipe requests in, read responses out) and
// exits at EOF or on {"cmd":"shutdown"}. Socket mode accepts connections
// sequentially and serves each until it disconnects; the compile cache —
// the whole point of the long-running process — persists across
// connections, and {"cmd":"shutdown"} ends the whole process, not just
// the sending connection. Responses may interleave out of request order
// (workers write as they finish); clients correlate by the echoed "id".
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>

#include "io/json.h"
#include "service/server.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue N] [--socket PATH]\n",
               argv0);
  return 2;
}

/// Line-at-a-time reads over a raw fd (a socket has no std::istream).
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  bool next(std::string& line) {
    for (;;) {
      if (const auto newline = buffer_.find('\n');
          newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got <= 0) {
        if (buffer_.empty()) return false;
        line = std::exchange(buffer_, {});  // unterminated final line
        return true;
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

void write_all(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t wrote = ::write(fd, out.data() + sent, out.size() - sent);
    if (wrote <= 0) return;  // client gone; drop the rest
    sent += static_cast<std::size_t>(wrote);
  }
}

int serve_socket(dmfb::CompileServer& server, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return 1;
  }
  std::strncpy(address.sun_path, path.c_str(), sizeof(address.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror(path.c_str());
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "dmfb_serve: listening on %s\n", path.c_str());

  // Connections are served one at a time; the cache (inside `server`)
  // persists across them, which is what makes the process worth keeping
  // alive between clients.
  bool shutdown = false;
  while (!shutdown) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    FdLineReader reader(client);
    server.serve(
        [&](std::string& line) {
          if (!reader.next(line)) return false;
          // serve() ends on {"cmd":"shutdown"}, but only for this
          // connection — peek so the accept loop stops too.
          if (line.find("\"cmd\"") != std::string::npos) {
            try {
              const dmfb::json::Value doc = dmfb::json::Value::parse(line);
              if (const dmfb::json::Value* cmd = doc.find("cmd");
                  cmd && cmd->is_string() && cmd->as_string() == "shutdown") {
                shutdown = true;
              }
            } catch (...) {
            }
          }
          return true;
        },
        [&](const std::string& line) { write_all(client, line); });
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dmfb::ServerOptions options;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      options.queue_capacity =
          static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  dmfb::CompileServer server(options);
  if (!socket_path.empty()) return serve_socket(server, socket_path);

  server.serve(
      [](std::string& line) {
        return static_cast<bool>(std::getline(std::cin, line));
      },
      [](const std::string& line) {
        std::cout << line << '\n';
        std::cout.flush();  // responses are the protocol; never buffer
      });
  return 0;
}
