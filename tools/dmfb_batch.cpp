// dmfb_batch — multi-process sharded batch synthesis with
// checkpoint/restart (service/batch.h).
//
//   dmfb_batch --manifest assays.jsonl --results out.jsonl \
//       [--ledger out.jsonl.ledger] [--workers N] [--resume] \
//       [--cache cache.txt] [--seed S] [--options '{"placer":"sa",...}'] \
//       [--max-respawns N] [--chaos-kill-after N]
//
// The manifest is one JSON object per line ({"id":...,"assay":...,
// "options":{...}}); --options sets the batch's base options (the
// compile server's option dialect), --seed the master seed every item
// seed derives from. The driver forks --workers copies of itself (the
// --worker mode below), shards the manifest across them, and each
// worker appends one JSON result line per item to --results plus a
// checkpoint line to the ledger. Kill the whole thing at any point and
// rerun with --resume: completed items are skipped, the rest recompute
// deterministically, and the final results file holds the same lines an
// uninterrupted run would have produced. With --cache, exact-hit items
// are served from the cache file and fresh compiles are merged back in.
//
// A worker that dies mid-run (crash, OOM kill) is respawned by the
// parent with exactly its unreported items, up to --max-respawns times
// per shard (default 2) — the batch survives without a restart.
// --chaos-kill-after N is the fault-injection hook: the parent SIGKILLs
// the first worker after its N-th completed item (tests/bench only).
//
// On success prints one JSON summary line and exits 0; a failed worker
// or an incomplete shard exits 1.
//
//   dmfb_batch --worker --manifest M --results R --ledger L --shard K
//       [--cache C]
//
// is the internal worker mode (base options + item indices on stdin).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "io/json.h"
#include "service/batch.h"
#include "service/server.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --manifest FILE --results FILE [--ledger FILE]\n"
               "          [--workers N] [--resume] [--cache FILE]\n"
               "          [--seed S] [--options JSON] [--max-respawns N]\n"
               "          [--chaos-kill-after N]\n",
               argv0);
  return 2;
}

/// The path this very binary was exec'd from, for re-exec'ing workers.
std::string self_executable(const char* argv0) {
  char buffer[4096];
  const ssize_t got =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (got > 0) return std::string(buffer, static_cast<std::size_t>(got));
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  bool worker = false;
  bool resume = false;
  std::string manifest, results, ledger, cache, options_json;
  int workers = 1;
  int shard = 0;
  int max_respawns = 2;
  int chaos_kill_after = 0;
  std::uint64_t seed = 0;
  bool seed_set = false;

  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag("--worker")) {
      worker = true;
    } else if (flag("--resume")) {
      resume = true;
    } else if (flag("--manifest")) {
      manifest = value();
    } else if (flag("--results")) {
      results = value();
    } else if (flag("--ledger")) {
      ledger = value();
    } else if (flag("--cache")) {
      cache = value();
    } else if (flag("--options")) {
      options_json = value();
    } else if (flag("--workers")) {
      workers = std::atoi(value());
    } else if (flag("--shard")) {
      shard = std::atoi(value());
    } else if (flag("--max-respawns")) {
      max_respawns = std::atoi(value());
    } else if (flag("--chaos-kill-after")) {
      chaos_kill_after = std::atoi(value());
    } else if (flag("--seed")) {
      seed = std::strtoull(value(), nullptr, 0);
      seed_set = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (manifest.empty() || results.empty()) return usage(argv[0]);

  if (worker) {
    dmfb::BatchWorkerConfig config;
    config.manifest_path = manifest;
    config.results_path = results;
    config.ledger_path = ledger.empty() ? results + ".ledger" : ledger;
    config.cache_path = cache;
    config.shard = shard;
    return dmfb::batch_worker_main(config, std::cin, std::cout);
  }

  try {
    dmfb::BatchOptions options;
    options.manifest_path = manifest;
    options.results_path = results;
    options.ledger_path = ledger;
    options.cache_path = cache;
    options.workers = workers;
    options.resume = resume;
    options.max_respawns = max_respawns;
    options.chaos_kill_after = chaos_kill_after;
    options.worker_exe = self_executable(argv[0]);
    if (!options_json.empty()) {
      dmfb::parse_pipeline_options(dmfb::json::Value::parse(options_json),
                                   options.base);
    }
    if (seed_set) options.base.seed = seed;

    const dmfb::BatchSummary summary = dmfb::run_batch(options);

    dmfb::json::Value doc;
    doc.set("batch", "dmfb_batch");
    doc.set("items", static_cast<double>(summary.items));
    doc.set("skipped", static_cast<double>(summary.skipped));
    doc.set("completed", static_cast<double>(summary.completed));
    doc.set("failed", static_cast<double>(summary.failed));
    doc.set("exact_hits", static_cast<double>(summary.exact_hits));
    doc.set("workers", summary.workers);
    doc.set("respawns", static_cast<double>(summary.respawns));
    doc.set("wall_s", summary.wall_s);
    doc.set("critical_path_s", summary.critical_path_s);
    doc.set("ok", summary.ok);
    std::cout << doc.dump() << std::endl;
    return summary.ok ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dmfb_batch: %s\n", error.what());
    return 1;
  }
}
