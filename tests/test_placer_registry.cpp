// Tests for the polymorphic placer interface and its string-keyed registry
// (core/placer.h): the six built-ins resolve by name and produce feasible
// placements, unknown names fail with the known-name list, and the
// user-facing enums round-trip through text. The "portfolio" backend's
// reproducibility contract — thread-count invariance and (seed, N, K)
// determinism — is pinned here too (and more deeply in
// test_portfolio_placer.cpp). This file compiles without
// DMFB_SUPPRESS_DEPRECATION on purpose: the new API must be usable without
// touching any deprecated free function.
#include "core/placer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "assay/assay_library.h"
#include "assay/pipeline.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  static const Schedule schedule =
      SynthesisPipeline().run(pcr_mixing_assay()).schedule;
  return schedule;
}

/// M1..M4 + storage only — small enough for the exact search.
Schedule small_schedule() {
  Schedule reduced;
  const Schedule full = pcr_schedule();
  for (const auto& m : full.modules()) {
    if (m.label == "M1" || m.label == "M2" || m.label == "M3" ||
        m.label == "M4" || m.label == "S(M3)") {
      reduced.add(m);
    }
  }
  return reduced;
}

/// Short annealing runs so the whole suite stays fast.
PlacerContext fast_context() {
  PlacerContext context;
  context.annealing.initial_temperature = 1000.0;
  context.annealing.cooling_rate = 0.8;
  context.annealing.iterations_per_module = 60;
  context.ltsa.iterations_per_module = 60;
  return context;
}

TEST(PlacerRegistryTest, ListsAllSixBuiltins) {
  const auto names = registered_placers();
  for (const char* expected :
       {"sa", "greedy", "kamer", "optimal", "two-stage", "portfolio"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing placer: " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PlacerRegistryTest, UnknownNameThrowsWithKnownNames) {
  try {
    make_placer("does-not-exist");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("does-not-exist"), std::string::npos);
    for (const auto& name : registered_placers()) {
      EXPECT_NE(message.find("\"" + name + "\""), std::string::npos)
          << "message should list " << name << ": " << message;
    }
  }
}

TEST(PlacerRegistryTest, NameAccessorMatchesRegistryKey) {
  for (const auto& name : registered_placers()) {
    EXPECT_EQ(make_placer(name)->name(), name);
  }
}

TEST(PlacerRegistryTest, EveryBuiltinPlacesTheSmallInstanceFeasibly) {
  const Schedule schedule = small_schedule();
  const PlacerContext context = fast_context();
  for (const auto& name : registered_placers()) {
    const auto placer = make_placer(name);
    const PlacementOutcome outcome = placer->place(schedule, context);
    EXPECT_TRUE(outcome.placement.feasible()) << name;
    EXPECT_EQ(outcome.placement.overlap_cells(), 0) << name;
    EXPECT_EQ(outcome.placement.module_count(), schedule.module_count())
        << name;
    EXPECT_GT(outcome.cost.area_cells, 0) << name;
  }
}

TEST(PlacerRegistryTest, MakePlacerByKindMatchesByName) {
  for (const PlacerKind kind :
       {PlacerKind::kSa, PlacerKind::kGreedy, PlacerKind::kKamer,
        PlacerKind::kOptimal, PlacerKind::kTwoStage,
        PlacerKind::kPortfolio}) {
    EXPECT_EQ(make_placer(kind)->name(), to_string(kind));
  }
}

TEST(PlacerRegistryTest, CustomRegistration) {
  class NullPlacer final : public Placer {
   public:
    std::string name() const override { return "null-test"; }
    PlacementOutcome place(const Schedule& schedule,
                           const PlacerContext& context) const override {
      PlacementOutcome outcome;
      outcome.placement = Placement(schedule, context.canvas_width,
                                    context.canvas_height);
      return outcome;
    }
  };
  auto& registry = PlacerRegistry::global();
  if (!registry.contains("null-test")) {
    registry.register_placer("null-test",
                             [] { return std::make_unique<NullPlacer>(); });
  }
  EXPECT_TRUE(registry.contains("null-test"));
  EXPECT_EQ(make_placer("null-test")->name(), "null-test");
  EXPECT_THROW(
      registry.register_placer("null-test",
                               [] { return std::make_unique<NullPlacer>(); }),
      std::invalid_argument);
}

TEST(PlacerRegistryTest, SaIsDeterministicForSeed) {
  const Schedule schedule = small_schedule();
  PlacerContext context = fast_context();
  context.seed = 42;
  const auto placer = make_placer("sa");
  const auto a = placer->place(schedule, context);
  const auto b = placer->place(schedule, context);
  ASSERT_EQ(a.placement.module_count(), b.placement.module_count());
  for (int i = 0; i < a.placement.module_count(); ++i) {
    EXPECT_EQ(a.placement.module(i).anchor, b.placement.module(i).anchor);
    EXPECT_EQ(a.placement.module(i).rotated, b.placement.module(i).rotated);
  }
}

template <typename Enum>
void expect_round_trip(Enum value) {
  EXPECT_EQ(from_string<Enum>(to_string(value)), value);
  std::stringstream stream;
  stream << value;
  Enum parsed{};
  stream >> parsed;
  EXPECT_EQ(parsed, value);
}

TEST(EnumTextTest, PlacerKindRoundTrips) {
  for (const PlacerKind kind :
       {PlacerKind::kSa, PlacerKind::kGreedy, PlacerKind::kKamer,
        PlacerKind::kOptimal, PlacerKind::kTwoStage,
        PlacerKind::kPortfolio}) {
    expect_round_trip(kind);
  }
  EXPECT_THROW(from_string<PlacerKind>("annealing"), std::invalid_argument);
}

TEST(EnumTextTest, BindingPolicyRoundTrips) {
  for (const BindingPolicy policy :
       {BindingPolicy::kFastest, BindingPolicy::kSmallest,
        BindingPolicy::kRoundRobin}) {
    expect_round_trip(policy);
  }
  EXPECT_THROW(from_string<BindingPolicy>("slowest"), std::invalid_argument);
}

TEST(EnumTextTest, MoveKindRoundTrips) {
  for (const MoveKind kind :
       {MoveKind::kDisplace, MoveKind::kDisplaceRotate, MoveKind::kSwap,
        MoveKind::kSwapRotate}) {
    expect_round_trip(kind);
  }
  EXPECT_THROW(from_string<MoveKind>("teleport"), std::invalid_argument);
}

std::vector<std::pair<Point, bool>> poses_of(const Placement& placement) {
  std::vector<std::pair<Point, bool>> poses;
  poses.reserve(static_cast<std::size_t>(placement.module_count()));
  for (const auto& m : placement.modules()) {
    poses.emplace_back(m.anchor, m.rotated);
  }
  return poses;
}

TEST(PortfolioPlacerTest, ThreadCountInvariantAtFixedReplicas) {
  const Schedule schedule = small_schedule();
  PlacerContext context = fast_context();
  context.portfolio.replicas = 3;
  context.portfolio.exchange_period = 2;
  const auto placer = make_placer("portfolio");
  context.portfolio.threads = 1;
  const auto one = placer->place(schedule, context);
  context.portfolio.threads = 2;
  const auto two = placer->place(schedule, context);
  context.portfolio.threads = 8;
  const auto eight = placer->place(schedule, context);
  EXPECT_EQ(poses_of(one.placement), poses_of(two.placement));
  EXPECT_EQ(poses_of(one.placement), poses_of(eight.placement));
  EXPECT_EQ(one.cost.value, two.cost.value);
  EXPECT_EQ(one.cost.value, eight.cost.value);
}

TEST(PortfolioPlacerTest, DeterministicForSeedReplicasAndPeriod) {
  const Schedule schedule = small_schedule();
  PlacerContext context = fast_context();
  context.seed = 7;
  context.portfolio.replicas = 4;
  context.portfolio.exchange_period = 3;
  const auto placer = make_placer("portfolio");
  const auto a = placer->place(schedule, context);
  const auto b = placer->place(schedule, context);
  EXPECT_EQ(poses_of(a.placement), poses_of(b.placement));
  EXPECT_EQ(a.stats.exchanges_attempted, b.stats.exchanges_attempted);
  EXPECT_EQ(a.stats.exchanges_accepted, b.stats.exchanges_accepted);
  ASSERT_EQ(a.replica_stats.size(), 4u);
  for (std::size_t r = 0; r < a.replica_stats.size(); ++r) {
    EXPECT_EQ(a.replica_stats[r].best_cost, b.replica_stats[r].best_cost)
        << "replica " << r;
  }
}

TEST(PortfolioPlacerTest, BeatsOrMatchesSingleReplicaOnTheSmallInstance) {
  const Schedule schedule = small_schedule();
  PlacerContext context = fast_context();
  context.engine = AnnealingEngine::kFused;
  const auto serial = make_placer("sa")->place(schedule, context);
  context.portfolio.replicas = 4;
  const auto portfolio = make_placer("portfolio")->place(schedule, context);
  EXPECT_TRUE(portfolio.placement.feasible());
  EXPECT_LE(portfolio.cost.value, serial.cost.value);
}

TEST(PlacerContextTest, DefectObliviousBackendsRejectDefectMaps) {
  const Schedule schedule = small_schedule();
  PlacerContext context = fast_context();
  context.defects.push_back(Point{1, 1});
  EXPECT_THROW(make_placer("kamer")->place(schedule, context),
               std::invalid_argument);
  EXPECT_THROW(make_placer("optimal")->place(schedule, context),
               std::invalid_argument);
  // Defect-aware backends accept the same context.
  const auto outcome = make_placer("greedy")->place(schedule, context);
  EXPECT_TRUE(outcome.placement.feasible());
}

}  // namespace
}  // namespace dmfb
