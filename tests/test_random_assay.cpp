// Tests for the synthetic assay generator (assay/random_assay.h).
#include "assay/random_assay.h"

#include <gtest/gtest.h>

#include "assay/synthesis.h"

namespace dmfb {
namespace {

TEST(RandomAssayTest, DeterministicForSameSeed) {
  const auto lib = ModuleLibrary::standard();
  RandomAssayParams params;
  params.mix_operations = 10;
  Rng rng_a(123);
  Rng rng_b(123);
  const auto a = random_assay(params, lib, rng_a);
  const auto b = random_assay(params, lib, rng_b);
  EXPECT_EQ(a.graph.operation_count(), b.graph.operation_count());
  ASSERT_EQ(a.binding.size(), b.binding.size());
  for (auto it_a = a.binding.begin(), it_b = b.binding.begin();
       it_a != a.binding.end(); ++it_a, ++it_b) {
    EXPECT_EQ(it_a->first, it_b->first);
    EXPECT_EQ(it_a->second.name, it_b->second.name);
  }
}

TEST(RandomAssayTest, RequestedMixCount) {
  const auto lib = ModuleLibrary::standard();
  for (int mixes : {1, 4, 12, 25}) {
    RandomAssayParams params;
    params.mix_operations = mixes;
    Rng rng(7);
    const auto assay = random_assay(params, lib, rng);
    int counted = 0;
    for (const auto& op : assay.graph.operations()) {
      if (op.type == OperationType::kMix) ++counted;
    }
    EXPECT_EQ(counted, mixes);
  }
}

TEST(RandomAssayTest, GraphsAreAlwaysValid) {
  const auto lib = ModuleLibrary::standard();
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    RandomAssayParams params;
    params.mix_operations = 2 + static_cast<int>(rng.next_below(15));
    params.max_layer_width = 1 + static_cast<int>(rng.next_below(5));
    params.detect_fraction = rng.next_double() * 0.5;
    const auto assay = random_assay(params, lib, rng);
    EXPECT_TRUE(assay.graph.is_acyclic());
    EXPECT_TRUE(validate_binding(assay.graph, assay.binding).empty());
    // Mixes have exactly two inputs (droplet-pair mixing).
    for (const auto& op : assay.graph.operations()) {
      if (op.type == OperationType::kMix) {
        EXPECT_EQ(assay.graph.predecessors(op.id).size(), 2u);
      }
      if (op.type == OperationType::kOutput) {
        EXPECT_TRUE(assay.graph.successors(op.id).empty());
      }
    }
    // Every sink is an output (possibly behind a detect).
    for (const auto id : assay.graph.sinks()) {
      EXPECT_EQ(assay.graph.operation(id).type, OperationType::kOutput);
    }
  }
}

TEST(RandomAssayTest, SynthesizesEndToEnd) {
  const auto lib = ModuleLibrary::standard();
  Rng rng(5);
  RandomAssayParams params;
  params.mix_operations = 9;
  const auto assay = random_assay(params, lib, rng);
  const auto result = synthesize_with_binding(assay.graph, assay.binding,
                                              assay.scheduler_options);
  EXPECT_TRUE(result.schedule.validate_against(assay.graph).empty());
  EXPECT_GT(result.makespan_s, 0.0);
}

TEST(RandomAssayTest, RejectsBadParams) {
  const auto lib = ModuleLibrary::standard();
  Rng rng(1);
  RandomAssayParams bad;
  bad.mix_operations = 0;
  EXPECT_THROW(random_assay(bad, lib, rng), std::invalid_argument);
  bad.mix_operations = 5;
  bad.max_layer_width = 0;
  EXPECT_THROW(random_assay(bad, lib, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dmfb
