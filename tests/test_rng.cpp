// Unit tests for util/rng.h — determinism and distribution sanity, since
// every experiment's reproducibility hangs on this.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dmfb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsTheStream) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[i]);
  EXPECT_EQ(rng.seed(), 77u);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(5);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // unbiased mean
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
  // Degenerate probabilities.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SuccessiveSplitsAndParentShareNoDraws) {
  // The stream-independence contract (rng.h): K successive splits plus
  // the advanced parent have no pairwise overlap — here, not one value is
  // produced twice across 10^5 draws from each of the five streams.
  Rng parent(0xDA7E2005ULL);
  std::vector<Rng> streams;
  for (int k = 0; k < 4; ++k) streams.push_back(parent.split());
  streams.push_back(parent);  // the parent, post-splits
  constexpr int kDraws = 100000;
  std::set<std::uint64_t> seen;
  long long collisions = 0;
  for (Rng& stream : streams) {
    for (int i = 0; i < kDraws; ++i) {
      if (!seen.insert(stream.next()).second) ++collisions;
    }
  }
  // Even within ONE ideal stream, 5e5 draws of 64-bit values collide with
  // probability ~7e-9 (birthday bound); any overlap between streams would
  // show up as thousands of collisions.
  EXPECT_EQ(collisions, 0);
}

TEST(RngTest, SplitNIsOrderIndependent) {
  // split_n(i) derives from the parent's seed alone — no stream draws —
  // so replica i's rng does not depend on how many splits happened first
  // or the order they were requested in.
  Rng a(99);
  Rng b(99);
  (void)b.next();  // advance b's stream; split_n must not care
  (void)b.split();
  const Rng a2 = a.split_n(2);
  const Rng b2 = b.split_n(2);
  EXPECT_EQ(a2.seed(), b2.seed());
  const Rng a7 = a.split_n(7);
  EXPECT_EQ(a7.seed(), a.split_n(7).seed());  // idempotent, const
  EXPECT_NE(a2.seed(), a7.seed());
}

TEST(RngTest, SplitNChildrenAreMutuallyIndependent) {
  Rng parent(0x5EEDULL);
  std::set<std::uint64_t> seen;
  long long collisions = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Rng child = parent.split_n(i);
    for (int d = 0; d < 20000; ++d) {
      if (!seen.insert(child.next()).second) ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
  // And the children are distinct from the (unadvanced) parent's stream.
  Rng p(0x5EEDULL);
  for (int d = 0; d < 20000; ++d) {
    if (!seen.insert(p.next()).second) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(SplitMix64Test, KnownFirstOutputs) {
  // Reference values from the SplitMix64 reference implementation with
  // seed 0: first three outputs.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

TEST(FastDivTest, MatchesHardwareDivision) {
  // Every small divisor against awkward and random numerators; the
  // annealer's stream reproducibility rides on this being exact.
  Rng rng(0xD1Dull);
  std::vector<std::uint64_t> numerators = {
      0,    1,    2,          3,
      ~0ULL, ~0ULL - 1, 1ULL << 63, (1ULL << 63) - 1};
  for (int i = 0; i < 64; ++i) numerators.push_back(rng.next());
  for (std::uint64_t d = 1; d <= 1024; ++d) {
    const FastDiv div = FastDiv::make(d);
    EXPECT_EQ(div.threshold, (0 - d) % d) << "d=" << d;
    for (const std::uint64_t n : numerators) {
      ASSERT_EQ(div.divide(n), n / d) << "n=" << n << " d=" << d;
      ASSERT_EQ(div.mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
  // Large divisors, including > 2^63 (the add-scheme corner).
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t d = rng.next() | 1;
    const FastDiv div = FastDiv::make(d);
    for (const std::uint64_t n : numerators) {
      ASSERT_EQ(div.divide(n), n / d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(FastDivTest, NextBelowStreamUnchanged) {
  // next_below must produce the exact sequence of the plain `% bound`
  // formulation it replaced (recorded from the pre-FastDiv build).
  Rng rng(42);
  auto reference = [](Rng& r, std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t v = r.next();
      if (v >= threshold) return v % bound;
    }
  };
  Rng a(7), b(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t bound = 1 + rng.next_below(1000);
    ASSERT_EQ(a.next_below(bound), reference(b, bound)) << "bound=" << bound;
  }
}

}  // namespace
}  // namespace dmfb
