// End-to-end integration tests: behavioural model -> synthesis ->
// placement -> FTI -> simulation -> fault recovery, across several assays
// and seeds. These are the paper's full flow run as one pipeline.
#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/random_assay.h"
#include "assay/synthesis.h"
#include "core/fti.h"
#include "core/greedy_placer.h"
#include "core/sa_placer.h"
#include "core/two_stage_placer.h"
#include "sim/fault.h"
#include "sim/recovery.h"
#include "sim/simulator.h"
#include "sim/tester.h"
#include "util/rng.h"

namespace dmfb {
namespace {

SaPlacerOptions fast_sa() {
  SaPlacerOptions options;
  options.schedule.initial_temperature = 1000.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module = 80;
  return options;
}

TEST(IntegrationTest, PcrFullFlowMatchesPaperShape) {
  // Synthesis.
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  ASSERT_TRUE(synth.schedule.validate_against(assay.graph).empty());

  // Baseline greedy vs annealed placement: SA must not be worse.
  const Placement greedy = place_greedy(synth.schedule, 24, 24);
  const auto sa = place_simulated_annealing(synth.schedule, fast_sa());
  EXPECT_LE(sa.cost.area_cells, greedy.bounding_box_cells());

  // Compact placements are fault-fragile (the paper's §6.2 observation).
  const double sa_fti = evaluate_fti(sa.placement).fti();
  EXPECT_LT(sa_fti, 0.5);

  // Two-stage trades area for fault tolerance.
  TwoStageOptions two_options;
  two_options.beta = 30.0;
  two_options.stage1 = fast_sa();
  two_options.ltsa.iterations_per_module = 80;
  two_options.ltsa.cooling_rate = 0.8;
  const auto two = place_two_stage(synth.schedule, two_options);
  const double two_fti = evaluate_fti(two.stage2.placement).fti();
  EXPECT_GT(two_fti, sa_fti);
  EXPECT_GE(two.stage2.cost.area_cells, sa.cost.area_cells);

  // The enhanced placement actually executes.
  const Chip chip(24, 24);
  const Simulator simulator;
  const auto run = simulator.run(assay.graph, synth.schedule,
                                 two.stage2.placement, chip);
  EXPECT_TRUE(run.success) << run.failure_reason;
}

TEST(IntegrationTest, DetectThenRecoverPipeline) {
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement placement = place_greedy(synth.schedule, 20, 20);
  const Rect array{0, 0, 20, 20};

  // Fault under a module of the first time slice.
  const int victim = placement.slice_members().front().front();
  const Rect fp = placement.module(victim).footprint();
  const Point fault{fp.x + 1, fp.y + 1};

  // 1. On-line tester localizes the fault on the idle regions... here we
  //    test it on the idle chip before the assay starts.
  Chip chip(20, 20);
  inject_fault(chip, fault);
  const OnlineTester tester;
  const auto detection =
      tester.run_test(chip, Matrix<std::uint8_t>(20, 20, 0), Point{0, 0});
  ASSERT_TRUE(detection.fault_detected);
  EXPECT_EQ(detection.faulty_cell, fault);

  // 2. Partial reconfiguration relocates every module using the cell.
  const Reconfigurator reconfig;
  const auto recovery =
      reconfig.recover(placement, detection.faulty_cell, array);
  ASSERT_TRUE(recovery.success) << recovery.failure_reason;

  // 3. The assay completes on the repaired placement.
  const Simulator simulator;
  const auto run =
      simulator.run(assay.graph, synth.schedule, recovery.placement, chip);
  EXPECT_TRUE(run.success) << run.failure_reason;
}

TEST(IntegrationTest, MultiplexedDiagnosticsEndToEnd) {
  const auto lib = ModuleLibrary::standard();
  const auto assay = multiplexed_diagnostics_assay(2, 2, lib);
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  ASSERT_TRUE(synth.schedule.validate_against(assay.graph).empty());

  const auto sa = place_simulated_annealing(synth.schedule, fast_sa());
  ASSERT_TRUE(sa.placement.feasible());

  const Chip chip(24, 24);
  const Simulator simulator;
  const auto run =
      simulator.run(assay.graph, synth.schedule, sa.placement, chip);
  EXPECT_TRUE(run.success) << run.failure_reason;

  // Every mix output contains its sample and reagent at 50% each.
  for (const auto& op : assay.graph.operations()) {
    if (op.type != OperationType::kMix) continue;
    const auto it = run.op_outputs.find(op.id);
    ASSERT_NE(it, run.op_outputs.end()) << op.label;
    double sample_fraction = 0.0;
    for (const auto& [reagent, fraction] : it->second.contents()) {
      if (reagent.rfind("sample-", 0) == 0) sample_fraction += fraction;
    }
    EXPECT_NEAR(sample_fraction, 0.5, 1e-9) << op.label;
  }
}

class RandomAssayIntegration : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssayIntegration, SynthesizePlaceSimulate) {
  const auto lib = ModuleLibrary::standard();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 13);
  RandomAssayParams params;
  params.mix_operations = 4 + static_cast<int>(rng.next_below(6));
  params.max_layer_width = 3;
  const auto assay = random_assay(params, lib, rng);

  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  ASSERT_TRUE(synth.schedule.validate_against(assay.graph).empty());

  SaPlacerOptions options = fast_sa();
  options.canvas_width = 32;
  options.canvas_height = 32;
  options.seed = rng.next();
  const auto sa = place_simulated_annealing(synth.schedule, options);
  ASSERT_TRUE(sa.placement.feasible());
  EXPECT_GE(sa.cost.area_cells, synth.schedule.peak_concurrent_cells());

  // FTI and campaign agree on whatever came out.
  const Rect array = sa.placement.bounding_box();
  const Reconfigurator reconfig;
  const auto campaign =
      exhaustive_fault_campaign(sa.placement, array, reconfig);
  const auto fti = evaluate_fti(sa.placement, {}, array);
  EXPECT_EQ(campaign.survivable_cells, fti.covered_cells);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssayIntegration,
                         ::testing::Range(0, 6));

TEST(IntegrationTest, ProteinDilutionFullFlow) {
  const auto lib = ModuleLibrary::standard();
  const auto assay = protein_dilution_assay(3, lib);
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const auto sa = place_simulated_annealing(synth.schedule, fast_sa());
  ASSERT_TRUE(sa.placement.feasible());
  const Chip chip(24, 24);
  const Simulator simulator;
  const auto run =
      simulator.run(assay.graph, synth.schedule, sa.placement, chip);
  EXPECT_TRUE(run.success) << run.failure_reason;
  // Leaf dilutions reach protein fraction 1/8.
  double min_fraction = 1.0;
  for (const auto& [op, droplet] : run.op_outputs) {
    if (assay.graph.operation(op).type == OperationType::kDilute) {
      min_fraction = std::min(min_fraction, droplet.fraction_of("protein"));
    }
  }
  EXPECT_NEAR(min_fraction, 0.125, 1e-9);
}

}  // namespace
}  // namespace dmfb
