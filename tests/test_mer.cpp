// Tests for the maximal-empty-rectangle machinery (§5.3): the staircase
// enumeration is pinned against a brute-force reference on directed cases
// and on randomized grids.
#include "core/mer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "util/rng.h"

namespace dmfb {
namespace {

Matrix<std::uint8_t> grid_from(const std::vector<std::string>& rows) {
  // rows.front() is the TOP row (y = height-1), matching how humans draw.
  const int height = static_cast<int>(rows.size());
  const int width = height == 0 ? 0 : static_cast<int>(rows.front().size());
  Matrix<std::uint8_t> grid(width, height, 0);
  for (int y = 0; y < height; ++y) {
    const std::string& row = rows[static_cast<std::size_t>(height - 1 - y)];
    EXPECT_EQ(static_cast<int>(row.size()), width);
    for (int x = 0; x < width; ++x) {
      grid.at(x, y) = row[static_cast<std::size_t>(x)] == '.' ? 0 : 1;
    }
  }
  return grid;
}

std::set<std::tuple<int, int, int, int>> to_set(const std::vector<Rect>& rects) {
  std::set<std::tuple<int, int, int, int>> result;
  for (const Rect& r : rects) {
    result.emplace(r.x, r.y, r.width, r.height);
  }
  return result;
}

TEST(MerTest, EmptyGridHasOneMaximalRect) {
  const Matrix<std::uint8_t> grid(5, 4, 0);
  const auto mers = maximal_empty_rectangles(grid);
  ASSERT_EQ(mers.size(), 1u);
  EXPECT_EQ(mers.front(), (Rect{0, 0, 5, 4}));
}

TEST(MerTest, FullGridHasNone) {
  const Matrix<std::uint8_t> grid(3, 3, 1);
  EXPECT_TRUE(maximal_empty_rectangles(grid).empty());
  EXPECT_TRUE(maximal_empty_rectangles_brute(grid).empty());
}

TEST(MerTest, ZeroSizedGrid) {
  const Matrix<std::uint8_t> grid(0, 0, 0);
  EXPECT_TRUE(maximal_empty_rectangles(grid).empty());
}

TEST(MerTest, SingleObstacleCenter) {
  // 3x3 with the center occupied: four maximal 3x1 / 1x3 rects.
  const auto grid = grid_from({
      "...",
      ".#.",
      "...",
  });
  const auto mers = to_set(maximal_empty_rectangles(grid));
  const auto expected = to_set({
      Rect{0, 0, 3, 1},  // bottom row
      Rect{0, 2, 3, 1},  // top row
      Rect{0, 0, 1, 3},  // left column
      Rect{2, 0, 1, 3},  // right column
  });
  EXPECT_EQ(mers, expected);
}

TEST(MerTest, LShapedFreeSpace) {
  const auto grid = grid_from({
      "..##",
      "..##",
      "....",
  });
  const auto mers = to_set(maximal_empty_rectangles(grid));
  const auto expected = to_set({
      Rect{0, 0, 4, 1},  // bottom strip
      Rect{0, 0, 2, 3},  // left block
  });
  EXPECT_EQ(mers, expected);
}

TEST(MerTest, MatchesBruteForceOnDirectedCases) {
  const std::vector<std::vector<std::string>> cases = {
      {"....", "....", "...."},
      {"#...", "....", "...#"},
      {"#.#.", ".#.#", "#.#."},
      {"....", ".##.", ".##.", "...."},
      {"######", "#....#", "#.##.#", "#....#", "######"},
      {".", "#", "."},
      {"..#..#..", "########", "..#..#.."},
  };
  for (const auto& rows : cases) {
    const auto grid = grid_from(rows);
    EXPECT_EQ(to_set(maximal_empty_rectangles(grid)),
              to_set(maximal_empty_rectangles_brute(grid)))
        << "case with " << rows.size() << " rows";
  }
}

TEST(MerTest, EveryReportedRectIsEmptyAndMaximal) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const int w = 2 + static_cast<int>(rng.next_below(9));
    const int h = 2 + static_cast<int>(rng.next_below(9));
    Matrix<std::uint8_t> grid(w, h, 0);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        grid.at(x, y) = rng.next_bool(0.3) ? 1 : 0;
      }
    }
    for (const Rect& r : maximal_empty_rectangles(grid)) {
      // Empty.
      EXPECT_EQ(grid.count_in_rect(r, 1), 0);
      // Maximal: every one-cell extension hits an obstacle or the border.
      auto blocked = [&](const Rect& probe) {
        if (!probe.within_bounds(w, h)) return true;
        return grid.count_in_rect(probe, 1) > 0;
      };
      EXPECT_TRUE(blocked(Rect{r.x - 1, r.y, 1, r.height}));
      EXPECT_TRUE(blocked(Rect{r.right(), r.y, 1, r.height}));
      EXPECT_TRUE(blocked(Rect{r.x, r.y - 1, r.width, 1}));
      EXPECT_TRUE(blocked(Rect{r.x, r.top(), r.width, 1}));
    }
  }
}

class MerRandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MerRandomEquivalence, StaircaseEqualsBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const int w = 1 + static_cast<int>(rng.next_below(11));
    const int h = 1 + static_cast<int>(rng.next_below(11));
    const double density = rng.next_double() * 0.8;
    Matrix<std::uint8_t> grid(w, h, 0);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        grid.at(x, y) = rng.next_bool(density) ? 1 : 0;
      }
    }
    EXPECT_EQ(to_set(maximal_empty_rectangles(grid)),
              to_set(maximal_empty_rectangles_brute(grid)))
        << "grid " << w << "x" << h << " density " << density;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MerRandomEquivalence, ::testing::Range(0, 10));

TEST(MerTest, LargestEmptyRectangle) {
  const auto grid = grid_from({
      "....",
      "##..",
      "##..",
  });
  const auto best = largest_empty_rectangle(grid);
  ASSERT_TRUE(best.has_value());
  // The 2x3 right block (area 6) beats the 4x1 top strip (area 4).
  EXPECT_EQ(*best, (Rect{2, 0, 2, 3}));
}

TEST(MerTest, LargestOnFullGridIsNullopt) {
  const Matrix<std::uint8_t> grid(2, 2, 1);
  EXPECT_FALSE(largest_empty_rectangle(grid).has_value());
}

TEST(MerTest, EmptyRectExists) {
  const auto grid = grid_from({
      "....",
      "##..",
      "##..",
  });
  EXPECT_TRUE(empty_rect_exists(grid, 2, 3));
  EXPECT_TRUE(empty_rect_exists(grid, 4, 1));
  EXPECT_FALSE(empty_rect_exists(grid, 3, 2));
  EXPECT_FALSE(empty_rect_exists(grid, 4, 2));
  EXPECT_TRUE(empty_rect_exists(grid, 0, 5));  // degenerate always fits
}

}  // namespace
}  // namespace dmfb
