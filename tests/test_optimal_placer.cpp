// Tests for the exact branch-and-bound placer (core/optimal_placer.h):
// ground truth on hand-analyzable instances plus the SA-optimality
// pinning property on random small instances.
#include "core/optimal_placer.h"

#include <gtest/gtest.h>

#include "core/greedy_placer.h"
#include "core/sa_placer.h"
#include "util/rng.h"

namespace dmfb {
namespace {

const ModuleSpec kBig{"big", ModuleKind::kMixer, 2, 2, 10.0};    // 4x4
const ModuleSpec kSlim{"slim", ModuleKind::kMixer, 1, 4, 5.0};   // 3x6
const ModuleSpec kTiny{"tiny", ModuleKind::kStorage, 1, 1, 5.0}; // 3x3

TEST(OptimalPlacerTest, SingleModule) {
  Schedule s;
  s.add(ScheduledModule{0, "A", kBig, 0.0, 10.0, -1, -1});
  const auto result = place_optimal(s);
  EXPECT_EQ(result.area_cells, 16);
  EXPECT_TRUE(result.placement.feasible());
}

TEST(OptimalPlacerTest, TimeSharedModulesNeedOneFootprint) {
  Schedule s;
  s.add(ScheduledModule{0, "A", kBig, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "B", kBig, 10.0, 20.0, -1, -1});
  const auto result = place_optimal(s);
  EXPECT_EQ(result.area_cells, 16);  // perfect reuse
}

TEST(OptimalPlacerTest, ConcurrentSquaresPackSideBySide) {
  Schedule s;
  s.add(ScheduledModule{0, "A", kBig, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "B", kBig, 0.0, 10.0, -1, -1});
  const auto result = place_optimal(s);
  EXPECT_EQ(result.area_cells, 32);  // 8x4
  EXPECT_TRUE(result.placement.feasible());
}

TEST(OptimalPlacerTest, RotationFindsTighterBox) {
  // A 4x4 and a 3x6: side-by-side unrotated needs 7x6 = 42; rotating the
  // slim module (6x3) allows 4x4 over 6x3 in a 6x7 = 42... the exact
  // optimum is what the search says — verify it is no worse than both
  // hand layouts and that disabling rotation cannot beat it.
  Schedule s;
  s.add(ScheduledModule{0, "A", kBig, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "B", kSlim, 0.0, 10.0, -1, -1});
  const auto with_rotation = place_optimal(s);
  OptimalPlacerOptions no_rotation;
  no_rotation.allow_rotation = false;
  const auto without_rotation = place_optimal(s, no_rotation);
  EXPECT_LE(with_rotation.area_cells, without_rotation.area_cells);
  EXPECT_LE(with_rotation.area_cells, 42);
  EXPECT_TRUE(with_rotation.placement.feasible());
}

TEST(OptimalPlacerTest, OptimumNeverBelowPeakCells) {
  Schedule s;
  s.add(ScheduledModule{0, "A", kBig, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "B", kSlim, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{2, "C", kTiny, 5.0, 15.0, -1, -1});
  const auto result = place_optimal(s);
  EXPECT_GE(result.area_cells, s.peak_concurrent_cells());
  EXPECT_TRUE(result.placement.feasible());
}

TEST(OptimalPlacerTest, RejectsLargeInstances) {
  Schedule s;
  for (int i = 0; i < 9; ++i) {
    s.add(ScheduledModule{i, "M" + std::to_string(i), kTiny, 0.0, 5.0, -1,
                          -1});
  }
  EXPECT_THROW(place_optimal(s), std::invalid_argument);
}

TEST(OptimalPlacerTest, RejectsEmptySchedule) {
  EXPECT_THROW(place_optimal(Schedule{}), std::invalid_argument);
}

TEST(OptimalPlacerTest, NeverWorseThanGreedy) {
  Rng rng(41);
  const ModuleSpec shapes[] = {kBig, kSlim, kTiny};
  for (int trial = 0; trial < 10; ++trial) {
    Schedule s;
    const int modules = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < modules; ++i) {
      const double start = static_cast<double>(rng.next_below(3)) * 5.0;
      s.add(ScheduledModule{i, "M" + std::to_string(i),
                            shapes[rng.next_below(3)], start, start + 5.0,
                            -1, -1});
    }
    const auto optimal = place_optimal(s);
    const Placement greedy = place_greedy(s, 24, 24);
    EXPECT_LE(optimal.area_cells, greedy.bounding_box_cells())
        << "trial " << trial;
  }
}

TEST(OptimalPlacerTest, SaMatchesOptimumOnSmallInstances) {
  // The key calibration property: on instances the exact search can
  // solve, paper-parameter SA should land on (or extremely near) the
  // optimum. We accept equality here — these instances are small.
  Rng rng(43);
  const ModuleSpec shapes[] = {kBig, kSlim, kTiny};
  for (int trial = 0; trial < 5; ++trial) {
    Schedule s;
    const int modules = 2 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < modules; ++i) {
      const double start = static_cast<double>(rng.next_below(2)) * 5.0;
      s.add(ScheduledModule{i, "M" + std::to_string(i),
                            shapes[rng.next_below(3)], start, start + 5.0,
                            -1, -1});
    }
    const auto optimal = place_optimal(s);

    SaPlacerOptions options;
    options.schedule.initial_temperature = 1000.0;
    options.schedule.cooling_rate = 0.85;
    options.schedule.iterations_per_module = 200;
    options.seed = rng.next();
    const auto sa = place_simulated_annealing(s, options);
    EXPECT_EQ(sa.cost.area_cells, optimal.area_cells) << "trial " << trial;
  }
}

}  // namespace
}  // namespace dmfb
