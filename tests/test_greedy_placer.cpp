// Tests for the greedy baseline / constructive initial placement
// (core/greedy_placer.h).
#include "core/greedy_placer.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  const auto assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options)
      .schedule;
}

TEST(GreedyPlacerTest, ProducesFeasiblePlacement) {
  const Placement p = place_greedy(pcr_schedule(), 24, 24);
  EXPECT_TRUE(p.feasible());
  EXPECT_EQ(p.overlap_cells(), 0);
  EXPECT_TRUE(p.within_canvas());
}

TEST(GreedyPlacerTest, LargestModuleAtOrigin) {
  const Placement p = place_greedy(pcr_schedule(), 24, 24);
  // The module with the largest footprint is placed first at the
  // bottom-left corner.
  long long largest = 0;
  for (const auto& m : p.modules()) {
    largest = std::max(largest, m.spec.footprint_cells());
  }
  bool found_at_origin = false;
  for (const auto& m : p.modules()) {
    if (m.spec.footprint_cells() == largest &&
        m.anchor == Point{0, 0}) {
      found_at_origin = true;
    }
  }
  EXPECT_TRUE(found_at_origin);
}

TEST(GreedyPlacerTest, ReusesCellsAcrossTime) {
  // Modules that never overlap in time can share cells, so the greedy
  // area must be far below the sum of footprints.
  const Schedule schedule = pcr_schedule();
  long long footprint_sum = 0;
  for (const auto& m : schedule.modules()) {
    footprint_sum += m.spec.footprint_cells();
  }
  const Placement p = place_greedy(schedule, 24, 24);
  EXPECT_LT(p.bounding_box_cells(), footprint_sum);
}

TEST(GreedyPlacerTest, AreaLowerBoundHolds) {
  const Schedule schedule = pcr_schedule();
  const Placement p = place_greedy(schedule, 24, 24);
  EXPECT_GE(p.bounding_box_cells(), schedule.peak_concurrent_cells());
}

TEST(GreedyPlacerTest, ThrowsWhenCanvasTooSmall) {
  EXPECT_THROW(place_greedy(pcr_schedule(), 7, 7), std::runtime_error);
}

TEST(GreedyPlacerTest, DeterministicResult) {
  const Placement a = place_greedy(pcr_schedule(), 24, 24);
  const Placement b = place_greedy(pcr_schedule(), 24, 24);
  for (int i = 0; i < a.module_count(); ++i) {
    EXPECT_EQ(a.module(i).anchor, b.module(i).anchor);
    EXPECT_EQ(a.module(i).rotated, b.module(i).rotated);
  }
}

TEST(GreedyPlacerTest, GreedyResetOverwritesAnchors) {
  Placement p = place_greedy(pcr_schedule(), 24, 24);
  const Point original = p.module(0).anchor;
  p.set_anchor(0, {15, 15});
  p.set_rotated(0, true);
  greedy_reset(p);
  EXPECT_EQ(p.module(0).anchor, original);
  EXPECT_FALSE(p.module(0).rotated);
  EXPECT_TRUE(p.feasible());
}

TEST(GreedyPlacerTest, SingleModuleGoesToOrigin) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};
  s.add(ScheduledModule{0, "A", spec, 0.0, 5.0, -1, -1});
  const Placement p = place_greedy(s, 8, 8);
  EXPECT_EQ(p.module(0).anchor, (Point{0, 0}));
}

TEST(GreedyPlacerTest, ConcurrentModulesPackBottomLeft) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};  // 4x4
  for (int i = 0; i < 3; ++i) {
    s.add(ScheduledModule{i, "M" + std::to_string(i), spec, 0.0, 5.0, -1,
                          -1});
  }
  const Placement p = place_greedy(s, 12, 12);
  EXPECT_TRUE(p.feasible());
  // Three concurrent 4x4 modules on a 12-wide canvas: all in the bottom
  // row, x = 0, 4, 8.
  std::vector<int> xs;
  for (const auto& m : p.modules()) {
    EXPECT_EQ(m.anchor.y, 0);
    xs.push_back(m.anchor.x);
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, (std::vector<int>{0, 4, 8}));
}

}  // namespace
}  // namespace dmfb
