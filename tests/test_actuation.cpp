// Tests for the actuation-program compiler (sim/actuation.h).
#include "sim/actuation.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"

namespace dmfb {
namespace {

struct Compiled {
  Schedule schedule;
  Placement placement;
  RoutePlan routes;
  ActuationProgram program;
};

Compiled compile_pcr() {
  const auto assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, 16, 16);
  RoutePlan routes =
      plan_routes(assay.graph, synth.schedule, placement, 16, 16);
  ActuationProgram program =
      compile_actuation(synth.schedule, placement, routes, 16, 16);
  return Compiled{std::move(synth.schedule), std::move(placement),
                  std::move(routes), std::move(program)};
}

TEST(ActuationTest, ProgramValidates) {
  const Compiled c = compile_pcr();
  ASSERT_TRUE(c.routes.success);
  const auto violations = validate_program(c.program);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
  EXPECT_FALSE(c.program.frames.empty());
}

TEST(ActuationTest, FramesChronological) {
  const Compiled c = compile_pcr();
  double last = -1.0;
  for (const auto& frame : c.program.frames) {
    EXPECT_GE(frame.time_s, last);
    last = frame.time_s;
  }
  EXPECT_NEAR(c.program.duration_s(), c.schedule.makespan_s(), 5.0);
}

TEST(ActuationTest, HoldFramesCoverModuleFunctionalCells) {
  const Compiled c = compile_pcr();
  // For every module, some hold frame during its interval actuates its
  // functional-region cells.
  for (int i = 0; i < c.placement.module_count(); ++i) {
    const auto& m = c.placement.module(i);
    const Rect functional = m.footprint().inflated(-1);
    const Point probe{functional.x, functional.y};
    bool covered = false;
    for (const auto& frame : c.program.frames) {
      if (frame.note.rfind("hold", 0) != 0) continue;
      if (frame.time_s < m.start_s - 1e-9 || frame.time_s >= m.end_s) {
        continue;
      }
      for (const Point& p : frame.actuated) {
        if (p == probe) {
          covered = true;
          break;
        }
      }
      if (covered) break;
    }
    EXPECT_TRUE(covered) << m.label;
  }
}

TEST(ActuationTest, TransportFramesFollowRoutes) {
  const Compiled c = compile_pcr();
  // Each transport frame at step s of a changeover actuates exactly the
  // cells the plan's droplets occupy at step s.
  for (const auto& changeover : c.routes.changeovers) {
    int frames_for_changeover = 0;
    for (const auto& frame : c.program.frames) {
      if (frame.note.rfind("transport", 0) != 0) continue;
      if (frame.note.find("@" + std::to_string(changeover.time_s)) ==
          std::string::npos) {
        continue;
      }
      ++frames_for_changeover;
      EXPECT_LE(static_cast<int>(frame.actuated.size()),
                static_cast<int>(changeover.routes.size()));
      EXPECT_GE(static_cast<int>(frame.actuated.size()), 1);
    }
    EXPECT_EQ(frames_for_changeover, changeover.makespan_steps + 1);
  }
}

TEST(ActuationTest, StatsAreConsistent) {
  const Compiled c = compile_pcr();
  EXPECT_GT(c.program.total_actuations(), 0);
  EXPECT_GT(c.program.peak_simultaneous(), 0);
  long long sum = 0;
  int peak = 0;
  for (const auto& frame : c.program.frames) {
    sum += static_cast<long long>(frame.actuated.size());
    peak = std::max(peak, static_cast<int>(frame.actuated.size()));
  }
  EXPECT_EQ(sum, c.program.total_actuations());
  EXPECT_EQ(peak, c.program.peak_simultaneous());
}

TEST(ActuationTest, ValidatorCatchesOutOfBounds) {
  ActuationProgram program;
  program.chip_width = 4;
  program.chip_height = 4;
  program.frames.push_back(ActuationFrame{0.0, {Point{5, 5}}, "bad"});
  EXPECT_FALSE(validate_program(program).empty());
}

TEST(ActuationTest, ValidatorCatchesDuplicates) {
  ActuationProgram program;
  program.chip_width = 4;
  program.chip_height = 4;
  program.frames.push_back(
      ActuationFrame{0.0, {Point{1, 1}, Point{1, 1}}, "dup"});
  EXPECT_FALSE(validate_program(program).empty());
}

TEST(ActuationTest, ValidatorCatchesDisorder) {
  ActuationProgram program;
  program.chip_width = 4;
  program.chip_height = 4;
  program.frames.push_back(ActuationFrame{5.0, {Point{1, 1}}, "late"});
  program.frames.push_back(ActuationFrame{1.0, {Point{2, 2}}, "early"});
  EXPECT_FALSE(validate_program(program).empty());
}

}  // namespace
}  // namespace dmfb
