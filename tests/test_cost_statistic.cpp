// Tests for the simulation-support utilities: CostStatistic /
// ScopedCostTimer (util/cost_statistic.h), MemoryPool
// (util/memory_pool.h) and the pipeline's StageStatsCollector observer
// adapter (assay/pipeline.h).
#include "util/cost_statistic.h"

#include <gtest/gtest.h>

#include <vector>

#include "assay/pipeline.h"
#include "util/memory_pool.h"

namespace dmfb {
namespace {

TEST(CostStatisticTest, AccumulatesMinAvgMaxCount) {
  CostStatistic stat;
  EXPECT_EQ(stat.count, 0);
  EXPECT_EQ(stat.average(), 0.0);
  EXPECT_EQ(stat.minimum(), 0.0);  // untouched: no +inf sentinel leaks
  stat.record(2.0);
  stat.record(6.0);
  stat.record(4.0);
  EXPECT_EQ(stat.count, 3);
  EXPECT_EQ(stat.minimum(), 2.0);
  EXPECT_EQ(stat.max, 6.0);
  EXPECT_EQ(stat.average(), 4.0);
}

TEST(CostStatisticTest, MergeFoldsAccumulators) {
  CostStatistic a;
  a.record(1.0);
  a.record(3.0);
  CostStatistic b;
  b.record(10.0);
  CostStatistic empty;
  a.merge(b);
  a.merge(empty);  // merging an untouched statistic changes nothing
  EXPECT_EQ(a.count, 3);
  EXPECT_EQ(a.minimum(), 1.0);
  EXPECT_EQ(a.max, 10.0);
  EXPECT_EQ(a.total, 14.0);
}

TEST(CostStatisticTest, ScopedTimerRecordsOneSample) {
  CostStatistic stat;
  {
    ScopedCostTimer timer(stat);
  }
  EXPECT_EQ(stat.count, 1);
  EXPECT_GE(stat.max, 0.0);
}

TEST(MemoryPoolTest, RecyclesObjectsWithCapacityIntact) {
  MemoryPool<std::vector<int>> pool;
  const int* data = nullptr;
  {
    auto handle = pool.acquire();
    handle->assign(1000, 7);
    data = handle->data();
  }  // handle destroyed -> object parked, buffer kept
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.constructions(), 1);
  auto again = pool.acquire();
  EXPECT_EQ(pool.reuses(), 1);
  EXPECT_EQ(again->data(), data);     // same heap buffer came back
  EXPECT_GE(again->capacity(), 1000u);  // capacity survived the round trip
}

TEST(MemoryPoolTest, DistinctHandlesDistinctObjects) {
  MemoryPool<std::vector<int>> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_NE(&*a, &*b);
  EXPECT_EQ(pool.constructions(), 2);
  a.release();
  EXPECT_FALSE(a);
  EXPECT_EQ(pool.available(), 1u);
  auto c = pool.acquire();  // revives a's object, not b's
  EXPECT_NE(&*c, &*b);
  EXPECT_EQ(pool.reuses(), 1);
}

TEST(MemoryPoolTest, HandleMoveTransfersOwnership) {
  MemoryPool<std::vector<int>> pool;
  auto a = pool.acquire();
  std::vector<int>* object = &*a;
  MemoryPool<std::vector<int>>::Handle b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(&*b, object);
  EXPECT_EQ(pool.available(), 0u);  // still checked out
}

TEST(StageStatsCollectorTest, FoldsStageObservations) {
  StageStatsCollector collector;
  StageObserver observer = collector.observer();
  observer(PipelineStage::kSimulate, 0.5, "detail");
  observer(PipelineStage::kSimulate, 1.5, "detail");
  observer(PipelineStage::kPlace, 2.0, "detail");
  const CostStatistic simulate = collector.statistic(PipelineStage::kSimulate);
  EXPECT_EQ(simulate.count, 2);
  EXPECT_EQ(simulate.average(), 1.0);
  EXPECT_EQ(simulate.minimum(), 0.5);
  EXPECT_EQ(simulate.max, 1.5);
  EXPECT_EQ(collector.statistic(PipelineStage::kPlace).count, 1);
  EXPECT_EQ(collector.statistic(PipelineStage::kBind).count, 0);
}

}  // namespace
}  // namespace dmfb
