// Tests for the partial-reconfiguration engine (core/reconfig.h).
#include "core/reconfig.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/fti.h"
#include "core/greedy_placer.h"
#include "sim/fault.h"

namespace dmfb {
namespace {

Schedule single_module_schedule() {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});
  return s;
}

TEST(ReconfigTest, RelocatesIntoSpareColumn) {
  Placement p(single_module_schedule(), 8, 4);
  p.set_anchor(0, {0, 0});
  const Reconfigurator reconfig;
  const Rect array{0, 0, 8, 4};
  const auto outcome = reconfig.relocate_module(p, 0, Point{1, 1}, array);
  ASSERT_TRUE(outcome.has_value());
  // New footprint must avoid the fault and stay in the array.
  const Rect new_fp = footprint_rect(p.module(0).spec, outcome->new_anchor,
                                     outcome->new_rotated);
  EXPECT_FALSE(new_fp.contains(Point{1, 1}));
  EXPECT_TRUE(array.contains(new_fp));
  EXPECT_EQ(outcome->module_label, "A");
  EXPECT_GT(outcome->move_distance, 0);
}

TEST(ReconfigTest, FailsWhenNoRoom) {
  Placement p(single_module_schedule(), 4, 4);
  p.set_anchor(0, {0, 0});
  const Reconfigurator reconfig;
  const auto outcome =
      reconfig.relocate_module(p, 0, Point{1, 1}, Rect{0, 0, 4, 4});
  EXPECT_FALSE(outcome.has_value());
}

TEST(ReconfigTest, RecoverMovesEveryAffectedModule) {
  // Two modules at different times sharing cells: a fault under both must
  // relocate both.
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "B", spec, 10.0, 20.0, -1, -1});
  Placement p(s, 10, 4);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {0, 0});  // same cells, later
  const Reconfigurator reconfig;
  const auto result = reconfig.recover(p, Point{1, 1}, Rect{0, 0, 10, 4});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.relocations.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(result.placement.module(i).footprint().contains(
        Point{1, 1}));
  }
  EXPECT_TRUE(result.placement.feasible());
}

TEST(ReconfigTest, RecoverOnUnusedCellIsNoop) {
  Placement p(single_module_schedule(), 8, 4);
  p.set_anchor(0, {0, 0});
  const Reconfigurator reconfig;
  const auto result = reconfig.recover(p, Point{6, 2}, Rect{0, 0, 8, 4});
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.relocations.empty());
  EXPECT_EQ(result.placement.module(0).anchor, (Point{0, 0}));
}

TEST(ReconfigTest, FailureRollsBackPlacement) {
  Placement p(single_module_schedule(), 4, 4);
  p.set_anchor(0, {0, 0});
  const Reconfigurator reconfig;
  const auto result = reconfig.recover(p, Point{2, 2}, Rect{0, 0, 4, 4});
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
  EXPECT_EQ(result.placement.module(0).anchor, (Point{0, 0}));
}

TEST(ReconfigTest, NearestPolicyMinimizesDistance) {
  // Spare room on both sides; the nearer one must win.
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 1, 1, 5.0};  // 3x3
  s.add(ScheduledModule{0, "A", spec, 0.0, 5.0, -1, -1});
  Placement p(s, 20, 3);
  p.set_anchor(0, {3, 0});  // 3 columns left, 14 right
  const Reconfigurator nearest({}, RelocationPolicy::kNearest);
  const auto outcome =
      nearest.relocate_module(p, 0, Point{4, 1}, Rect{0, 0, 20, 3});
  ASSERT_TRUE(outcome.has_value());
  // The fault at x=4 forbids anchors x in {2,3,4}; the nearest legal
  // anchors are x=1 (left) and x=5 (right), both at distance 2.
  EXPECT_EQ(outcome->move_distance, 2);
  const Rect new_fp = footprint_rect(p.module(0).spec, outcome->new_anchor,
                                     outcome->new_rotated);
  EXPECT_FALSE(new_fp.contains(Point{4, 1}));
}

TEST(ReconfigTest, BestFitPolicyPicksSmallestMer) {
  // Two spare pockets: one 3x3 (snug) and one much larger.
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 1, 1, 5.0};        // 3x3
  const ModuleSpec wall{"wall", ModuleKind::kMixer, 1, 8, 5.0};     // 3x10
  s.add(ScheduledModule{0, "A", spec, 0.0, 5.0, -1, -1});
  s.add(ScheduledModule{1, "W", wall, 0.0, 5.0, -1, -1});
  Placement p(s, 16, 10);
  p.set_anchor(0, {0, 0});   // bottom-left 3x3
  p.set_anchor(1, {3, 0});   // wall at x=3..5 full height
  // With A removed and the fault at (1,1) marked, the left pocket's
  // largest fitting MER is columns 0-2 rows 2-9 (3x8 = 24 cells, above
  // the fault); the right side is a 10x10 block. Best fit = the pocket.
  const Reconfigurator bestfit({}, RelocationPolicy::kBestFit);
  const auto outcome =
      bestfit.relocate_module(p, 0, Point{1, 1}, Rect{0, 0, 16, 10});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->target_mer.area(), 3 * 8);
}

TEST(ReconfigTest, FirstFitIsDeterministic) {
  Placement p(single_module_schedule(), 12, 6);
  p.set_anchor(0, {0, 0});
  const Reconfigurator firstfit({}, RelocationPolicy::kFirstFit);
  const auto a = firstfit.relocate_module(p, 0, Point{0, 0}, Rect{0, 0, 12, 6});
  const auto b = firstfit.relocate_module(p, 0, Point{0, 0}, Rect{0, 0, 12, 6});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->new_anchor, b->new_anchor);
  EXPECT_EQ(a->new_rotated, b->new_rotated);
}

TEST(ReconfigTest, RotationDisabledRestrictsTargets) {
  // 3x6 module; spare region is 6x3 — fits only rotated.
  Schedule s;
  const ModuleSpec slim{"slim", ModuleKind::kMixer, 1, 4, 5.0};     // 3x6
  const ModuleSpec block{"block", ModuleKind::kMixer, 1, 4, 5.0};   // 3x6
  s.add(ScheduledModule{0, "A", slim, 0.0, 5.0, -1, -1});
  s.add(ScheduledModule{1, "B", block, 0.0, 5.0, -1, -1});
  Placement p(s, 6, 9);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {3, 0});
  const Rect array{0, 0, 6, 9};
  const Point fault{1, 4};  // mid-module; vertical shifts cannot avoid it

  const Reconfigurator with_rot(FtiOptions{.allow_rotation = true});
  const Reconfigurator no_rot(FtiOptions{.allow_rotation = false});
  const auto rotated = with_rot.relocate_module(p, 0, fault, array);
  ASSERT_TRUE(rotated.has_value());
  EXPECT_TRUE(rotated->new_rotated);
  EXPECT_FALSE(no_rot.relocate_module(p, 0, fault, array).has_value());
}

TEST(ReconfigTest, RecoverAgreementWithFtiOnPcr) {
  // For every cell of the array: recover() succeeds exactly when the FTI
  // evaluator calls the cell covered. This pins the production engine to
  // the metric the placer optimizes.
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p = place_greedy(synth.schedule, 14, 14);
  const Rect array = p.bounding_box();
  const Reconfigurator reconfig;
  const FtiResult fti = evaluate_fti(p, {}, array);
  for (const Point& cell : enumerate_cells(array)) {
    const bool covered =
        fti.covered.at(cell.x - array.x, cell.y - array.y) != 0;
    const bool recovered = reconfig.recover(p, cell, array).success;
    EXPECT_EQ(covered, recovered)
        << "cell (" << cell.x << "," << cell.y << ")";
  }
}

TEST(ReconfigTest, RecoveredPlacementStaysFeasibleAndInArray) {
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p = place_greedy(synth.schedule, 16, 16);
  const Rect array = p.bounding_box().inflated(1).intersection(
      Rect{0, 0, 16, 16});
  const Reconfigurator reconfig;
  for (const Point& cell : enumerate_cells(array)) {
    const auto result = reconfig.recover(p, cell, array);
    if (!result.success) continue;
    EXPECT_TRUE(result.placement.feasible());
    for (const auto& m : result.placement.modules()) {
      EXPECT_TRUE(array.contains(m.footprint())) << m.label;
      EXPECT_FALSE(m.footprint().contains(cell)) << m.label;
    }
  }
}

}  // namespace
}  // namespace dmfb
