// Tests for the text interchange format (io/assay_format.h): round trips
// and error reporting.
#include "io/assay_format.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "assay/synthesis.h"
#include "core/greedy_placer.h"

namespace dmfb {
namespace {

TEST(AssayFormatTest, PcrRoundTrip) {
  const ModuleLibrary library = ModuleLibrary::standard();
  const AssayCase original = pcr_mixing_assay();
  const std::string text = assay_to_string(original);
  const AssayCase parsed = assay_from_string(text, library);

  EXPECT_EQ(parsed.name, original.graph.name());
  ASSERT_EQ(parsed.graph.operation_count(),
            original.graph.operation_count());
  for (const auto& op : original.graph.operations()) {
    const auto& p = parsed.graph.operation(op.id);
    EXPECT_EQ(p.type, op.type);
    EXPECT_EQ(p.label, op.label);
    EXPECT_EQ(p.reagent, op.reagent);
    EXPECT_EQ(parsed.graph.successors(op.id),
              original.graph.successors(op.id));
  }
  ASSERT_EQ(parsed.binding.size(), original.binding.size());
  for (const auto& [id, spec] : original.binding) {
    EXPECT_EQ(parsed.binding.at(id).name, spec.name);
  }
  EXPECT_EQ(parsed.scheduler_options.constraints.max_concurrent_modules,
            original.scheduler_options.constraints.max_concurrent_modules);
  EXPECT_EQ(parsed.scheduler_options.insert_storage,
            original.scheduler_options.insert_storage);

  // The parsed assay synthesizes identically.
  const auto a = synthesize_with_binding(original.graph, original.binding,
                                         original.scheduler_options);
  const auto b = synthesize_with_binding(parsed.graph, parsed.binding,
                                         parsed.scheduler_options);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.peak_concurrent_cells, b.peak_concurrent_cells);
}

TEST(AssayFormatTest, CommentsAndBlankLinesIgnored) {
  const ModuleLibrary library = ModuleLibrary::standard();
  const std::string text = R"(
# a tiny assay
assay demo

op 0 dispense D1 water   # the input
op 1 mix M1
op 2 output Out
dep 0 1
dep 1 2
bind 1 mixer-2x2
end
)";
  const AssayCase assay = assay_from_string(text, library);
  EXPECT_EQ(assay.graph.operation_count(), 3);
  EXPECT_EQ(assay.binding.at(1).name, "mixer-2x2");
}

TEST(AssayFormatTest, ErrorsCarryLineNumbers) {
  const ModuleLibrary library = ModuleLibrary::standard();
  try {
    assay_from_string("assay x\nop 0 warp D1\nend\n", library);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("unknown operation type"),
              std::string::npos);
  }
}

TEST(AssayFormatTest, RejectsBadInputs) {
  const ModuleLibrary lib = ModuleLibrary::standard();
  // Missing header.
  EXPECT_THROW(assay_from_string("op 0 mix M\nend\n", lib), ParseError);
  // Missing end.
  EXPECT_THROW(assay_from_string("assay x\nop 0 mix M\n", lib), ParseError);
  // Sparse ids.
  EXPECT_THROW(assay_from_string("assay x\nop 1 mix M\nend\n", lib),
               ParseError);
  // Duplicate ids.
  EXPECT_THROW(
      assay_from_string("assay x\nop 0 mix M\nop 0 mix N\nend\n", lib),
      ParseError);
  // Unknown module.
  EXPECT_THROW(assay_from_string(
                   "assay x\nop 0 mix M\nbind 0 warp-drive\nend\n", lib),
               ParseError);
  // Dangling dependency.
  EXPECT_THROW(
      assay_from_string("assay x\nop 0 mix M\ndep 0 7\nend\n", lib),
      ParseError);
  // Cycle.
  EXPECT_THROW(
      assay_from_string(
          "assay x\nop 0 mix A\nop 1 mix B\ndep 0 1\ndep 1 0\nend\n", lib),
      ParseError);
  // Bad integer.
  EXPECT_THROW(assay_from_string("assay x\nop zero mix M\nend\n", lib),
               ParseError);
}

TEST(AssayFormatTest, PlacementRoundTrip) {
  const AssayCase assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement original = place_greedy(synth.schedule, 20, 20);
  const std::string text = placement_to_string(original);

  Placement restored(synth.schedule, 20, 20);
  apply_placement_from_string(text, restored);
  for (int i = 0; i < original.module_count(); ++i) {
    EXPECT_EQ(restored.module(i).anchor, original.module(i).anchor);
    EXPECT_EQ(restored.module(i).rotated, original.module(i).rotated);
  }
  EXPECT_EQ(restored.bounding_box(), original.bounding_box());
}

TEST(AssayFormatTest, PlacementRejectsMismatchedCanvas) {
  const AssayCase assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement original = place_greedy(synth.schedule, 20, 20);
  Placement other(synth.schedule, 24, 24);
  EXPECT_THROW(
      apply_placement_from_string(placement_to_string(original), other),
      ParseError);
}

TEST(AssayFormatTest, PlacementRejectsBadIndex) {
  const AssayCase assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  Placement placement(synth.schedule, 20, 20);
  EXPECT_THROW(apply_placement_from_string(
                   "placement 20 20\nplace 99 0 0 0\nend\n", placement),
               ParseError);
}

// --- canonical form + fingerprint (the service's cache key) -----------

/// Two dispenses fanning out to two mixes that join at an output, with
/// the dependency edges inserted in a caller-chosen order. Fan-out is the
/// point: an operation with several successors enumerates them in
/// insertion order, so the two variants are structurally identical assays
/// whose graphs (and serializations) enumerate differently.
AssayCase branching_assay(bool reversed) {
  SequencingGraph graph("branching");
  const OperationId d1 =
      graph.add_operation(OperationType::kDispense, "D1", "sample");
  const OperationId d2 =
      graph.add_operation(OperationType::kDispense, "D2", "buffer");
  const OperationId m1 = graph.add_operation(OperationType::kMix, "M1");
  const OperationId m2 = graph.add_operation(OperationType::kMix, "M2");
  const OperationId out =
      graph.add_operation(OperationType::kOutput, "Out");
  std::vector<std::pair<OperationId, OperationId>> edges = {
      {d1, m1}, {d1, m2}, {d2, m1}, {d2, m2}, {m1, out}, {m2, out}};
  if (reversed) std::reverse(edges.begin(), edges.end());
  for (const auto& [from, to] : edges) graph.add_dependency(from, to);
  AssayCase assay;
  assay.name = "branching";
  assay.graph = std::move(graph);
  return assay;
}

TEST(AssayFormatTest, CanonicalTextIgnoresInsertionOrder) {
  const AssayCase a = branching_assay(/*reversed=*/false);
  const AssayCase b = branching_assay(/*reversed=*/true);
  // The graphs really do enumerate differently...
  EXPECT_NE(a.graph.successors(0), b.graph.successors(0));
  // ...which is exactly what the canonical form must erase.
  EXPECT_EQ(canonical_assay_text(a), canonical_assay_text(b));
  EXPECT_EQ(assay_fingerprint(a), assay_fingerprint(b));
}

TEST(AssayFormatTest, CanonicalTextSurvivesSerializationRoundTrip) {
  const ModuleLibrary library = ModuleLibrary::standard();
  const AssayCase original = pcr_mixing_assay();
  const AssayCase parsed =
      assay_from_string(assay_to_string(original), library);
  EXPECT_EQ(assay_fingerprint(original), assay_fingerprint(parsed));
}

TEST(AssayFormatTest, FingerprintSeesEveryStructuralField) {
  const AssayCase base = pcr_mixing_assay();
  const std::uint64_t fp = assay_fingerprint(base);

  AssayCase renamed = base;
  renamed.name = "pcr-variant";
  EXPECT_NE(assay_fingerprint(renamed), fp);

  AssayCase rebound = base;
  ASSERT_FALSE(rebound.binding.empty());
  rebound.binding.begin()->second.duration_s += 1.0;
  EXPECT_NE(assay_fingerprint(rebound), fp);

  AssayCase constrained = base;
  constrained.scheduler_options.constraints.max_concurrent_modules = 3;
  EXPECT_NE(assay_fingerprint(constrained), fp);

  AssayCase no_storage = base;
  no_storage.scheduler_options.insert_storage = false;
  EXPECT_NE(assay_fingerprint(no_storage), fp);

  AssayCase limited = base;
  limited.scheduler_options.constraints
      .max_concurrent_by_kind[ModuleKind::kMixer] = 1;
  EXPECT_NE(assay_fingerprint(limited), fp);
}

}  // namespace
}  // namespace dmfb
