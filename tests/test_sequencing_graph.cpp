// Unit tests for the bioassay DAG (assay/sequencing_graph.h).
#include "assay/sequencing_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace dmfb {
namespace {

SequencingGraph diamond() {
  // d -> m1 -> m3, d -> m2 -> m3
  SequencingGraph g("diamond");
  const auto d = g.add_operation(OperationType::kDispense, "d", "water");
  const auto m1 = g.add_operation(OperationType::kMix, "m1");
  const auto m2 = g.add_operation(OperationType::kMix, "m2");
  const auto m3 = g.add_operation(OperationType::kMix, "m3");
  g.add_dependency(d, m1);
  g.add_dependency(d, m2);
  g.add_dependency(m1, m3);
  g.add_dependency(m2, m3);
  return g;
}

TEST(SequencingGraphTest, AddOperationAssignsSequentialIds) {
  SequencingGraph g;
  EXPECT_EQ(g.add_operation(OperationType::kDispense), 0);
  EXPECT_EQ(g.add_operation(OperationType::kMix), 1);
  EXPECT_EQ(g.operation_count(), 2);
}

TEST(SequencingGraphTest, DefaultLabelsFromType) {
  SequencingGraph g;
  const auto id = g.add_operation(OperationType::kMix);
  EXPECT_EQ(g.operation(id).label, "mix0");
}

TEST(SequencingGraphTest, EdgesAndNeighbors) {
  const auto g = diamond();
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(3).empty());
}

TEST(SequencingGraphTest, DuplicateEdgeIgnored) {
  SequencingGraph g;
  const auto a = g.add_operation(OperationType::kDispense);
  const auto b = g.add_operation(OperationType::kMix);
  g.add_dependency(a, b);
  g.add_dependency(a, b);
  EXPECT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.predecessors(b).size(), 1u);
}

TEST(SequencingGraphTest, SelfEdgeThrows) {
  SequencingGraph g;
  const auto a = g.add_operation(OperationType::kMix);
  EXPECT_THROW(g.add_dependency(a, a), std::invalid_argument);
}

TEST(SequencingGraphTest, BadIdsThrow) {
  SequencingGraph g;
  g.add_operation(OperationType::kMix);
  EXPECT_THROW(g.add_dependency(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_dependency(-1, 0), std::out_of_range);
  EXPECT_THROW(g.operation(7), std::out_of_range);
}

TEST(SequencingGraphTest, SourcesAndSinks) {
  const auto g = diamond();
  EXPECT_EQ(g.sources(), std::vector<OperationId>{0});
  EXPECT_EQ(g.sinks(), std::vector<OperationId>{3});
}

TEST(SequencingGraphTest, TopologicalOrderRespectsEdges) {
  const auto g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto position = [&](OperationId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(position(0), position(1));
  EXPECT_LT(position(0), position(2));
  EXPECT_LT(position(1), position(3));
  EXPECT_LT(position(2), position(3));
}

TEST(SequencingGraphTest, AcyclicDetection) {
  EXPECT_TRUE(diamond().is_acyclic());
}

TEST(SequencingGraphTest, LongestPath) {
  const auto g = diamond();
  EXPECT_EQ(g.longest_path_length(), 3);  // d -> m1 -> m3
  SequencingGraph empty;
  EXPECT_EQ(empty.longest_path_length(), 0);
  SequencingGraph single;
  single.add_operation(OperationType::kMix);
  EXPECT_EQ(single.longest_path_length(), 1);
}

TEST(SequencingGraphTest, ReconfigurableOperations) {
  const auto g = diamond();
  const auto ops = g.reconfigurable_operations();
  EXPECT_EQ(ops, (std::vector<OperationId>{1, 2, 3}));  // dispense excluded
}

TEST(OperationTypeTest, ReconfigurabilityClassification) {
  EXPECT_FALSE(is_reconfigurable(OperationType::kDispense));
  EXPECT_FALSE(is_reconfigurable(OperationType::kOutput));
  EXPECT_TRUE(is_reconfigurable(OperationType::kMix));
  EXPECT_TRUE(is_reconfigurable(OperationType::kDilute));
  EXPECT_TRUE(is_reconfigurable(OperationType::kStore));
  EXPECT_TRUE(is_reconfigurable(OperationType::kDetect));
}

TEST(OperationTypeTest, ModuleKindMapping) {
  EXPECT_EQ(module_kind_for(OperationType::kMix), ModuleKind::kMixer);
  EXPECT_EQ(module_kind_for(OperationType::kDilute), ModuleKind::kDilutor);
  EXPECT_EQ(module_kind_for(OperationType::kStore), ModuleKind::kStorage);
  EXPECT_EQ(module_kind_for(OperationType::kDetect), ModuleKind::kDetector);
  EXPECT_THROW(module_kind_for(OperationType::kDispense),
               std::invalid_argument);
  EXPECT_THROW(module_kind_for(OperationType::kOutput), std::invalid_argument);
}

}  // namespace
}  // namespace dmfb
