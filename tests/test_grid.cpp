// Unit tests for occupancy grids and ASCII rendering (biochip/grid.h).
#include "biochip/grid.h"

#include <gtest/gtest.h>

namespace dmfb {
namespace {

TEST(GridTest, BuildOccupancyAssignsIndices) {
  const auto grid = build_occupancy(6, 4, {Rect{0, 0, 2, 2}, Rect{3, 1, 2, 2}});
  EXPECT_EQ(grid.at(0, 0), 1);
  EXPECT_EQ(grid.at(1, 1), 1);
  EXPECT_EQ(grid.at(3, 1), 2);
  EXPECT_EQ(grid.at(4, 2), 2);
  EXPECT_EQ(grid.at(5, 3), 0);
}

TEST(GridTest, LaterRectsOverwrite) {
  const auto grid = build_occupancy(4, 4, {Rect{0, 0, 3, 3}, Rect{1, 1, 3, 3}});
  EXPECT_EQ(grid.at(0, 0), 1);
  EXPECT_EQ(grid.at(1, 1), 2);
  EXPECT_EQ(grid.at(2, 2), 2);
}

TEST(GridTest, ToBinary) {
  const auto grid = build_occupancy(3, 3, {Rect{0, 0, 2, 1}});
  const auto binary = to_binary(grid);
  EXPECT_EQ(binary.at(0, 0), 1);
  EXPECT_EQ(binary.at(1, 0), 1);
  EXPECT_EQ(binary.at(2, 0), 0);
  EXPECT_EQ(binary.at(0, 1), 0);
}

TEST(GridTest, MarkCellsIgnoresOutOfBounds) {
  Matrix<std::uint8_t> grid(3, 3, 0);
  mark_cells(grid, {Point{1, 1}, Point{5, 5}, Point{-1, 0}});
  EXPECT_EQ(grid.at(1, 1), 1);
  long long marked = 0;
  for (const auto v : grid) marked += v;
  EXPECT_EQ(marked, 1);
}

TEST(GridTest, RenderTopRowFirst) {
  // Module 1 occupies the bottom-left cell; rendering is y-down on screen,
  // so the 'A' must be on the LAST line.
  const auto grid = build_occupancy(2, 2, {Rect{0, 0, 1, 1}});
  EXPECT_EQ(render_grid(grid), "..\nA.\n");
}

TEST(GridTest, RenderModulesAndFault) {
  const auto grid = build_occupancy(3, 2, {Rect{0, 0, 1, 2}, Rect{2, 0, 1, 1}});
  const std::string out = render_grid(grid, {Point{1, 1}});
  EXPECT_EQ(out, "AX.\nA.B\n");
}

TEST(GridTest, RenderManyModulesUsesLowercaseThenHash) {
  std::vector<Rect> rects;
  for (int i = 0; i < 53; ++i) rects.push_back(Rect{i, 0, 1, 1});
  const auto grid = build_occupancy(53, 1, rects);
  const std::string out = render_grid(grid);
  EXPECT_EQ(out[0], 'A');
  EXPECT_EQ(out[25], 'Z');
  EXPECT_EQ(out[26], 'a');
  EXPECT_EQ(out[51], 'z');
  EXPECT_EQ(out[52], '#');
}

}  // namespace
}  // namespace dmfb
