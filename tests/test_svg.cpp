// Tests for SVG rendering (util/svg.h).
#include "util/svg.h"

#include <gtest/gtest.h>

namespace dmfb {
namespace {

TEST(SvgTest, GridDocumentIsWellFormed) {
  const std::string svg = render_svg_grid(
      8, 6, {SvgRect{Rect{0, 0, 4, 4}, "M1", palette_color(0)}});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("M1"), std::string::npos);
  EXPECT_NE(svg.find(palette_color(0)), std::string::npos);
}

TEST(SvgTest, GridFlipsYAxis) {
  // A 1x1 rect at cell (0,0) with cell_px=10 on a 2x2 grid must render at
  // pixel y = 10 (bottom row), not 0.
  const std::string svg =
      render_svg_grid(2, 2, {SvgRect{Rect{0, 0, 1, 1}, "", "#000000"}}, 10);
  EXPECT_NE(svg.find("<rect x=\"0\" y=\"10\" width=\"10\" height=\"10\""),
            std::string::npos);
}

TEST(SvgTest, FaultMarksRendered) {
  const std::string svg = render_svg_grid(4, 4, {}, 10, {Point{1, 1}});
  // Two stroke lines per X mark.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = svg.find("#cc0000", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(SvgTest, LabelsAreEscaped) {
  const std::string svg = render_svg_grid(
      4, 4, {SvgRect{Rect{0, 0, 2, 2}, "a<b&c>", "#123456"}});
  EXPECT_NE(svg.find("a&lt;b&amp;c&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
}

TEST(SvgTest, GanttBarsScaleWithTime) {
  const std::string svg = render_svg_gantt(
      {SvgGanttBar{"M1", 0.0, 10.0, "#4e79a7"},
       SvgGanttBar{"M2", 10.0, 15.0, "#f28e2b"}},
      /*seconds_per_px=*/1.0);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("M1"), std::string::npos);
  EXPECT_NE(svg.find("M2"), std::string::npos);
  // M1 spans 10 px starting at the label gutter (x=80).
  EXPECT_NE(svg.find("<rect x=\"80\" y=\"5\" width=\"10\""),
            std::string::npos);
}

TEST(SvgTest, PaletteWraps) {
  EXPECT_EQ(palette_color(0), palette_color(10));
  EXPECT_NE(palette_color(0), palette_color(1));
}

TEST(SvgTest, EmptyRectSkipped) {
  const std::string svg =
      render_svg_grid(4, 4, {SvgRect{Rect{}, "ghost", "#000000"}});
  EXPECT_EQ(svg.find("ghost"), std::string::npos);
}

}  // namespace
}  // namespace dmfb
