// Unit + property tests for util/prefix_sum.h; the FTI fast path depends
// on exact agreement between the summed-area table and direct counting.
#include "util/prefix_sum.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dmfb {
namespace {

Matrix<std::uint8_t> random_grid(int w, int h, double density, Rng& rng) {
  Matrix<std::uint8_t> grid(w, h, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      grid.at(x, y) = rng.next_bool(density) ? 1 : 0;
    }
  }
  return grid;
}

TEST(PrefixSumTest, EmptyGridCountsZero) {
  const Matrix<std::uint8_t> grid(5, 4, 0);
  const PrefixSum2D sums(grid);
  EXPECT_EQ(sums.occupied_in(Rect{0, 0, 5, 4}), 0);
  EXPECT_TRUE(sums.is_rect_empty(Rect{1, 1, 3, 2}));
}

TEST(PrefixSumTest, FullGridCountsArea) {
  const Matrix<std::uint8_t> grid(4, 4, 1);
  const PrefixSum2D sums(grid);
  EXPECT_EQ(sums.occupied_in(Rect{0, 0, 4, 4}), 16);
  EXPECT_EQ(sums.occupied_in(Rect{1, 1, 2, 2}), 4);
  EXPECT_FALSE(sums.is_rect_empty(Rect{3, 3, 1, 1}));
}

TEST(PrefixSumTest, SingleCell) {
  Matrix<std::uint8_t> grid(3, 3, 0);
  grid.at(1, 1) = 1;
  const PrefixSum2D sums(grid);
  EXPECT_EQ(sums.occupied_in(Rect{1, 1, 1, 1}), 1);
  EXPECT_EQ(sums.occupied_in(Rect{0, 0, 1, 1}), 0);
  EXPECT_EQ(sums.occupied_in(Rect{0, 0, 3, 3}), 1);
  EXPECT_EQ(sums.occupied_in(Rect{0, 0, 2, 2}), 1);
  EXPECT_EQ(sums.occupied_in(Rect{2, 2, 1, 1}), 0);
}

TEST(PrefixSumTest, EmptyRectQueryIsZero) {
  const Matrix<std::uint8_t> grid(3, 3, 1);
  const PrefixSum2D sums(grid);
  EXPECT_EQ(sums.occupied_in(Rect{}), 0);
  EXPECT_EQ(sums.occupied_in(Rect{1, 1, 0, 2}), 0);
}

TEST(PrefixSumTest, FindEmptyRectBottomLeftFirst) {
  // Free 2x2 windows exist at several places; the scan returns the
  // bottom-left-most.
  Matrix<std::uint8_t> grid(4, 4, 0);
  grid.at(0, 0) = 1;
  const PrefixSum2D sums(grid);
  const auto found = sums.find_empty_rect(2, 2);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, (Rect{1, 0, 2, 2}));
}

TEST(PrefixSumTest, FindEmptyRectImpossibleSizes) {
  const Matrix<std::uint8_t> grid(4, 4, 0);
  const PrefixSum2D sums(grid);
  EXPECT_FALSE(sums.find_empty_rect(5, 1).has_value());
  EXPECT_FALSE(sums.find_empty_rect(1, 5).has_value());
  EXPECT_FALSE(sums.find_empty_rect(0, 2).has_value());
  EXPECT_TRUE(sums.find_empty_rect(4, 4).has_value());
}

TEST(PrefixSumTest, FitsEmptyOnPartiallyOccupied) {
  Matrix<std::uint8_t> grid(5, 3, 0);
  for (int y = 0; y < 3; ++y) grid.at(2, y) = 1;  // wall at x=2
  const PrefixSum2D sums(grid);
  EXPECT_TRUE(sums.fits_empty(2, 3));
  EXPECT_FALSE(sums.fits_empty(3, 1));
  EXPECT_FALSE(sums.fits_empty(3, 3));
}

class PrefixSumPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSumPropertyTest, MatchesDirectCounting) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    const int w = 1 + static_cast<int>(rng.next_below(12));
    const int h = 1 + static_cast<int>(rng.next_below(12));
    const auto grid = random_grid(w, h, rng.next_double(), rng);
    const PrefixSum2D sums(grid);
    for (int q = 0; q < 30; ++q) {
      const int x = static_cast<int>(rng.next_below(w));
      const int y = static_cast<int>(rng.next_below(h));
      const int rw = 1 + static_cast<int>(rng.next_below(w - x));
      const int rh = 1 + static_cast<int>(rng.next_below(h - y));
      const Rect r{x, y, rw, rh};
      EXPECT_EQ(sums.occupied_in(r), grid.count_in_rect(r, 1));
      EXPECT_EQ(sums.is_rect_empty(r), grid.count_in_rect(r, 1) == 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSumPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace dmfb
