// Tests for the modified-2D placement model (core/placement.h).
#include "core/placement.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"

namespace dmfb {
namespace {

/// Two modules overlapping in time plus one later module.
Schedule small_schedule() {
  Schedule s;
  const ModuleSpec big{"big", ModuleKind::kMixer, 2, 2, 10.0};    // 4x4
  const ModuleSpec slim{"slim", ModuleKind::kMixer, 1, 4, 5.0};   // 3x6
  s.add(ScheduledModule{0, "A", big, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "B", slim, 0.0, 5.0, -1, -1});
  s.add(ScheduledModule{2, "C", big, 10.0, 20.0, -1, -1});
  return s;
}

TEST(PlacementTest, ConstructionFromSchedule) {
  const Placement p(small_schedule(), 16, 16);
  EXPECT_EQ(p.module_count(), 3);
  EXPECT_EQ(p.canvas_width(), 16);
  EXPECT_EQ(p.module(0).label, "A");
  EXPECT_EQ(p.module(1).spec.footprint_height(), 6);
}

TEST(PlacementTest, RejectsTinyCanvas) {
  EXPECT_THROW(Placement(small_schedule(), 3, 3), std::invalid_argument);
  EXPECT_THROW(Placement(small_schedule(), 0, 10), std::invalid_argument);
}

TEST(PlacementTest, ConflictingPairsRespectTime) {
  const Placement p(small_schedule(), 16, 16);
  // A[0,10) and B[0,5) conflict; C[10,20) conflicts with neither
  // (A ends exactly when C starts — back-to-back reuse is legal).
  EXPECT_EQ(p.conflicting_pairs(),
            (std::vector<std::pair<int, int>>{{0, 1}}));
  EXPECT_EQ(p.temporal_neighbors(0), std::vector<int>{1});
  EXPECT_TRUE(p.temporal_neighbors(2).empty());
}

TEST(PlacementTest, OverlapCountsOnlyConflictingPairs) {
  Placement p(small_schedule(), 16, 16);
  // All three stacked at the origin.
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {0, 0});
  p.set_anchor(2, {0, 0});
  // A (4x4) vs B (3x6) overlap = 3x4 = 12 cells; C overlaps nobody in time.
  EXPECT_EQ(p.overlap_cells(), 12);
  EXPECT_FALSE(p.feasible());
  p.set_anchor(1, {4, 0});
  EXPECT_EQ(p.overlap_cells(), 0);
  EXPECT_TRUE(p.feasible());
}

TEST(PlacementTest, ModulesMayShareCellsAcrossTime) {
  Placement p(small_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {4, 0});
  p.set_anchor(2, {0, 0});  // same cells as A, later in time
  EXPECT_EQ(p.overlap_cells(), 0);
  EXPECT_TRUE(p.feasible());
}

TEST(PlacementTest, BoundingBox) {
  Placement p(small_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});   // 4x4 at origin
  p.set_anchor(1, {4, 0});   // 3x6
  p.set_anchor(2, {0, 4});   // 4x4
  const Rect box = p.bounding_box();
  EXPECT_EQ(box, (Rect{0, 0, 7, 8}));
  EXPECT_EQ(p.bounding_box_cells(), 56);
}

TEST(PlacementTest, WithinCanvas) {
  Placement p(small_schedule(), 8, 8);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {4, 0});
  p.set_anchor(2, {4, 4});  // 4x4 at (4,4) fits an 8x8 canvas exactly
  EXPECT_TRUE(p.within_canvas());
  p.set_anchor(2, {5, 4});
  EXPECT_FALSE(p.within_canvas());
  EXPECT_FALSE(p.feasible());
}

TEST(PlacementTest, RotationChangesFootprint) {
  Placement p(small_schedule(), 16, 16);
  p.set_rotated(1, true);
  const Rect fp = p.module(1).footprint();
  EXPECT_EQ(fp.width, 6);
  EXPECT_EQ(fp.height, 3);
}

TEST(PlacementTest, SliceMembers) {
  const Placement p(small_schedule(), 16, 16);
  // Slices: [0,5): {A,B}, [5,10): {A}, [10,20): {C}.
  const auto& slices = p.slice_members();
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(slices[1], std::vector<int>{0});
  EXPECT_EQ(slices[2], std::vector<int>{2});
}

TEST(PlacementTest, SliceOccupancyValuesAreModuleIndices) {
  Placement p(small_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {4, 0});
  const auto grid = p.slice_occupancy(0, Rect{0, 0, 8, 8});
  EXPECT_EQ(grid.at(0, 0), 1);  // module 0 + 1
  EXPECT_EQ(grid.at(4, 0), 2);  // module 1 + 1
  EXPECT_EQ(grid.at(7, 7), 0);
}

TEST(PlacementTest, OccupancyDuringInterval) {
  Placement p(small_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {4, 0});
  p.set_anchor(2, {0, 0});
  const Rect region{0, 0, 8, 8};
  // During [0,5) only A and B are active.
  const auto early = p.occupancy_during(0.0, 5.0, region);
  EXPECT_EQ(early.at(0, 0), 1);
  EXPECT_EQ(early.at(4, 0), 2);
  // During [12,13) only C.
  const auto late = p.occupancy_during(12.0, 13.0, region);
  EXPECT_EQ(late.at(0, 0), 3);
  EXPECT_EQ(late.at(4, 0), 0);
}

TEST(PlacementTest, RenderMentionsEverySliceAndModule) {
  Placement p(small_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {4, 0});
  p.set_anchor(2, {0, 0});
  const std::string out = p.render();
  EXPECT_NE(out.find("A@"), std::string::npos);
  EXPECT_NE(out.find("B@"), std::string::npos);
  EXPECT_NE(out.find("C@"), std::string::npos);
  EXPECT_NE(out.find("t = [0s, 5s)"), std::string::npos);
}

TEST(PlacementTest, PcrPlacementHasExpectedModuleCount) {
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p(synth.schedule, 24, 24);
  EXPECT_EQ(p.module_count(), synth.schedule.module_count());
  EXPECT_GE(p.module_count(), 7);  // 7 mixers + inserted storage
}

}  // namespace
}  // namespace dmfb
