// Unit tests for module specs and the standard library, which must match
// Table 1 of the paper (footprints include the segregation ring).
#include "biochip/module_library.h"

#include <gtest/gtest.h>

namespace dmfb {
namespace {

TEST(ModuleSpecTest, FootprintIncludesSegregationRing) {
  const ModuleSpec spec{"mixer-2x2", ModuleKind::kMixer, 2, 2, 10.0};
  EXPECT_EQ(spec.footprint_width(), 4);
  EXPECT_EQ(spec.footprint_height(), 4);
  EXPECT_EQ(spec.footprint_cells(), 16);
  EXPECT_TRUE(spec.square());
}

TEST(ModuleSpecTest, LinearMixerFootprint) {
  const ModuleSpec spec{"mixer-1x4", ModuleKind::kMixer, 1, 4, 5.0};
  EXPECT_EQ(spec.footprint_width(), 3);
  EXPECT_EQ(spec.footprint_height(), 6);
  EXPECT_FALSE(spec.square());
}

TEST(ModuleSpecTest, FootprintRectWithRotation) {
  const ModuleSpec spec{"mixer-2x4", ModuleKind::kMixer, 2, 4, 3.0};
  const Rect plain = footprint_rect(spec, Point{2, 3}, false);
  EXPECT_EQ(plain, (Rect{2, 3, 4, 6}));
  const Rect rotated = footprint_rect(spec, Point{2, 3}, true);
  EXPECT_EQ(rotated, (Rect{2, 3, 6, 4}));
}

TEST(ModuleLibraryTest, StandardLibraryMatchesTable1) {
  const ModuleLibrary lib = ModuleLibrary::standard();

  // Table 1, with footprints = functional size + segregation ring.
  struct Expected {
    const char* name;
    int fw, fh;     // footprint cells
    double duration;
  };
  const Expected rows[] = {
      {"mixer-2x2", 4, 4, 10.0},
      {"mixer-1x4", 3, 6, 5.0},
      {"mixer-2x3", 4, 5, 6.0},
      {"mixer-2x4", 4, 6, 3.0},
  };
  for (const auto& row : rows) {
    const auto spec = lib.find(row.name);
    ASSERT_TRUE(spec.has_value()) << row.name;
    EXPECT_EQ(spec->footprint_width(), row.fw) << row.name;
    EXPECT_EQ(spec->footprint_height(), row.fh) << row.name;
    EXPECT_DOUBLE_EQ(spec->duration_s, row.duration) << row.name;
    EXPECT_EQ(spec->kind, ModuleKind::kMixer);
  }
}

TEST(ModuleLibraryTest, StandardHasStorageAndDetector) {
  const ModuleLibrary lib = ModuleLibrary::standard();
  const auto storage = lib.find("storage-1x1");
  ASSERT_TRUE(storage.has_value());
  EXPECT_EQ(storage->kind, ModuleKind::kStorage);
  EXPECT_EQ(storage->footprint_cells(), 9);  // 1x1 + ring = 3x3

  const auto detector = lib.find("detector-1x1");
  ASSERT_TRUE(detector.has_value());
  EXPECT_EQ(detector->kind, ModuleKind::kDetector);
}

TEST(ModuleLibraryTest, DuplicateNamesRejected) {
  ModuleLibrary lib;
  EXPECT_TRUE(lib.add(ModuleSpec{"m", ModuleKind::kMixer, 2, 2, 1.0}));
  EXPECT_FALSE(lib.add(ModuleSpec{"m", ModuleKind::kMixer, 3, 3, 2.0}));
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_EQ(lib.find("m")->functional_width, 2);
}

TEST(ModuleLibraryTest, FindMissingReturnsNullopt) {
  const ModuleLibrary lib = ModuleLibrary::standard();
  EXPECT_FALSE(lib.find("warp-drive").has_value());
  EXPECT_FALSE(lib.contains("warp-drive"));
}

TEST(ModuleLibraryTest, ByKindSortedFastestFirst) {
  const ModuleLibrary lib = ModuleLibrary::standard();
  const auto mixers = lib.by_kind(ModuleKind::kMixer);
  ASSERT_EQ(mixers.size(), 4u);
  for (std::size_t i = 1; i < mixers.size(); ++i) {
    EXPECT_LE(mixers[i - 1].duration_s, mixers[i].duration_s);
  }
  EXPECT_EQ(mixers.front().name, "mixer-2x4");  // 3 s is the fastest
}

TEST(ModuleKindTest, Names) {
  EXPECT_STREQ(to_string(ModuleKind::kMixer), "mixer");
  EXPECT_STREQ(to_string(ModuleKind::kDilutor), "dilutor");
  EXPECT_STREQ(to_string(ModuleKind::kStorage), "storage");
  EXPECT_STREQ(to_string(ModuleKind::kDetector), "detector");
}

}  // namespace
}  // namespace dmfb
