// Tests for resource binding (assay/binder.h).
#include "assay/binder.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "assay/assay_library.h"

namespace dmfb {
namespace {

TEST(BinderTest, FastestPolicyPicksLowestLatency) {
  const auto graph = pcr_mixing_graph();
  const auto lib = ModuleLibrary::standard();
  const Binding binding =
      bind_operations(graph, lib, BindingPolicy::kFastest);
  for (const auto& [id, spec] : binding) {
    EXPECT_EQ(spec.name, "mixer-2x4");  // 3 s mixer is the fastest
  }
  EXPECT_EQ(binding.size(), 7u);
}

TEST(BinderTest, SmallestPolicyPicksSmallestFootprint) {
  const auto graph = pcr_mixing_graph();
  const auto lib = ModuleLibrary::standard();
  const Binding binding =
      bind_operations(graph, lib, BindingPolicy::kSmallest);
  for (const auto& [id, spec] : binding) {
    EXPECT_EQ(spec.footprint_cells(), 16);  // 4x4 (2x2-array) is smallest
  }
}

TEST(BinderTest, RoundRobinUsesDiverseSpecs) {
  const auto graph = pcr_mixing_graph();
  const auto lib = ModuleLibrary::standard();
  const Binding binding =
      bind_operations(graph, lib, BindingPolicy::kRoundRobin);
  std::set<std::string> names;
  for (const auto& [id, spec] : binding) names.insert(spec.name);
  EXPECT_EQ(names.size(), 4u);  // all four mixer shapes used
}

TEST(BinderTest, MissingKindThrows) {
  SequencingGraph g;
  const auto d = g.add_operation(OperationType::kDispense);
  const auto det = g.add_operation(OperationType::kDetect);
  g.add_dependency(d, det);
  ModuleLibrary lib;  // no detector registered
  lib.add(ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 5.0});
  EXPECT_THROW(bind_operations(g, lib, BindingPolicy::kFastest),
               std::runtime_error);
}

TEST(BinderValidationTest, AcceptsTable1Binding) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  EXPECT_TRUE(validate_binding(graph, binding).empty());
}

TEST(BinderValidationTest, ReportsUnboundOperation) {
  const auto graph = pcr_mixing_graph();
  auto binding = pcr_table1_binding(graph);
  binding.erase(binding.begin());
  const auto problems = validate_binding(graph, binding);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems.front().find("unbound"), std::string::npos);
}

TEST(BinderValidationTest, ReportsKindMismatch) {
  SequencingGraph g;
  const auto det = g.add_operation(OperationType::kDetect, "det");
  Binding binding;
  binding.emplace(det, ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 5.0});
  const auto problems = validate_binding(g, binding);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("needs a detector"), std::string::npos);
}

TEST(BinderValidationTest, ReportsNonPositiveDuration) {
  SequencingGraph g;
  const auto mix = g.add_operation(OperationType::kMix, "m");
  Binding binding;
  binding.emplace(mix, ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 0.0});
  const auto problems = validate_binding(g, binding);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("duration"), std::string::npos);
}

TEST(BinderValidationTest, ReportsBindingOfNonReconfigurableOp) {
  SequencingGraph g;
  const auto d = g.add_operation(OperationType::kDispense, "d");
  Binding binding;
  binding.emplace(d, ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 5.0});
  const auto problems = validate_binding(g, binding);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("not reconfigurable"), std::string::npos);
}

TEST(BinderValidationTest, ReportsUnknownOperationId) {
  SequencingGraph g;
  g.add_operation(OperationType::kMix, "m");
  Binding binding;
  binding.emplace(0, ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 5.0});
  binding.emplace(42, ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 5.0});
  const auto problems = validate_binding(g, binding);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("unknown operation id"), std::string::npos);
}

}  // namespace
}  // namespace dmfb
