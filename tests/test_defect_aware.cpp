// Tests for defect-aware placement: placing around a manufacture-time
// defect map (cost penalty + greedy/annealer integration).
#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/cost.h"
#include "core/greedy_placer.h"
#include "core/sa_placer.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  const auto assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options)
      .schedule;
}

bool placement_avoids(const Placement& placement,
                      const std::vector<Point>& defects) {
  for (const auto& m : placement.modules()) {
    for (const Point& d : defects) {
      if (m.footprint().contains(d)) return false;
    }
  }
  return true;
}

TEST(DefectAwareTest, CostCountsDefectUsage) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});
  Placement p(s, 12, 12);
  p.set_anchor(0, {0, 0});

  CostEvaluator evaluator(CostWeights{});
  evaluator.set_defects({Point{1, 1}, Point{10, 10}});
  EXPECT_EQ(evaluator.defect_usage(p), 1);  // only (1,1) is under A
  const CostBreakdown cost = evaluator.evaluate(p);
  EXPECT_EQ(cost.defect_cells, 1);
  EXPECT_DOUBLE_EQ(cost.value, 16.0 + 50.0);  // area + defect penalty

  p.set_anchor(0, {4, 4});  // away from both defects
  EXPECT_EQ(evaluator.defect_usage(p), 0);
}

TEST(DefectAwareTest, GreedySkipsDefectiveCells) {
  const Schedule schedule = pcr_schedule();
  const std::vector<Point> defects{{0, 0}, {5, 5}, {10, 2}};
  const Placement p = place_greedy(schedule, 24, 24, defects);
  EXPECT_TRUE(p.feasible());
  EXPECT_TRUE(placement_avoids(p, defects));
}

TEST(DefectAwareTest, GreedyThrowsWhenDefectsBlockEverything) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});
  // A defect in every 4x4 window of a 5x5 canvas: (1,1) and... one defect
  // at the center blocks all four anchor positions of a 5x5 canvas.
  EXPECT_THROW(place_greedy(s, 5, 5, {Point{2, 2}}), std::runtime_error);
}

TEST(DefectAwareTest, AnnealerPlacesAroundDefects) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options;
  options.schedule.initial_temperature = 1000.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module = 80;
  options.defects = {Point{3, 3}, Point{8, 8}, Point{15, 4}};
  const auto outcome = place_simulated_annealing(schedule, options);
  EXPECT_TRUE(outcome.placement.feasible());
  EXPECT_TRUE(placement_avoids(outcome.placement, options.defects));
  EXPECT_EQ(outcome.cost.defect_cells, 0);
}

TEST(DefectAwareTest, RandomDefectMapsStillPlace) {
  const Schedule schedule = pcr_schedule();
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Point> defects;
    for (int i = 0; i < 4; ++i) {
      defects.push_back(sample_uniform_fault(Rect{0, 0, 24, 24}, rng));
    }
    SaPlacerOptions options;
    options.schedule.initial_temperature = 1000.0;
    options.schedule.cooling_rate = 0.8;
    options.schedule.iterations_per_module = 60;
    options.defects = defects;
    options.seed = rng.next();
    const auto outcome = place_simulated_annealing(schedule, options);
    EXPECT_TRUE(placement_avoids(outcome.placement, defects))
        << "trial " << trial;
  }
}

TEST(DefectAwareTest, DefectFreeMapMatchesPlainPlacement) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options;
  options.schedule.initial_temperature = 1000.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module = 60;
  const auto plain = place_simulated_annealing(schedule, options);
  options.defects = {};  // explicit empty map
  const auto with_empty_map = place_simulated_annealing(schedule, options);
  EXPECT_EQ(plain.cost.area_cells, with_empty_map.cost.area_cells);
}

}  // namespace
}  // namespace dmfb
