// Unit tests for util/matrix.h.
#include "util/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dmfb {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  const Matrix<int> m;
  EXPECT_EQ(m.width(), 0);
  EXPECT_EQ(m.height(), 0);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0);
}

TEST(MatrixTest, ConstructionAndFillValue) {
  const Matrix<int> m(4, 3, 7);
  EXPECT_EQ(m.width(), 4);
  EXPECT_EQ(m.height(), 3);
  EXPECT_EQ(m.size(), 12);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(m.at(x, y), 7);
    }
  }
}

TEST(MatrixTest, NegativeDimensionThrows) {
  EXPECT_THROW(Matrix<int>(-1, 3), std::invalid_argument);
  EXPECT_THROW(Matrix<int>(3, -1), std::invalid_argument);
}

TEST(MatrixTest, InBounds) {
  const Matrix<int> m(4, 3);
  EXPECT_TRUE(m.in_bounds(0, 0));
  EXPECT_TRUE(m.in_bounds(3, 2));
  EXPECT_FALSE(m.in_bounds(4, 2));
  EXPECT_FALSE(m.in_bounds(3, 3));
  EXPECT_FALSE(m.in_bounds(-1, 0));
  EXPECT_TRUE(m.in_bounds(Point{1, 1}));
}

TEST(MatrixTest, ReadWrite) {
  Matrix<int> m(3, 3, 0);
  m.at(1, 2) = 42;
  EXPECT_EQ(m.at(1, 2), 42);
  EXPECT_EQ(m.at(Point{1, 2}), 42);
  m.at(Point{0, 0}) = -5;
  EXPECT_EQ(m.at(0, 0), -5);
}

TEST(MatrixTest, CheckedAtThrows) {
  const Matrix<int> m(2, 2);
  EXPECT_NO_THROW(m.checked_at(1, 1));
  EXPECT_THROW(m.checked_at(2, 0), std::out_of_range);
  EXPECT_THROW(m.checked_at(0, -1), std::out_of_range);
}

TEST(MatrixTest, FillRectClipsToBounds) {
  Matrix<int> m(4, 4, 0);
  m.fill_rect(Rect{2, 2, 10, 10}, 9);  // sticks out; must clip
  EXPECT_EQ(m.count_in_rect(Rect{0, 0, 4, 4}, 9), 4);
  EXPECT_EQ(m.at(2, 2), 9);
  EXPECT_EQ(m.at(3, 3), 9);
  EXPECT_EQ(m.at(1, 1), 0);
}

TEST(MatrixTest, FillRectNegativeOrigin) {
  Matrix<int> m(4, 4, 0);
  m.fill_rect(Rect{-2, -2, 4, 4}, 1);
  EXPECT_EQ(m.count_in_rect(Rect{0, 0, 4, 4}, 1), 4);
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(1, 1), 1);
  EXPECT_EQ(m.at(2, 2), 0);
}

TEST(MatrixTest, CountInRect) {
  Matrix<int> m(5, 5, 0);
  m.fill_rect(Rect{1, 1, 2, 3}, 4);
  EXPECT_EQ(m.count_in_rect(Rect{0, 0, 5, 5}, 4), 6);
  EXPECT_EQ(m.count_in_rect(Rect{1, 1, 1, 1}, 4), 1);
  EXPECT_EQ(m.count_in_rect(Rect{3, 0, 2, 5}, 4), 0);
}

TEST(MatrixTest, FillResetsEverything) {
  Matrix<int> m(3, 2, 1);
  m.fill(8);
  for (const int v : m) EXPECT_EQ(v, 8);
}

TEST(MatrixTest, EqualityComparesContents) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 2;
  EXPECT_NE(a, b);
  const Matrix<int> c(2, 3, 1);
  EXPECT_NE(a, c);
}

TEST(MatrixTest, IterationIsRowMajor) {
  Matrix<int> m(2, 2, 0);
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(0, 1) = 3;
  m.at(1, 1) = 4;
  std::vector<int> values(m.begin(), m.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace dmfb
