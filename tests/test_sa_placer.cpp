// Tests for the simulated-annealing placer (core/sa_placer.h). The SA
// schedules here are shortened for test speed; the bench binaries use the
// paper's full parameters.
#include "core/sa_placer.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  const auto assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options)
      .schedule;
}

SaPlacerOptions fast_options() {
  SaPlacerOptions options;
  options.schedule.initial_temperature = 1000.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module = 60;
  options.schedule.min_temperature = 0.1;
  return options;
}

TEST(SaPlacerTest, ResultIsFeasible) {
  const auto outcome = place_simulated_annealing(pcr_schedule(),
                                                 fast_options());
  EXPECT_TRUE(outcome.placement.feasible());
  EXPECT_EQ(outcome.cost.overlap_cells, 0);
}

TEST(SaPlacerTest, ImprovesOnGreedyInitialArea) {
  const Schedule schedule = pcr_schedule();
  const Placement greedy = place_greedy(schedule, 24, 24);
  const auto outcome =
      place_simulated_annealing(schedule, fast_options());
  EXPECT_LE(outcome.cost.area_cells, greedy.bounding_box_cells());
}

TEST(SaPlacerTest, AreaNeverBelowPeakConcurrentCells) {
  const Schedule schedule = pcr_schedule();
  const auto outcome =
      place_simulated_annealing(schedule, fast_options());
  EXPECT_GE(outcome.cost.area_cells, schedule.peak_concurrent_cells());
}

TEST(SaPlacerTest, DeterministicForSeed) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.seed = 42;
  const auto a = place_simulated_annealing(schedule, options);
  const auto b = place_simulated_annealing(schedule, options);
  EXPECT_EQ(a.cost.area_cells, b.cost.area_cells);
  for (int i = 0; i < a.placement.module_count(); ++i) {
    EXPECT_EQ(a.placement.module(i).anchor, b.placement.module(i).anchor);
  }
}

TEST(SaPlacerTest, DifferentSeedsExploreDifferently) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.seed = 1;
  const auto a = place_simulated_annealing(schedule, options);
  options.seed = 2;
  const auto b = place_simulated_annealing(schedule, options);
  bool any_difference = a.cost.area_cells != b.cost.area_cells;
  for (int i = 0; !any_difference && i < a.placement.module_count(); ++i) {
    any_difference =
        !(a.placement.module(i).anchor == b.placement.module(i).anchor);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SaPlacerTest, StatsReflectRun) {
  const auto outcome =
      place_simulated_annealing(pcr_schedule(), fast_options());
  EXPECT_GT(outcome.stats.proposals, 0);
  EXPECT_GT(outcome.stats.accepted, 0);
  EXPECT_GT(outcome.stats.temperature_steps, 0);
  EXPECT_GE(outcome.wall_seconds, 0.0);
  EXPECT_LT(outcome.stats.best_cost,
            std::numeric_limits<double>::infinity());
}

TEST(SaPlacerTest, AnnealFromRefinesGivenPlacement) {
  const Schedule schedule = pcr_schedule();
  const Placement start = place_greedy(schedule, 24, 24);
  SaPlacerOptions options = fast_options();
  const auto outcome = anneal_from(start, options);
  EXPECT_TRUE(outcome.placement.feasible());
  EXPECT_LE(outcome.cost.area_cells, start.bounding_box_cells());
}

TEST(SaPlacerTest, TinyCanvasStillFeasible) {
  // Canvas barely larger than the peak footprint: annealing must keep a
  // feasible answer (the greedy initial placement).
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.canvas_width = 12;
  options.canvas_height = 12;
  const auto outcome = place_simulated_annealing(schedule, options);
  EXPECT_TRUE(outcome.placement.feasible());
}

TEST(SaPlacerTest, SingleModuleCollapsesToFootprint) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 5.0, -1, -1});
  const auto outcome = place_simulated_annealing(s, fast_options());
  EXPECT_EQ(outcome.cost.area_cells, 16);
}

TEST(SaPlacerTest, PaperDefaultsPreserved) {
  const SaPlacerOptions options;
  EXPECT_DOUBLE_EQ(options.schedule.initial_temperature, 10000.0);
  EXPECT_DOUBLE_EQ(options.schedule.cooling_rate, 0.9);
  EXPECT_EQ(options.schedule.iterations_per_module, 400);
  EXPECT_DOUBLE_EQ(options.weights.alpha, 1.0);
  EXPECT_DOUBLE_EQ(options.weights.beta, 0.0);
}

TEST(SaPlacerTest, FusedEngineProducesFeasiblePlacement) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.engine = AnnealingEngine::kFused;
  const auto outcome = place_simulated_annealing(schedule, options);
  EXPECT_TRUE(outcome.placement.feasible());
  EXPECT_EQ(outcome.cost.overlap_cells, 0);
  EXPECT_GE(outcome.cost.area_cells, schedule.peak_concurrent_cells());
}

TEST(SaPlacerTest, FusedEngineDeterministicForSeed) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.engine = AnnealingEngine::kFused;
  options.seed = 77;
  const auto a = place_simulated_annealing(schedule, options);
  const auto b = place_simulated_annealing(schedule, options);
  EXPECT_EQ(a.stats.proposals, b.stats.proposals);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_DOUBLE_EQ(a.cost.value, b.cost.value);
  for (int i = 0; i < a.placement.module_count(); ++i) {
    EXPECT_EQ(a.placement.module(i).anchor, b.placement.module(i).anchor);
    EXPECT_EQ(a.placement.module(i).rotated, b.placement.module(i).rotated);
  }
}

TEST(SaPlacerTest, EnginesRecordMoveKindTallies) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  for (const AnnealingEngine engine :
       {AnnealingEngine::kDelta, AnnealingEngine::kCopy,
        AnnealingEngine::kFused}) {
    options.engine = engine;
    const auto outcome = place_simulated_annealing(schedule, options);
    long long proposals = 0;
    long long accepted = 0;
    for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
      proposals += outcome.stats.proposals_by_kind[k];
      accepted += outcome.stats.accepted_by_kind[k];
    }
    EXPECT_EQ(proposals, outcome.stats.proposals) << to_string(engine);
    if (engine == AnnealingEngine::kCopy) {
      // The copying engine's accept decision is invisible to the placer;
      // it records proposal kinds only.
      EXPECT_EQ(accepted, 0);
    } else {
      EXPECT_EQ(accepted, outcome.stats.accepted) << to_string(engine);
    }
  }
}

TEST(SaPlacerTest, EngineTextRoundTrip) {
  for (const AnnealingEngine engine :
       {AnnealingEngine::kDelta, AnnealingEngine::kCopy,
        AnnealingEngine::kFused, AnnealingEngine::kBatched}) {
    EXPECT_EQ(from_string<AnnealingEngine>(to_string(engine)), engine);
  }
  EXPECT_THROW(from_string<AnnealingEngine>("warp"), std::invalid_argument);
}

TEST(SaPlacerTest, BatchedLookaheadOneIsBitIdenticalToFused) {
  // The strong stream pin: at lookahead 1 every batch holds exactly one
  // move, drawn and priced against the committed state like kFused's
  // fused proposal — the whole trajectory must match bit for bit.
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.seed = 77;
  options.engine = AnnealingEngine::kFused;
  const auto fused = place_simulated_annealing(schedule, options);
  options.engine = AnnealingEngine::kBatched;
  options.speculation_lookahead = 1;
  const auto batched = place_simulated_annealing(schedule, options);
  EXPECT_EQ(fused.stats.proposals, batched.stats.proposals);
  EXPECT_EQ(fused.stats.accepted, batched.stats.accepted);
  EXPECT_EQ(fused.stats.uphill_accepted, batched.stats.uphill_accepted);
  EXPECT_EQ(fused.cost.value, batched.cost.value);
  for (int i = 0; i < fused.placement.module_count(); ++i) {
    EXPECT_EQ(fused.placement.module(i).anchor,
              batched.placement.module(i).anchor);
    EXPECT_EQ(fused.placement.module(i).rotated,
              batched.placement.module(i).rotated);
  }
  // Every speculation is served at lookahead 1: nothing can invalidate a
  // one-entry batch between fill and decision.
  EXPECT_GT(batched.stats.speculated, 0);
  EXPECT_EQ(batched.stats.speculated, batched.stats.speculation_hits);
}

TEST(SaPlacerTest, BatchedEngineDeterministicAndFeasible) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.engine = AnnealingEngine::kBatched;
  options.speculation_lookahead = 8;
  options.seed = 99;
  const auto a = place_simulated_annealing(schedule, options);
  const auto b = place_simulated_annealing(schedule, options);
  EXPECT_TRUE(a.placement.feasible());
  EXPECT_EQ(a.cost.overlap_cells, 0);
  EXPECT_GE(a.cost.area_cells, schedule.peak_concurrent_cells());
  EXPECT_EQ(a.stats.proposals, b.stats.proposals);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_DOUBLE_EQ(a.cost.value, b.cost.value);
  for (int i = 0; i < a.placement.module_count(); ++i) {
    EXPECT_EQ(a.placement.module(i).anchor, b.placement.module(i).anchor);
    EXPECT_EQ(a.placement.module(i).rotated, b.placement.module(i).rotated);
  }
}

TEST(SaPlacerTest, BatchedSpeculationCountersAreCoherent) {
  const Schedule schedule = pcr_schedule();
  SaPlacerOptions options = fast_options();
  options.engine = AnnealingEngine::kBatched;
  options.speculation_lookahead = 8;
  const auto outcome = place_simulated_annealing(schedule, options);
  // The lazy (beta = 0) path pre-prices every drawn move...
  EXPECT_EQ(outcome.stats.speculated, outcome.stats.proposals);
  // ...most prices survive to their decision (acceptance is the rare
  // event), but some are invalidated by intra-batch acceptances.
  EXPECT_GT(outcome.stats.speculation_hits, 0);
  EXPECT_LE(outcome.stats.speculation_hits, outcome.stats.speculated);
  // The batched engine records kind tallies like the other incrementals.
  long long proposals = 0;
  long long accepted = 0;
  for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
    proposals += outcome.stats.proposals_by_kind[k];
    accepted += outcome.stats.accepted_by_kind[k];
  }
  EXPECT_EQ(proposals, outcome.stats.proposals);
  EXPECT_EQ(accepted, outcome.stats.accepted);
}

}  // namespace
}  // namespace dmfb
