// Tests for the synthesis service (service/): the content-hashed compile
// cache's key covers everything that changes compile output and nothing
// that doesn't, exact hits are bit-identical to the original compile,
// warm starts are deterministic and never worse than cold, the deadline
// round budget leaves no-deadline runs bit-identical, and the JSON-line
// wire protocol round-trips through an in-process serve().
#include "service/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "assay/assay_library.h"
#include "assay/scheduler.h"
#include "io/assay_format.h"
#include "io/json.h"

namespace dmfb {
namespace {

/// Short annealing runs so the whole suite stays fast (mirrors
/// test_pipeline's fast_options).
PipelineOptions fast_options() {
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module = 60;
  options.placer_context.ltsa.iterations_per_module = 60;
  return options;
}

/// The PCR assay with only its name changed: different cache key
/// (assay_fingerprint sees the name), identical schedule structure — the
/// canonical near-miss that should warm-start.
AssayCase renamed_pcr() {
  AssayCase assay = pcr_mixing_assay();
  assay.name = "pcr-variant";
  return assay;
}

CompileRequest make_request(std::string id, AssayCase assay,
                            PipelineOptions options) {
  CompileRequest request;
  request.id = std::move(id);
  request.assay = std::move(assay);
  request.options = std::move(options);
  return request;
}

// --- cache key -------------------------------------------------------

TEST(CompileCacheTest, OptionsFingerprintSeesCompileRelevantFields) {
  const PipelineOptions base = fast_options();
  const std::uint64_t fp = options_fingerprint(base);
  EXPECT_EQ(options_fingerprint(fast_options()), fp);  // stable

  const auto differs = [&](auto mutate, const char* what) {
    PipelineOptions changed = fast_options();
    mutate(changed);
    EXPECT_NE(options_fingerprint(changed), fp) << what;
  };
  differs([](PipelineOptions& o) { o.seed = 1; }, "seed");
  differs([](PipelineOptions& o) { o.placer = "greedy"; }, "placer");
  differs([](PipelineOptions& o) { o.router = "negotiated"; }, "router");
  differs([](PipelineOptions& o) { o.placer_context.canvas_width = 28; },
          "canvas");
  differs(
      [](PipelineOptions& o) {
        o.placer_context.defects.push_back(Point{3, 4});
      },
      "defect map");
  differs([](PipelineOptions& o) { o.placer_context.weights.gamma = 0.1; },
          "gamma");
  differs(
      [](PipelineOptions& o) {
        o.placer_context.annealing.iterations_per_module = 61;
      },
      "annealing schedule");
  differs([](PipelineOptions& o) { o.feedback_rounds = 2; },
          "feedback rounds");
  differs([](PipelineOptions& o) { o.deadline_s = 30.0; }, "deadline");
  differs([](PipelineOptions& o) { o.chip_width = 16; }, "chip geometry");
  differs([](PipelineOptions& o) { o.plan_droplet_routes = false; },
          "routing toggle");
  differs([](PipelineOptions& o) { o.simulate = true; }, "simulate");
  differs(
      [](PipelineOptions& o) {
        o.fault_plan.faults.push_back(PlannedFault{Point{3, 4}, 12.0, -1});
      },
      "fault plan");

  // With a plan present, outcome-affecting recovery knobs fork the key;
  // the host-wall deadline (execution-only, like `threads`) does not.
  PipelineOptions with_plan = fast_options();
  with_plan.fault_plan.faults.push_back(PlannedFault{Point{3, 4}, 12.0, -1});
  PipelineOptions no_replace = with_plan;
  no_replace.recovery.enable_replace = false;
  EXPECT_NE(options_fingerprint(no_replace), options_fingerprint(with_plan));
  PipelineOptions slow = with_plan;
  slow.recovery.deadline_s = 99.0;
  EXPECT_EQ(options_fingerprint(slow), options_fingerprint(with_plan));
}

TEST(CompileCacheTest, OptionsFingerprintIgnoresExecutionOnlyFields) {
  const PipelineOptions base = fast_options();
  const std::uint64_t fp = options_fingerprint(base);

  // Execution-only knobs and the warm-start seams themselves must not
  // fork the key space of the cache that feeds them.
  PipelineOptions changed = fast_options();
  changed.threads = 8;
  changed.observer = [](PipelineStage, double, const std::string&) {};
  changed.warm_links.push_back(RouteLink{});
  changed.routing.congestion_ledger =
      std::make_shared<std::vector<double>>(10, 1.0);
  EXPECT_EQ(options_fingerprint(changed), fp);
}

TEST(CompileCacheTest, ScheduleSignatureIgnoresLabels) {
  const AssayCase a = pcr_mixing_assay();
  const AssayCase b = renamed_pcr();
  const Schedule sa = list_schedule(a.graph, a.binding, a.scheduler_options);
  const Schedule sb = list_schedule(b.graph, b.binding, b.scheduler_options);
  EXPECT_EQ(schedule_signature(sa), schedule_signature(sb));

  // Serializing the schedule removes every time overlap — a different
  // structure, so placements must not transfer.
  AssayCase serial = pcr_mixing_assay();
  serial.scheduler_options.constraints.max_concurrent_modules = 1;
  const Schedule ss = list_schedule(serial.graph, serial.binding,
                                    serial.scheduler_options);
  EXPECT_NE(schedule_signature(ss), schedule_signature(sa));
}

// --- exact hits ------------------------------------------------------

TEST(ServiceTest, ExactHitReturnsTheStoredResultBitIdentical) {
  CompileService service;
  const CompileRequest request =
      make_request("r1", pcr_mixing_assay(), fast_options());

  const CompileResponse first = service.compile(request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.source, CompileSource::kMiss);

  const CompileResponse second = service.compile(request);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.source, CompileSource::kExactHit);
  // The very same stored object, not a recompute — bit-identical by
  // construction.
  EXPECT_EQ(second.result.get(), first.result.get());

  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.exact_hits, 1);
  EXPECT_EQ(stats.warm_hits, 0);
  EXPECT_EQ(stats.entries, 1);
}

TEST(ServiceTest, CacheBypassAlwaysCompilesColdAndStoresNothing) {
  CompileService service;
  CompileRequest request =
      make_request("r1", pcr_mixing_assay(), fast_options());
  request.use_cache = false;

  EXPECT_EQ(service.compile(request).source, CompileSource::kMiss);
  EXPECT_EQ(service.compile(request).source, CompileSource::kMiss);
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.misses, 0);  // bypass never consults the cache
}

TEST(ServiceTest, CompileErrorsComeBackAsResponsesNotThrows) {
  CompileService service;
  PipelineOptions options = fast_options();
  options.placer = "no-such-placer";
  const CompileResponse response =
      service.compile(make_request("r1", pcr_mixing_assay(), options));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, "r1");
  EXPECT_NE(response.error.find("no-such-placer"), std::string::npos)
      << response.error;
}

// --- warm starts -----------------------------------------------------

TEST(ServiceTest, NearMissWarmStartsDeterministicallyAndNeverWorse) {
  // A cold reference compile of the perturbed assay, outside any cache.
  CompileService cold_service;
  CompileRequest cold_request =
      make_request("cold", renamed_pcr(), fast_options());
  cold_request.use_cache = false;
  const CompileResponse cold = cold_service.compile(cold_request);
  ASSERT_TRUE(cold.ok) << cold.error;

  const auto run_sequence = [](CompileService& service) {
    const CompileResponse seed = service.compile(
        make_request("seed", pcr_mixing_assay(), fast_options()));
    EXPECT_TRUE(seed.ok) << seed.error;
    EXPECT_EQ(seed.source, CompileSource::kMiss);
    return service.compile(
        make_request("warm", renamed_pcr(), fast_options()));
  };

  CompileService a;
  const CompileResponse warm = run_sequence(a);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.source, CompileSource::kWarmStart);
  EXPECT_EQ(a.cache_stats().warm_hits, 1);

  // Never worse: the annealers record the (feasible) warm seed as the
  // initial best, and the seed *is* the cold solution here — same
  // structure, same master seed.
  EXPECT_LE(warm.result->placement.cost.value,
            cold.result->placement.cost.value + 1e-9);

  // Deterministic under a fixed seed: a fresh service running the same
  // request sequence lands on the identical placement.
  CompileService b;
  const CompileResponse again = run_sequence(b);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.source, CompileSource::kWarmStart);
  const Placement& p = warm.result->placement.placement;
  const Placement& q = again.result->placement.placement;
  ASSERT_EQ(p.module_count(), q.module_count());
  for (int i = 0; i < p.module_count(); ++i) {
    EXPECT_EQ(p.module(i).anchor, q.module(i).anchor) << "module " << i;
    EXPECT_EQ(p.module(i).rotated, q.module(i).rotated) << "module " << i;
  }
  EXPECT_DOUBLE_EQ(warm.result->placement.cost.value,
                   again.result->placement.cost.value);
}

// --- deadline round budget -------------------------------------------

TEST(DeadlineTest, NoDeadlineRunsAreBitIdenticalToTheDeadlinePath) {
  // deadline_s = 0 must take the exact legacy code path; an unmeetable
  // deadline must change nothing either (the check never fires).
  PipelineOptions options = fast_options();
  options.feedback_rounds = 2;
  options.placer_context.weights.gamma = 0.05;

  const PipelineResult zero = SynthesisPipeline(options).run(
      pcr_mixing_assay());
  options.deadline_s = 1e-9;  // never met: makespans are whole seconds
  const PipelineResult tiny = SynthesisPipeline(options).run(
      pcr_mixing_assay());

  ASSERT_EQ(tiny.feedback_history.size(), zero.feedback_history.size());
  for (std::size_t i = 0; i < zero.feedback_history.size(); ++i) {
    EXPECT_EQ(tiny.feedback_history[i].seed, zero.feedback_history[i].seed);
    EXPECT_EQ(tiny.feedback_history[i].routed,
              zero.feedback_history[i].routed);
    EXPECT_DOUBLE_EQ(tiny.feedback_history[i].transport_makespan_s,
                     zero.feedback_history[i].transport_makespan_s);
    EXPECT_DOUBLE_EQ(tiny.feedback_history[i].placement_cost,
                     zero.feedback_history[i].placement_cost);
  }
  EXPECT_EQ(tiny.selected_round, zero.selected_round);
  const Placement& p = zero.placement.placement;
  const Placement& q = tiny.placement.placement;
  ASSERT_EQ(p.module_count(), q.module_count());
  for (int i = 0; i < p.module_count(); ++i) {
    EXPECT_EQ(p.module(i).anchor, q.module(i).anchor);
    EXPECT_EQ(p.module(i).rotated, q.module(i).rotated);
  }
}

TEST(DeadlineTest, GenerousDeadlineStopsSpendingRounds) {
  PipelineOptions options = fast_options();
  options.feedback_rounds = 3;
  options.placer_context.weights.gamma = 0.05;
  options.deadline_s = 1e9;  // any routed round meets it

  const PipelineResult result = SynthesisPipeline(options).run(
      pcr_mixing_assay());
  ASSERT_FALSE(result.feedback_history.empty());
  ASSERT_TRUE(result.feedback_history.front().routed);
  // Round 0 routed under the deadline, so no feedback round runs.
  EXPECT_EQ(result.feedback_history.size(), 1u);
  EXPECT_EQ(result.selected_round, 0);
}

// --- wire protocol ---------------------------------------------------

TEST(ServerTest, ParseRequestReadsEveryField) {
  const CompileServer server;
  json::Value doc;
  doc.set("id", std::string("r7"));
  doc.set("assay", assay_to_string(pcr_mixing_assay()));
  doc.set("cache", false);
  json::Value options;
  options.set("seed", 99.0);
  options.set("placer", std::string("two-stage"));
  options.set("router", std::string("negotiated"));
  options.set("canvas", json::Value(json::Value::Array{
                            json::Value(28), json::Value(26)}));
  options.set("gamma", 0.05);
  options.set("feedback_rounds", 2.0);
  options.set("deadline_s", 40.0);
  options.set("persist_congestion_history", true);
  doc.set("options", std::move(options));

  const CompileRequest request = server.parse_request(doc.dump());
  EXPECT_EQ(request.id, "r7");
  EXPECT_FALSE(request.use_cache);
  EXPECT_EQ(request.assay.graph.operation_count(),
            pcr_mixing_assay().graph.operation_count());
  EXPECT_EQ(request.options.seed, 99u);
  EXPECT_EQ(request.options.placer, "two-stage");
  EXPECT_EQ(request.options.router, "negotiated");
  EXPECT_EQ(request.options.placer_context.canvas_width, 28);
  EXPECT_EQ(request.options.placer_context.canvas_height, 26);
  EXPECT_DOUBLE_EQ(request.options.placer_context.weights.gamma, 0.05);
  EXPECT_EQ(request.options.feedback_rounds, 2);
  EXPECT_DOUBLE_EQ(request.options.deadline_s, 40.0);
  EXPECT_TRUE(request.options.routing.persist_congestion_history);
}

TEST(ServerTest, ParseRequestRejectsUnknownOptionsAndMissingAssay) {
  const CompileServer server;
  EXPECT_THROW(server.parse_request("{\"id\":\"x\"}"),
               std::invalid_argument);  // no assay
  json::Value doc;
  doc.set("id", std::string("x"));
  doc.set("assay", assay_to_string(pcr_mixing_assay()));
  json::Value options;
  options.set("plaecr", std::string("sa"));  // misspelled: must be an error
  doc.set("options", std::move(options));
  EXPECT_THROW(server.parse_request(doc.dump()), std::invalid_argument);
  EXPECT_THROW(server.parse_request("not json"), json::JsonError);
}

TEST(ServerTest, ServeAnswersRequestsControlLinesAndErrors) {
  ServerOptions options;
  options.workers = 2;
  CompileServer server(options);

  json::Value request;
  request.set("id", std::string("r1"));
  request.set("assay", assay_to_string(pcr_mixing_assay()));
  json::Value request_options;
  json::Value annealing;
  annealing.set("T0", 1000.0);
  annealing.set("alpha", 0.8);
  annealing.set("iterations_per_module", 60.0);
  request_options.set("annealing", std::move(annealing));
  request.set("options", std::move(request_options));

  const std::vector<std::string> input = {
      request.dump(),
      "this is not json",
      "{\"cmd\":\"stats\"}",
      "{\"cmd\":\"shutdown\"}",
      "{\"id\":\"never-read\"}",  // after shutdown: must not be served
  };
  std::size_t cursor = 0;
  std::mutex output_mutex;
  std::vector<std::string> output;
  std::atomic<int> responses{0};
  server.serve(
      [&](std::string& line) {
        if (cursor >= input.size()) return false;
        // Control lines are answered inline by the reader; wait for the
        // queued requests to drain first so the counters and the output
        // size are deterministic.
        if (input[cursor].find("\"cmd\"") != std::string::npos) {
          while (responses.load() < 2) std::this_thread::yield();
        }
        line = input[cursor++];
        return true;
      },
      [&](const std::string& line) {
        {
          const std::lock_guard<std::mutex> lock(output_mutex);
          output.push_back(line);
        }
        responses.fetch_add(1);
      });

  // shutdown stops the reader before the trailing request.
  EXPECT_EQ(cursor, 4u);
  ASSERT_EQ(output.size(), 3u);  // r1 + parse error + stats

  bool saw_result = false, saw_error = false, saw_stats = false;
  for (const std::string& line : output) {
    const json::Value doc = json::Value::parse(line);
    if (doc.find("stats")) {
      saw_stats = true;
      EXPECT_EQ(doc.find("stats")->find("misses")->as_number(), 1.0);
    } else if (doc.find("id") && doc.find("id")->as_string() == "r1") {
      saw_result = true;
      EXPECT_TRUE(doc.find("ok")->as_bool());
      EXPECT_EQ(doc.find("source")->as_string(), "miss");
      const json::Value* result = doc.find("result");
      ASSERT_NE(result, nullptr);
      EXPECT_EQ(result->find("assay")->as_string(), "pcr-mixing-stage");
      EXPECT_GT(result->find("area_cells")->as_number(), 0.0);
      EXPECT_TRUE(result->find("routed")->as_bool());
      EXPECT_GT(result->find("transport_makespan_s")->as_number(), 0.0);
      // The placement text round-trips through the repo's one parser.
      EXPECT_EQ(result->find("placement")->as_string().rfind("placement ", 0),
                0u);
    } else {
      saw_error = true;
      EXPECT_FALSE(doc.find("ok")->as_bool());
      EXPECT_FALSE(doc.find("error")->as_string().empty());
    }
  }
  EXPECT_TRUE(saw_result);
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(saw_stats);
}

// --- options wire round-trip -----------------------------------------

TEST(ServerTest, PipelineOptionsJsonRoundTripsEveryWireField) {
  // Start from defaults and mutate only wire-surface fields; the
  // options fingerprint (which sees every compile-relevant field) then
  // proves emit -> parse loses nothing the wire can carry.
  PipelineOptions options;
  options.seed = 12345;
  options.placer = "two-stage";
  options.router = "negotiated";
  options.placer_context.canvas_width = 28;
  options.placer_context.canvas_height = 26;
  options.chip_width = 20;
  options.chip_height = 18;
  options.placer_context.defects = {Point{3, 4}, Point{5, 6}};
  options.placer_context.weights.gamma = 0.02;
  options.placer_context.weights.beta = 0.5;
  options.placer_context.engine = AnnealingEngine::kCopy;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module = 60;
  options.placer_context.annealing.min_temperature = 0.25;
  options.feedback_rounds = 2;
  options.deadline_s = 1.5;
  options.plan_droplet_routes = false;
  options.routing.persist_congestion_history = true;
  options.simulate = true;
  options.fault_plan.faults.push_back(PlannedFault{Point{7, 8}, 25.0, -1});
  options.fault_plan.faults.push_back(PlannedFault{Point{2, 9}, 40.5, -1});
  options.recovery.deadline_s = 2.5;
  options.recovery.max_cycles = 3;
  options.evaluate_fault_tolerance = false;
  options.binding_policy = BindingPolicy::kSmallest;

  PipelineOptions parsed;
  parse_pipeline_options(pipeline_options_to_json(options), parsed);
  EXPECT_EQ(options_fingerprint(parsed), options_fingerprint(options));
  EXPECT_EQ(parsed.seed, options.seed);
  EXPECT_EQ(parsed.placer, options.placer);
  EXPECT_EQ(parsed.placer_context.engine, options.placer_context.engine);
  EXPECT_EQ(parsed.placer_context.defects.size(), 2u);
  EXPECT_EQ(parsed.binding_policy, options.binding_policy);
  ASSERT_EQ(parsed.fault_plan.faults.size(), 2u);
  EXPECT_EQ(parsed.fault_plan.faults[0].cell, (Point{7, 8}));
  EXPECT_EQ(parsed.fault_plan.faults[1].time_s, 40.5);
  EXPECT_EQ(parsed.recovery.deadline_s, 2.5);
  EXPECT_EQ(parsed.recovery.max_cycles, 3);

  // The dump itself parses as one JSON line (the batch handshake).
  const std::string line = pipeline_options_to_json(options).dump();
  PipelineOptions reparsed;
  parse_pipeline_options(json::Value::parse(line), reparsed);
  EXPECT_EQ(options_fingerprint(reparsed), options_fingerprint(options));
}

TEST(ServerTest, FaultPlanRequestCarriesRecoveryTelemetry) {
  CompileServer server;

  // Compile clean first to learn where module 0 lands; the response must
  // not carry a recovery block.
  json::Value clean_doc;
  clean_doc.set("id", std::string("clean"));
  clean_doc.set("assay", assay_to_string(pcr_mixing_assay()));
  json::Value clean_options;
  clean_options.set("placer", std::string("greedy"));
  clean_options.set("simulate", true);
  clean_options.set("chip", json::Value(json::Value::Array{
                                json::Value(20), json::Value(20)}));
  clean_doc.set("options", std::move(clean_options));
  CompileRequest clean_request = server.parse_request(clean_doc.dump());
  clean_request.use_cache = false;
  const CompileResponse clean = server.service().compile(clean_request);
  ASSERT_TRUE(clean.ok) << clean.error;
  const json::Value clean_line =
      json::Value::parse(CompileServer::render_response(clean));
  EXPECT_EQ(clean_line.find("result")->find("recovery"), nullptr);

  // Same compile with a fault planned mid-run under module 0.
  const Rect fp = clean.result->placement.placement.module(0).footprint();
  const ScheduledModule& sm = clean.result->schedule.module(0);
  json::Value doc;
  doc.set("id", std::string("faulty"));
  doc.set("assay", assay_to_string(pcr_mixing_assay()));
  json::Value options;
  options.set("placer", std::string("greedy"));
  options.set("simulate", true);
  options.set("chip", json::Value(json::Value::Array{json::Value(20),
                                                     json::Value(20)}));
  json::Value::Array fault;
  fault.push_back(json::Value(0.5 * (sm.start_s + sm.end_s)));
  fault.push_back(json::Value(fp.x + fp.width / 2));
  fault.push_back(json::Value(fp.y + fp.height / 2));
  json::Value::Array plan;
  plan.push_back(json::Value(std::move(fault)));
  options.set("fault_plan", json::Value(std::move(plan)));
  doc.set("options", std::move(options));
  CompileRequest request = server.parse_request(doc.dump());
  request.use_cache = false;
  ASSERT_EQ(request.options.fault_plan.faults.size(), 1u);

  const CompileResponse response = server.service().compile(request);
  ASSERT_TRUE(response.ok) << response.error;
  const json::Value line =
      json::Value::parse(CompileServer::render_response(response));
  const json::Value* recovery = line.find("result")->find("recovery");
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->find("faults")->as_number(), 1.0);
  EXPECT_TRUE(recovery->find("recovered")->as_bool());
  EXPECT_TRUE(recovery->find("completed")->as_bool());
  EXPECT_GT(recovery->find("time_lost_s")->as_number(), 0.0);
  EXPECT_FALSE(recovery->find("attempts")->as_array().empty());
  EXPECT_GE(recovery->find("cycles")->as_number(), 1.0);
}

// --- cache persistence ------------------------------------------------

TEST(CompileCachePersistTest, SaveLoadRoundTripsTheResponseSurface) {
  const std::string path =
      testing::TempDir() + "dmfb_cache_roundtrip.txt";
  const AssayCase assay = pcr_mixing_assay();
  PipelineOptions options = fast_options();
  options.seed = 7;
  const std::uint64_t assay_fp = assay_fingerprint(assay);
  const std::uint64_t options_fp = options_fingerprint(options);

  auto result = std::make_shared<PipelineResult>(
      SynthesisPipeline(options).run(assay));
  const std::uint64_t signature = schedule_signature(result->schedule);

  CompileCache cache;
  cache.store(assay_fp, options_fp, signature, result, /*links=*/{},
              /*congestion=*/nullptr);
  ASSERT_TRUE(cache.save(path));

  CompileCache loaded;
  EXPECT_EQ(loaded.load(path), 1u);
  EXPECT_EQ(loaded.stats().entries, 1);
  const auto hit = loaded.lookup(assay_fp, options_fp, signature).exact;
  ASSERT_NE(hit, nullptr);

  // Every persisted field round-trips exactly (doubles by bit pattern).
  EXPECT_EQ(hit->assay_name, result->assay_name);
  EXPECT_EQ(hit->seed, result->seed);
  EXPECT_EQ(hit->ok, result->ok);
  EXPECT_EQ(hit->peak_concurrent_cells, result->peak_concurrent_cells);
  EXPECT_EQ(hit->placement.cost.area_cells,
            result->placement.cost.area_cells);
  EXPECT_EQ(hit->placement.cost.value, result->placement.cost.value);
  EXPECT_EQ(hit->fti.covered_cells, result->fti.covered_cells);
  EXPECT_EQ(hit->fti.total_cells, result->fti.total_cells);
  EXPECT_EQ(hit->fti.fti(), result->fti.fti());
  EXPECT_EQ(hit->transport_makespan_s, result->transport_makespan_s);
  EXPECT_EQ(hit->routes.success, result->routes.success);
  EXPECT_EQ(hit->routes.total_steps, result->routes.total_steps);
  EXPECT_EQ(hit->selected_round, result->selected_round);
  EXPECT_EQ(hit->feedback_history.size(), result->feedback_history.size());
  EXPECT_EQ(placement_to_string(hit->placement.placement),
            placement_to_string(result->placement.placement));
  EXPECT_EQ(hit->placement.placement.canvas_width(),
            result->placement.placement.canvas_width());

  // Loaded placements register as the layout's warm placement, so
  // cross-process warm starts work from disk: a different assay with
  // the same structure warm-hits.
  AssayCase variant = renamed_pcr();
  const auto warm =
      loaded.lookup(assay_fingerprint(variant), options_fp, signature);
  EXPECT_EQ(warm.exact, nullptr);
  ASSERT_NE(warm.warm_placement, nullptr);
  EXPECT_EQ(placement_to_string(*warm.warm_placement),
            placement_to_string(result->placement.placement));

  std::remove(path.c_str());
}

TEST(CompileCachePersistTest, CorruptOrMissingFilesLoadAsCold) {
  const std::string dir = testing::TempDir();

  CompileCache cache;
  EXPECT_EQ(cache.load(dir + "dmfb_cache_does_not_exist.txt"), 0u);

  // Garbage header: cold, not fatal.
  const std::string garbage = dir + "dmfb_cache_garbage.txt";
  {
    std::ofstream out(garbage, std::ios::trunc);
    out << "not a cache at all\nentry 1 2 3\n";
  }
  EXPECT_EQ(cache.load(garbage), 0u);

  // A valid entry followed by trailing garbage: the good prefix loads.
  const AssayCase assay = pcr_mixing_assay();
  PipelineOptions options = fast_options();
  options.seed = 11;
  auto result = std::make_shared<PipelineResult>(
      SynthesisPipeline(options).run(assay));
  CompileCache source;
  source.store(assay_fingerprint(assay), options_fingerprint(options),
               schedule_signature(result->schedule), result, {}, nullptr);
  const std::string torn = dir + "dmfb_cache_torn.txt";
  ASSERT_TRUE(source.save(torn));
  {
    std::ofstream out(torn, std::ios::app);
    out << "entry 9 9\nhalf a line without";
  }
  CompileCache tolerant;
  EXPECT_EQ(tolerant.load(torn), 1u);

  // The same file truncated mid-entry: whatever whole entries precede
  // the cut survive, the torn tail is dropped, nothing throws.
  std::ifstream in(torn, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string truncated = dir + "dmfb_cache_truncated.txt";
  {
    std::ofstream out(truncated, std::ios::trunc | std::ios::binary);
    out << bytes.substr(0, bytes.size() / 2);
  }
  CompileCache half;
  EXPECT_LE(half.load(truncated), 1u);

  std::remove(garbage.c_str());
  std::remove(torn.c_str());
  std::remove(truncated.c_str());
}

}  // namespace
}  // namespace dmfb
