// Tests for the portfolio annealing backend (core/portfolio_placer.h):
// the reproducibility contract — identical placements at any thread count
// and bit-stable results for a fixed (seed, N, K) — plus the exchange
// machinery, the early-stop target, the warm-start seam, per-replica
// telemetry and defect avoidance.
#include "core/portfolio_placer.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "assay/assay_library.h"
#include "assay/pipeline.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  static const Schedule schedule =
      SynthesisPipeline().run(pcr_mixing_assay()).schedule;
  return schedule;
}

/// Short annealing runs so the whole suite stays fast.
SaPlacerOptions fast_options() {
  SaPlacerOptions options;
  options.schedule.initial_temperature = 1000.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module = 40;
  options.engine = AnnealingEngine::kFused;
  return options;
}

PortfolioOptions fast_portfolio() {
  PortfolioOptions portfolio;
  portfolio.replicas = 3;
  portfolio.exchange_period = 2;
  return portfolio;
}

std::vector<std::pair<Point, bool>> poses_of(const Placement& placement) {
  std::vector<std::pair<Point, bool>> poses;
  poses.reserve(static_cast<std::size_t>(placement.module_count()));
  for (const auto& m : placement.modules()) {
    poses.emplace_back(m.anchor, m.rotated);
  }
  return poses;
}

TEST(PortfolioPlacerTest, PlacesThePcrInstanceFeasibly) {
  const PlacementOutcome outcome =
      place_portfolio(pcr_schedule(), fast_options(), fast_portfolio());
  EXPECT_TRUE(outcome.placement.feasible());
  EXPECT_EQ(outcome.placement.module_count(), pcr_schedule().module_count());
  EXPECT_GT(outcome.cost.area_cells, 0);
  EXPECT_GT(outcome.stats.proposals, 0);
}

TEST(PortfolioPlacerTest, ThreadCountChangesNothingButWallTime) {
  const SaPlacerOptions options = fast_options();
  PortfolioOptions portfolio = fast_portfolio();
  std::vector<std::vector<std::pair<Point, bool>>> results;
  std::vector<double> best_costs;
  for (const int threads : {1, 2, 8}) {
    portfolio.threads = threads;
    const PlacementOutcome outcome =
        place_portfolio(pcr_schedule(), options, portfolio);
    results.push_back(poses_of(outcome.placement));
    best_costs.push_back(outcome.stats.best_cost);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_EQ(best_costs[0], best_costs[1]);
  EXPECT_EQ(best_costs[0], best_costs[2]);
}

TEST(PortfolioPlacerTest, BitStableForFixedSeedReplicasAndPeriod) {
  const SaPlacerOptions options = fast_options();
  PortfolioOptions portfolio = fast_portfolio();
  portfolio.replicas = 4;
  portfolio.exchange_period = 3;
  const PlacementOutcome a =
      place_portfolio(pcr_schedule(), options, portfolio);
  const PlacementOutcome b =
      place_portfolio(pcr_schedule(), options, portfolio);
  EXPECT_EQ(poses_of(a.placement), poses_of(b.placement));
  EXPECT_EQ(a.stats.best_cost, b.stats.best_cost);
  EXPECT_EQ(a.stats.proposals, b.stats.proposals);
  EXPECT_EQ(a.stats.exchanges_attempted, b.stats.exchanges_attempted);
  EXPECT_EQ(a.stats.exchanges_accepted, b.stats.exchanges_accepted);
  ASSERT_EQ(a.replica_stats.size(), b.replica_stats.size());
  for (std::size_t r = 0; r < a.replica_stats.size(); ++r) {
    EXPECT_EQ(a.replica_stats[r].best_cost, b.replica_stats[r].best_cost);
    EXPECT_EQ(a.replica_stats[r].accepted, b.replica_stats[r].accepted);
  }
}

TEST(PortfolioPlacerTest, DifferentSeedsDiverge) {
  SaPlacerOptions options = fast_options();
  const PortfolioOptions portfolio = fast_portfolio();
  const PlacementOutcome a =
      place_portfolio(pcr_schedule(), options, portfolio);
  options.seed ^= 0x1234567ULL;
  const PlacementOutcome b =
      place_portfolio(pcr_schedule(), options, portfolio);
  EXPECT_NE(poses_of(a.placement), poses_of(b.placement));
}

TEST(PortfolioPlacerTest, ExchangesHappenOnTheLadder) {
  SaPlacerOptions options = fast_options();
  options.schedule.iterations_per_module = 20;
  PortfolioOptions portfolio = fast_portfolio();
  portfolio.replicas = 4;
  portfolio.exchange_period = 1;
  const PlacementOutcome outcome =
      place_portfolio(pcr_schedule(), options, portfolio);
  EXPECT_GT(outcome.stats.exchanges_attempted, 0);
  // Adjacent-temperature chains at a 1.25 ladder ratio exchange often;
  // zero acceptances would mean the criterion is wired backwards.
  EXPECT_GT(outcome.stats.exchanges_accepted, 0);
  // Per-replica attempts count participations: interior slots join both
  // parities, so every slot of a 4-rung ladder attempts at least once.
  for (const AnnealingStats& rs : outcome.replica_stats) {
    EXPECT_GT(rs.exchanges_attempted, 0);
  }
}

TEST(PortfolioPlacerTest, ReplicaStatsAggregateIntoTheOutcomeStats) {
  const PlacementOutcome outcome =
      place_portfolio(pcr_schedule(), fast_options(), fast_portfolio());
  ASSERT_EQ(outcome.replica_stats.size(), 3u);
  long long proposals = 0;
  long long accepted = 0;
  for (const AnnealingStats& rs : outcome.replica_stats) {
    EXPECT_GT(rs.proposals, 0);
    EXPECT_GT(rs.wall_seconds, 0.0);
    EXPECT_GT(rs.proposals_per_second, 0.0);
    proposals += rs.proposals;
    accepted += rs.accepted;
  }
  EXPECT_EQ(outcome.stats.proposals, proposals);
  EXPECT_EQ(outcome.stats.accepted, accepted);
  EXPECT_GT(outcome.stats.wall_seconds, 0.0);
  EXPECT_GT(outcome.wall_seconds, 0.0);
}

TEST(PortfolioPlacerTest, TargetCostStopsAtTheFirstSatisfyingBarrier) {
  const SaPlacerOptions options = fast_options();
  PortfolioOptions portfolio = fast_portfolio();
  const PlacementOutcome full =
      place_portfolio(pcr_schedule(), options, portfolio);
  ASSERT_GT(full.stats.temperature_steps, 0);
  // A target the feasible greedy initial already satisfies stops the run
  // before any annealing step.
  portfolio.target_cost = std::numeric_limits<double>::max();
  const PlacementOutcome stopped =
      place_portfolio(pcr_schedule(), options, portfolio);
  EXPECT_EQ(stopped.stats.temperature_steps, 0);
  EXPECT_TRUE(stopped.placement.feasible());
  // A target between the initial and the full run's best stops early but
  // not immediately, and the result honours it.
  portfolio.target_cost = full.stats.best_cost * 1.10;
  const PlacementOutcome early =
      place_portfolio(pcr_schedule(), options, portfolio);
  EXPECT_LE(early.stats.best_cost, portfolio.target_cost);
  EXPECT_LE(early.stats.temperature_steps, full.stats.temperature_steps);
}

TEST(PortfolioPlacerTest, WarmStartNeverWorsensTheWarmSource) {
  SaPlacerOptions options = fast_options();
  const PortfolioOptions portfolio = fast_portfolio();
  const PlacementOutcome cold =
      place_portfolio(pcr_schedule(), options, portfolio);
  options.initial = std::make_shared<Placement>(cold.placement);
  options.seed ^= 0xC0FFEEULL;  // a different run, not a replay
  const PlacementOutcome warm =
      place_portfolio(pcr_schedule(), options, portfolio);
  // Replica 0 starts at the warm placement, which is feasible and thus
  // recorded before any move; the incumbent can only improve on it.
  EXPECT_LE(warm.stats.best_cost, cold.stats.best_cost);
  EXPECT_LE(warm.cost.value, cold.cost.value);
}

TEST(PortfolioPlacerTest, BatchedReplicasReportSpeculation) {
  SaPlacerOptions options = fast_options();
  options.engine = AnnealingEngine::kBatched;
  options.speculation_lookahead = 8;
  const PlacementOutcome outcome =
      place_portfolio(pcr_schedule(), options, fast_portfolio());
  EXPECT_TRUE(outcome.placement.feasible());
  EXPECT_GT(outcome.stats.speculated, 0);
  EXPECT_GT(outcome.stats.speculation_hits, 0);
  EXPECT_LE(outcome.stats.speculation_hits, outcome.stats.speculated);
}

TEST(PortfolioPlacerTest, AvoidsDefectiveElectrodes) {
  SaPlacerOptions options = fast_options();
  options.defects = {Point{4, 4}, Point{12, 9}, Point{18, 17}};
  const PlacementOutcome outcome =
      place_portfolio(pcr_schedule(), options, fast_portfolio());
  EXPECT_TRUE(outcome.placement.feasible());
  for (const auto& m : outcome.placement.modules()) {
    for (const Point defect : options.defects) {
      EXPECT_FALSE(m.footprint().contains(defect))
          << "module covers defect (" << defect.x << "," << defect.y << ")";
    }
  }
}

TEST(PortfolioPlacerTest, RejectsTheCopyEngine) {
  SaPlacerOptions options = fast_options();
  options.engine = AnnealingEngine::kCopy;
  EXPECT_THROW(place_portfolio(pcr_schedule(), options, fast_portfolio()),
               std::invalid_argument);
}

TEST(PortfolioPlacerTest, ZeroReplicasResolvesToHardwareConcurrency) {
  SaPlacerOptions options = fast_options();
  options.schedule.iterations_per_module = 10;
  PortfolioOptions portfolio;
  portfolio.replicas = 0;
  const PlacementOutcome outcome =
      place_portfolio(pcr_schedule(), options, portfolio);
  EXPECT_GE(outcome.replica_stats.size(), 1u);
  EXPECT_TRUE(outcome.placement.feasible());
}

}  // namespace
}  // namespace dmfb
