// Tests for the placement cost metrics (core/cost.h).
#include "core/cost.h"

#include <gtest/gtest.h>

namespace dmfb {
namespace {

Schedule two_module_schedule() {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "B", spec, 0.0, 10.0, -1, -1});
  return s;
}

TEST(CostTest, AreaOnlyCost) {
  Placement p(two_module_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {4, 0});
  const CostEvaluator evaluator(CostWeights{});
  const CostBreakdown cost = evaluator.evaluate(p);
  EXPECT_EQ(cost.area_cells, 32);  // 8x4 bounding box
  EXPECT_EQ(cost.overlap_cells, 0);
  EXPECT_DOUBLE_EQ(cost.fti, 0.0);  // beta == 0: FTI not evaluated
  EXPECT_DOUBLE_EQ(cost.value, 32.0);
  EXPECT_DOUBLE_EQ(cost.area_mm2(), 72.0);  // 32 * 2.25
}

TEST(CostTest, OverlapPenalty) {
  Placement p(two_module_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {2, 0});  // 2x4 = 8 cells of forbidden overlap
  CostWeights weights;
  weights.lambda_overlap = 50.0;
  const CostEvaluator evaluator(weights);
  const CostBreakdown cost = evaluator.evaluate(p);
  EXPECT_EQ(cost.overlap_cells, 8);
  EXPECT_DOUBLE_EQ(cost.value, 24.0 + 50.0 * 8);  // 6x4 bbox + penalty
}

TEST(CostTest, FeasibleBeatsInfeasibleDespiteSmallerArea) {
  Placement compact(two_module_schedule(), 16, 16);
  compact.set_anchor(0, {0, 0});
  compact.set_anchor(1, {2, 0});  // overlapping, 24-cell bbox
  Placement spread(two_module_schedule(), 16, 16);
  spread.set_anchor(0, {0, 0});
  spread.set_anchor(1, {4, 0});  // feasible, 32-cell bbox
  const CostEvaluator evaluator(CostWeights{});
  EXPECT_LT(evaluator.cost(spread), evaluator.cost(compact));
}

TEST(CostTest, BetaRewardsFaultTolerance) {
  // Same area, different FTI: with beta > 0 the high-FTI layout wins.
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});

  Placement tight(s, 16, 16);
  tight.set_anchor(0, {0, 0});  // bbox 4x4: FTI 0

  CostWeights weights;
  weights.beta = 30.0;
  const CostEvaluator evaluator(weights);
  const CostBreakdown tight_cost = evaluator.evaluate(tight);
  EXPECT_DOUBLE_EQ(tight_cost.fti, 0.0);
  EXPECT_DOUBLE_EQ(tight_cost.value, 16.0);

  // FTI over a region with spare room is rewarded; emulate by comparing
  // against the weighted value directly.
  EXPECT_DOUBLE_EQ(evaluator.weights().beta, 30.0);
}

TEST(CostTest, AlphaScalesArea) {
  Placement p(two_module_schedule(), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {4, 0});
  CostWeights weights;
  weights.alpha = 2.0;
  const CostEvaluator evaluator(weights);
  EXPECT_DOUBLE_EQ(evaluator.cost(p), 64.0);
}

TEST(CostTest, PaperCellArea) {
  CostBreakdown cost;
  cost.area_cells = 63;
  EXPECT_DOUBLE_EQ(cost.area_mm2(), 141.75);  // the paper's Fig. 7 value
  cost.area_cells = 99;
  EXPECT_DOUBLE_EQ(cost.area_mm2(), 222.75);  // Table 2, beta = 60
}

}  // namespace
}  // namespace dmfb
