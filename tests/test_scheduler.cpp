// Tests for list scheduling, resource constraints and storage insertion
// (assay/scheduler.h, assay/schedule.h).
#include "assay/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "assay/assay_library.h"
#include "biochip/module_library.h"

namespace dmfb {
namespace {

constexpr double kTol = 1e-9;

/// Finds a scheduled module by label; fails the test when absent.
const ScheduledModule& find_module(const Schedule& schedule,
                                   const std::string& label) {
  for (const auto& m : schedule.modules()) {
    if (m.label == label) return m;
  }
  ADD_FAILURE() << "module '" << label << "' not scheduled";
  static const ScheduledModule missing{};
  return missing;
}

TEST(ScheduleTest, MakespanAndAdd) {
  Schedule s;
  EXPECT_DOUBLE_EQ(s.makespan_s(), 0.0);
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};
  s.add(ScheduledModule{0, "a", spec, 0.0, 5.0, -1, -1});
  s.add(ScheduledModule{1, "b", spec, 3.0, 9.0, -1, -1});
  EXPECT_DOUBLE_EQ(s.makespan_s(), 9.0);
  EXPECT_EQ(s.module_count(), 2);
}

TEST(ScheduleTest, NegativeDurationThrows) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};
  EXPECT_THROW(s.add(ScheduledModule{0, "a", spec, 5.0, 4.0, -1, -1}),
               std::invalid_argument);
}

TEST(ScheduleTest, TimeSlicesPartitionActivity) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};
  s.add(ScheduledModule{0, "a", spec, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "b", spec, 5.0, 15.0, -1, -1});
  const auto slices = s.time_slices();
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_DOUBLE_EQ(slices[0].begin_s, 0.0);
  EXPECT_DOUBLE_EQ(slices[0].end_s, 5.0);
  EXPECT_EQ(slices[0].active, std::vector<int>{0});
  EXPECT_EQ(slices[1].active, (std::vector<int>{0, 1}));
  EXPECT_EQ(slices[2].active, std::vector<int>{1});
}

TEST(ScheduleTest, ActiveAtBoundaryIsHalfOpen) {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};
  s.add(ScheduledModule{0, "a", spec, 0.0, 5.0, -1, -1});
  s.add(ScheduledModule{1, "b", spec, 5.0, 10.0, -1, -1});
  EXPECT_EQ(s.active_at(4.999), std::vector<int>{0});
  EXPECT_EQ(s.active_at(5.0), std::vector<int>{1});  // a ended, b started
}

TEST(ScheduleTest, PeakConcurrentCells) {
  Schedule s;
  const ModuleSpec small{"s", ModuleKind::kMixer, 1, 1, 5.0};   // 3x3 = 9
  const ModuleSpec large{"l", ModuleKind::kMixer, 2, 2, 5.0};   // 4x4 = 16
  s.add(ScheduledModule{0, "a", small, 0.0, 10.0, -1, -1});
  s.add(ScheduledModule{1, "b", large, 5.0, 15.0, -1, -1});
  s.add(ScheduledModule{2, "c", small, 20.0, 25.0, -1, -1});
  EXPECT_EQ(s.peak_concurrent_cells(), 25);  // a+b in [5,10)
}

TEST(ListSchedulerTest, UnconstrainedPcrIsAsap) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  const Schedule s = asap_schedule(graph, binding, /*insert_storage=*/false);

  // Leaves all start at 0 (dispense duration is 0 by default).
  EXPECT_NEAR(find_module(s, "M1").start_s, 0.0, kTol);
  EXPECT_NEAR(find_module(s, "M2").start_s, 0.0, kTol);
  EXPECT_NEAR(find_module(s, "M3").start_s, 0.0, kTol);
  EXPECT_NEAR(find_module(s, "M4").start_s, 0.0, kTol);
  // M5 waits for M1 (10 s) and M2 (5 s).
  EXPECT_NEAR(find_module(s, "M5").start_s, 10.0, kTol);
  // M6 waits for M3 (6 s) and M4 (5 s).
  EXPECT_NEAR(find_module(s, "M6").start_s, 6.0, kTol);
  // M7 waits for M5 (ends 15) and M6 (ends 16).
  EXPECT_NEAR(find_module(s, "M7").start_s, 16.0, kTol);
  EXPECT_NEAR(s.makespan_s(), 19.0, kTol);
}

TEST(ListSchedulerTest, PrecedenceAlwaysHolds) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  for (int limit : {1, 2, 3, 100}) {
    SchedulerOptions options;
    options.constraints.max_concurrent_modules = limit;
    const Schedule s = list_schedule(graph, binding, options);
    EXPECT_TRUE(s.validate_against(graph).empty()) << "limit=" << limit;
  }
}

TEST(ListSchedulerTest, ConcurrencyLimitIsRespected) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  for (int limit : {1, 2, 3}) {
    SchedulerOptions options;
    options.constraints.max_concurrent_modules = limit;
    options.insert_storage = false;
    const Schedule s = list_schedule(graph, binding, options);
    for (const auto& slice : s.time_slices()) {
      EXPECT_LE(static_cast<int>(slice.active.size()), limit)
          << "limit=" << limit << " at t=" << slice.begin_s;
    }
  }
}

TEST(ListSchedulerTest, TighterLimitNeverShortensMakespan) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  double previous = 0.0;
  for (int limit : {4, 3, 2, 1}) {
    SchedulerOptions options;
    options.constraints.max_concurrent_modules = limit;
    const double makespan =
        list_schedule(graph, binding, options).makespan_s();
    EXPECT_GE(makespan, previous - kTol) << "limit=" << limit;
    previous = makespan;
  }
}

TEST(ListSchedulerTest, SerialLimitSumsDurations) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  SchedulerOptions options;
  options.constraints.max_concurrent_modules = 1;
  const Schedule s = list_schedule(graph, binding, options);
  // With one module at a time, the makespan is the sum of all durations.
  EXPECT_NEAR(s.makespan_s(), 10 + 5 + 6 + 5 + 5 + 10 + 3, kTol);
}

TEST(ListSchedulerTest, StorageInsertedForWaitingDroplets) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  const Schedule s = asap_schedule(graph, binding, /*insert_storage=*/true);

  // M3 ends at 6 but M6 starts at 6 (no storage); M2 ends at 5 and M5
  // starts at 10, so M2's droplet needs 5 s of storage.
  const auto& storage = find_module(s, "S(M2)");
  EXPECT_NEAR(storage.start_s, 5.0, kTol);
  EXPECT_NEAR(storage.end_s, 10.0, kTol);
  EXPECT_EQ(storage.spec.kind, ModuleKind::kStorage);
  EXPECT_EQ(storage.op_id, -1);
  EXPECT_GE(storage.producer_op, 0);
  EXPECT_GE(storage.consumer_op, 0);
}

TEST(ListSchedulerTest, NoStorageWhenDisabled) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  const Schedule s = asap_schedule(graph, binding, /*insert_storage=*/false);
  for (const auto& m : s.modules()) {
    EXPECT_NE(m.spec.kind, ModuleKind::kStorage);
  }
}

TEST(ListSchedulerTest, PerKindLimit) {
  const ModuleLibrary lib = ModuleLibrary::standard();
  const auto assay = multiplexed_diagnostics_assay(2, 2, lib);
  SchedulerOptions options = assay.scheduler_options;
  options.constraints.max_concurrent_by_kind[ModuleKind::kDetector] = 1;
  const Schedule s = list_schedule(assay.graph, assay.binding, options);
  for (const auto& slice : s.time_slices()) {
    int detectors = 0;
    for (int index : slice.active) {
      if (s.module(index).spec.kind == ModuleKind::kDetector) ++detectors;
    }
    EXPECT_LE(detectors, 1);
  }
  EXPECT_TRUE(s.validate_against(assay.graph).empty());
}

TEST(ListSchedulerTest, InvalidBindingThrows) {
  const auto graph = pcr_mixing_graph();
  Binding empty;
  EXPECT_THROW(list_schedule(graph, empty, {}), std::invalid_argument);
}

TEST(ListSchedulerTest, DispenseDurationDelaysLeaves) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  SchedulerOptions options;
  options.constraints.dispense_duration_s = 2.0;
  const Schedule s = list_schedule(graph, binding, options);
  EXPECT_NEAR(find_module(s, "M1").start_s, 2.0, kTol);
}

TEST(ListSchedulerTest, DispensePortLimitSerializesDispenses) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  SchedulerOptions options;
  options.constraints.dispense_duration_s = 1.0;
  options.constraints.max_concurrent_dispenses = 1;
  const Schedule s = list_schedule(graph, binding, options);
  // Eight dispenses through one port take 8 s; the last mix waits on the
  // slowest chain. Makespan must exceed the unconstrained 19 + 2.
  EXPECT_GT(s.makespan_s(), 19.0 + kTol);
  EXPECT_TRUE(s.validate_against(graph).empty());
}

TEST(ScheduleValidationTest, DetectsPrecedenceViolation) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  Schedule bad;
  for (const auto& op : graph.operations()) {
    if (op.type != OperationType::kMix) continue;
    // Everything starts at 0: children overlap their parents.
    const ModuleSpec spec = binding.at(op.id);
    bad.add(ScheduledModule{op.id, op.label, spec, 0.0, spec.duration_s, -1,
                            -1});
  }
  EXPECT_FALSE(bad.validate_against(graph).empty());
}

}  // namespace
}  // namespace dmfb
