// Tests for the KAMER-style online placer (core/kamer_placer.h).
#include "core/kamer_placer.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  const auto assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options)
      .schedule;
}

TEST(KamerPlacerTest, PlacesPcrOnGenerousArray) {
  const auto result = place_kamer(pcr_schedule(), 16, 16);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_TRUE(result.placement.feasible());
  EXPECT_EQ(result.modules_placed, result.placement.module_count());
}

TEST(KamerPlacerTest, FailsOnTinyArrayWithReason) {
  const auto result = place_kamer(pcr_schedule(), 6, 6);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(KamerPlacerTest, EveryPolicyProducesFeasiblePlacements) {
  for (const auto policy :
       {RelocationPolicy::kFirstFit, RelocationPolicy::kBestFit,
        RelocationPolicy::kNearest}) {
    const auto result = place_kamer(pcr_schedule(), 20, 20, policy);
    ASSERT_TRUE(result.success);
    EXPECT_TRUE(result.placement.feasible());
  }
}

TEST(KamerPlacerTest, Deterministic) {
  const auto a = place_kamer(pcr_schedule(), 16, 16);
  const auto b = place_kamer(pcr_schedule(), 16, 16);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  for (int i = 0; i < a.placement.module_count(); ++i) {
    EXPECT_EQ(a.placement.module(i).anchor, b.placement.module(i).anchor);
    EXPECT_EQ(a.placement.module(i).rotated, b.placement.module(i).rotated);
  }
}

TEST(KamerPlacerTest, RotationExpandsFeasibility) {
  // A 3x6 module on a 7x3... use a module that only fits rotated.
  Schedule s;
  const ModuleSpec slim{"slim", ModuleKind::kMixer, 1, 4, 5.0};  // 3x6
  s.add(ScheduledModule{0, "A", slim, 0.0, 5.0, -1, -1});
  const auto with_rotation = place_kamer(s, 7, 3, RelocationPolicy::kBestFit,
                                         /*allow_rotation=*/true);
  EXPECT_TRUE(with_rotation.success);
  EXPECT_TRUE(with_rotation.placement.module(0).rotated);
  const auto without_rotation = place_kamer(
      s, 7, 3, RelocationPolicy::kBestFit, /*allow_rotation=*/false);
  EXPECT_FALSE(without_rotation.success);
}

TEST(KamerPlacerTest, ReusesCellsAcrossTime) {
  // Two identical modules in disjoint time intervals fit an array exactly
  // as large as one footprint.
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 5.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 5.0, -1, -1});
  s.add(ScheduledModule{1, "B", spec, 5.0, 10.0, -1, -1});
  const auto result = place_kamer(s, 4, 4);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.placement.bounding_box_cells(), 16);
}

TEST(KamerPlacerTest, SmallestArraySearch) {
  const auto result = smallest_kamer_array(pcr_schedule(), 24);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  // The smallest side must at least hold the peak concurrent cells.
  const auto schedule = pcr_schedule();
  const int side = result->placement.canvas_width();
  EXPECT_GE(static_cast<long long>(side) * side,
            schedule.peak_concurrent_cells());
  // One side smaller must fail.
  EXPECT_FALSE(place_kamer(schedule, side - 1, side - 1).success);
}

TEST(KamerPlacerTest, SmallestArrayRespectsMaxSide) {
  EXPECT_FALSE(smallest_kamer_array(pcr_schedule(), 7).has_value());
}

}  // namespace
}  // namespace dmfb
