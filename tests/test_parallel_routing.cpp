// Determinism of parallel per-changeover routing: changeovers are
// independent once routing::extract_problems resolves inter-changeover
// droplet positions, and stochastic backends derive per-changeover seeds
// from the run seed by changeover index — so a plan must be identical
// whether the changeovers were solved by 1 worker or 4. Runs against
// every registered backend, directly and through the pipeline
// (PipelineOptions::routing.threads). No DMFB_SUPPRESS_DEPRECATION:
// the new API alone must cover this.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "sim/router_backend.h"

namespace dmfb {
namespace {

/// Canonical text form of a plan; byte-equal strings = identical plans.
std::string serialize(const RoutePlan& plan) {
  std::ostringstream os;
  os << "success=" << plan.success << " steps=" << plan.total_steps
     << " cells=" << plan.total_moved_cells
     << " failure=" << plan.failure_reason << '\n';
  for (const auto& changeover : plan.changeovers) {
    os << "t=" << changeover.time_s
       << " makespan=" << changeover.makespan_steps << '\n';
    for (const auto& route : changeover.routes) {
      os << "  " << route.request.label << " (" << route.request.from.x << ','
         << route.request.from.y << ")->(" << route.request.to.x << ','
         << route.request.to.y << "):";
      for (const Point& p : route.positions) {
        os << ' ' << p.x << ',' << p.y;
      }
      os << '\n';
    }
  }
  return os.str();
}

/// The paper's PCR case placed via the pipeline — several changeovers
/// with several concurrent transfers each.
PipelineResult placed_pcr() {
  PipelineOptions options;
  options.placer = "greedy";
  options.placer_context.canvas_width = 16;
  options.placer_context.canvas_height = 16;
  options.plan_droplet_routes = false;
  return SynthesisPipeline(options).run(pcr_mixing_assay());
}

TEST(ParallelRoutingTest, ThreadCountDoesNotChangeThePlan) {
  const AssayCase assay = pcr_mixing_assay();
  const PipelineResult placed = placed_pcr();
  ASSERT_GT(placed.schedule.module_count(), 0);

  for (const std::string& name : registered_routers()) {
    const auto router = make_router(name);
    RoutePlannerOptions options;
    options.seed = 0xC0FFEE;

    options.threads = 1;
    const RoutePlan sequential =
        router->plan(assay.graph, placed.schedule,
                     placed.placement.placement, 16, 16, options);
    options.threads = 4;
    const RoutePlan parallel =
        router->plan(assay.graph, placed.schedule,
                     placed.placement.placement, 16, 16, options);

    ASSERT_TRUE(sequential.success) << name << ": "
                                    << sequential.failure_reason;
    ASSERT_GT(sequential.changeovers.size(), 1u) << name;
    EXPECT_EQ(serialize(sequential), serialize(parallel)) << name;
  }
}

TEST(ParallelRoutingTest, PipelineThreadsProduceIdenticalRuns) {
  for (const std::string& name : registered_routers()) {
    PipelineOptions options;
    options.placer = "greedy";
    options.placer_context.canvas_width = 16;
    options.placer_context.canvas_height = 16;
    options.router = name;
    options.seed = 42;

    options.routing.threads = 1;
    const PipelineResult sequential =
        SynthesisPipeline(options).run(pcr_mixing_assay());
    options.routing.threads = 4;
    const PipelineResult parallel =
        SynthesisPipeline(options).run(pcr_mixing_assay());

    EXPECT_EQ(serialize(sequential.routes), serialize(parallel.routes))
        << name;
  }
}

TEST(ParallelRoutingTest, HardwareConcurrencyIsAValidThreadCount) {
  const AssayCase assay = pcr_mixing_assay();
  const PipelineResult placed = placed_pcr();
  const auto router = make_router("prioritized");
  RoutePlannerOptions options;
  options.threads = 0;  // hardware concurrency
  const RoutePlan plan =
      router->plan(assay.graph, placed.schedule, placed.placement.placement,
                   16, 16, options);
  options.threads = 1;
  const RoutePlan reference =
      router->plan(assay.graph, placed.schedule, placed.placement.placement,
                   16, 16, options);
  EXPECT_EQ(serialize(plan), serialize(reference));
}

}  // namespace
}  // namespace dmfb
