// Tests for the multi-process batch driver (service/batch.h) and its
// subprocess plumbing (util/subprocess.h): manifests parse and seed
// items through the shared batch seed-split, the in-process worker loop
// produces results bit-identical to run_many, checkpoint files tolerate
// torn writes, and resume trusts only checkpoints that match the
// current manifest. Deprecation-clean by CMake policy.
#include "service/batch.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "assay/random_assay.h"
#include "io/assay_format.h"
#include "io/json.h"
#include "service/server.h"
#include "util/subprocess.h"

namespace dmfb {
namespace {

/// Short annealing runs so the whole suite stays fast (mirrors
/// test_pipeline's fast_options, minus the non-wire ltsa field so the
/// worker handshake can carry every set option).
PipelineOptions fast_options() {
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module = 60;
  return options;
}

std::vector<AssayCase> small_assays(int count) {
  const ModuleLibrary library = ModuleLibrary::standard();
  std::vector<AssayCase> assays;
  for (int i = 0; i < count; ++i) {
    RandomAssayParams params;
    params.mix_operations = 3 + i % 2;
    AssayCase assay = random_assay(params, library, /*seed=*/500 + i);
    assay.name = "case-" + std::to_string(i);
    assays.push_back(std::move(assay));
  }
  return assays;
}

std::string manifest_text(const std::vector<AssayCase>& assays) {
  std::ostringstream out;
  for (std::size_t i = 0; i < assays.size(); ++i) {
    json::Value doc;
    doc.set("id", "item-" + std::to_string(i));
    doc.set("assay", assay_to_string(assays[i]));
    out << doc.dump() << '\n';
  }
  return out.str();
}

/// In-memory sink: what FileResultSink appends, captured for asserts.
class MemorySink : public ResultSink {
 public:
  void append_result(const std::string& line) override {
    results.push_back(line);
  }
  void append_ledger(const std::string& line) override {
    ledger.push_back(line);
  }
  std::vector<std::string> results;
  std::vector<std::string> ledger;
};

TEST(BatchManifestTest, ParsesItemsAndAppliesTheBatchSeedSplit) {
  const auto assays = small_assays(3);
  PipelineOptions base = fast_options();
  base.seed = 77;
  std::istringstream in(manifest_text(assays) + "\n  \n");  // blank ok

  const auto items =
      read_manifest(in, base, ModuleLibrary::standard());
  ASSERT_EQ(items.size(), 3u);
  const auto seeds = derive_item_seeds(77, 3);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].id, "item-" + std::to_string(i));
    EXPECT_EQ(items[i].assay.name, assays[i].name);
    EXPECT_EQ(items[i].options.seed, seeds[i]);
  }
  // Fingerprints are per-item (seed differs even for identical text).
  EXPECT_NE(batch_item_fingerprint(items[0]),
            batch_item_fingerprint(items[1]));

  // Per-item overlays apply, but the derived seed still wins.
  std::istringstream overlay(
      "{\"assay\":" +
      json::Value(assay_to_string(assays[0])).dump() +
      ",\"options\":{\"placer\":\"greedy\",\"seed\":1}}\n");
  const auto overlaid =
      read_manifest(overlay, base, ModuleLibrary::standard());
  ASSERT_EQ(overlaid.size(), 1u);
  EXPECT_EQ(overlaid[0].options.placer, "greedy");
  EXPECT_EQ(overlaid[0].options.seed, derive_item_seeds(77, 1)[0]);

  // Malformed manifests fail loudly, with the line number.
  std::istringstream bad("{\"no_assay\":true}\n");
  EXPECT_THROW(read_manifest(bad, base, ModuleLibrary::standard()),
               std::runtime_error);
}

TEST(BatchPartitionTest, BlocksCoverPendingExactlyAndNearEvenly) {
  const std::vector<std::size_t> pending = {0, 2, 3, 5, 7, 8, 9};
  const auto shards = BlockPartitioner().partition(pending, 3);
  ASSERT_EQ(shards.size(), 3u);
  std::vector<std::size_t> flattened;
  for (const auto& shard : shards) {
    EXPECT_LE(shard.size(), 3u);
    EXPECT_GE(shard.size(), 2u);
    flattened.insert(flattened.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(flattened, pending);

  // More shards than items: trailing shards are empty, nothing lost.
  const auto sparse = BlockPartitioner().partition({4, 6}, 5);
  ASSERT_EQ(sparse.size(), 5u);
  EXPECT_EQ(sparse[0], std::vector<std::size_t>{4});
  EXPECT_EQ(sparse[1], std::vector<std::size_t>{6});
  for (std::size_t k = 2; k < 5; ++k) EXPECT_TRUE(sparse[k].empty());
}

TEST(BatchWorkerTest, ItemsAreBitIdenticalToRunMany) {
  // THE cross-harness contract: the worker loop compiling items
  // [0, n) must reproduce run_many on the same assays and master seed,
  // result for result — same derived seeds, same placements, same
  // costs. This is what makes a sharded batch a drop-in replacement
  // for the in-process thread pool.
  const auto assays = small_assays(3);
  PipelineOptions base = fast_options();
  base.seed = 1234;

  std::istringstream in(manifest_text(assays));
  const auto items = read_manifest(in, base, ModuleLibrary::standard());
  MemorySink sink;
  const WorkerReport report =
      run_batch_items(items, {0, 1, 2}, sink, nullptr, nullptr);
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.failed, 0u);
  ASSERT_EQ(sink.results.size(), 3u);

  const auto reference = SynthesisPipeline(base).run_many(
      std::span<const AssayCase>(assays));
  ASSERT_EQ(reference.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.results[i],
              render_result_line(items[i], i, reference[i]))
        << "item " << i << " diverged from run_many";
  }
}

TEST(BatchWorkerTest, CacheHitsRenderTheSameResultLine) {
  const auto assays = small_assays(2);
  PipelineOptions base = fast_options();
  base.seed = 42;
  std::istringstream in(manifest_text(assays));
  const auto items = read_manifest(in, base, ModuleLibrary::standard());

  CompileCache cache;
  MemorySink cold;
  run_batch_items(items, {0, 1}, cold, &cache, nullptr);

  // Second pass over a warm cache: all exact hits, identical lines —
  // including after a save/load round-trip (the cross-process path).
  MemorySink warm;
  const WorkerReport hits = run_batch_items(items, {0, 1}, warm, &cache,
                                            nullptr);
  EXPECT_EQ(hits.exact_hits, 2u);
  EXPECT_EQ(warm.results, cold.results);

  const std::string path = testing::TempDir() + "dmfb_batch_cache.txt";
  ASSERT_TRUE(cache.save(path));
  CompileCache loaded;
  EXPECT_EQ(loaded.load(path), 2u);
  MemorySink from_disk;
  const WorkerReport disk_hits =
      run_batch_items(items, {0, 1}, from_disk, &loaded, nullptr);
  EXPECT_EQ(disk_hits.exact_hits, 2u);
  EXPECT_EQ(from_disk.results, cold.results);
  std::remove(path.c_str());
}

TEST(BatchLedgerTest, ToleratesTornAndGarbageLines) {
  const std::string path = testing::TempDir() + "dmfb_batch_ledger.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0 111\n"
        << "garbage line\n"
        << "1 222\n"
        << "5";  // torn mid-append: no fingerprint, no newline
  }
  // terminate_torn_tail isolates the fragment; the reader skips it and
  // the two well-formed checkpoints survive.
  terminate_torn_tail(path);
  const auto entries = load_ledger(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].index, 0u);
  EXPECT_EQ(entries[0].fingerprint, 111u);
  EXPECT_EQ(entries[1].index, 1u);
  EXPECT_EQ(entries[1].fingerprint, 222u);

  // A later append lands on its own line, not glued to the fragment.
  {
    LineAppender appender(path);
    appender.append("2 333");
  }
  const auto appended = load_ledger(path);
  ASSERT_EQ(appended.size(), 3u);
  EXPECT_EQ(appended.back().index, 2u);
  EXPECT_EQ(appended.back().fingerprint, 333u);
  std::remove(path.c_str());

  EXPECT_TRUE(load_ledger(path + ".missing").empty());
}

TEST(BatchResumeTest, SkipsOnlyCheckpointsMatchingTheCurrentManifest) {
  // Drive the full parent: fresh 1-worker run over 3 items, then a
  // resume after hand-editing the ledger — the valid checkpoint is
  // skipped, the invalidated one (stale fingerprint, e.g. an edited
  // manifest entry) and the missing one recompute, and the deduplicated
  // results equal the uninterrupted run's.
  // (run_batch itself needs a dmfb_batch binary to re-exec; the
  // spawning path is covered end-to-end by bench_batch. This test pins
  // the resume arithmetic on the library pieces.)
  const auto assays = small_assays(3);
  PipelineOptions base = fast_options();
  base.seed = 9;
  std::istringstream in(manifest_text(assays));
  const auto items = read_manifest(in, base, ModuleLibrary::standard());

  MemorySink full;
  run_batch_items(items, {0, 1, 2}, full, nullptr, nullptr);

  // Ledger after a "crash": item 0 checkpointed correctly, item 1
  // checkpointed under a stale fingerprint, item 2 never finished.
  std::vector<char> done(items.size(), 0);
  std::vector<LedgerEntry> ledger = {
      {0, batch_item_fingerprint(items[0])},
      {1, batch_item_fingerprint(items[1]) ^ 1},  // stale
      {7, batch_item_fingerprint(items[0])},      // out of range
  };
  for (const LedgerEntry& entry : ledger) {
    if (entry.index < items.size() &&
        batch_item_fingerprint(items[entry.index]) == entry.fingerprint) {
      done[entry.index] = 1;
    }
  }
  std::vector<std::size_t> pendingIndices;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!done[i]) pendingIndices.push_back(i);
  }
  EXPECT_EQ(pendingIndices, (std::vector<std::size_t>{1, 2}));

  MemorySink resumed;
  run_batch_items(items, pendingIndices, resumed, nullptr, nullptr);
  ASSERT_EQ(resumed.results.size(), 2u);
  EXPECT_EQ(resumed.results[0], full.results[1]);
  EXPECT_EQ(resumed.results[1], full.results[2]);
}

TEST(BatchRespawnTest, ChaosKilledWorkerIsRespawnedAndResultsMatch) {
  // End-to-end respawn: the parent SIGKILLs its worker after the first
  // "done" report (chaos_kill_after), re-execs it with the unreported
  // items, and the batch still completes with the same result lines an
  // undisturbed run produces.
  const char* env_bin = std::getenv("DMFB_BATCH_BIN");
  const std::string worker_exe = env_bin ? env_bin : "./dmfb_batch";
  if (!std::ifstream(worker_exe).good()) {
    GTEST_SKIP() << "dmfb_batch binary not found (run from the build "
                    "directory or set DMFB_BATCH_BIN)";
  }

  const auto assays = small_assays(4);
  const std::string dir = testing::TempDir();
  const std::string manifest = dir + "dmfb_respawn_manifest.jsonl";
  {
    std::ofstream out(manifest, std::ios::trunc);
    out << manifest_text(assays);
  }

  BatchOptions options;
  options.manifest_path = manifest;
  options.base = fast_options();
  options.base.seed = 321;
  options.workers = 1;
  options.worker_exe = worker_exe;

  // Reference lines from the in-process worker loop (already pinned to
  // run_many above) — what any incarnation of the worker must append.
  std::set<std::string> expected;
  {
    std::istringstream in(manifest_text(assays));
    const auto items =
        read_manifest(in, options.base, ModuleLibrary::standard());
    MemorySink sink;
    run_batch_items(items, {0, 1, 2, 3}, sink, nullptr, nullptr);
    expected.insert(sink.results.begin(), sink.results.end());
  }

  options.results_path = dir + "dmfb_respawn_results.jsonl";
  options.ledger_path = options.results_path + ".ledger";
  std::remove(options.results_path.c_str());
  std::remove(options.ledger_path.c_str());
  options.chaos_kill_after = 1;
  options.max_respawns = 2;
  const BatchSummary summary = run_batch(options);
  EXPECT_TRUE(summary.ok);
  EXPECT_GE(summary.respawns, 1u);
  EXPECT_GE(summary.completed, 4u);  // recomputed items report again

  // The result file may hold byte-identical duplicates (items the dead
  // worker finished without reporting) — identical as a *set* of lines.
  const auto lines = read_lines(options.results_path);
  const std::set<std::string> actual(lines.begin(), lines.end());
  EXPECT_EQ(actual, expected);

  // Zero respawn budget: the same chaos kill fails the batch instead.
  options.results_path = dir + "dmfb_respawn_none.jsonl";
  options.ledger_path = options.results_path + ".ledger";
  std::remove(options.results_path.c_str());
  std::remove(options.ledger_path.c_str());
  options.max_respawns = 0;
  const BatchSummary denied = run_batch(options);
  EXPECT_FALSE(denied.ok);
  EXPECT_EQ(denied.respawns, 0u);

  std::remove(manifest.c_str());
  std::remove((dir + "dmfb_respawn_results.jsonl").c_str());
  std::remove((dir + "dmfb_respawn_results.jsonl.ledger").c_str());
  std::remove(options.results_path.c_str());
  std::remove(options.ledger_path.c_str());
}

TEST(SubprocessTest, RoundTripsLinesThroughCat) {
  Subprocess child = Subprocess::spawn({"/bin/cat"});
  child.write_line("hello");
  child.write_line("world");
  child.close_stdin();
  std::string line;
  ASSERT_TRUE(child.read_line(line));
  EXPECT_EQ(line, "hello");
  ASSERT_TRUE(child.read_line(line));
  EXPECT_EQ(line, "world");
  EXPECT_FALSE(child.read_line(line));
  EXPECT_EQ(child.wait(), 0);
}

TEST(SubprocessTest, ReportsExitCodesAndExecFailures) {
  Subprocess failing = Subprocess::spawn({"/bin/false"});
  failing.close_stdin();
  EXPECT_EQ(failing.wait(), 1);

  Subprocess missing = Subprocess::spawn({"/no/such/binary/anywhere"});
  missing.close_stdin();
  EXPECT_EQ(missing.wait(), 127);
}

TEST(SubprocessTest, TornTailAndReadLinesEdgeCases) {
  const std::string path = testing::TempDir() + "dmfb_torn_tail.txt";
  std::remove(path.c_str());

  // Missing file: no-op, and it is not created.
  terminate_torn_tail(path);
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_TRUE(read_lines(path).empty());

  // Empty file: no-op, stays empty (no spurious blank line).
  { std::ofstream out(path, std::ios::trunc); }
  terminate_torn_tail(path);
  EXPECT_TRUE(read_lines(path).empty());

  // Several complete lines then a torn tail: only the tail is touched,
  // and the call is idempotent — a second pass adds nothing.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "alpha\nbeta\ngam";
  }
  // read_lines returns an unterminated final line as-is (getline).
  {
    const auto torn = read_lines(path);
    ASSERT_EQ(torn.size(), 3u);
    EXPECT_EQ(torn.back(), "gam");
  }
  terminate_torn_tail(path);
  terminate_torn_tail(path);
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream raw;
    raw << in.rdbuf();
    EXPECT_EQ(raw.str(), "alpha\nbeta\ngam\n");
  }

  // Already-terminated file: untouched byte for byte.
  terminate_torn_tail(path);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "alpha");
  EXPECT_EQ(lines[1], "beta");
  EXPECT_EQ(lines[2], "gam");
  std::remove(path.c_str());
}

TEST(SubprocessTest, AppendsAreWholeLines) {
  const std::string path = testing::TempDir() + "dmfb_appender.txt";
  std::remove(path.c_str());
  {
    LineAppender a(path);
    LineAppender b(path);  // a second handle, as a sibling process would
    a.append("from a");
    b.append("from b");
    a.append("a again");
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "from a");
  EXPECT_EQ(lines[1], "from b");
  EXPECT_EQ(lines[2], "a again");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dmfb
