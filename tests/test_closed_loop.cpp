// Tests for the closed synthesis loop: transport-aware scheduling
// (Schedule::shift_from / fold_transport / the steps->seconds seam),
// routing-aware placement (the gamma routing-pressure term, priced
// identically by the copy and delta annealing engines), link
// extraction/feedback (routing::extract_links / reweight_links), and the
// SynthesisPipeline feedback rounds. Pins the PR's three contracts:
//   (a) the transport-inclusive makespan is monotone (>= the
//       instantaneous-changeover makespan) and retiming preserves
//       precedence,
//   (b) feedback rounds are deterministic from one seed for any routing
//       thread count,
//   (c) with feedback_rounds = 0 and gamma = 0 the flow is bit-identical
//       to the classic feed-forward pipeline (copy and delta engines).
#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "assay/random_assay.h"
#include "core/incremental_cost.h"
#include "core/moves.h"
#include "core/placer.h"
#include "sim/route_planner.h"
#include "sim/router_backend.h"
#include "util/rng.h"

namespace dmfb {
namespace {

/// Short annealing runs so the whole suite stays fast.
PipelineOptions fast_options() {
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module = 60;
  options.placer_context.ltsa.iterations_per_module = 60;
  return options;
}

void expect_same_placement(const Placement& a, const Placement& b) {
  ASSERT_EQ(a.module_count(), b.module_count());
  for (int i = 0; i < a.module_count(); ++i) {
    EXPECT_EQ(a.module(i).anchor, b.module(i).anchor) << "module " << i;
    EXPECT_EQ(a.module(i).rotated, b.module(i).rotated) << "module " << i;
  }
}

// --- (1) schedule retiming and the steps->seconds seam ----------------

TEST(ClosedLoopTest, ShiftFromDelaysOnlyLaterModules) {
  Schedule schedule;
  const ModuleSpec mixer{"mixer-2x2", ModuleKind::kMixer, 2, 2, 10.0};
  schedule.add(ScheduledModule{0, "A", mixer, 0.0, 10.0});
  schedule.add(ScheduledModule{1, "B", mixer, 10.0, 20.0});
  schedule.add(ScheduledModule{2, "C", mixer, 15.0, 25.0});

  schedule.shift_from(10.0, 2.5);
  EXPECT_DOUBLE_EQ(schedule.module(0).start_s, 0.0);   // before: untouched
  EXPECT_DOUBLE_EQ(schedule.module(0).end_s, 10.0);
  EXPECT_DOUBLE_EQ(schedule.module(1).start_s, 12.5);  // at: delayed
  EXPECT_DOUBLE_EQ(schedule.module(1).end_s, 22.5);    // duration preserved
  EXPECT_DOUBLE_EQ(schedule.module(2).start_s, 17.5);  // after: delayed
  EXPECT_DOUBLE_EQ(schedule.makespan_s(), 27.5);

  EXPECT_THROW(schedule.shift_from(0.0, -1.0), std::invalid_argument);
}

TEST(ClosedLoopTest, TransportSecondsDeriveFromTheActuationConstant) {
  const PipelineResult result =
      SynthesisPipeline(fast_options()).run(pcr_mixing_assay());
  ASSERT_TRUE(result.routes.success) << result.routes.failure_reason;
  ASSERT_FALSE(result.routes.changeovers.empty());

  double sum = 0.0;
  for (const auto& changeover : result.routes.changeovers) {
    EXPECT_DOUBLE_EQ(changeover.transport_seconds(),
                     changeover.makespan_steps * kActuationPeriodS);
    for (const auto& route : changeover.routes) {
      EXPECT_DOUBLE_EQ(route.transport_seconds(),
                       route.arrival_step() * kActuationPeriodS);
    }
    sum += changeover.transport_seconds();
  }
  EXPECT_DOUBLE_EQ(result.routes.total_transport_seconds(), sum);
  // The no-argument form is the explicit-rate form at the one constant.
  EXPECT_DOUBLE_EQ(
      result.routes.total_transport_seconds(),
      result.routes.total_transport_seconds(kActuationStepsPerSecond));
}

TEST(ClosedLoopTest, TransportInclusiveMakespanIsMonotoneAndPrecedenceSafe) {
  const AssayCase assay = pcr_mixing_assay();
  const PipelineResult result = SynthesisPipeline(fast_options()).run(assay);
  ASSERT_TRUE(result.routes.success) << result.routes.failure_reason;

  // (a) monotonicity: folding non-negative transport can only delay.
  EXPECT_GE(result.transport_makespan_s, result.makespan_s);
  EXPECT_GT(result.transport_makespan_s, result.makespan_s)
      << "PCR has non-trivial changeovers; transport must cost time";
  EXPECT_DOUBLE_EQ(result.transported_schedule.makespan_s(),
                   result.transport_makespan_s);
  EXPECT_DOUBLE_EQ(
      fold_transport(result.schedule, result.routes).makespan_s(),
      result.transport_makespan_s);

  // Retiming preserves precedence, module count and durations.
  EXPECT_TRUE(result.transported_schedule.validate_against(assay.graph)
                  .empty());
  ASSERT_EQ(result.transported_schedule.module_count(),
            result.schedule.module_count());
  for (int i = 0; i < result.schedule.module_count(); ++i) {
    EXPECT_DOUBLE_EQ(result.transported_schedule.module(i).duration_s(),
                     result.schedule.module(i).duration_s());
    EXPECT_GE(result.transported_schedule.module(i).start_s,
              result.schedule.module(i).start_s);
  }

  // The total inserted delay is exactly the plan's transport time.
  EXPECT_NEAR(result.transport_makespan_s - result.makespan_s,
              result.routes.total_transport_seconds(), 1e-9);
}

// --- (2) link extraction and feedback ---------------------------------

TEST(ClosedLoopTest, ExtractLinksCoversEveryRoutedTransfer) {
  const PipelineResult result =
      SynthesisPipeline(fast_options()).run(pcr_mixing_assay());
  ASSERT_TRUE(result.routes.success);
  const auto links =
      routing::extract_links(pcr_mixing_assay().graph, result.schedule);
  ASSERT_FALSE(links.empty());

  for (const auto& link : links) {
    EXPECT_GE(link.target_module, 0);
    EXPECT_LT(link.target_module, result.schedule.module_count());
    EXPECT_LT(link.source_module, result.schedule.module_count());
    EXPECT_GE(link.weight, 1);
  }

  // Every transfer the router actually planned has a matching demand
  // edge (extraction may carry extra zero-distance edges, never fewer).
  for (const auto& changeover : result.routes.changeovers) {
    for (const auto& route : changeover.routes) {
      const bool found = std::any_of(
          links.begin(), links.end(), [&](const RouteLink& link) {
            return link.source_module == route.request.source_module &&
                   link.target_module == route.request.target_module;
          });
      EXPECT_TRUE(found) << "transfer " << route.request.label
                         << " has no demand edge";
    }
  }
}

TEST(ClosedLoopTest, ReweightFoldsMeasuredStepsIntoWeights) {
  const PipelineResult result =
      SynthesisPipeline(fast_options()).run(pcr_mixing_assay());
  ASSERT_TRUE(result.routes.success);
  const auto links =
      routing::extract_links(pcr_mixing_assay().graph, result.schedule);
  const auto weighted = routing::reweight_links(links, result.routes);

  ASSERT_EQ(weighted.size(), links.size());
  long long gained = 0;
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(weighted[i].source_module, links[i].source_module);
    EXPECT_EQ(weighted[i].target_module, links[i].target_module);
    EXPECT_GE(weighted[i].weight, links[i].weight);
    gained += weighted[i].weight - links[i].weight;
  }
  // The plan took steps, so some edge must have gained weight.
  EXPECT_GT(gained, 0);
}

// --- (3) the routing-pressure cost term -------------------------------

TEST(ClosedLoopTest, EvaluatorPricesRoutePressureOnlyWithGamma) {
  PipelineOptions options = fast_options();
  options.plan_droplet_routes = false;
  const PipelineResult result =
      SynthesisPipeline(options).run(pcr_mixing_assay());
  const auto links =
      routing::extract_links(pcr_mixing_assay().graph, result.schedule);

  CostWeights weights;  // gamma = 0
  CostEvaluator plain(weights);
  CostEvaluator with_links(weights);
  with_links.set_route_links(links);
  const CostBreakdown a = plain.evaluate(result.placement.placement);
  const CostBreakdown b = with_links.evaluate(result.placement.placement);
  // gamma = 0: links are carried but never priced — values bit-identical.
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(b.route_pressure, 0);

  weights.gamma = 0.05;
  CostEvaluator priced(weights);
  priced.set_route_links(links);
  const CostBreakdown c = priced.evaluate(result.placement.placement);
  EXPECT_GT(c.route_pressure, 0);
  EXPECT_DOUBLE_EQ(c.value, a.value + 0.05 * c.route_pressure);
  EXPECT_EQ(c.route_pressure, priced.route_pressure(result.placement.placement));
}

TEST(ClosedLoopTest, IncrementalStateTracksRoutePressureThroughMoves) {
  PipelineOptions options = fast_options();
  options.plan_droplet_routes = false;
  const PipelineResult synth =
      SynthesisPipeline(options).run(pcr_mixing_assay());
  const auto links =
      routing::extract_links(pcr_mixing_assay().graph, synth.schedule);

  for (const double beta : {0.0, 30.0}) {  // lazy and eager pricing paths
    CostWeights weights;
    weights.beta = beta;
    weights.gamma = 0.05;
    CostEvaluator evaluator(weights);
    evaluator.set_route_links(links);

    IncrementalPlacementState state(synth.placement.placement, evaluator);
    EXPECT_EQ(state.breakdown().route_pressure,
              evaluator.route_pressure(state.placement()));
    EXPECT_DOUBLE_EQ(state.cost(),
                     evaluator.evaluate(state.placement()).value);

    // Drive a few hundred random moves through propose/commit/revert and
    // re-check the maintained tallies against a from-scratch evaluation.
    Rng rng(2026);
    MoveOptions moves;
    for (int i = 0; i < 300; ++i) {
      const PlacementMove move =
          generate_random_move(state.placement(), 0.5, moves, rng);
      state.propose(move);
      if (rng.next_bool(0.5)) {
        state.commit();
      } else {
        state.revert();
      }
    }
    const CostBreakdown fresh = evaluator.evaluate(state.placement());
    EXPECT_EQ(state.breakdown().route_pressure, fresh.route_pressure)
        << "beta " << beta;
    EXPECT_DOUBLE_EQ(state.cost(), fresh.value) << "beta " << beta;
  }
}

TEST(ClosedLoopTest, DeltaAndCopyEnginesAgreeUnderGamma) {
  PipelineOptions options = fast_options();
  options.plan_droplet_routes = false;
  const PipelineResult synth =
      SynthesisPipeline(options).run(pcr_mixing_assay());
  const auto links =
      routing::extract_links(pcr_mixing_assay().graph, synth.schedule);

  for (const double beta : {0.0, 30.0}) {
    PlacerContext context = fast_options().placer_context;
    context.seed = 515;
    context.weights.beta = beta;
    context.weights.gamma = 0.05;
    context.route_links = links;

    context.engine = AnnealingEngine::kDelta;
    const PlacementOutcome delta =
        make_placer("sa")->place(synth.schedule, context);
    context.engine = AnnealingEngine::kCopy;
    const PlacementOutcome copy =
        make_placer("sa")->place(synth.schedule, context);

    // The gamma term is exact integer arithmetic in both engines, so the
    // whole trajectory — not just the answer — coincides.
    EXPECT_EQ(delta.cost.value, copy.cost.value) << "beta " << beta;
    expect_same_placement(delta.placement, copy.placement);
  }
}

// --- (4) the closed-loop pipeline -------------------------------------

TEST(ClosedLoopTest, GammaZeroFeedbackZeroIsBitIdenticalToClassicFlow) {
  const AssayCase assay = pcr_mixing_assay();
  for (const AnnealingEngine engine :
       {AnnealingEngine::kDelta, AnnealingEngine::kCopy}) {
    PipelineOptions options = fast_options();
    options.seed = 99;
    options.placer_context.engine = engine;
    const PipelineResult piped = SynthesisPipeline(options).run(assay);

    // The classic flow, hand-wired: same schedule, placer, seed.
    PlacerContext context = options.placer_context;
    context.seed = 99;
    const PlacementOutcome hand =
        make_placer("sa")->place(piped.schedule, context);

    expect_same_placement(piped.placement.placement, hand.placement);
    EXPECT_EQ(piped.placement.cost.value, hand.cost.value);
    EXPECT_TRUE(piped.feedback_history.empty());
    EXPECT_EQ(piped.selected_round, 0);
  }
}

TEST(ClosedLoopTest, FeedbackKeepsTheBestRoundAndNeverDoesWorse) {
  PipelineOptions options = fast_options();
  options.seed = 7;
  options.feedback_rounds = 2;
  options.placer_context.weights.gamma = 0.05;
  options.routing.step_horizon = 12;  // a deadline regime
  const PipelineResult result =
      SynthesisPipeline(options).run(pcr_mixing_assay());

  ASSERT_GE(result.feedback_history.size(), 1u);
  ASSERT_LE(result.feedback_history.size(), 3u);
  EXPECT_EQ(result.feedback_history.front().round, 0);
  ASSERT_GE(result.selected_round, 0);
  ASSERT_LT(result.selected_round,
            static_cast<int>(result.feedback_history.size()));

  const auto& round0 = result.feedback_history.front();
  const auto& chosen =
      result.feedback_history[static_cast<std::size_t>(
          result.selected_round)];
  // Best-round selection: routed beats unrouted; among routed, the
  // transport-inclusive makespan never regresses past round 0.
  if (round0.routed) {
    EXPECT_TRUE(chosen.routed);
    EXPECT_LE(chosen.transport_makespan_s, round0.transport_makespan_s);
  }
  EXPECT_DOUBLE_EQ(result.transport_makespan_s, chosen.transport_makespan_s);
  // History carries the gamma-term-free cost (comparable across rounds).
  EXPECT_DOUBLE_EQ(
      result.placement.cost.value -
          0.05 * static_cast<double>(result.placement.cost.route_pressure),
      chosen.placement_cost);
}

TEST(ClosedLoopTest, FeedbackRoundsDeterministicForAnyRoutingThreadCount) {
  const AssayCase assay = pcr_mixing_assay();
  auto run = [&](int routing_threads) {
    PipelineOptions options = fast_options();
    options.seed = 1234;
    options.feedback_rounds = 2;
    options.placer_context.weights.gamma = 0.05;
    options.routing.threads = routing_threads;
    return SynthesisPipeline(options).run(assay);
  };
  const PipelineResult one = run(1);
  const PipelineResult four = run(4);

  expect_same_placement(one.placement.placement, four.placement.placement);
  EXPECT_EQ(one.selected_round, four.selected_round);
  EXPECT_EQ(one.routes.total_steps, four.routes.total_steps);
  EXPECT_EQ(one.routes.total_moved_cells, four.routes.total_moved_cells);
  ASSERT_EQ(one.feedback_history.size(), four.feedback_history.size());
  for (std::size_t i = 0; i < one.feedback_history.size(); ++i) {
    EXPECT_EQ(one.feedback_history[i].seed, four.feedback_history[i].seed);
    EXPECT_EQ(one.feedback_history[i].routed,
              four.feedback_history[i].routed);
    EXPECT_DOUBLE_EQ(one.feedback_history[i].transport_makespan_s,
                     four.feedback_history[i].transport_makespan_s);
    EXPECT_EQ(one.feedback_history[i].placement_cost,
              four.feedback_history[i].placement_cost);
  }
  EXPECT_DOUBLE_EQ(one.transport_makespan_s, four.transport_makespan_s);
}

// --- (5) stress generators and congestion-history persistence ---------

TEST(ClosedLoopTest, StressGeneratorsAreDeterministicAndSchedulable) {
  const ModuleLibrary library = ModuleLibrary::standard();
  StressAssayParams params;
  const AssayCase a = corridor_assay(params, library, 42);
  const AssayCase b = corridor_assay(params, library, 42);
  EXPECT_EQ(a.graph.operation_count(), b.graph.operation_count());
  EXPECT_EQ(a.binding.size(), b.binding.size());
  EXPECT_EQ(a.name, "corridor-assay");

  // walls * (dispense + detect) + waves * width * (mix + >=1 dispense)
  // + outputs; just pin the op count is substantial and stable.
  EXPECT_GT(a.graph.operation_count(),
            params.corridor_walls + params.waves * params.traffic_width);

  PipelineOptions options = fast_options();
  options.placer_context.canvas_width = 20;
  options.placer_context.canvas_height = 20;
  const PipelineResult result = SynthesisPipeline(options).run(a);
  EXPECT_TRUE(result.schedule.validate_against(a.graph).empty());
  EXPECT_TRUE(result.placement.placement.feasible());

  const AssayCase p = permutation_assay(4, 2, library, 7);
  EXPECT_EQ(p.name, "permutation-assay");
  const PipelineResult pr = SynthesisPipeline(options).run(p);
  EXPECT_TRUE(pr.schedule.validate_against(p.graph).empty());
}

TEST(ClosedLoopTest, PersistentCongestionHistoryPlansStayValid) {
  const ModuleLibrary library = ModuleLibrary::standard();
  const AssayCase assay = permutation_assay(4, 2, library, 11);
  PipelineOptions options = fast_options();
  options.placer_context.canvas_width = 18;
  options.placer_context.canvas_height = 18;
  options.plan_droplet_routes = false;
  const PipelineResult synth = SynthesisPipeline(options).run(assay);

  const auto router = make_router("negotiated");
  RoutePlannerOptions base;
  base.threads = 2;  // ignored under persistence; exercises that path
  RoutePlannerOptions persist = base;
  persist.persist_congestion_history = true;

  const RoutePlan cold = router->plan(assay.graph, synth.schedule,
                                      synth.placement.placement, 18, 18,
                                      base);
  const RoutePlan warm = router->plan(assay.graph, synth.schedule,
                                      synth.placement.placement, 18, 18,
                                      persist);
  ASSERT_TRUE(cold.success) << cold.failure_reason;
  ASSERT_TRUE(warm.success) << warm.failure_reason;
  EXPECT_EQ(warm.changeovers.size(), cold.changeovers.size());
  EXPECT_GE(cold.negotiation_rounds, 0);
  EXPECT_GE(warm.negotiation_rounds, 0);

  // The warm-started plan still honours every fluidic constraint.
  const auto problems = routing::extract_problems(
      assay.graph, synth.schedule, synth.placement.placement, 18, 18);
  ASSERT_EQ(problems.size(), warm.changeovers.size());
  for (std::size_t c = 0; c < problems.size(); ++c) {
    EXPECT_TRUE(
        validate_changeover(warm.changeovers[c], problems[c].blocked)
            .empty())
        << "changeover " << c;
  }
  // Determinism: persistence is deterministic too.
  const RoutePlan warm2 = router->plan(assay.graph, synth.schedule,
                                       synth.placement.placement, 18, 18,
                                       persist);
  EXPECT_EQ(warm2.total_steps, warm.total_steps);
  EXPECT_EQ(warm2.negotiation_rounds, warm.negotiation_rounds);
}

}  // namespace
}  // namespace dmfb
