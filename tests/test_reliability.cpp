// Tests for the reliability analysis (sim/reliability.h): analytic
// single-fault survival, multi-fault recovery, and Monte Carlo bounds.
#include "sim/reliability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"

namespace dmfb {
namespace {

Schedule single_module_schedule() {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};  // 4x4
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});
  return s;
}

TEST(ReliabilityTest, ZeroFailureProbabilityIsCertainSurvival) {
  Placement p(single_module_schedule(), 8, 4);
  p.set_anchor(0, {0, 0});
  const auto r = single_fault_reliability(p, Rect{0, 0, 8, 4}, 0.0);
  EXPECT_DOUBLE_EQ(r.p_no_fault, 1.0);
  EXPECT_DOUBLE_EQ(r.survival_probability(), 1.0);
}

TEST(ReliabilityTest, FullCoverageSurvivesAnySingleFault) {
  // FTI = 1 region: survival = P(0 faults) + P(exactly 1 fault).
  Placement p(single_module_schedule(), 8, 4);
  p.set_anchor(0, {0, 0});
  const Rect array{0, 0, 8, 4};
  const double prob = 0.01;
  const auto r = single_fault_reliability(p, array, prob);
  const double n = 32.0;
  EXPECT_NEAR(r.p_no_fault, std::pow(1 - prob, n), 1e-12);
  EXPECT_NEAR(r.p_one_fault_survived,
              n * prob * std::pow(1 - prob, n - 1), 1e-12);
}

TEST(ReliabilityTest, ZeroFtiMeansOnlyNoFaultTermSurvives) {
  Placement p(single_module_schedule(), 4, 4);
  p.set_anchor(0, {0, 0});
  const auto r = single_fault_reliability(p, Rect{0, 0, 4, 4}, 0.01);
  EXPECT_DOUBLE_EQ(r.p_one_fault_survived, 0.0);
  EXPECT_LT(r.survival_probability(), 1.0);
}

TEST(ReliabilityTest, SurvivalDecreasesWithFailureProbability) {
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p = place_greedy(synth.schedule, 16, 16);
  const Rect array = p.bounding_box();
  double last = 1.1;
  for (const double prob : {0.001, 0.005, 0.02, 0.05}) {
    const double survival =
        single_fault_reliability(p, array, prob).survival_probability();
    EXPECT_LT(survival, last);
    last = survival;
  }
}

TEST(ReliabilityTest, MultiFaultRecoveryAvoidsAllFaults) {
  Placement p(single_module_schedule(), 12, 4);
  p.set_anchor(0, {0, 0});
  const Rect array{0, 0, 12, 4};
  const Reconfigurator reconfig;
  const std::vector<Point> faults{{1, 1}, {5, 2}};
  const auto result = recover_from_defect_map(p, faults, array, reconfig);
  ASSERT_TRUE(result.success) << result.failure_reason;
  for (const Point& f : faults) {
    EXPECT_FALSE(result.placement.module(0).footprint().contains(f));
  }
  EXPECT_TRUE(result.placement.feasible());
}

TEST(ReliabilityTest, MultiFaultRecoveryFailsWhenFaultsBlockEverything) {
  // Faults spread so every 4x4 window of the 12x4 strip contains one.
  Placement p(single_module_schedule(), 12, 4);
  p.set_anchor(0, {0, 0});
  const Rect array{0, 0, 12, 4};
  const Reconfigurator reconfig;
  const std::vector<Point> faults{{2, 1}, {6, 2}, {10, 1}};
  const auto result = recover_from_defect_map(p, faults, array, reconfig);
  EXPECT_FALSE(result.success);
}

TEST(ReliabilityTest, MonteCarloAgreesWithAnalyticAtTinyP) {
  // With p so small that two faults are (almost) never sampled, the Monte
  // Carlo estimate must match the analytic single-fault survival closely.
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p = place_greedy(synth.schedule, 16, 16);
  const Rect array = p.bounding_box();
  const double prob = 0.002;
  Rng rng(7);
  const auto mc = monte_carlo_reliability(p, array, prob, 2000, rng);
  const auto analytic = single_fault_reliability(p, array, prob);
  EXPECT_NEAR(mc.survival_probability(), analytic.survival_probability(),
              0.03);
  EXPECT_EQ(mc.trials, 2000);
}

TEST(ReliabilityTest, MonteCarloZeroProbabilityAlwaysSurvives) {
  Placement p(single_module_schedule(), 4, 4);
  p.set_anchor(0, {0, 0});
  Rng rng(9);
  const auto mc =
      monte_carlo_reliability(p, Rect{0, 0, 4, 4}, 0.0, 100, rng);
  EXPECT_EQ(mc.survived, 100);
  EXPECT_DOUBLE_EQ(mc.mean_faults_per_trial, 0.0);
}

TEST(ReliabilityTest, MeanFaultsTracksExpectation) {
  Placement p(single_module_schedule(), 8, 8);
  p.set_anchor(0, {0, 0});
  const Rect array{0, 0, 8, 8};
  const double prob = 0.05;
  Rng rng(11);
  const auto mc = monte_carlo_reliability(p, array, prob, 3000, rng);
  EXPECT_NEAR(mc.mean_faults_per_trial, 64.0 * prob, 0.3);
}

}  // namespace
}  // namespace dmfb
