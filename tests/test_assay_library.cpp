// Tests for the benchmark assays (assay/assay_library.h): the PCR case
// must match Fig. 5 + Table 1 of the paper exactly.
#include "assay/assay_library.h"

#include <gtest/gtest.h>

#include "assay/synthesis.h"

namespace dmfb {
namespace {

TEST(PcrGraphTest, MatchesFigure5Structure) {
  const auto g = pcr_mixing_graph();
  // 8 dispenses + 7 mixes + 1 output.
  EXPECT_EQ(g.operation_count(), 16);
  EXPECT_EQ(g.sources().size(), 8u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_TRUE(g.is_acyclic());
  // Binary tree depth: dispense -> leaf mix -> mid mix -> root mix -> out.
  EXPECT_EQ(g.longest_path_length(), 5);
  EXPECT_EQ(g.reconfigurable_operations().size(), 7u);
}

TEST(PcrGraphTest, MixTreeDependencies) {
  const auto g = pcr_mixing_graph();
  // Find labelled operations.
  auto by_label = [&](const std::string& label) {
    for (const auto& op : g.operations()) {
      if (op.label == label) return op.id;
    }
    return OperationId{-1};
  };
  const auto m5 = by_label("M5");
  const auto m7 = by_label("M7");
  ASSERT_GE(m5, 0);
  ASSERT_GE(m7, 0);
  // M5's predecessors are M1 and M2.
  std::vector<std::string> pred_labels;
  for (const auto pred : g.predecessors(m5)) {
    pred_labels.push_back(g.operation(pred).label);
  }
  EXPECT_EQ(pred_labels, (std::vector<std::string>{"M1", "M2"}));
  // M7 is the root: successors contain only the output.
  ASSERT_EQ(g.successors(m7).size(), 1u);
  EXPECT_EQ(g.operation(g.successors(m7).front()).type,
            OperationType::kOutput);
}

TEST(PcrBindingTest, MatchesTable1) {
  const auto g = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(g);
  ASSERT_EQ(binding.size(), 7u);

  // Expected (footprint w x h, duration) for M1..M7 per Table 1.
  struct Row {
    const char* label;
    int w, h;
    double duration;
  };
  const Row rows[] = {
      {"M1", 4, 4, 10.0}, {"M2", 3, 6, 5.0}, {"M3", 4, 5, 6.0},
      {"M4", 3, 6, 5.0},  {"M5", 3, 6, 5.0}, {"M6", 4, 4, 10.0},
      {"M7", 4, 6, 3.0},
  };
  for (const auto& row : rows) {
    OperationId id = -1;
    for (const auto& op : g.operations()) {
      if (op.label == row.label) id = op.id;
    }
    ASSERT_GE(id, 0) << row.label;
    const auto it = binding.find(id);
    ASSERT_NE(it, binding.end()) << row.label;
    EXPECT_EQ(it->second.footprint_width(), row.w) << row.label;
    EXPECT_EQ(it->second.footprint_height(), row.h) << row.label;
    EXPECT_DOUBLE_EQ(it->second.duration_s, row.duration) << row.label;
  }
}

TEST(PcrAssayTest, SynthesizesWithTwoConcurrentMixers) {
  const auto assay = pcr_mixing_assay();
  EXPECT_EQ(assay.scheduler_options.constraints.max_concurrent_modules, 2);
  const auto result = synthesize_with_binding(assay.graph, assay.binding,
                                              assay.scheduler_options);
  EXPECT_TRUE(result.schedule.validate_against(assay.graph).empty());
  EXPECT_GT(result.makespan_s, 0.0);
  // Peak concurrent area must stay below the paper's 63-cell chip.
  EXPECT_LE(result.peak_concurrent_cells, 63);
}

TEST(MultiplexedAssayTest, StructureScalesWithSamplesAndReagents) {
  const auto lib = ModuleLibrary::standard();
  for (int samples : {1, 2, 3}) {
    for (int reagents : {1, 2}) {
      const auto assay = multiplexed_diagnostics_assay(samples, reagents, lib);
      const int pairs = samples * reagents;
      // 2 dispenses + mix + detect + output per pair.
      EXPECT_EQ(assay.graph.operation_count(), pairs * 5);
      EXPECT_EQ(static_cast<int>(assay.binding.size()), pairs * 2);
      EXPECT_TRUE(assay.graph.is_acyclic());
      const auto result = synthesize_with_binding(assay.graph, assay.binding,
                                                  assay.scheduler_options);
      EXPECT_TRUE(result.schedule.validate_against(assay.graph).empty());
    }
  }
}

TEST(MultiplexedAssayTest, RejectsBadCounts) {
  const auto lib = ModuleLibrary::standard();
  EXPECT_THROW(multiplexed_diagnostics_assay(0, 2, lib),
               std::invalid_argument);
  EXPECT_THROW(multiplexed_diagnostics_assay(2, -1, lib),
               std::invalid_argument);
}

TEST(ProteinDilutionTest, TreeGrowsWithLevels) {
  const auto lib = ModuleLibrary::standard();
  const auto one = protein_dilution_assay(1, lib);
  const auto three = protein_dilution_assay(3, lib);
  EXPECT_GT(three.graph.operation_count(), one.graph.operation_count());
  EXPECT_TRUE(three.graph.is_acyclic());
  // Dilutor count: 1 + 2 + 4 = 7 for three levels.
  int dilutors = 0;
  for (const auto& op : three.graph.operations()) {
    if (op.type == OperationType::kDilute) ++dilutors;
  }
  EXPECT_EQ(dilutors, 7);
  const auto result = synthesize_with_binding(three.graph, three.binding,
                                              three.scheduler_options);
  EXPECT_TRUE(result.schedule.validate_against(three.graph).empty());
}

TEST(ProteinDilutionTest, RejectsBadLevels) {
  const auto lib = ModuleLibrary::standard();
  EXPECT_THROW(protein_dilution_assay(0, lib), std::invalid_argument);
  EXPECT_THROW(protein_dilution_assay(7, lib), std::invalid_argument);
}

TEST(SynthesisTest, AutoBindingFlow) {
  const auto lib = ModuleLibrary::standard();
  const auto graph = pcr_mixing_graph();
  SynthesisOptions options;
  options.binding_policy = BindingPolicy::kFastest;
  const auto result = synthesize(graph, lib, options);
  EXPECT_EQ(result.binding.size(), 7u);
  EXPECT_TRUE(result.schedule.validate_against(graph).empty());
  EXPECT_GT(result.peak_concurrent_cells, 0);
}

TEST(SynthesisTest, GanttRendersEveryModule) {
  const auto assay = pcr_mixing_assay();
  const auto result = synthesize_with_binding(assay.graph, assay.binding,
                                              assay.scheduler_options);
  const std::string gantt = render_gantt(result.schedule);
  for (const auto& m : result.schedule.modules()) {
    EXPECT_NE(gantt.find(m.label), std::string::npos) << m.label;
  }
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

}  // namespace
}  // namespace dmfb
