// Tests for fault injection and the detect-reconfigure-resume loop
// (sim/fault.h, sim/recovery.h). The headline property: the exhaustive
// fault campaign (real reconfiguration engine) must agree exactly with
// the FTI evaluator the placer optimizes.
#include "sim/recovery.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"
#include "core/two_stage_placer.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace dmfb {
namespace {

struct PcrSetup {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
};

PcrSetup pcr_setup(int canvas = 16) {
  const auto assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, canvas, canvas);
  return PcrSetup{assay.graph, std::move(synth.schedule),
                  std::move(placement)};
}

TEST(FaultTest, UniformSamplerStaysInArray) {
  Rng rng(3);
  const Rect array{2, 3, 5, 4};
  for (int i = 0; i < 500; ++i) {
    const Point p = sample_uniform_fault(array, rng);
    EXPECT_TRUE(array.contains(p));
  }
}

TEST(FaultTest, UniformSamplerHitsEveryCell) {
  Rng rng(5);
  const Rect array{0, 0, 4, 3};
  Matrix<int> hits(4, 3, 0);
  for (int i = 0; i < 5000; ++i) {
    const Point p = sample_uniform_fault(array, rng);
    ++hits.at(p);
  }
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(FaultTest, EmptyArrayThrows) {
  Rng rng(1);
  EXPECT_THROW(sample_uniform_fault(Rect{}, rng), std::invalid_argument);
}

TEST(FaultTest, EnumerateCellsRowMajor) {
  const auto cells = enumerate_cells(Rect{1, 1, 2, 2});
  EXPECT_EQ(cells, (std::vector<Point>{{1, 1}, {2, 1}, {1, 2}, {2, 2}}));
}

TEST(FaultTest, InjectAndClear) {
  Chip chip(4, 4);
  inject_fault(chip, Point{1, 2});
  inject_fault(chip, Point{3, 3});
  EXPECT_EQ(chip.faulty_count(), 2);
  clear_faults(chip);
  EXPECT_EQ(chip.faulty_count(), 0);
  EXPECT_THROW(inject_fault(chip, Point{9, 9}), std::out_of_range);
}

TEST(RecoveryTest, CampaignMatchesFtiExactly) {
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const Reconfigurator reconfig;
  const auto campaign =
      exhaustive_fault_campaign(setup.placement, array, reconfig);
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);
  EXPECT_EQ(campaign.total_cells, fti.total_cells);
  EXPECT_EQ(campaign.survivable_cells, fti.covered_cells);
  EXPECT_DOUBLE_EQ(campaign.survivable_fraction(), fti.fti());
  // Unsurvivable cells are exactly the uncovered ones.
  for (const Point& cell : campaign.unsurvivable) {
    EXPECT_EQ(fti.covered.at(cell.x - array.x, cell.y - array.y), 0);
  }
}

TEST(RecoveryTest, CampaignMatchesFtiOnTwoStagePlacement) {
  const auto setup = pcr_setup();
  TwoStageOptions options;
  options.beta = 30.0;
  options.stage1.schedule.iterations_per_module = 60;
  options.stage1.schedule.initial_temperature = 1000.0;
  options.stage1.schedule.cooling_rate = 0.8;
  options.ltsa.iterations_per_module = 60;
  options.ltsa.cooling_rate = 0.8;
  const auto outcome = place_two_stage(setup.schedule, options);
  const Rect array = outcome.stage2.placement.bounding_box();
  const Reconfigurator reconfig;
  const auto campaign =
      exhaustive_fault_campaign(outcome.stage2.placement, array, reconfig);
  const FtiResult fti = evaluate_fti(outcome.stage2.placement, {}, array);
  EXPECT_EQ(campaign.survivable_cells, fti.covered_cells);
}

TEST(RecoveryTest, OnlineRecoveryFromCoveredCell) {
  const auto setup = pcr_setup(20);
  const Rect array{0, 0, 20, 20};  // plenty of spare room
  const Reconfigurator reconfig;

  // Pick the center of module 0 — with a 20x20 array it must be covered.
  const Rect fp = setup.placement.module(0).footprint();
  const Point fault{fp.x + fp.width / 2, fp.y + fp.height / 2};

  const auto result = simulate_online_recovery(
      setup.graph, setup.schedule, setup.placement, fault, array, reconfig);
  EXPECT_TRUE(result.fault_hit);
  EXPECT_TRUE(result.recovered) << result.detail;
  EXPECT_TRUE(result.completed) << result.detail;
  EXPECT_FALSE(result.reconfiguration.relocations.empty());
  // The relocated module avoids the fault.
  for (const auto& relocation : result.reconfiguration.relocations) {
    const auto& m =
        result.reconfiguration.placement.module(relocation.module_index);
    EXPECT_FALSE(m.footprint().contains(fault));
  }
}

TEST(RecoveryTest, HarmlessFaultNeedsNoRecovery) {
  const auto setup = pcr_setup(20);
  const Rect array{0, 0, 20, 20};
  const Reconfigurator reconfig;
  const auto result = simulate_online_recovery(
      setup.graph, setup.schedule, setup.placement, Point{19, 19}, array,
      reconfig);
  EXPECT_FALSE(result.fault_hit);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.reconfiguration.relocations.empty());
}

TEST(RecoveryTest, UnrecoverableWhenArrayIsTight) {
  // Clamp the array to exactly the bounding box of a greedy placement and
  // fault a cell the FTI evaluator calls uncovered: recovery must fail.
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);
  Point uncovered{-1, -1};
  for (const Point& cell : enumerate_cells(array)) {
    if (fti.covered.at(cell.x - array.x, cell.y - array.y) == 0) {
      uncovered = cell;
      break;
    }
  }
  ASSERT_GE(uncovered.x, 0) << "placement is fully covered; pick another";
  const Reconfigurator reconfig;
  const auto result = simulate_online_recovery(
      setup.graph, setup.schedule, setup.placement, uncovered, array,
      reconfig);
  EXPECT_TRUE(result.fault_hit);
  EXPECT_FALSE(result.recovered);
  EXPECT_FALSE(result.completed);
}

TEST(RecoveryTest, RandomFaultsEitherRecoverOrAreUncovered) {
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const Reconfigurator reconfig;
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);
  Rng rng(31);
  for (int i = 0; i < 25; ++i) {
    const Point fault = sample_uniform_fault(array, rng);
    const auto result = simulate_online_recovery(
        setup.graph, setup.schedule, setup.placement, fault, array,
        reconfig);
    const bool covered =
        fti.covered.at(fault.x - array.x, fault.y - array.y) != 0;
    bool inside_module = false;
    for (const auto& m : setup.placement.modules()) {
      inside_module = inside_module || m.footprint().contains(fault);
    }
    if (inside_module) {
      // The assay must stall on this fault, and reconfiguration succeeds
      // exactly for covered cells. (Whether the re-run also completes
      // depends on droplet routability, which FTI — like the paper —
      // does not model; the spacious-array test above asserts it.)
      EXPECT_TRUE(result.fault_hit);
      EXPECT_EQ(result.recovered, covered)
          << "fault (" << fault.x << "," << fault.y << ")";
    } else {
      // Free cell: covered by definition.
      EXPECT_TRUE(covered);
    }
  }
}

}  // namespace
}  // namespace dmfb
