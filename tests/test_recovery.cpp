// Tests for fault injection and the detect-reconfigure-resume loop
// (sim/fault.h, sim/recovery.h). The headline property: the exhaustive
// fault campaign (real reconfiguration engine) must agree exactly with
// the FTI evaluator the placer optimizes.
#include "sim/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"
#include "core/two_stage_placer.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace dmfb {
namespace {

struct PcrSetup {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
};

PcrSetup pcr_setup(int canvas = 16) {
  const auto assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, canvas, canvas);
  return PcrSetup{assay.graph, std::move(synth.schedule),
                  std::move(placement)};
}

TEST(FaultTest, UniformSamplerStaysInArray) {
  Rng rng(3);
  const Rect array{2, 3, 5, 4};
  for (int i = 0; i < 500; ++i) {
    const Point p = sample_uniform_fault(array, rng);
    EXPECT_TRUE(array.contains(p));
  }
}

TEST(FaultTest, UniformSamplerHitsEveryCell) {
  Rng rng(5);
  const Rect array{0, 0, 4, 3};
  Matrix<int> hits(4, 3, 0);
  for (int i = 0; i < 5000; ++i) {
    const Point p = sample_uniform_fault(array, rng);
    ++hits.at(p);
  }
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(FaultTest, EmptyArrayThrows) {
  Rng rng(1);
  EXPECT_THROW(sample_uniform_fault(Rect{}, rng), std::invalid_argument);
}

TEST(FaultTest, EnumerateCellsRowMajor) {
  const auto cells = enumerate_cells(Rect{1, 1, 2, 2});
  EXPECT_EQ(cells, (std::vector<Point>{{1, 1}, {2, 1}, {1, 2}, {2, 2}}));
}

TEST(FaultTest, InjectAndClear) {
  Chip chip(4, 4);
  inject_fault(chip, Point{1, 2});
  inject_fault(chip, Point{3, 3});
  EXPECT_EQ(chip.faulty_count(), 2);
  clear_faults(chip);
  EXPECT_EQ(chip.faulty_count(), 0);
  EXPECT_THROW(inject_fault(chip, Point{9, 9}), std::out_of_range);
}

TEST(RecoveryTest, CampaignMatchesFtiExactly) {
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const Reconfigurator reconfig;
  const auto campaign =
      exhaustive_fault_campaign(setup.placement, array, reconfig);
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);
  EXPECT_EQ(campaign.total_cells, fti.total_cells);
  EXPECT_EQ(campaign.survivable_cells, fti.covered_cells);
  EXPECT_DOUBLE_EQ(campaign.survivable_fraction(), fti.fti());
  // Unsurvivable cells are exactly the uncovered ones.
  for (const Point& cell : campaign.unsurvivable) {
    EXPECT_EQ(fti.covered.at(cell.x - array.x, cell.y - array.y), 0);
  }
}

TEST(RecoveryTest, CampaignMatchesFtiOnTwoStagePlacement) {
  const auto setup = pcr_setup();
  TwoStageOptions options;
  options.beta = 30.0;
  options.stage1.schedule.iterations_per_module = 60;
  options.stage1.schedule.initial_temperature = 1000.0;
  options.stage1.schedule.cooling_rate = 0.8;
  options.ltsa.iterations_per_module = 60;
  options.ltsa.cooling_rate = 0.8;
  const auto outcome = place_two_stage(setup.schedule, options);
  const Rect array = outcome.stage2.placement.bounding_box();
  const Reconfigurator reconfig;
  const auto campaign =
      exhaustive_fault_campaign(outcome.stage2.placement, array, reconfig);
  const FtiResult fti = evaluate_fti(outcome.stage2.placement, {}, array);
  EXPECT_EQ(campaign.survivable_cells, fti.covered_cells);
}

TEST(RecoveryTest, OnlineRecoveryFromCoveredCell) {
  const auto setup = pcr_setup(20);
  const Rect array{0, 0, 20, 20};  // plenty of spare room
  const Reconfigurator reconfig;

  // Pick the center of module 0 — with a 20x20 array it must be covered.
  const Rect fp = setup.placement.module(0).footprint();
  const Point fault{fp.x + fp.width / 2, fp.y + fp.height / 2};

  const auto result = simulate_online_recovery(
      setup.graph, setup.schedule, setup.placement, fault, array, reconfig);
  EXPECT_TRUE(result.fault_hit);
  EXPECT_TRUE(result.recovered) << result.detail;
  EXPECT_TRUE(result.completed) << result.detail;
  EXPECT_FALSE(result.reconfiguration.relocations.empty());
  // The relocated module avoids the fault.
  for (const auto& relocation : result.reconfiguration.relocations) {
    const auto& m =
        result.reconfiguration.placement.module(relocation.module_index);
    EXPECT_FALSE(m.footprint().contains(fault));
  }
}

TEST(RecoveryTest, HarmlessFaultNeedsNoRecovery) {
  const auto setup = pcr_setup(20);
  const Rect array{0, 0, 20, 20};
  const Reconfigurator reconfig;
  const auto result = simulate_online_recovery(
      setup.graph, setup.schedule, setup.placement, Point{19, 19}, array,
      reconfig);
  EXPECT_FALSE(result.fault_hit);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.reconfiguration.relocations.empty());
}

TEST(RecoveryTest, UnrecoverableWhenArrayIsTight) {
  // Clamp the array to exactly the bounding box of a greedy placement and
  // fault a cell the FTI evaluator calls uncovered: recovery must fail.
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);
  Point uncovered{-1, -1};
  for (const Point& cell : enumerate_cells(array)) {
    if (fti.covered.at(cell.x - array.x, cell.y - array.y) == 0) {
      uncovered = cell;
      break;
    }
  }
  ASSERT_GE(uncovered.x, 0) << "placement is fully covered; pick another";
  const Reconfigurator reconfig;
  const auto result = simulate_online_recovery(
      setup.graph, setup.schedule, setup.placement, uncovered, array,
      reconfig);
  EXPECT_TRUE(result.fault_hit);
  EXPECT_FALSE(result.recovered);
  EXPECT_FALSE(result.completed);
}

TEST(RecoveryTest, RandomFaultsEitherRecoverOrAreUncovered) {
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const Reconfigurator reconfig;
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);
  Rng rng(31);
  for (int i = 0; i < 25; ++i) {
    const Point fault = sample_uniform_fault(array, rng);
    const auto result = simulate_online_recovery(
        setup.graph, setup.schedule, setup.placement, fault, array,
        reconfig);
    const bool covered =
        fti.covered.at(fault.x - array.x, fault.y - array.y) != 0;
    bool inside_module = false;
    for (const auto& m : setup.placement.modules()) {
      inside_module = inside_module || m.footprint().contains(fault);
    }
    if (inside_module) {
      // The assay must stall on this fault, and reconfiguration succeeds
      // exactly for covered cells. (Whether the re-run also completes
      // depends on droplet routability, which FTI — like the paper —
      // does not model; the spacious-array test above asserts it.)
      EXPECT_TRUE(result.fault_hit);
      EXPECT_EQ(result.recovered, covered)
          << "fault (" << fault.x << "," << fault.y << ")";
    } else {
      // Free cell: covered by definition.
      EXPECT_TRUE(covered);
    }
  }
}

// ---- online recovery engine ------------------------------------------

/// A (module, cell) pair used as a fault-injection target.
struct UniqueCellVictim {
  int module = -1;
  Point cell{};
};

ModuleSpec mixer_2x2() {
  ModuleSpec spec;
  spec.name = "2x2-array mixer";
  spec.kind = ModuleKind::kMixer;
  spec.functional_width = 2;
  spec.functional_height = 2;
  spec.duration_s = 4.0;
  return spec;
}

ScheduledModule scheduled(OperationId op, std::string label, ModuleSpec spec,
                          double start, double end) {
  ScheduledModule m;
  m.op_id = op;
  m.label = std::move(label);
  m.spec = std::move(spec);
  m.start_s = start;
  m.end_s = end;
  return m;
}

/// A three-mix chain (A -> B -> C) with spatially separated modules on a
/// 24x24 canvas, so every cell is owned by exactly one module and a
/// mid-run fault disturbs exactly one operation. The greedy PCR
/// placement cannot serve here: it time-multiplexes cells across
/// modules, so no uniquely-owned cell exists.
struct ChainSetup {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
};

ChainSetup chain_setup() {
  ChainSetup s;
  const OperationId a = s.graph.add_operation(OperationType::kMix, "A");
  const OperationId b = s.graph.add_operation(OperationType::kMix, "B");
  const OperationId c = s.graph.add_operation(OperationType::kMix, "C");
  s.graph.add_dependency(a, b);
  s.graph.add_dependency(b, c);
  s.schedule.add(scheduled(a, "MA", mixer_2x2(), 0.0, 4.0));
  s.schedule.add(scheduled(b, "MB", mixer_2x2(), 10.0, 14.0));
  s.schedule.add(scheduled(c, "MC", mixer_2x2(), 20.0, 24.0));
  Placement placement(s.schedule, 24, 24);
  placement.set_position(0, Point{1, 1}, false);    // footprint (1,1)-(4,4)
  placement.set_position(1, Point{10, 10}, false);  // (10,10)-(13,13)
  placement.set_position(2, Point{1, 10}, false);   // (1,10)-(4,13)
  s.placement = std::move(placement);
  return s;
}

TEST(OnlineRecoveryTest, EmptyPlanCompletesWithoutRecovery) {
  const auto setup = pcr_setup(20);
  const OnlineRecoveryEngine engine;
  const auto out = engine.run(setup.graph, setup.schedule, setup.placement,
                              Rect{0, 0, 20, 20}, FaultInjectionPlan{});
  EXPECT_TRUE(out.simulation.success);
  EXPECT_TRUE(out.recovery.completed);
  EXPECT_FALSE(out.recovery.recovered);
  EXPECT_EQ(out.recovery.faults_injected, 0);
  EXPECT_EQ(out.recovery.recovery_cycles, 0);
  EXPECT_FALSE(out.last_checkpoint.valid);
}

TEST(OnlineRecoveryTest, MidRunFaultReconfiguresAndResumes) {
  const auto setup = chain_setup();
  const Rect array{0, 0, 24, 24};
  const UniqueCellVictim victim{1, Point{12, 12}};  // MB's site
  const ScheduledModule& vm = setup.schedule.module(victim.module);
  const double mid = 0.5 * (vm.start_s + vm.end_s);  // t = 12

  FaultInjectionPlan plan;
  plan.faults.push_back(PlannedFault{victim.cell, mid, -1});

  const OnlineRecoveryEngine engine;
  const auto out =
      engine.run(setup.graph, setup.schedule, setup.placement, array, plan);

  EXPECT_TRUE(out.recovery.completed) << out.recovery.detail;
  EXPECT_TRUE(out.recovery.recovered);
  EXPECT_EQ(out.recovery.faults_injected, 1);
  EXPECT_EQ(out.recovery.recovery_cycles, 1);
  ASSERT_FALSE(out.recovery.attempts.empty());
  EXPECT_EQ(out.recovery.attempts.front().action,
            RecoveryAction::kReconfigure);
  EXPECT_TRUE(out.recovery.attempts.front().success);
  EXPECT_FALSE(out.recovery.attempts.front().relocations.empty());
  EXPECT_EQ(out.recovery.resumed_from_s, mid);

  // Escalation repaired the placement: nothing sits on the fault.
  for (const auto& m : out.final_placement.modules()) {
    EXPECT_FALSE(m.footprint().contains(victim.cell));
  }

  // The merged simulation reads as one continuous execution whose
  // completed prefix is bit-identical to the uninterrupted run, with the
  // detection and repair markers spliced in at the failure instant.
  EventSimEngine baseline_engine;
  const auto baseline = baseline_engine.run(setup.graph, setup.schedule,
                                            setup.placement, Chip(24, 24));
  ASSERT_TRUE(baseline.result.success);
  const std::size_t prefix = out.recovery.clean_prefix_events;
  ASSERT_LE(prefix, out.simulation.events.size());
  ASSERT_LE(prefix, baseline.result.events.size());
  for (std::size_t i = 0; i < prefix; ++i) {
    EXPECT_EQ(out.simulation.events[i].time_s,
              baseline.result.events[i].time_s);
    EXPECT_EQ(out.simulation.events[i].what, baseline.result.events[i].what);
  }
  bool saw_failure = false;
  bool saw_marker = false;
  for (const SimEvent& event : out.simulation.events) {
    saw_failure =
        saw_failure || event.what.find("contains faulty cell") !=
                           std::string::npos;
    saw_marker = saw_marker ||
                 event.what.find("recovery: reconfigure") != std::string::npos;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_marker);

  // Only the interrupted operation's time was lost: makespan slips by
  // exactly the rolled-back work.
  EXPECT_NEAR(out.recovery.time_lost_s, mid - vm.start_s, 1e-9);
  EXPECT_NEAR(out.simulation.makespan_s,
              baseline.result.makespan_s + out.recovery.time_lost_s, 1e-9);
  // Every operation still produced its droplet.
  EXPECT_EQ(out.simulation.op_outputs.size(),
            baseline.result.op_outputs.size());
}

TEST(OnlineRecoveryTest, ReplaceRungWhenReconfigureDisabled) {
  const auto setup = chain_setup();
  const UniqueCellVictim victim{1, Point{12, 12}};
  const ScheduledModule& vm = setup.schedule.module(victim.module);

  FaultInjectionPlan plan;
  plan.faults.push_back(
      PlannedFault{victim.cell, 0.5 * (vm.start_s + vm.end_s), -1});

  RecoveryOptions options;
  options.enable_reconfigure = false;  // force escalation to the top rung
  options.enable_reroute = false;
  const OnlineRecoveryEngine engine(options);
  const auto out = engine.run(setup.graph, setup.schedule, setup.placement,
                              Rect{0, 0, 24, 24}, plan);
  EXPECT_TRUE(out.recovery.completed) << out.recovery.detail;
  ASSERT_FALSE(out.recovery.attempts.empty());
  bool replaced = false;
  for (const auto& attempt : out.recovery.attempts) {
    EXPECT_NE(attempt.action, RecoveryAction::kReconfigure);
    replaced = replaced || (attempt.action == RecoveryAction::kReplace &&
                            attempt.success);
  }
  EXPECT_TRUE(replaced);
  for (const auto& m : out.final_placement.modules()) {
    EXPECT_FALSE(m.footprint().contains(victim.cell));
  }
}

TEST(OnlineRecoveryTest, DegradesGracefullyWhenLadderExhausted) {
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);
  // A mid-run fault on an uncovered cell with every repair rung disabled:
  // the engine must hand back a partial result plus diagnostics, not
  // throw or spin.
  UniqueCellVictim victim;
  for (int i = 0; i < setup.placement.module_count() && victim.module < 0;
       ++i) {
    const Rect fp = setup.placement.module(i).footprint();
    const ScheduledModule& sm = setup.schedule.module(i);
    if (sm.end_s <= sm.start_s) continue;
    for (const Point& cell : enumerate_cells(fp.intersection(array))) {
      if (fti.covered.at(cell.x - array.x, cell.y - array.y) == 0) {
        victim = UniqueCellVictim{i, cell};
        break;
      }
    }
  }
  ASSERT_GE(victim.module, 0) << "placement fully covered";
  const ScheduledModule& vm = setup.schedule.module(victim.module);

  FaultInjectionPlan plan;
  plan.faults.push_back(
      PlannedFault{victim.cell, 0.5 * (vm.start_s + vm.end_s), -1});

  RecoveryOptions options;
  options.enable_reroute = false;
  options.enable_replace = false;
  const OnlineRecoveryEngine engine(options);
  const auto out = engine.run(setup.graph, setup.schedule, setup.placement,
                              array, plan);
  EXPECT_FALSE(out.recovery.completed);
  EXPECT_FALSE(out.simulation.success);
  EXPECT_EQ(out.recovery.faults_injected, 1);
  EXPECT_TRUE(out.last_checkpoint.valid);
  EXPECT_NE(out.recovery.detail.find("ladder exhausted"), std::string::npos)
      << out.recovery.detail;
  ASSERT_FALSE(out.recovery.attempts.empty());
  EXPECT_FALSE(out.recovery.attempts.back().success);
}

TEST(OnlineRecoveryTest, TwoFaultsTwoCycles) {
  const auto setup = chain_setup();
  const Rect array{0, 0, 24, 24};
  // Fault 1 hits MB mid-run (concurrent detection). Fault 2 lands on
  // MC's site at its nominal start instant; by then MC has been retimed
  // past it, so the fault is latent until MC's start-scan catches it —
  // both detection paths are exercised, two recovery cycles total.
  FaultInjectionPlan plan;
  plan.faults.push_back(PlannedFault{Point{12, 12}, 12.0, -1});  // MB
  plan.faults.push_back(PlannedFault{Point{3, 12}, 20.0, -1});   // MC

  const OnlineRecoveryEngine engine;
  const auto out =
      engine.run(setup.graph, setup.schedule, setup.placement, array, plan);
  EXPECT_TRUE(out.recovery.completed) << out.recovery.detail;
  EXPECT_EQ(out.recovery.faults_injected, 2);
  EXPECT_GE(out.recovery.recovery_cycles, 2);
  EXPECT_TRUE(out.recovery.recovered);
}

TEST(OnlineRecoveryTest, SampledPlansAreSortedAndInBounds) {
  Rng rng(11);
  const Rect array{0, 0, 16, 16};
  const auto plan = sample_fault_plan(array, 8, 40.0, rng);
  ASSERT_EQ(plan.faults.size(), 8u);
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    EXPECT_TRUE(array.contains(plan.faults[i].cell));
    EXPECT_GE(plan.faults[i].time_s, 0.0);
    EXPECT_LT(plan.faults[i].time_s, 40.0);
    if (i > 0) {
      EXPECT_GE(plan.faults[i].time_s, plan.faults[i - 1].time_s);
    }
  }
  EXPECT_THROW(sample_fault_plan(array, -1, 40.0, rng),
               std::invalid_argument);
}

TEST(OnlineRecoveryTest, SingleFaultCampaignConsistentWithFti) {
  // For faults injected at a module's own mid-run instant, online
  // survivability via the reconfigure rung must match the FTI
  // prediction: covered cells recover, uncovered cells (with the ladder
  // capped at rung 1) do not.
  const auto setup = pcr_setup();
  const Rect array = setup.placement.bounding_box();
  const FtiResult fti = evaluate_fti(setup.placement, {}, array);

  RecoveryOptions options;
  options.enable_reroute = false;
  options.enable_replace = false;
  const OnlineRecoveryEngine engine(options);

  Rng rng(1031);
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 12; ++trial) {
    const Point cell = sample_uniform_fault(array, rng);
    // Find the first module whose footprint holds the cell; inject at
    // its mid-run instant so detection is the concurrent-testing path.
    int owner = -1;
    for (int i = 0; i < setup.placement.module_count(); ++i) {
      if (setup.placement.module(i).footprint().contains(cell) &&
          setup.schedule.module(i).end_s > setup.schedule.module(i).start_s) {
        owner = i;
        break;
      }
    }
    if (owner < 0) continue;
    ++checked;
    const ScheduledModule& sm = setup.schedule.module(owner);
    FaultInjectionPlan plan;
    plan.faults.push_back(
        PlannedFault{cell, 0.5 * (sm.start_s + sm.end_s), -1});
    const auto out = engine.run(setup.graph, setup.schedule, setup.placement,
                                array, plan);
    const bool covered =
        fti.covered.at(cell.x - array.x, cell.y - array.y) != 0;
    EXPECT_EQ(out.recovery.recovered, covered)
        << "cell (" << cell.x << "," << cell.y << ")";
  }
  EXPECT_GE(checked, 1);
}

}  // namespace
}  // namespace dmfb
