// Unit tests for util/geometry.h: Rect algebra underpins every placement
// invariant, so it is tested exhaustively here.
#include "util/geometry.h"

#include <gtest/gtest.h>

namespace dmfb {
namespace {

TEST(PointTest, DistanceFunctions) {
  EXPECT_EQ(manhattan_distance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan_distance({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan_distance({-2, 5}, {2, 5}), 4);
  EXPECT_EQ(chebyshev_distance({0, 0}, {3, 4}), 4);
  EXPECT_EQ(chebyshev_distance({1, 1}, {2, 2}), 1);
  EXPECT_EQ(chebyshev_distance({1, 1}, {1, 1}), 0);
}

TEST(RectTest, AreaAndEmptiness) {
  EXPECT_EQ((Rect{0, 0, 4, 4}.area()), 16);
  EXPECT_EQ((Rect{2, 3, 3, 6}.area()), 18);
  EXPECT_TRUE((Rect{}.empty()));
  EXPECT_TRUE((Rect{1, 1, 0, 5}.empty()));
  EXPECT_FALSE((Rect{1, 1, 1, 1}.empty()));
}

TEST(RectTest, ContainsPoint) {
  const Rect r{2, 3, 4, 5};
  EXPECT_TRUE(r.contains(Point{2, 3}));
  EXPECT_TRUE(r.contains(Point{5, 7}));
  EXPECT_FALSE(r.contains(Point{6, 7}));
  EXPECT_FALSE(r.contains(Point{5, 8}));
  EXPECT_FALSE(r.contains(Point{1, 3}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{0, 0, 10, 10}));
  EXPECT_TRUE(outer.contains(Rect{3, 3, 2, 2}));
  EXPECT_FALSE(outer.contains(Rect{8, 8, 3, 3}));
  EXPECT_FALSE(outer.contains(Rect{}));  // empty rect is not contained
}

TEST(RectTest, IntersectionBasics) {
  const Rect a{0, 0, 4, 4};
  const Rect b{2, 2, 4, 4};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.intersection(b), (Rect{2, 2, 2, 2}));
  EXPECT_EQ(a.overlap_area(b), 4);
  EXPECT_EQ(b.overlap_area(a), 4);
}

TEST(RectTest, TouchingRectsDoNotIntersect) {
  const Rect a{0, 0, 4, 4};
  const Rect b{4, 0, 4, 4};  // shares the edge x = 4
  EXPECT_FALSE(a.intersects(b));
  EXPECT_EQ(a.overlap_area(b), 0);
  const Rect c{0, 4, 4, 4};  // shares the edge y = 4
  EXPECT_FALSE(a.intersects(c));
}

TEST(RectTest, IntersectionIsCommutativeOnExamples) {
  const Rect a{1, 2, 5, 3};
  const Rect b{3, 1, 4, 6};
  EXPECT_EQ(a.intersection(b), b.intersection(a));
}

TEST(RectTest, UnitedCoversBoth) {
  const Rect a{0, 0, 2, 2};
  const Rect b{5, 5, 2, 2};
  const Rect u = a.united(b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_EQ(u, (Rect{0, 0, 7, 7}));
}

TEST(RectTest, UnitedWithEmptyIsIdentity) {
  const Rect a{2, 3, 4, 5};
  EXPECT_EQ(a.united(Rect{}), a);
  EXPECT_EQ(Rect{}.united(a), a);
}

TEST(RectTest, InflatedGrowsEverySide) {
  const Rect a{3, 3, 2, 2};
  EXPECT_EQ(a.inflated(1), (Rect{2, 2, 4, 4}));
  EXPECT_EQ(a.inflated(0), a);
}

TEST(RectTest, RotatedSwapsDimensions) {
  const Rect a{1, 2, 3, 6};
  const Rect r = a.rotated();
  EXPECT_EQ(r.width, 6);
  EXPECT_EQ(r.height, 3);
  EXPECT_EQ(r.x, a.x);
  EXPECT_EQ(r.y, a.y);
  EXPECT_EQ(r.area(), a.area());
}

TEST(RectTest, WithinBounds) {
  EXPECT_TRUE((Rect{0, 0, 4, 4}.within_bounds(4, 4)));
  EXPECT_FALSE((Rect{1, 0, 4, 4}.within_bounds(4, 4)));
  EXPECT_FALSE((Rect{-1, 0, 2, 2}.within_bounds(4, 4)));
  EXPECT_TRUE((Rect{2, 2, 2, 2}.within_bounds(4, 4)));
}

TEST(RectTest, Streaming) {
  EXPECT_EQ(to_string(Rect{1, 2, 3, 4}), "[1, 2; 3x4]");
  EXPECT_EQ(to_string(Point{7, 9}), "(7, 9)");
}

// Property-style sweep: intersection area is symmetric, bounded by both
// areas, and consistent with intersects().
class RectPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RectPropertyTest, IntersectionInvariants) {
  const int seed = GetParam();
  // Tiny deterministic LCG; no <random> needed.
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 12345u;
  auto next = [&](int bound) {
    state = state * 1664525u + 1013904223u;
    return static_cast<int>((state >> 16) % static_cast<unsigned>(bound));
  };
  for (int i = 0; i < 100; ++i) {
    const Rect a{next(10), next(10), 1 + next(8), 1 + next(8)};
    const Rect b{next(10), next(10), 1 + next(8), 1 + next(8)};
    const long long area = a.overlap_area(b);
    EXPECT_EQ(area, b.overlap_area(a));
    EXPECT_LE(area, a.area());
    EXPECT_LE(area, b.area());
    EXPECT_EQ(area > 0, a.intersects(b));
    const Rect u = a.united(b);
    EXPECT_TRUE(u.contains(a));
    EXPECT_TRUE(u.contains(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace dmfb
