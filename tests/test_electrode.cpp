// Unit tests for the electrowetting actuation model (biochip/electrode.h).
#include "biochip/electrode.h"

#include <gtest/gtest.h>

namespace dmfb {
namespace {

TEST(ElectrodeTest, DefaultIsOffAndHealthy) {
  const Electrode e;
  EXPECT_EQ(e.voltage(), 0.0);
  EXPECT_FALSE(e.faulty());
  EXPECT_FALSE(e.actuated());
  EXPECT_EQ(e.droplet_velocity_cm_per_s(), 0.0);
}

TEST(ElectrodeTest, VoltageClampedToDriverRange) {
  Electrode e;
  e.set_voltage(120.0);
  EXPECT_EQ(e.voltage(), kMaxControlVoltage);
  e.set_voltage(-10.0);
  EXPECT_EQ(e.voltage(), kMinControlVoltage);
  e.set_voltage(45.0);
  EXPECT_EQ(e.voltage(), 45.0);
}

TEST(ElectrodeTest, ActuationRequiresThreshold) {
  Electrode e;
  e.set_voltage(kActuationThresholdVoltage - 1.0);
  EXPECT_FALSE(e.actuated());
  e.set_voltage(kActuationThresholdVoltage);
  EXPECT_TRUE(e.actuated());
}

TEST(ElectrodeTest, FaultyElectrodeNeverActuates) {
  Electrode e;
  e.set_voltage(kMaxControlVoltage);
  EXPECT_TRUE(e.actuated());
  e.set_faulty(true);
  EXPECT_FALSE(e.actuated());
  EXPECT_EQ(e.droplet_velocity_cm_per_s(), 0.0);
  e.set_faulty(false);
  EXPECT_TRUE(e.actuated());
}

TEST(ElectrodeTest, VelocityPeaksAtMaxVoltage) {
  Electrode e;
  e.set_voltage(kMaxControlVoltage);
  EXPECT_DOUBLE_EQ(e.droplet_velocity_cm_per_s(), kMaxDropletVelocityCmPerS);
}

TEST(ElectrodeTest, VelocityIsMonotoneInVoltage) {
  Electrode e;
  double last = 0.0;
  for (double v = kActuationThresholdVoltage; v <= kMaxControlVoltage;
       v += 5.0) {
    e.set_voltage(v);
    const double velocity = e.droplet_velocity_cm_per_s();
    EXPECT_GT(velocity, last);
    last = velocity;
  }
  EXPECT_LE(last, kMaxDropletVelocityCmPerS + 1e-12);
}

TEST(ElectrodeTest, VelocityZeroBelowThreshold) {
  Electrode e;
  e.set_voltage(kActuationThresholdVoltage / 2.0);
  EXPECT_EQ(e.droplet_velocity_cm_per_s(), 0.0);
}

}  // namespace
}  // namespace dmfb
