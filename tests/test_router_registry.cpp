// Tests for the polymorphic router interface and its string-keyed
// registry (sim/router_backend.h). The fluidic-constraint scenarios —
// merge-at-same-target exemption, the 2-cell Chebyshev dynamic rule
// against *previous* positions, and a forced yield at a crossing — run
// identically against every registered backend (the shared conformance
// suite, like test_placer_registry). This file compiles without
// DMFB_SUPPRESS_DEPRECATION on purpose: the new API must be usable
// without touching any deprecated free function.
#include "sim/router_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "assay/random_assay.h"
#include "assay/scheduler.h"

namespace dmfb {
namespace {

struct RoutingCase {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
  int chip = 16;
};

/// Plan + validate every changeover against the fluidic constraints,
/// using the authoritative blocked grids from routing::extract_problems
/// (so the suite cannot drift from the planners' changeover rule).
void expect_valid_plan(const RoutePlan& plan, const RoutingCase& c,
                       const std::string& router) {
  ASSERT_TRUE(plan.success) << router << ": " << plan.failure_reason;
  const auto problems = routing::extract_problems(c.graph, c.schedule,
                                                  c.placement, c.chip, c.chip);
  ASSERT_EQ(plan.changeovers.size(), problems.size()) << router;
  for (std::size_t i = 0; i < plan.changeovers.size(); ++i) {
    const auto& changeover = plan.changeovers[i];
    ASSERT_DOUBLE_EQ(changeover.time_s, problems[i].time_s) << router;
    const auto violations =
        validate_changeover(changeover, problems[i].blocked);
    EXPECT_TRUE(violations.empty())
        << router << " t=" << changeover.time_s << ": " << violations.front();
  }
  // Accounting invariants: steps include waits, cells do not.
  long long steps = 0;
  long long cells = 0;
  for (const auto& changeover : plan.changeovers) {
    for (const auto& route : changeover.routes) {
      EXPECT_GE(route.arrival_step(), route.moved_cells()) << router;
      EXPECT_LE(route.arrival_step(), changeover.makespan_steps) << router;
      steps += route.arrival_step();
      cells += route.moved_cells();
    }
  }
  EXPECT_EQ(plan.total_steps, steps) << router;
  EXPECT_EQ(plan.total_moved_cells, cells) << router;
  EXPECT_GE(plan.total_steps, plan.total_moved_cells) << router;
}

/// The paper's PCR case, greedy-placed on a 16x16 chip.
RoutingCase pcr_case() {
  const AssayCase assay = pcr_mixing_assay();
  PipelineOptions options;
  options.placer = "greedy";
  options.placer_context.canvas_width = 16;
  options.placer_context.canvas_height = 16;
  options.plan_droplet_routes = false;
  const PipelineResult result = SynthesisPipeline(options).run(assay);
  return RoutingCase{assay.graph, result.schedule,
                     result.placement.placement, 16};
}

int module_index(const Schedule& schedule, const std::string& label) {
  for (int i = 0; i < schedule.module_count(); ++i) {
    if (schedule.module(i).label == label) return i;
  }
  ADD_FAILURE() << "no scheduled module labelled " << label;
  return -1;
}

/// Two-changeover scenario: dispenses feed mixA/mixB in changeover 1;
/// their droplets then transfer concurrently to mixC/mixD in changeover 2
/// between the given module centers (anchors chosen by the caller; note a
/// 2x2 mixer's footprint is 4x4 with its segregation ring, so its center
/// sits at anchor + 2).
RoutingCase two_transfer_case(Point a_from_anchor, Point a_to_anchor,
                              Point b_from_anchor, Point b_to_anchor,
                              int chip) {
  SequencingGraph g("two-transfer");
  Binding binding;
  const ModuleSpec mixer{"mixer", ModuleKind::kMixer, 2, 2, 5.0};
  const auto da = g.add_operation(OperationType::kDispense, "da", "a");
  const auto db = g.add_operation(OperationType::kDispense, "db", "b");
  const auto mix_a = g.add_operation(OperationType::kMix, "mixA");
  const auto mix_b = g.add_operation(OperationType::kMix, "mixB");
  const auto mix_c = g.add_operation(OperationType::kMix, "mixC");
  const auto mix_d = g.add_operation(OperationType::kMix, "mixD");
  g.add_dependency(da, mix_a);
  g.add_dependency(db, mix_b);
  g.add_dependency(mix_a, mix_c);
  g.add_dependency(mix_b, mix_d);
  for (const auto op : {mix_a, mix_b, mix_c, mix_d}) {
    binding.emplace(op, mixer);
  }
  Schedule schedule = list_schedule(g, binding, {});
  Placement placement(schedule, chip, chip);
  placement.set_anchor(module_index(schedule, "mixA"), a_from_anchor);
  placement.set_anchor(module_index(schedule, "mixC"), a_to_anchor);
  placement.set_anchor(module_index(schedule, "mixB"), b_from_anchor);
  placement.set_anchor(module_index(schedule, "mixD"), b_to_anchor);
  return RoutingCase{std::move(g), std::move(schedule), std::move(placement),
                     chip};
}

TEST(RouterRegistryTest, ListsAllThreeBuiltins) {
  const auto names = registered_routers();
  for (const char* expected : {"prioritized", "negotiated", "restart"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing router: " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RouterRegistryTest, UnknownNameThrowsWithKnownNames) {
  try {
    make_router("does-not-exist");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("does-not-exist"), std::string::npos);
    for (const auto& name : registered_routers()) {
      EXPECT_NE(message.find("\"" + name + "\""), std::string::npos)
          << "message should list " << name << ": " << message;
    }
  }
}

TEST(RouterRegistryTest, NameAccessorMatchesRegistryKey) {
  for (const auto& name : registered_routers()) {
    EXPECT_EQ(make_router(name)->name(), name);
  }
}

TEST(RouterRegistryTest, MakeRouterByKindMatchesByName) {
  for (const RouterKind kind :
       {RouterKind::kNegotiated, RouterKind::kPrioritized,
        RouterKind::kRestart}) {
    EXPECT_EQ(make_router(kind)->name(), to_string(kind));
  }
}

TEST(RouterRegistryTest, CustomRegistration) {
  class NullRouter final : public Router {
   public:
    std::string name() const override { return "null-test"; }
    RoutePlan plan(const SequencingGraph&, const Schedule&, const Placement&,
                   int, int, const RoutePlannerOptions&) const override {
      RoutePlan plan;
      plan.success = true;
      return plan;
    }
  };
  auto& registry = RouterRegistry::global();
  if (!registry.contains("null-test")) {
    registry.register_router("null-test",
                             [] { return std::make_unique<NullRouter>(); });
  }
  EXPECT_TRUE(registry.contains("null-test"));
  EXPECT_EQ(make_router("null-test")->name(), "null-test");
  EXPECT_THROW(
      registry.register_router("null-test",
                               [] { return std::make_unique<NullRouter>(); }),
      std::invalid_argument);
}

TEST(EnumTextTest, RouterKindRoundTrips) {
  for (const RouterKind kind :
       {RouterKind::kNegotiated, RouterKind::kPrioritized,
        RouterKind::kRestart}) {
    EXPECT_EQ(from_string<RouterKind>(to_string(kind)), kind);
    std::stringstream stream;
    stream << kind;
    RouterKind parsed{};
    stream >> parsed;
    EXPECT_EQ(parsed, kind);
  }
  EXPECT_THROW(from_string<RouterKind>("pathfinder"), std::invalid_argument);
}

// --- shared conformance suite: every registered router ----------------

TEST(RouterConformanceTest, PcrPlanSucceedsAndValidates) {
  const RoutingCase c = pcr_case();
  for (const auto& name : registered_routers()) {
    if (name == "null-test") continue;
    const RoutePlan plan = make_router(name)->plan(
        c.graph, c.schedule, c.placement, c.chip, c.chip);
    expect_valid_plan(plan, c, name);
    EXPECT_FALSE(plan.changeovers.empty()) << name;
  }
}

TEST(RouterConformanceTest, ChipTooSmallThrows) {
  const RoutingCase c = pcr_case();
  for (const auto& name : registered_routers()) {
    if (name == "null-test") continue;
    EXPECT_THROW(
        make_router(name)->plan(c.graph, c.schedule, c.placement, 4, 4),
        std::invalid_argument)
        << name;
  }
}

TEST(RouterConformanceTest, MergeAtSameTargetIsExempt) {
  // Two dispenses into one mixer: both droplets route to the same cell;
  // the separation rule must not fire for the merging pair.
  SequencingGraph g("merge");
  const auto d1 = g.add_operation(OperationType::kDispense, "d1", "a");
  const auto d2 = g.add_operation(OperationType::kDispense, "d2", "b");
  const auto mix = g.add_operation(OperationType::kMix, "mix");
  g.add_dependency(d1, mix);
  g.add_dependency(d2, mix);
  Binding binding;
  binding.emplace(mix, ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 5.0});
  const Schedule schedule = list_schedule(g, binding, {});
  Placement placement(schedule, 10, 10);
  placement.set_anchor(0, {3, 3});
  const RoutingCase c{std::move(g), schedule, std::move(placement), 10};
  for (const auto& name : registered_routers()) {
    if (name == "null-test") continue;
    const RoutePlan plan = make_router(name)->plan(
        c.graph, c.schedule, c.placement, c.chip, c.chip);
    expect_valid_plan(plan, c, name);
    ASSERT_EQ(plan.changeovers.size(), 1u) << name;
    EXPECT_EQ(plan.changeovers.front().routes.size(), 2u) << name;
  }
}

TEST(RouterConformanceTest, DynamicConstraintAgainstPreviousPositions) {
  // Head-on exchange: droplet A crosses left-to-right while B crosses
  // right-to-left along the same row. Any straight-line plan would swap
  // head-on, which the dynamic rule (2-cell Chebyshev separation against
  // the other droplet's *previous* position) forbids — someone must
  // detour or wait, and the rule must hold at every step.
  // A: (2,6) -> (12,6); B: (12,6) -> (2,6) — same row, opposite ways.
  const RoutingCase c = two_transfer_case({0, 4}, {10, 4}, {10, 4}, {0, 4},
                                          /*chip=*/14);
  for (const auto& name : registered_routers()) {
    if (name == "null-test") continue;
    const RoutePlan plan = make_router(name)->plan(
        c.graph, c.schedule, c.placement, c.chip, c.chip);
    expect_valid_plan(plan, c, name);
    const ChangeoverPlan& crossing = plan.changeovers.back();
    ASSERT_EQ(crossing.routes.size(), 2u) << name;
    const TimedRoute& a = crossing.routes[0];
    const TimedRoute& b = crossing.routes[1];
    for (int step = 1; step <= crossing.makespan_steps; ++step) {
      EXPECT_GE(chebyshev_distance(routing::position_at(a, step),
                                   routing::position_at(b, step - 1)),
                2)
          << name << " at step " << step;
      EXPECT_GE(chebyshev_distance(routing::position_at(b, step),
                                   routing::position_at(a, step - 1)),
                2)
          << name << " at step " << step;
    }
  }
}

TEST(RouterConformanceTest, ForcedYieldAtCrossing) {
  // Perpendicular crossing through the chip center: both straight-line
  // routes meet at the middle at the same step, so in any valid plan at
  // least one droplet yields (waits or detours) — its arrival must
  // exceed its Manhattan distance.
  // A: (2,7) -> (12,7) along row 7; B: (7,2) -> (7,12) along column 7 —
  // both reach the center (7,7) at step 5 on their straight lines.
  const RoutingCase c = two_transfer_case({0, 5}, {10, 5}, {5, 0}, {5, 10},
                                          /*chip=*/14);
  for (const auto& name : registered_routers()) {
    if (name == "null-test") continue;
    const RoutePlan plan = make_router(name)->plan(
        c.graph, c.schedule, c.placement, c.chip, c.chip);
    expect_valid_plan(plan, c, name);
    const ChangeoverPlan& crossing = plan.changeovers.back();
    ASSERT_EQ(crossing.routes.size(), 2u) << name;
    bool yielded = false;
    for (const auto& route : crossing.routes) {
      EXPECT_GE(route.arrival_step(),
                manhattan_distance(route.request.from, route.request.to))
          << name;
      if (route.arrival_step() >
          manhattan_distance(route.request.from, route.request.to)) {
        yielded = true;
      }
    }
    EXPECT_TRUE(yielded) << name << ": no droplet waited or detoured";
  }
}

TEST(RouterConformanceTest, RestartIsDeterministicForSeed) {
  const RoutingCase c = pcr_case();
  RoutePlannerOptions options;
  options.seed = 77;
  const auto router = make_router("restart");
  const RoutePlan a = router->plan(c.graph, c.schedule, c.placement, c.chip,
                                   c.chip, options);
  const RoutePlan b = router->plan(c.graph, c.schedule, c.placement, c.chip,
                                   c.chip, options);
  ASSERT_EQ(a.success, b.success);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.total_moved_cells, b.total_moved_cells);
  ASSERT_EQ(a.changeovers.size(), b.changeovers.size());
  for (std::size_t i = 0; i < a.changeovers.size(); ++i) {
    EXPECT_EQ(a.changeovers[i].makespan_steps,
              b.changeovers[i].makespan_steps);
  }
}

TEST(RouterConformanceTest, NegotiatedSucceedsWhereverPrioritizedDoes) {
  // Random assays on a tight chip: the negotiated router's per-changeover
  // fallback guarantees its success set contains the prioritized one.
  const auto lib = ModuleLibrary::standard();
  const auto prioritized = make_router("prioritized");
  const auto negotiated = make_router("negotiated");
  int prioritized_ok = 0;
  int negotiated_ok = 0;
  for (int trial = 0; trial < 6; ++trial) {
    RandomAssayParams params;
    params.mix_operations = 5 + trial % 3;
    const AssayCase assay =
        random_assay(params, lib, /*seed=*/static_cast<std::uint64_t>(
                                      trial * 977 + 11));
    PipelineOptions options;
    options.placer = "greedy";
    options.placer_context.canvas_width = 20;
    options.placer_context.canvas_height = 20;
    options.plan_droplet_routes = false;
    const PipelineResult synth = SynthesisPipeline(options).run(assay);
    const RoutePlan p = prioritized->plan(assay.graph, synth.schedule,
                                          synth.placement.placement, 20, 20);
    const RoutePlan n = negotiated->plan(assay.graph, synth.schedule,
                                         synth.placement.placement, 20, 20);
    prioritized_ok += p.success ? 1 : 0;
    negotiated_ok += n.success ? 1 : 0;
    if (p.success) {
      EXPECT_TRUE(n.success)
          << "trial " << trial << ": " << n.failure_reason;
    }
  }
  EXPECT_GE(negotiated_ok, prioritized_ok);
}

TEST(RouterConformanceTest, PipelineRouterSelectableByName) {
  for (const auto& name : registered_routers()) {
    if (name == "null-test") continue;
    PipelineOptions options;
    options.placer = "greedy";
    options.router = name;
    const PipelineResult result =
        SynthesisPipeline(options).run(pcr_mixing_assay());
    EXPECT_TRUE(result.routes.success)
        << name << ": " << result.routes.failure_reason;
  }
  PipelineOptions options;
  options.placer = "greedy";
  options.router = "no-such-router";
  EXPECT_THROW(SynthesisPipeline(options).run(pcr_mixing_assay()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmfb
