// Tests for the SynthesisPipeline facade (assay/pipeline.h): the
// end-to-end driver matches the hand-wired legacy flow exactly, stages
// report through the observer in order, run_many is reproducible from one
// seed, and results carry every stage's artifacts. Compiled without
// DMFB_SUPPRESS_DEPRECATION except where this file deliberately compares
// against the legacy path.
#include "assay/pipeline.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/random_assay.h"
#include "assay/synthesis.h"
#include "core/sa_placer.h"
#include "util/rng.h"

namespace dmfb {
namespace {

/// Short annealing runs so the whole suite stays fast.
PipelineOptions fast_options() {
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module = 60;
  options.placer_context.ltsa.iterations_per_module = 60;
  return options;
}

TEST(PipelineTest, QuickstartAssayEndToEnd) {
  PipelineOptions options = fast_options();
  options.simulate = true;
  const SynthesisPipeline pipeline(options);
  const PipelineResult result = pipeline.run(pcr_mixing_assay());

  EXPECT_EQ(result.assay_name, "pcr-mixing-stage");
  EXPECT_EQ(result.binding.size(), 7u);  // M1..M7
  EXPECT_TRUE(result.schedule.validate_against(
                  pcr_mixing_assay().graph).empty());
  EXPECT_GT(result.transport_makespan_s, 0.0);

  // Placement: overlap-free, in canvas, FTI evaluated.
  EXPECT_TRUE(result.placement.placement.feasible());
  EXPECT_EQ(result.placement.cost.overlap_cells, 0);
  EXPECT_GT(result.fti.total_cells, 0);

  // Routing + simulation ran and succeeded.
  EXPECT_TRUE(result.routes.success) << result.routes.failure_reason;
  EXPECT_TRUE(result.simulation.success) << result.simulation.failure_reason;
  EXPECT_GT(result.simulation.routes_planned, 0);

  // Every stage accounted for, in execution order.
  ASSERT_EQ(result.stage_times.size(), 5u);
  EXPECT_EQ(result.stage_times[0].stage, PipelineStage::kBind);
  EXPECT_EQ(result.stage_times[1].stage, PipelineStage::kSchedule);
  EXPECT_EQ(result.stage_times[2].stage, PipelineStage::kPlace);
  EXPECT_EQ(result.stage_times[3].stage, PipelineStage::kRoute);
  EXPECT_EQ(result.stage_times[4].stage, PipelineStage::kSimulate);
  EXPECT_GE(result.total_wall_seconds(),
            result.stage_seconds(PipelineStage::kPlace));
}

// This test intentionally drives the deprecated free functions to prove
// the facade is a faithful wrapper; silence the deprecation for it alone.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(PipelineTest, MatchesHandWiredLegacyFlow) {
  // The pipeline with the "sa" backend must reproduce the legacy
  // hand-wired path bit-for-bit given the same seed.
  const AssayCase assay = pcr_mixing_assay();
  PipelineOptions options = fast_options();
  options.seed = 1234;
  const PipelineResult piped = SynthesisPipeline(options).run(assay);

  const SynthesisResult synth = synthesize_with_binding(
      assay.graph, assay.binding, assay.scheduler_options);
  SaPlacerOptions legacy = sa_options_from(options.placer_context);
  legacy.seed = 1234;
  const PlacementOutcome hand = place_simulated_annealing(synth.schedule,
                                                          legacy);

  EXPECT_EQ(piped.makespan_s, synth.makespan_s);
  EXPECT_EQ(piped.schedule.module_count(), synth.schedule.module_count());
  EXPECT_EQ(piped.placement.cost.area_cells, hand.cost.area_cells);
  ASSERT_EQ(piped.placement.placement.module_count(),
            hand.placement.module_count());
  for (int i = 0; i < hand.placement.module_count(); ++i) {
    EXPECT_EQ(piped.placement.placement.module(i).anchor,
              hand.placement.module(i).anchor);
    EXPECT_EQ(piped.placement.placement.module(i).rotated,
              hand.placement.module(i).rotated);
  }
}
#pragma GCC diagnostic pop

TEST(PipelineTest, ReproducibleFromOneSeed) {
  PipelineOptions options = fast_options();
  options.seed = 7;
  options.plan_droplet_routes = false;
  const SynthesisPipeline pipeline(options);
  const PipelineResult a = pipeline.run(pcr_mixing_assay());
  const PipelineResult b = pipeline.run(pcr_mixing_assay());
  EXPECT_EQ(a.seed, 7u);
  EXPECT_EQ(a.placement.cost.area_cells, b.placement.cost.area_cells);
  for (int i = 0; i < a.placement.placement.module_count(); ++i) {
    EXPECT_EQ(a.placement.placement.module(i).anchor,
              b.placement.placement.module(i).anchor);
  }
}

TEST(PipelineTest, ObserverSeesStagesInOrder) {
  PipelineOptions options = fast_options();
  options.plan_droplet_routes = true;
  std::vector<PipelineStage> seen;
  options.observer = [&](PipelineStage stage, double wall_seconds,
                         const std::string& detail) {
    EXPECT_GE(wall_seconds, 0.0);
    EXPECT_FALSE(detail.empty());
    seen.push_back(stage);
  };
  SynthesisPipeline(options).run(pcr_mixing_assay());
  ASSERT_EQ(seen.size(), 4u);  // no simulate stage by default
  EXPECT_EQ(seen[0], PipelineStage::kBind);
  EXPECT_EQ(seen[1], PipelineStage::kSchedule);
  EXPECT_EQ(seen[2], PipelineStage::kPlace);
  EXPECT_EQ(seen[3], PipelineStage::kRoute);
}

TEST(PipelineTest, SynthesisOnlyRunStopsAfterScheduling) {
  PipelineOptions options = fast_options();
  options.place = false;
  options.simulate = true;  // ignored without a placement
  const PipelineResult result = SynthesisPipeline(options).run(
      pcr_mixing_assay());
  ASSERT_EQ(result.stage_times.size(), 2u);
  EXPECT_EQ(result.stage_times[1].stage, PipelineStage::kSchedule);
  EXPECT_GT(result.schedule.module_count(), 0);
  EXPECT_EQ(result.placement.placement.module_count(), 0);
  EXPECT_FALSE(result.routes.success);
  EXPECT_FALSE(result.simulation.success);
}

TEST(PipelineTest, RunWithAutomaticBinding) {
  const ModuleLibrary library = ModuleLibrary::standard();
  PipelineOptions options = fast_options();
  options.binding_policy = BindingPolicy::kSmallest;
  options.plan_droplet_routes = false;
  const PipelineResult result =
      SynthesisPipeline(options).run(pcr_mixing_graph(), library);
  EXPECT_EQ(result.binding.size(), 7u);
  EXPECT_TRUE(result.placement.placement.feasible());
}

TEST(PipelineTest, PlacerSelectableByName) {
  for (const char* name : {"greedy", "kamer", "two-stage"}) {
    PipelineOptions options = fast_options();
    options.placer = name;
    options.plan_droplet_routes = false;
    const PipelineResult result =
        SynthesisPipeline(options).run(pcr_mixing_assay());
    EXPECT_TRUE(result.placement.placement.feasible()) << name;
  }
  PipelineOptions options = fast_options();
  options.placer = "no-such-placer";
  EXPECT_THROW(SynthesisPipeline(options).run(pcr_mixing_assay()),
               std::invalid_argument);
}

TEST(PipelineTest, RouteStageReportsRouterBackend) {
  PipelineOptions options = fast_options();
  options.placer = "greedy";
  options.router = "restart";
  std::string route_detail;
  options.observer = [&](PipelineStage stage, double,
                         const std::string& detail) {
    if (stage == PipelineStage::kRoute) route_detail = detail;
  };
  const PipelineResult result =
      SynthesisPipeline(options).run(pcr_mixing_assay());
  EXPECT_TRUE(result.routes.success) << result.routes.failure_reason;
  // The observer names the backend, so logs attribute the route stage.
  EXPECT_EQ(route_detail.rfind("restart: ", 0), 0u) << route_detail;
}

TEST(PipelineTest, RunManyIsReproducibleAndOrdered) {
  const ModuleLibrary library = ModuleLibrary::standard();
  std::vector<AssayCase> cases;
  RandomAssayParams params;
  params.mix_operations = 4;
  for (std::uint64_t i = 0; i < 3; ++i) {
    cases.push_back(random_assay(params, library, /*seed=*/100 + i));
  }

  PipelineOptions options = fast_options();
  options.seed = 99;
  options.plan_droplet_routes = false;
  options.threads = 2;
  const SynthesisPipeline pipeline(options);
  const auto first = pipeline.run_many(std::span<const AssayCase>(cases));
  const auto second = pipeline.run_many(std::span<const AssayCase>(cases));

  ASSERT_EQ(first.size(), cases.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].assay_name, cases[i].name);
    EXPECT_TRUE(first[i].placement.placement.feasible());
    // Same master seed -> identical batch, independent of thread timing.
    EXPECT_EQ(first[i].seed, second[i].seed);
    EXPECT_EQ(first[i].placement.cost.area_cells,
              second[i].placement.cost.area_cells);
  }
  // Items get distinct derived seeds.
  EXPECT_NE(first[0].seed, first[1].seed);
  EXPECT_NE(first[1].seed, first[2].seed);
}

TEST(PipelineTest, RunManyGraphsWithSharedLibrary) {
  const ModuleLibrary library = ModuleLibrary::standard();
  std::vector<SequencingGraph> graphs;
  graphs.push_back(pcr_mixing_graph());
  graphs.push_back(pcr_mixing_graph());
  PipelineOptions options = fast_options();
  options.plan_droplet_routes = false;
  const auto results = SynthesisPipeline(options).run_many(
      std::span<const SequencingGraph>(graphs), library);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_TRUE(result.placement.placement.feasible());
  }
}

TEST(PipelineTest, DeriveItemSeedsIsTheBatchSeedSplit) {
  // The exact walk run_many consumes, pinned: SplitMix64 from the
  // master seed, one value per item in order. dmfb_batch derives its
  // item seeds through the same helper, so this is the cross-harness
  // reproducibility contract.
  const auto seeds = derive_item_seeds(/*master_seed=*/99, /*count=*/4);
  ASSERT_EQ(seeds.size(), 4u);
  SplitMix64 walk(99);
  for (const std::uint64_t seed : seeds) EXPECT_EQ(seed, walk.next());

  // Prefix property: a shorter batch is a prefix of a longer one.
  const auto longer = derive_item_seeds(99, 8);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(longer[i], seeds[i]);
  }
  EXPECT_TRUE(derive_item_seeds(99, 0).empty());
}

TEST(PipelineTest, RunManyMarksFailedItemsInsteadOfThrowing) {
  // Item 0 compiles; item 1 hits the optimal placer's module cap and
  // throws inside its worker. The batch survives: the failed item
  // carries ok=false and the exception text, the good item's result is
  // intact, and both still report their derived seeds.
  const ModuleLibrary library = ModuleLibrary::standard();
  RandomAssayParams params;
  params.mix_operations = 3;  // small enough for the optimal placer
  std::vector<AssayCase> cases;
  cases.push_back(random_assay(params, library, /*seed=*/5));
  cases.push_back(pcr_mixing_assay());  // 10 modules > max_modules=8

  PipelineOptions options = fast_options();
  options.placer = "optimal";
  options.plan_droplet_routes = false;
  const SynthesisPipeline pipeline(options);
  const auto results = pipeline.run_many(std::span<const AssayCase>(cases));

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].error.empty());
  EXPECT_TRUE(results[0].placement.placement.feasible());

  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[1].error.empty());
  // The failed entry still records which seed the item would have run
  // with, so a single-item repro is one run() away.
  const auto seeds = derive_item_seeds(options.seed, cases.size());
  EXPECT_EQ(results[0].seed, seeds[0]);
  EXPECT_EQ(results[1].seed, seeds[1]);

  // Single-assay run() keeps the exception contract.
  EXPECT_THROW(pipeline.run(cases[1]), std::invalid_argument);
}

TEST(PipelineTest, FaultPlanRunsOnlineRecoveryThroughSimulateStage) {
  // Compile once clean to learn where a module lands, then re-run the
  // identical compile with a fault planned under it: the simulate stage
  // must drive the online recovery engine, survive, and surface the
  // telemetry both in the result and the observer's detail line.
  PipelineOptions options = fast_options();
  options.placer = "greedy";
  options.simulate = true;
  options.chip_width = 20;
  options.chip_height = 20;
  const SynthesisPipeline clean(options);
  const PipelineResult baseline = clean.run(pcr_mixing_assay());
  ASSERT_TRUE(baseline.simulation.success);
  EXPECT_EQ(baseline.recovery.faults_injected, 0);
  EXPECT_FALSE(baseline.recovery.recovered);

  const Rect fp = baseline.placement.placement.module(0).footprint();
  const ScheduledModule& sm = baseline.schedule.module(0);
  ASSERT_GT(sm.end_s, sm.start_s);
  options.fault_plan.faults.push_back(
      PlannedFault{Point{fp.x + fp.width / 2, fp.y + fp.height / 2},
                   0.5 * (sm.start_s + sm.end_s), -1});

  std::string simulate_detail;
  options.observer = [&](PipelineStage stage, double,
                         const std::string& detail) {
    if (stage == PipelineStage::kSimulate) simulate_detail = detail;
  };
  const SynthesisPipeline faulty(options);
  const PipelineResult result = faulty.run(pcr_mixing_assay());

  EXPECT_TRUE(result.simulation.success) << result.simulation.failure_reason;
  EXPECT_EQ(result.recovery.faults_injected, 1);
  EXPECT_GE(result.recovery.recovery_cycles, 1);
  EXPECT_TRUE(result.recovery.recovered);
  EXPECT_TRUE(result.recovery.completed);
  EXPECT_GT(result.recovery.time_lost_s, 0.0);
  EXPECT_NE(simulate_detail.find("recovery: faults=1"), std::string::npos)
      << simulate_detail;
  // Recovery slips the makespan by exactly the re-run work (reconfigure
  // and reroute rungs preserve every module's duration).
  EXPECT_NEAR(result.simulation.makespan_s,
              baseline.simulation.makespan_s + result.recovery.time_lost_s,
              1e-9);
}

}  // namespace
}  // namespace dmfb
