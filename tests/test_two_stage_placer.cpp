// Tests for the two-stage fault-aware placer (core/two_stage_placer.h).
// SA schedules are shortened for test speed.
#include "core/two_stage_placer.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/fti.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  const auto assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options)
      .schedule;
}

TwoStageOptions fast_options(double beta) {
  TwoStageOptions options;
  options.beta = beta;
  options.stage1.schedule.initial_temperature = 1000.0;
  options.stage1.schedule.cooling_rate = 0.8;
  options.stage1.schedule.iterations_per_module = 60;
  options.ltsa.initial_temperature = 50.0;
  options.ltsa.cooling_rate = 0.8;
  options.ltsa.iterations_per_module = 60;
  return options;
}

TEST(TwoStagePlacerTest, BothStagesFeasible) {
  const auto outcome = place_two_stage(pcr_schedule(), fast_options(30.0));
  EXPECT_TRUE(outcome.stage1.placement.feasible());
  EXPECT_TRUE(outcome.stage2.placement.feasible());
}

TEST(TwoStagePlacerTest, Stage2ImprovesFti) {
  const auto outcome = place_two_stage(pcr_schedule(), fast_options(30.0));
  const double fti1 = evaluate_fti(outcome.stage1.placement).fti();
  const double fti2 = evaluate_fti(outcome.stage2.placement).fti();
  EXPECT_GE(fti2, fti1);
  EXPECT_GT(fti2, 0.0);
}

TEST(TwoStagePlacerTest, Stage2CostIncludesFti) {
  const auto outcome = place_two_stage(pcr_schedule(), fast_options(30.0));
  EXPECT_GT(outcome.stage2.cost.fti, 0.0);
  // Stage-1 cost never evaluates FTI (beta forced to 0).
  EXPECT_DOUBLE_EQ(outcome.stage1.cost.fti, 0.0);
}

TEST(TwoStagePlacerTest, WeightedObjectiveNotWorseThanStage1) {
  const double beta = 30.0;
  const auto outcome = place_two_stage(pcr_schedule(), fast_options(beta));
  const double stage1_weighted =
      static_cast<double>(outcome.stage1.cost.area_cells) -
      beta * evaluate_fti(outcome.stage1.placement).fti();
  const double stage2_weighted =
      static_cast<double>(outcome.stage2.cost.area_cells) -
      beta * outcome.stage2.cost.fti;
  EXPECT_LE(stage2_weighted, stage1_weighted + 1e-9);
}

TEST(TwoStagePlacerTest, HighBetaBuysMoreFtiThanLowBeta) {
  const auto low = place_two_stage(pcr_schedule(), fast_options(5.0));
  const auto high = place_two_stage(pcr_schedule(), fast_options(80.0));
  EXPECT_GE(high.stage2.cost.fti, low.stage2.cost.fti - 1e-9);
}

TEST(TwoStagePlacerTest, DeterministicForSeeds) {
  const Schedule schedule = pcr_schedule();
  const auto a = place_two_stage(schedule, fast_options(30.0));
  const auto b = place_two_stage(schedule, fast_options(30.0));
  EXPECT_EQ(a.stage2.cost.area_cells, b.stage2.cost.area_cells);
  EXPECT_DOUBLE_EQ(a.stage2.cost.fti, b.stage2.cost.fti);
}

TEST(TwoStagePlacerTest, DefaultLtsaIsLowTemperature) {
  const TwoStageOptions options;
  EXPECT_LT(options.ltsa.initial_temperature,
            options.stage1.schedule.initial_temperature);
}

}  // namespace
}  // namespace dmfb
