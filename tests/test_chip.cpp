// Unit tests for the electrode-array chip model (biochip/chip.h).
#include "biochip/chip.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dmfb {
namespace {

TEST(ChipGeometryTest, AreaComputations) {
  const ChipGeometry g{7, 9, 1.5, 600.0};
  EXPECT_DOUBLE_EQ(g.cell_area_mm2(), 2.25);
  EXPECT_DOUBLE_EQ(g.total_area_mm2(), 2.25 * 63);
}

TEST(ChipTest, DefaultGeometryMatchesPaper) {
  const Chip chip(7, 9);
  EXPECT_EQ(chip.width(), 7);
  EXPECT_EQ(chip.height(), 9);
  EXPECT_DOUBLE_EQ(chip.geometry().pitch_mm, 1.5);
  EXPECT_DOUBLE_EQ(chip.geometry().gap_height_um, 600.0);
}

TEST(ChipTest, InvalidGeometryThrows) {
  EXPECT_THROW(Chip(0, 5), std::invalid_argument);
  EXPECT_THROW(Chip(5, -1), std::invalid_argument);
  EXPECT_THROW(Chip(ChipGeometry{3, 3, 0.0, 600.0}), std::invalid_argument);
}

TEST(ChipTest, FaultInjectionAndQuery) {
  Chip chip(5, 5);
  EXPECT_EQ(chip.faulty_count(), 0);
  chip.set_faulty(Point{2, 3});
  EXPECT_TRUE(chip.is_faulty(Point{2, 3}));
  EXPECT_FALSE(chip.is_faulty(Point{3, 2}));
  EXPECT_EQ(chip.faulty_count(), 1);
  EXPECT_EQ(chip.faulty_cells().front(), (Point{2, 3}));
  chip.set_faulty(Point{2, 3}, false);
  EXPECT_EQ(chip.faulty_count(), 0);
}

TEST(ChipTest, ActuateRectSetsVoltages) {
  Chip chip(6, 6);
  chip.actuate_rect(Rect{1, 1, 2, 3}, 80.0);
  EXPECT_EQ(chip.actuated_count(), 6);
  EXPECT_TRUE(chip.electrode(Point{1, 1}).actuated());
  EXPECT_TRUE(chip.electrode(Point{2, 3}).actuated());
  EXPECT_FALSE(chip.electrode(Point{0, 0}).actuated());
}

TEST(ChipTest, ActuateRectClipsToBounds) {
  Chip chip(4, 4);
  chip.actuate_rect(Rect{2, 2, 10, 10}, 80.0);
  EXPECT_EQ(chip.actuated_count(), 4);  // only the in-bounds 2x2 corner
}

TEST(ChipTest, FaultyCellDoesNotCountAsActuated) {
  Chip chip(3, 3);
  chip.set_faulty(Point{1, 1});
  chip.actuate_rect(Rect{0, 0, 3, 3}, 80.0);
  EXPECT_EQ(chip.actuated_count(), 8);
}

TEST(ChipTest, DeactivateAll) {
  Chip chip(3, 3);
  chip.actuate_rect(Rect{0, 0, 3, 3}, 80.0);
  EXPECT_EQ(chip.actuated_count(), 9);
  chip.deactivate_all();
  EXPECT_EQ(chip.actuated_count(), 0);
}

TEST(CellTest, RoleAndHealthNames) {
  EXPECT_STREQ(to_string(CellRole::kFree), "free");
  EXPECT_STREQ(to_string(CellRole::kFunctional), "functional");
  EXPECT_STREQ(to_string(CellRole::kSegregation), "segregation");
  EXPECT_STREQ(to_string(CellRole::kTransport), "transport");
  EXPECT_STREQ(to_string(CellRole::kReservoir), "reservoir");
  EXPECT_STREQ(to_string(CellHealth::kGood), "good");
  EXPECT_STREQ(to_string(CellHealth::kFaulty), "faulty");
}

}  // namespace
}  // namespace dmfb
