// Unit tests for the bench output helpers (util/table.h, util/csv.h).
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"

namespace dmfb {
namespace {

TEST(TextTableTest, EmptyTablePrintsNothing) {
  const TextTable table;
  EXPECT_EQ(table.to_string(), "");
}

TEST(TextTableTest, HeaderAndRows) {
  TextTable table("Title");
  table.set_header({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable table;
  table.set_header({"x", "y", "z"});
  table.add_row({"only"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| only |"), std::string::npos);
  // Three columns rendered on every row.
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), '|'), 4) << line;
  }
}

TEST(TextTableTest, LongRowExtendsColumnCount) {
  TextTable table;
  table.set_header({"x"});
  table.add_row({"1", "2", "3"});
  EXPECT_EQ(table.column_count(), 3u);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
  EXPECT_EQ(format_mm2(141.75), "141.75");
}

TEST(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvTest, EscapeQuotesAndCommas) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WriteRow) {
  std::ostringstream os;
  write_csv_row(os, {"a", "b,c", "3"});
  EXPECT_EQ(os.str(), "a,\"b,c\",3\n");
}

}  // namespace
}  // namespace dmfb
