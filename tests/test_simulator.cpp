// Tests for the droplet-level simulator (sim/simulator.h): assays execute
// correctly on fault-free chips, produce the right mixtures, and stall on
// faults inside module footprints.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"
#include "sim/fault.h"

namespace dmfb {
namespace {

struct PcrSetup {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
};

PcrSetup pcr_setup(int canvas = 16) {
  const auto assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, canvas, canvas);
  return PcrSetup{assay.graph, std::move(synth.schedule),
                  std::move(placement)};
}

TEST(SimulatorTest, PcrCompletesOnHealthyChip) {
  const auto setup = pcr_setup();
  const Chip chip(16, 16);
  const Simulator simulator;
  const auto result =
      simulator.run(setup.graph, setup.schedule, setup.placement, chip);
  EXPECT_TRUE(result.success) << result.failure_reason;
  EXPECT_DOUBLE_EQ(result.makespan_s, setup.schedule.makespan_s());
  EXPECT_GT(result.routes_planned, 0);
  EXPECT_GT(result.route_cells, 0);
}

TEST(SimulatorTest, PcrFinalDropletMixesAllEightReagents) {
  const auto setup = pcr_setup();
  const Chip chip(16, 16);
  const Simulator simulator;
  const auto result =
      simulator.run(setup.graph, setup.schedule, setup.placement, chip);
  ASSERT_TRUE(result.success) << result.failure_reason;

  // Find the root mix M7 and check its output droplet: all 8 reagents at
  // 1/8 each (equal-volume binary mixing tree).
  OperationId m7 = -1;
  for (const auto& op : setup.graph.operations()) {
    if (op.label == "M7") m7 = op.id;
  }
  ASSERT_GE(m7, 0);
  const auto it = result.op_outputs.find(m7);
  ASSERT_NE(it, result.op_outputs.end());
  const Droplet& final_droplet = it->second;
  EXPECT_EQ(final_droplet.contents().size(), 8u);
  for (const auto& [reagent, fraction] : final_droplet.contents()) {
    EXPECT_NEAR(fraction, 0.125, 1e-9) << reagent;
  }
  EXPECT_NEAR(final_droplet.volume_nl(), 800.0, 1e-9);
}

TEST(SimulatorTest, FaultInsideModuleStallsAssay) {
  const auto setup = pcr_setup();
  Chip chip(16, 16);
  // Fault dead center of the first module's footprint.
  const Rect fp = setup.placement.module(0).footprint();
  const Point fault{fp.x + fp.width / 2, fp.y + fp.height / 2};
  inject_fault(chip, fault);

  const Simulator simulator;
  const auto result =
      simulator.run(setup.graph, setup.schedule, setup.placement, chip);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.fault_cell, fault);
  EXPECT_GE(result.failed_module, 0);
  EXPECT_NE(result.failure_reason.find("faulty cell"), std::string::npos);
}

TEST(SimulatorTest, FaultOnUnusedCellIsHarmlessWithSpareRoom) {
  const auto setup = pcr_setup(20);
  Chip chip(20, 20);
  inject_fault(chip, Point{19, 19});  // far corner, outside every footprint
  const Simulator simulator;
  const auto result =
      simulator.run(setup.graph, setup.schedule, setup.placement, chip);
  EXPECT_TRUE(result.success) << result.failure_reason;
}

TEST(SimulatorTest, EventsAreChronological) {
  const auto setup = pcr_setup();
  const Chip chip(16, 16);
  const Simulator simulator;
  const auto result =
      simulator.run(setup.graph, setup.schedule, setup.placement, chip);
  ASSERT_TRUE(result.success);
  EXPECT_FALSE(result.events.empty());
}

TEST(SimulatorTest, RoutingCanBeDisabled) {
  const auto setup = pcr_setup();
  const Chip chip(16, 16);
  SimOptions options;
  options.verify_routing = false;
  const Simulator simulator(options);
  const auto result =
      simulator.run(setup.graph, setup.schedule, setup.placement, chip);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.routes_planned, 0);
}

TEST(SimulatorTest, ChipSmallerThanPlacementThrows) {
  const auto setup = pcr_setup();
  const Chip chip(4, 4);
  const Simulator simulator;
  EXPECT_THROW(
      simulator.run(setup.graph, setup.schedule, setup.placement, chip),
      std::invalid_argument);
}

TEST(SimulatorTest, MismatchedScheduleAndPlacementThrow) {
  const auto setup = pcr_setup();
  Schedule truncated;
  truncated.add(setup.schedule.module(0));
  const Chip chip(16, 16);
  const Simulator simulator;
  EXPECT_THROW(
      simulator.run(setup.graph, truncated, setup.placement, chip),
      std::invalid_argument);
}

TEST(SimulatorTest, DilutionAssayProducesSerialConcentrations) {
  const auto lib = ModuleLibrary::standard();
  const auto assay = protein_dilution_assay(2, lib);
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement placement = place_greedy(synth.schedule, 20, 20);
  const Chip chip(20, 20);
  const Simulator simulator;
  const auto result =
      simulator.run(assay.graph, synth.schedule, placement, chip);
  ASSERT_TRUE(result.success) << result.failure_reason;
  // Root dilution: protein at 1/2. Second level: 1/4.
  for (const auto& op : assay.graph.operations()) {
    if (op.type != OperationType::kDilute) continue;
    const auto it = result.op_outputs.find(op.id);
    ASSERT_NE(it, result.op_outputs.end()) << op.label;
    const double fraction = it->second.fraction_of("protein");
    EXPECT_TRUE(std::abs(fraction - 0.5) < 1e-9 ||
                std::abs(fraction - 0.25) < 1e-9)
        << op.label << " fraction " << fraction;
  }
}

TEST(SimulatorTest, TransportStatsAccumulate) {
  const auto setup = pcr_setup();
  const Chip chip(16, 16);
  const Simulator simulator;
  const auto result =
      simulator.run(setup.graph, setup.schedule, setup.placement, chip);
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.transport_seconds, 0.0);
  // At 13 cells/s, transport seconds = cells / 13.
  EXPECT_NEAR(result.transport_seconds,
              static_cast<double>(result.route_cells) / 13.0, 1e-9);
}

}  // namespace
}  // namespace dmfb
