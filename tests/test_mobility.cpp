// Tests for ASAP/ALAP mobility analysis (assay/scheduler.h).
#include <gtest/gtest.h>

#include <algorithm>

#include "assay/assay_library.h"
#include "assay/scheduler.h"

namespace dmfb {
namespace {

constexpr double kTol = 1e-9;

OperationId by_label(const SequencingGraph& g, const std::string& label) {
  for (const auto& op : g.operations()) {
    if (op.label == label) return op.id;
  }
  return -1;
}

TEST(MobilityTest, PcrCriticalPathIsTheSlowChain) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  // ASAP makespan 19 s; the critical chain is M3(6) -> M6(10) -> M7(3).
  const auto critical = critical_path(graph, binding);
  auto contains = [&](const std::string& label) {
    return std::find(critical.begin(), critical.end(),
                     by_label(graph, label)) != critical.end();
  };
  EXPECT_TRUE(contains("M3"));
  EXPECT_TRUE(contains("M6"));
  EXPECT_TRUE(contains("M7"));
  EXPECT_FALSE(contains("M2"));  // 5 s leaf feeding M5: has slack
}

TEST(MobilityTest, ValuesMatchHandComputation) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  const auto mobility = compute_mobility(graph, binding);

  auto of = [&](const std::string& label) {
    const OperationId id = by_label(graph, label);
    for (const auto& m : mobility) {
      if (m.op == id) return m;
    }
    return OperationMobility{};
  };

  // M3 (6 s) -> M6 (10 s) -> M7 (3 s) = 19 s: zero mobility.
  EXPECT_NEAR(of("M3").asap_start_s, 0.0, kTol);
  EXPECT_NEAR(of("M3").mobility_s, 0.0, kTol);
  EXPECT_NEAR(of("M6").asap_start_s, 6.0, kTol);
  EXPECT_NEAR(of("M7").asap_start_s, 16.0, kTol);
  // M1 (10 s) feeds M5 (5 s) which must end by 16: ALAP(M5) = 11,
  // ALAP(M1) = 1 -> mobility 1.
  EXPECT_NEAR(of("M1").mobility_s, 1.0, kTol);
  EXPECT_NEAR(of("M5").asap_start_s, 10.0, kTol);
  EXPECT_NEAR(of("M5").alap_start_s, 11.0, kTol);
  // M2 (5 s) also feeds M5: ALAP start 6, ASAP 0 -> mobility 6.
  EXPECT_NEAR(of("M2").mobility_s, 6.0, kTol);
  // M4 (5 s) feeds M6 which must start at 6: mobility 1.
  EXPECT_NEAR(of("M4").mobility_s, 1.0, kTol);
}

TEST(MobilityTest, MobilityNonNegativeAndAlapGeAsap) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  for (const auto& m : compute_mobility(graph, binding)) {
    EXPECT_GE(m.mobility_s, -kTol);
    EXPECT_GE(m.alap_start_s, m.asap_start_s - kTol);
  }
}

TEST(MobilityTest, RelaxedDeadlineAddsUniformSlack) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  const auto tight = compute_mobility(graph, binding);
  const auto relaxed = compute_mobility(graph, binding, 19.0 + 5.0);
  ASSERT_EQ(tight.size(), relaxed.size());
  for (std::size_t i = 0; i < tight.size(); ++i) {
    EXPECT_NEAR(relaxed[i].mobility_s, tight[i].mobility_s + 5.0, kTol);
    EXPECT_NEAR(relaxed[i].asap_start_s, tight[i].asap_start_s, kTol);
  }
}

TEST(MobilityTest, DeadlineBelowMakespanThrows) {
  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);
  EXPECT_THROW(compute_mobility(graph, binding, 10.0),
               std::invalid_argument);
}

TEST(MobilityTest, InvalidBindingThrows) {
  const auto graph = pcr_mixing_graph();
  EXPECT_THROW(compute_mobility(graph, Binding{}), std::invalid_argument);
}

TEST(MobilityTest, EveryGraphHasACriticalOperation) {
  const auto lib = ModuleLibrary::standard();
  const auto assay = multiplexed_diagnostics_assay(2, 2, lib);
  const auto critical = critical_path(assay.graph, assay.binding);
  EXPECT_FALSE(critical.empty());
}

}  // namespace
}  // namespace dmfb
