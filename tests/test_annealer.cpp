// Tests for the generic simulated-annealing engine (core/annealer.h),
// exercised on simple numeric problems with known optima.
#include "core/annealer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace dmfb {
namespace {

/// 1-D quadratic: minimum at x = 17.
AnnealingProblem<int> quadratic_problem() {
  AnnealingProblem<int> problem;
  problem.cost = [](const int& x) {
    const double d = x - 17.0;
    return d * d;
  };
  problem.neighbor = [](const int& x, double fraction, Rng& rng) {
    const int span = std::max(1, static_cast<int>(100 * fraction));
    return x + rng.next_int(-span, span);
  };
  return problem;
}

TEST(AnnealerTest, FindsQuadraticMinimum) {
  Rng rng(1);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 1000.0;
  schedule.min_temperature = 0.01;
  AnnealingStats stats;
  const int best =
      anneal(1000, quadratic_problem(), schedule, 1, rng, &stats);
  EXPECT_EQ(best, 17);
  EXPECT_DOUBLE_EQ(stats.best_cost, 0.0);
}

TEST(AnnealerTest, DeterministicForSeed) {
  AnnealingSchedule schedule;
  schedule.initial_temperature = 100.0;
  schedule.iterations_per_module = 50;
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(anneal(500, quadratic_problem(), schedule, 2, a),
            anneal(500, quadratic_problem(), schedule, 2, b));
}

TEST(AnnealerTest, StatsAreConsistent) {
  Rng rng(3);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 100.0;
  schedule.cooling_rate = 0.5;
  schedule.iterations_per_module = 10;
  schedule.min_temperature = 1.0;
  AnnealingStats stats;
  anneal(50, quadratic_problem(), schedule, 3, rng, &stats);
  // Temperatures: 100, 50, 25, ..., > 1 — ceil(log2(100)) = 7 steps.
  EXPECT_EQ(stats.temperature_steps, 7);
  EXPECT_EQ(stats.proposals, 7LL * 10 * 3);
  EXPECT_LE(stats.accepted, stats.proposals);
  EXPECT_LE(stats.uphill_accepted, stats.accepted);
  EXPECT_LE(stats.final_temperature, 1.0);
}

TEST(AnnealerTest, HillClimbingHappensAtHighTemperature) {
  Rng rng(11);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 1e6;  // accept nearly everything
  schedule.cooling_rate = 0.5;
  schedule.iterations_per_module = 100;
  schedule.min_temperature = 1e5;
  AnnealingStats stats;
  anneal(0, quadratic_problem(), schedule, 1, rng, &stats);
  EXPECT_GT(stats.uphill_accepted, 0);
}

TEST(AnnealerTest, ZeroTemperatureIsGreedy) {
  // With min_temperature close to T0 and T0 tiny, only downhill moves are
  // effectively accepted: from a start above the optimum the result can
  // never be worse than the start.
  Rng rng(13);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 1e-9;
  schedule.cooling_rate = 0.5;
  schedule.iterations_per_module = 200;
  schedule.min_temperature = 1e-10;
  const auto problem = quadratic_problem();
  const int start = 400;
  const int best = anneal(start, problem, schedule, 1, rng);
  EXPECT_LE(problem.cost(best), problem.cost(start));
}

TEST(AnnealerTest, RecordablePredicateFiltersResult) {
  // Only even states may be recorded; the returned best must be even.
  AnnealingProblem<int> problem = quadratic_problem();
  problem.recordable = [](const int& x) { return x % 2 == 0; };
  Rng rng(17);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 1000.0;
  schedule.min_temperature = 0.01;
  const int best = anneal(1000, problem, schedule, 1, rng);
  EXPECT_EQ(best % 2, 0);
  // 16 or 18 are the best even states.
  EXPECT_NEAR(best, 17, 1);
}

TEST(AnnealerTest, NoRecordableStateFallsBackToCurrent) {
  AnnealingProblem<int> problem = quadratic_problem();
  problem.recordable = [](const int&) { return false; };
  Rng rng(19);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 10.0;
  schedule.iterations_per_module = 5;
  schedule.min_temperature = 5.0;
  // Must not crash; returns whatever state annealing ended on.
  const int result = anneal(42, problem, schedule, 1, rng);
  (void)result;
  SUCCEED();
}

/// Minimal in-place state for the fused loop: an integer walker with
/// propose/commit/revert semantics over the quadratic objective.
struct FusedQuadratic {
  int current = 1000;
  int pending = 1000;

  static double cost_of(int x) {
    const double d = x - 17.0;
    return d * d;
  }

  struct Problem {
    FusedQuadratic* state;
    double (*propose_delta_fn)(FusedQuadratic&, double, Rng&);

    double propose_delta(double fraction, Rng& rng) const {
      return propose_delta_fn(*state, fraction, rng);
    }
    double commit() const {
      state->current = state->pending;
      return cost_of(state->current);
    }
    void revert() const {}
    bool recordable() const { return true; }
    void record_best(double) const {}
  };

  Problem problem() {
    return Problem{this, [](FusedQuadratic& s, double fraction, Rng& rng) {
                     const int span =
                         std::max(1, static_cast<int>(100 * fraction));
                     s.pending = s.current + rng.next_int(-span, span);
                     return cost_of(s.pending) - cost_of(s.current);
                   }};
  }
};

TEST(AnnealerTest, FusedFindsQuadraticMinimum) {
  FusedQuadratic state;
  Rng rng(1);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 1000.0;
  schedule.min_temperature = 0.01;
  AnnealingStats stats;
  const double best =
      anneal_fused(FusedQuadratic::cost_of(state.current), state.problem(),
                   schedule, 1, rng, &stats);
  EXPECT_DOUBLE_EQ(best, 0.0);
  EXPECT_DOUBLE_EQ(stats.best_cost, 0.0);
}

TEST(AnnealerTest, FusedDeterministicForSeed) {
  AnnealingSchedule schedule;
  schedule.initial_temperature = 100.0;
  schedule.iterations_per_module = 50;
  FusedQuadratic a;
  FusedQuadratic b;
  Rng rng_a(7);
  Rng rng_b(7);
  EXPECT_EQ(anneal_fused(FusedQuadratic::cost_of(a.current), a.problem(),
                         schedule, 2, rng_a),
            anneal_fused(FusedQuadratic::cost_of(b.current), b.problem(),
                         schedule, 2, rng_b));
  EXPECT_EQ(a.current, b.current);
}

TEST(AnnealerTest, FusedStatsAreConsistent) {
  FusedQuadratic state;
  Rng rng(3);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 100.0;
  schedule.cooling_rate = 0.5;
  schedule.iterations_per_module = 10;
  schedule.min_temperature = 1.0;
  AnnealingStats stats;
  anneal_fused(FusedQuadratic::cost_of(state.current), state.problem(),
               schedule, 3, rng, &stats);
  // Same schedule shape as the legacy loop: 7 halvings from 100 to > 1.
  EXPECT_EQ(stats.temperature_steps, 7);
  EXPECT_EQ(stats.proposals, 7LL * 10 * 3);
  EXPECT_LE(stats.accepted, stats.proposals);
  EXPECT_LE(stats.uphill_accepted, stats.accepted);
  EXPECT_GT(stats.accepted, 0);
}

/// BatchedQuadratic: the integer walker with anneal_batched's
/// speculate/activate surface. Offsets are drawn batch-at-a-time and
/// applied relative to the activation-time state, so the move stream is
/// consumed in the same order as FusedQuadratic's — at lookahead 1 the
/// trajectories must match bit for bit.
struct BatchedQuadratic {
  int current = 1000;
  int pending = 1000;
  int offsets[64] = {};

  struct Problem {
    BatchedQuadratic* state;

    int speculate(double fraction, Rng& rng, int capacity) const {
      const int span = std::max(1, static_cast<int>(100 * fraction));
      for (int b = 0; b < capacity; ++b) {
        state->offsets[b] = rng.next_int(-span, span);
      }
      return capacity;
    }
    double activate(int b) const {
      state->pending = state->current + state->offsets[b];
      return FusedQuadratic::cost_of(state->pending) -
             FusedQuadratic::cost_of(state->current);
    }
    double commit() const {
      state->current = state->pending;
      return FusedQuadratic::cost_of(state->current);
    }
    void revert() const {}
    bool recordable() const { return true; }
    void record_best(double) const {}
  };

  Problem problem() { return Problem{this}; }
};

TEST(AnnealerTest, BatchedFindsQuadraticMinimum) {
  BatchedQuadratic state;
  Rng rng(1);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 1000.0;
  schedule.min_temperature = 0.01;
  AnnealingStats stats;
  const double best = anneal_batched(FusedQuadratic::cost_of(state.current),
                                     state.problem(), schedule, 1,
                                     /*lookahead=*/8, rng, &stats);
  EXPECT_DOUBLE_EQ(best, 0.0);
  EXPECT_DOUBLE_EQ(stats.best_cost, 0.0);
}

TEST(AnnealerTest, BatchedLookaheadOneMatchesFused) {
  AnnealingSchedule schedule;
  schedule.initial_temperature = 1000.0;
  schedule.iterations_per_module = 50;
  schedule.min_temperature = 0.05;
  FusedQuadratic fused;
  BatchedQuadratic batched;
  Rng rng_f(7);
  Rng rng_b(7);
  AnnealingStats sf, sb;
  const double best_f = anneal_fused(FusedQuadratic::cost_of(fused.current),
                                     fused.problem(), schedule, 2, rng_f, &sf);
  const double best_b = anneal_batched(
      FusedQuadratic::cost_of(batched.current), batched.problem(), schedule,
      2, /*lookahead=*/1, rng_b, &sb);
  EXPECT_EQ(best_f, best_b);
  EXPECT_EQ(fused.current, batched.current);
  EXPECT_EQ(sf.accepted, sb.accepted);
  EXPECT_EQ(sf.uphill_accepted, sb.uphill_accepted);
}

TEST(AnnealerTest, BatchedDeterministicForSeed) {
  AnnealingSchedule schedule;
  schedule.initial_temperature = 100.0;
  schedule.iterations_per_module = 50;
  BatchedQuadratic a;
  BatchedQuadratic b;
  Rng rng_a(7);
  Rng rng_b(7);
  EXPECT_EQ(anneal_batched(FusedQuadratic::cost_of(a.current), a.problem(),
                           schedule, 2, 8, rng_a),
            anneal_batched(FusedQuadratic::cost_of(b.current), b.problem(),
                           schedule, 2, 8, rng_b));
  EXPECT_EQ(a.current, b.current);
}

TEST(AnnealerTest, BatchedStatsAreConsistent) {
  BatchedQuadratic state;
  Rng rng(3);
  AnnealingSchedule schedule;
  schedule.initial_temperature = 100.0;
  schedule.cooling_rate = 0.5;
  schedule.iterations_per_module = 10;
  schedule.min_temperature = 1.0;
  AnnealingStats stats;
  anneal_batched(FusedQuadratic::cost_of(state.current), state.problem(),
                 schedule, 3, /*lookahead=*/7, rng, &stats);
  // Batching changes when moves are generated, never how many decisions
  // run: the same 7 halvings and the same per-step inner count (the last
  // batch of each step is clipped, not padded).
  EXPECT_EQ(stats.temperature_steps, 7);
  EXPECT_EQ(stats.proposals, 7LL * 10 * 3);
  EXPECT_LE(stats.accepted, stats.proposals);
  EXPECT_LE(stats.uphill_accepted, stats.accepted);
  EXPECT_GT(stats.accepted, 0);
}

TEST(AnnealerTest, PaperDefaultsMatchSection4d) {
  const AnnealingSchedule schedule;
  EXPECT_DOUBLE_EQ(schedule.initial_temperature, 10000.0);
  EXPECT_DOUBLE_EQ(schedule.cooling_rate, 0.9);
  EXPECT_EQ(schedule.iterations_per_module, 400);
}

}  // namespace
}  // namespace dmfb
