// Tests for the event-queue simulation engine (sim/sim_engine.h): the
// bit-identity audit against the reference engine (events, op_outputs,
// route accounting, failure reasons — the same pinning discipline the
// copy/delta annealing engines use), the stall detector's wait-chain
// reporting, teleport-mode parity, record_events, and the observer.
#include "sim/sim_engine.h"

#include <gtest/gtest.h>

#include <sstream>

#include "assay/assay_library.h"
#include "assay/random_assay.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"
#include "sim/fault.h"

namespace dmfb {
namespace {

struct Synthesized {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
};

Synthesized pcr_setup(int canvas = 16) {
  const auto assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, canvas, canvas);
  return Synthesized{assay.graph, std::move(synth.schedule),
                     std::move(placement)};
}

Synthesized random_setup(std::uint64_t seed, int mixes, int canvas) {
  const auto lib = ModuleLibrary::standard();
  RandomAssayParams params;
  params.mix_operations = mixes;
  params.max_layer_width = 4;
  const AssayCase assay = random_assay(params, lib, seed);
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, canvas, canvas);
  return Synthesized{assay.graph, std::move(synth.schedule),
                     std::move(placement)};
}

/// Full-strength identity: every field, exact doubles — the two engines
/// must agree to the bit, not approximately.
void expect_identical(const SimulationResult& event,
                      const SimulationResult& reference) {
  EXPECT_EQ(event.success, reference.success);
  EXPECT_EQ(event.failure_reason, reference.failure_reason);
  EXPECT_EQ(event.failed_module, reference.failed_module);
  EXPECT_EQ(event.fault_cell, reference.fault_cell);
  EXPECT_EQ(event.makespan_s, reference.makespan_s);
  EXPECT_EQ(event.routes_planned, reference.routes_planned);
  EXPECT_EQ(event.route_cells, reference.route_cells);
  EXPECT_EQ(event.transport_seconds, reference.transport_seconds);
  ASSERT_EQ(event.events.size(), reference.events.size());
  for (std::size_t i = 0; i < event.events.size(); ++i) {
    EXPECT_EQ(event.events[i].time_s, reference.events[i].time_s) << "at " << i;
    EXPECT_EQ(event.events[i].what, reference.events[i].what) << "at " << i;
  }
  EXPECT_EQ(event.op_outputs, reference.op_outputs);
}

SimulationResult run_with(SimEngineKind kind, const Synthesized& s,
                          const Chip& chip, SimOptions options = {}) {
  options.engine = kind;
  const Simulator simulator(options);
  return simulator.run(s.graph, s.schedule, s.placement, chip);
}

TEST(SimEngineTest, PcrBitIdenticalToReference) {
  const auto s = pcr_setup();
  const Chip chip(16, 16);
  expect_identical(run_with(SimEngineKind::kEvent, s, chip),
                   run_with(SimEngineKind::kReference, s, chip));
}

TEST(SimEngineTest, RandomAssaysBitIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    const auto s = random_setup(seed, 10, 20);
    const Chip chip(20, 20);
    expect_identical(run_with(SimEngineKind::kEvent, s, chip),
                     run_with(SimEngineKind::kReference, s, chip));
  }
}

TEST(SimEngineTest, FaultyChipFailuresBitIdentical) {
  // Deterministic fault sprinkles: some land inside module footprints
  // (module-fault failures), some on routes (routing failures), some
  // nowhere interesting — all must fail or pass identically.
  for (const std::uint64_t seed : {3ULL, 9ULL, 77ULL}) {
    const auto s = random_setup(seed, 8, 18);
    for (int sprinkle = 1; sprinkle <= 5; ++sprinkle) {
      Chip chip(18, 18);
      for (int k = 0; k < sprinkle * 3; ++k) {
        inject_fault(chip, Point{(k * 5 + sprinkle) % 18, (k * 7 + 3) % 18});
      }
      expect_identical(run_with(SimEngineKind::kEvent, s, chip),
                       run_with(SimEngineKind::kReference, s, chip));
    }
  }
}

TEST(SimEngineTest, TeleportModeBitIdentical) {
  const auto s = pcr_setup();
  const Chip chip(16, 16);
  SimOptions options;
  options.verify_routing = false;
  const auto event = run_with(SimEngineKind::kEvent, s, chip, options);
  const auto reference = run_with(SimEngineKind::kReference, s, chip, options);
  expect_identical(event, reference);
  EXPECT_TRUE(event.success);
  EXPECT_EQ(event.routes_planned, 0);  // teleporting plans no routes
}

TEST(SimEngineTest, RecordEventsOffDropsOnlyTheLog) {
  const auto s = pcr_setup();
  const Chip chip(16, 16);
  SimOptions quiet;
  quiet.record_events = false;
  for (const auto kind : {SimEngineKind::kEvent, SimEngineKind::kReference}) {
    const auto with_log = run_with(kind, s, chip);
    auto without_log = run_with(kind, s, chip, quiet);
    EXPECT_TRUE(without_log.events.empty());
    EXPECT_FALSE(with_log.events.empty());
    without_log.events = with_log.events;  // the only permitted difference
    expect_identical(without_log, with_log);
  }
}

TEST(SimEngineTest, EngineInstanceReusableAcrossRuns) {
  // Scratch state (grids, A* stamps, pools) persists across run() calls;
  // a reused engine must produce the same result as a fresh one, on
  // different problems back to back.
  EventSimEngine engine;
  const auto a = pcr_setup();
  const auto b = random_setup(11, 12, 20);
  const Chip chip_a(16, 16);
  const Chip chip_b(20, 20);
  const auto first = engine.run(a.graph, a.schedule, a.placement, chip_a);
  const auto second = engine.run(b.graph, b.schedule, b.placement, chip_b);
  const auto again = engine.run(a.graph, a.schedule, a.placement, chip_a);
  expect_identical(first.result, run_with(SimEngineKind::kReference, a, chip_a));
  expect_identical(second.result,
                   run_with(SimEngineKind::kReference, b, chip_b));
  expect_identical(again.result, first.result);
}

TEST(SimEngineTest, GridReuseInvalidatedByChipMutation) {
  // A clean run on a fault-free chip leaves the engine's blocked grid
  // reusable (keyed on Chip::fault_revision() == 0). Mutating the chip
  // between runs must invalidate that cache: the next run rebuilds and
  // stays bit-identical to the reference, in every direction.
  EventSimEngine engine;
  const auto s = random_setup(11, 12, 20);
  Chip chip(20, 20);

  const auto clean = engine.run(s.graph, s.schedule, s.placement, chip);
  expect_identical(clean.result, run_with(SimEngineKind::kReference, s, chip));

  // Inject a fault dead-center: revision bumps, the reuse key breaks.
  chip.set_faulty(Point{10, 10});
  ASSERT_NE(chip.fault_revision(), 0u);
  const auto faulty = engine.run(s.graph, s.schedule, s.placement, chip);
  expect_identical(faulty.result, run_with(SimEngineKind::kReference, s, chip));

  // Clearing the fault keeps the revision nonzero — the engine must
  // re-scan (not trust a stale fault set) and match the clean run again.
  chip.set_faulty(Point{10, 10}, false);
  const auto cleared = engine.run(s.graph, s.schedule, s.placement, chip);
  expect_identical(cleared.result, clean.result);
}

// ---- stall detection -------------------------------------------------

ModuleSpec mixer_2x2() {
  ModuleSpec spec;
  spec.name = "2x2-array mixer";
  spec.kind = ModuleKind::kMixer;
  spec.functional_width = 2;
  spec.functional_height = 2;
  spec.duration_s = 4.0;
  return spec;
}

ScheduledModule scheduled(OperationId op, std::string label, ModuleSpec spec,
                          double start, double end) {
  ScheduledModule m;
  m.op_id = op;
  m.label = std::move(label);
  m.spec = std::move(spec);
  m.start_s = start;
  m.end_s = end;
  return m;
}

/// A producer module finishes at (10,10); its consumer starts later at
/// (4,4), whose cell is covered by a long-lived blocker's functional
/// region — the classic walled-off changeover. (The placement is
/// deliberately overlap-infeasible; the simulator only validates the
/// bounding box, and the stall detector must explain the block.)
struct WalledScenario {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
};

WalledScenario walled_scenario() {
  WalledScenario w;
  const OperationId a = w.graph.add_operation(OperationType::kMix, "A");
  const OperationId m = w.graph.add_operation(OperationType::kMix, "M");
  w.graph.add_dependency(a, m);

  ModuleSpec blocker;
  blocker.name = "5x5 store";
  blocker.kind = ModuleKind::kStorage;
  blocker.functional_width = 5;
  blocker.functional_height = 5;
  blocker.duration_s = 20.0;

  w.schedule.add(scheduled(a, "MA", mixer_2x2(), 0.0, 4.0));
  w.schedule.add(scheduled(-1, "B", blocker, 0.0, 20.0));
  w.schedule.add(scheduled(m, "MM", mixer_2x2(), 10.0, 14.0));

  w.placement = Placement(w.schedule, 12, 12);
  w.placement.set_position(0, Point{8, 8}, false);  // site (10,10)
  w.placement.set_position(1, Point{1, 1}, false);  // functional (2,2)-(6,6)
  w.placement.set_position(2, Point{2, 2}, false);  // site (4,4), covered
  return w;
}

TEST(SimEngineTest, StallDetectorNamesBlockingModule) {
  const auto w = walled_scenario();
  const Chip chip(12, 12);
  EventSimEngine engine;
  const auto run = engine.run(w.graph, w.schedule, w.placement, chip);

  EXPECT_FALSE(run.result.success);
  EXPECT_EQ(run.result.failed_module, 2);
  ASSERT_TRUE(run.stall.stalled);
  EXPECT_EQ(run.stall.time_s, 10.0);
  EXPECT_EQ(run.stall.waiting_module, 2);
  EXPECT_EQ(run.stall.droplet_label, "A");
  EXPECT_EQ(run.stall.target, (Point{4, 4}));
  ASSERT_EQ(run.stall.blocking_modules.size(), 1u);
  EXPECT_EQ(run.stall.blocking_modules[0], 1);
  EXPECT_EQ(run.stall.earliest_unblock_s, 20.0);
  EXPECT_FALSE(run.stall.fault_walled);
  EXPECT_NE(run.stall.chain.find("B [0,20)s"), std::string::npos);
  EXPECT_NE(run.stall.chain.find("retimed"), std::string::npos);

  // The failure itself stays bit-identical to the reference.
  SimOptions reference;
  reference.engine = SimEngineKind::kReference;
  const Simulator pinned(reference);
  expect_identical(run.result,
                   pinned.run(w.graph, w.schedule, w.placement, chip));
}

TEST(SimEngineTest, StallDetectorReportsFaultWall) {
  // Target module at (2,2)-(5,5); a fault ring just outside its footprint
  // severs every route to it — no module to wait for, only defects.
  SequencingGraph graph;
  const OperationId a = graph.add_operation(OperationType::kMix, "A");
  const OperationId m = graph.add_operation(OperationType::kMix, "M");
  graph.add_dependency(a, m);

  Schedule schedule;
  schedule.add(scheduled(a, "MA", mixer_2x2(), 0.0, 4.0));
  schedule.add(scheduled(m, "MM", mixer_2x2(), 10.0, 14.0));

  Placement placement(schedule, 12, 12);
  placement.set_position(0, Point{8, 8}, false);  // site (10,10)
  placement.set_position(1, Point{2, 2}, false);  // footprint (2,2)-(5,5)

  Chip chip(12, 12);
  for (int x = 1; x <= 6; ++x) {
    inject_fault(chip, Point{x, 1});
    inject_fault(chip, Point{x, 6});
  }
  for (int y = 2; y <= 5; ++y) {
    inject_fault(chip, Point{1, y});
    inject_fault(chip, Point{6, y});
  }

  EventSimEngine engine;
  const auto run = engine.run(graph, schedule, placement, chip);
  EXPECT_FALSE(run.result.success);
  ASSERT_TRUE(run.stall.stalled);
  EXPECT_TRUE(run.stall.fault_walled);
  EXPECT_TRUE(run.stall.blocking_modules.empty());
  EXPECT_NE(run.stall.chain.find("faulty electrodes"), std::string::npos);

  SimOptions reference;
  reference.engine = SimEngineKind::kReference;
  const Simulator pinned(reference);
  expect_identical(run.result, pinned.run(graph, schedule, placement, chip));
}

TEST(SimEngineTest, StallDetectorReportsDispenseStarvation) {
  // Every perimeter cell faulty: a dispense has no entry cell. The module
  // footprint sits inside, fault-free, so the failure is the dispense.
  SequencingGraph graph;
  const OperationId d = graph.add_operation(OperationType::kDispense, "D");
  const OperationId m = graph.add_operation(OperationType::kMix, "M");
  graph.add_dependency(d, m);

  Schedule schedule;
  schedule.add(scheduled(m, "MM", mixer_2x2(), 0.0, 4.0));
  Placement placement(schedule, 8, 8);
  placement.set_position(0, Point{2, 2}, false);  // footprint (2,2)-(5,5)

  Chip chip(8, 8);
  for (int x = 0; x < 8; ++x) {
    inject_fault(chip, Point{x, 0});
    inject_fault(chip, Point{x, 7});
  }
  for (int y = 1; y < 7; ++y) {
    inject_fault(chip, Point{0, y});
    inject_fault(chip, Point{7, y});
  }

  EventSimEngine engine;
  const auto run = engine.run(graph, schedule, placement, chip);
  EXPECT_FALSE(run.result.success);
  EXPECT_NE(run.result.failure_reason.find("no free perimeter cell"),
            std::string::npos);
  ASSERT_TRUE(run.stall.stalled);
  EXPECT_TRUE(run.stall.fault_walled);
  EXPECT_EQ(run.stall.waiting_module, 0);

  SimOptions reference;
  reference.engine = SimEngineKind::kReference;
  const Simulator pinned(reference);
  expect_identical(run.result, pinned.run(graph, schedule, placement, chip));
}

// ---- observer / telemetry / plumbing --------------------------------

TEST(SimEngineTest, ObserverSeesEveryModuleStartAndEnd) {
  const auto s = pcr_setup();
  const Chip chip(16, 16);
  EventSimEngine engine;
  int starts = 0;
  int ends = 0;
  double last_time = 0.0;
  engine.set_observer([&](const SimUpdate& update) {
    EXPECT_GE(update.time_s, last_time);  // dispatch order is chronological
    last_time = update.time_s;
    EXPECT_TRUE(update.ok);
    if (update.kind == SimUpdate::Kind::kModuleStart) ++starts;
    if (update.kind == SimUpdate::Kind::kModuleEnd) ++ends;
  });
  const auto run = engine.run(s.graph, s.schedule, s.placement, chip);
  ASSERT_TRUE(run.result.success);
  EXPECT_EQ(starts, s.schedule.module_count());
  EXPECT_EQ(ends, s.schedule.module_count());
  EXPECT_EQ(run.telemetry.events_dispatched,
            2LL * s.schedule.module_count());
}

TEST(SimEngineTest, TelemetryCountsRoutesAndGridWork) {
  const auto s = pcr_setup();
  const Chip chip(16, 16);
  EventSimEngine engine;
  const auto run = engine.run(s.graph, s.schedule, s.placement, chip);
  ASSERT_TRUE(run.result.success);
  EXPECT_EQ(run.telemetry.routes_planned, run.result.routes_planned);
  EXPECT_EQ(run.telemetry.route_cost.count, run.result.routes_planned);
  EXPECT_GT(run.telemetry.events_dispatched, 0);
  // Every route either fast-pathed or searched; the sum must cover all.
  EXPECT_GT(run.telemetry.manhattan_fast_paths + run.telemetry.astar_pushes,
            0);
}

TEST(SimEngineTest, EngineKindTextRoundTrips) {
  EXPECT_STREQ(to_string(SimEngineKind::kEvent), "event");
  EXPECT_STREQ(to_string(SimEngineKind::kReference), "reference");
  EXPECT_EQ(from_string<SimEngineKind>("event"), SimEngineKind::kEvent);
  EXPECT_EQ(from_string<SimEngineKind>("reference"),
            SimEngineKind::kReference);
  EXPECT_THROW(from_string<SimEngineKind>("tick"), std::invalid_argument);
  std::ostringstream os;
  os << SimEngineKind::kEvent;
  EXPECT_EQ(os.str(), "event");
  std::istringstream is("reference");
  SimEngineKind kind = SimEngineKind::kEvent;
  is >> kind;
  EXPECT_EQ(kind, SimEngineKind::kReference);
}

TEST(SimEngineTest, ValidatesLikeTheReference) {
  const auto s = pcr_setup();
  EventSimEngine engine;
  const Chip tiny(4, 4);  // smaller than the placement bounding box
  EXPECT_THROW(engine.run(s.graph, s.schedule, s.placement, tiny),
               std::invalid_argument);
  Schedule empty;
  EXPECT_THROW(engine.run(s.graph, empty, s.placement, Chip(16, 16)),
               std::invalid_argument);
}

// ---- online injection / checkpointing -------------------------------

TEST(SimEngineTest, RunOnlineEmptyPlanBitIdenticalAndNoCheckpoint) {
  const auto s = pcr_setup();
  const Chip chip(16, 16);
  EventSimEngine engine;
  SimCheckpoint ckpt;
  const auto online = engine.run_online(s.graph, s.schedule, s.placement,
                                        chip, FaultInjectionPlan{}, nullptr,
                                        &ckpt);
  ASSERT_TRUE(online.result.success);
  EXPECT_TRUE(online.faults_fired.empty());
  EXPECT_FALSE(ckpt.valid);  // captured only at a failure
  SimOptions reference;
  reference.engine = SimEngineKind::kReference;
  const Simulator pinned(reference);
  expect_identical(online.result,
                   pinned.run(s.graph, s.schedule, s.placement, chip));
}

TEST(SimEngineTest, RunOnlineValidatesPlanAndCheckpoint) {
  const auto s = pcr_setup();
  EventSimEngine engine;
  FaultInjectionPlan outside;
  outside.faults.push_back(PlannedFault{Point{99, 99}, 1.0, -1});
  EXPECT_THROW(engine.run_online(s.graph, s.schedule, s.placement,
                                 Chip(16, 16), outside),
               std::invalid_argument);
  SimCheckpoint bogus;
  bogus.valid = true;  // but start_done does not match the schedule
  EXPECT_THROW(engine.run_online(s.graph, s.schedule, s.placement,
                                 Chip(16, 16), FaultInjectionPlan{}, &bogus),
               std::invalid_argument);
}

TEST(SimEngineTest, MidRunFaultRollsBackTheLiveModule) {
  // A three-mix chain with spatially separated modules: the fault lands
  // under the middle module while it runs, so exactly one operation is
  // disturbed and rolled back.
  SequencingGraph graph;
  const OperationId a = graph.add_operation(OperationType::kMix, "A");
  const OperationId b = graph.add_operation(OperationType::kMix, "B");
  const OperationId c = graph.add_operation(OperationType::kMix, "C");
  graph.add_dependency(a, b);
  graph.add_dependency(b, c);

  Schedule schedule;
  schedule.add(scheduled(a, "MA", mixer_2x2(), 0.0, 4.0));
  schedule.add(scheduled(b, "MB", mixer_2x2(), 10.0, 14.0));
  schedule.add(scheduled(c, "MC", mixer_2x2(), 20.0, 24.0));

  Placement placement(schedule, 24, 24);
  placement.set_position(0, Point{1, 1}, false);    // footprint (1,1)-(4,4)
  placement.set_position(1, Point{10, 10}, false);  // (10,10)-(13,13)
  placement.set_position(2, Point{1, 10}, false);   // (1,10)-(4,13)

  const int target = 1;
  const Point cell{12, 12};  // MB's site, under no other module
  const double mid = 12.0;

  FaultInjectionPlan plan;
  plan.faults.push_back(PlannedFault{cell, mid, -1});

  EventSimEngine engine;
  SimCheckpoint ckpt;
  const auto run = engine.run_online(graph, schedule, placement,
                                     Chip(24, 24), plan, nullptr, &ckpt);
  EXPECT_FALSE(run.result.success);
  EXPECT_EQ(run.result.failed_module, target);
  EXPECT_EQ(run.result.fault_cell, cell);
  EXPECT_NE(run.result.failure_reason.find("contains faulty cell"),
            std::string::npos);
  ASSERT_EQ(run.faults_fired.size(), 1u);
  EXPECT_EQ(run.faults_fired[0].time_s, mid);

  ASSERT_TRUE(ckpt.valid);
  EXPECT_EQ(ckpt.time_s, mid);
  EXPECT_EQ(ckpt.failed_module, target);
  // Rolled back: the interrupted module reads as never started and its
  // output droplet is gone; its deferred finish line (stamped end_s) is
  // not in the log.
  EXPECT_EQ(ckpt.start_done[static_cast<std::size_t>(target)], 0);
  EXPECT_EQ(ckpt.op_outputs.count(b), 0u);
  EXPECT_EQ(ckpt.op_outputs.count(a), 1u);  // the completed op survives
  for (const SimEvent& event : ckpt.events) {
    EXPECT_LE(event.time_s, mid);
    EXPECT_EQ(event.what.find("finish 'B'"), std::string::npos);
  }
  // The clean prefix matches the uninterrupted run bit for bit.
  const auto baseline = engine.run(graph, schedule, placement, Chip(24, 24));
  ASSERT_TRUE(baseline.result.success);
  ASSERT_GT(ckpt.events.size(), 0u);
  ASSERT_LE(ckpt.events.size(), baseline.result.events.size());
  for (std::size_t i = 0; i < ckpt.events.size(); ++i) {
    EXPECT_EQ(ckpt.events[i].time_s, baseline.result.events[i].time_s);
    EXPECT_EQ(ckpt.events[i].what, baseline.result.events[i].what);
  }
}

TEST(SimEngineTest, StallReportsFirstOfMultipleFaultWalledTargets) {
  // Two consumers start at the same instant, both walled off by fault
  // rings: the run fails at the first dispatched (lower schedule index)
  // and the report is a fault wall with no module to wait for.
  SequencingGraph graph;
  const OperationId a = graph.add_operation(OperationType::kMix, "A");
  const OperationId b = graph.add_operation(OperationType::kMix, "B");
  const OperationId m = graph.add_operation(OperationType::kMix, "M");
  const OperationId n = graph.add_operation(OperationType::kMix, "N");
  graph.add_dependency(a, m);
  graph.add_dependency(b, n);

  Schedule schedule;
  schedule.add(scheduled(a, "MA", mixer_2x2(), 0.0, 4.0));
  schedule.add(scheduled(b, "MB", mixer_2x2(), 0.0, 4.0));
  schedule.add(scheduled(m, "MM", mixer_2x2(), 10.0, 14.0));
  schedule.add(scheduled(n, "MN", mixer_2x2(), 10.0, 14.0));

  Placement placement(schedule, 24, 24);
  placement.set_position(0, Point{8, 8}, false);
  placement.set_position(1, Point{14, 14}, false);
  placement.set_position(2, Point{2, 2}, false);    // walled target 1
  placement.set_position(3, Point{2, 16}, false);   // walled target 2

  Chip chip(24, 24);
  for (int x = 1; x <= 6; ++x) {
    inject_fault(chip, Point{x, 1});
    inject_fault(chip, Point{x, 6});
    inject_fault(chip, Point{x, 15});
    inject_fault(chip, Point{x, 20});
  }
  for (int y = 2; y <= 5; ++y) {
    inject_fault(chip, Point{1, y});
    inject_fault(chip, Point{6, y});
  }
  for (int y = 16; y <= 19; ++y) {
    inject_fault(chip, Point{1, y});
    inject_fault(chip, Point{6, y});
  }

  EventSimEngine engine;
  SimCheckpoint ckpt;
  const auto run = engine.run_online(graph, schedule, placement, chip,
                                     FaultInjectionPlan{}, nullptr, &ckpt);
  EXPECT_FALSE(run.result.success);
  ASSERT_TRUE(run.stall.stalled);
  EXPECT_TRUE(run.stall.fault_walled);
  EXPECT_TRUE(run.stall.blocking_modules.empty());
  EXPECT_EQ(run.stall.waiting_module, 2);  // first of the walled pair
  EXPECT_EQ(run.stall.time_s, 10.0);
  // A stall snapshots too: recovery can retry the other targets from
  // here instead of replaying the first 10 simulated seconds.
  ASSERT_TRUE(ckpt.valid);
  EXPECT_EQ(ckpt.time_s, 10.0);
  EXPECT_EQ(ckpt.start_done[2], 0);  // the stalled start did not commit

  SimOptions reference;
  reference.engine = SimEngineKind::kReference;
  const Simulator pinned(reference);
  expect_identical(run.result, pinned.run(graph, schedule, placement, chip));
}

}  // namespace
}  // namespace dmfb
