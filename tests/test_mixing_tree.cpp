// Tests for target-concentration mixing-tree synthesis
// (assay/mixing_tree.h): the generated assay, executed on the simulator,
// must hit the requested concentration exactly.
#include "assay/mixing_tree.h"

#include <gtest/gtest.h>

#include "assay/synthesis.h"
#include "core/greedy_placer.h"
#include "sim/simulator.h"

namespace dmfb {
namespace {

double simulate_final_concentration(const AssayCase& assay) {
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement placement = place_greedy(synth.schedule, 24, 24);
  const Chip chip(24, 24);
  const Simulator simulator;
  const auto run =
      simulator.run(assay.graph, synth.schedule, placement, chip);
  EXPECT_TRUE(run.success) << run.failure_reason;
  // The last dilute op's output is the target droplet.
  double fraction = -1.0;
  for (const auto& op : assay.graph.operations()) {
    if (op.type != OperationType::kDilute) continue;
    const auto it = run.op_outputs.find(op.id);
    if (it != run.op_outputs.end()) {
      fraction = it->second.fraction_of("sample");
    }
  }
  return fraction;
}

TEST(MixingTreeTest, ValidityPredicate) {
  EXPECT_TRUE(is_valid_ratio(MixRatio{1, 1}));
  EXPECT_TRUE(is_valid_ratio(MixRatio{3, 2}));
  EXPECT_FALSE(is_valid_ratio(MixRatio{0, 3}));
  EXPECT_FALSE(is_valid_ratio(MixRatio{8, 3}));   // k == 2^d
  EXPECT_FALSE(is_valid_ratio(MixRatio{9, 3}));   // k > 2^d
  EXPECT_FALSE(is_valid_ratio(MixRatio{1, 0}));
  EXPECT_FALSE(is_valid_ratio(MixRatio{1, 17}));
}

TEST(MixingTreeTest, StepCountReducesEvenNumerators) {
  EXPECT_EQ(mixing_steps_required(MixRatio{1, 1}), 1);   // 1/2
  EXPECT_EQ(mixing_steps_required(MixRatio{2, 2}), 1);   // 2/4 = 1/2
  EXPECT_EQ(mixing_steps_required(MixRatio{4, 4}), 2);   // 4/16 = 1/4
  EXPECT_EQ(mixing_steps_required(MixRatio{3, 4}), 4);   // 3/16 (odd)
}

TEST(MixingTreeTest, InvalidRatioThrows) {
  const auto lib = ModuleLibrary::standard();
  EXPECT_THROW(mixing_tree_assay(MixRatio{0, 2}, lib),
               std::invalid_argument);
  EXPECT_THROW(mixing_tree_assay(MixRatio{4, 2}, lib),
               std::invalid_argument);
}

TEST(MixingTreeTest, HalfIsOneStep) {
  const auto lib = ModuleLibrary::standard();
  const auto assay = mixing_tree_assay(MixRatio{1, 1}, lib);
  int dilutes = 0;
  for (const auto& op : assay.graph.operations()) {
    if (op.type == OperationType::kDilute) ++dilutes;
  }
  EXPECT_EQ(dilutes, 1);
  EXPECT_NEAR(simulate_final_concentration(assay), 0.5, 1e-12);
}

class MixingTreeRatioSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MixingTreeRatioSweep, SimulatedConcentrationHitsTarget) {
  const auto [numerator, depth] = GetParam();
  const MixRatio ratio{numerator, depth};
  const auto lib = ModuleLibrary::standard();
  const auto assay = mixing_tree_assay(ratio, lib);
  EXPECT_TRUE(assay.graph.is_acyclic());
  EXPECT_TRUE(validate_binding(assay.graph, assay.binding).empty());
  const double measured = simulate_final_concentration(assay);
  EXPECT_NEAR(measured, ratio.value(), 1e-12)
      << numerator << "/2^" << depth;
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, MixingTreeRatioSweep,
    ::testing::Values(std::pair{1, 2}, std::pair{3, 2}, std::pair{1, 3},
                      std::pair{3, 3}, std::pair{5, 3}, std::pair{7, 3},
                      std::pair{5, 4}, std::pair{11, 4}, std::pair{9, 5},
                      std::pair{21, 5}, std::pair{6, 4}, std::pair{12, 5}));

TEST(MixingTreeTest, DetectorAppendedWhenRequested) {
  const auto lib = ModuleLibrary::standard();
  const auto assay = mixing_tree_assay(MixRatio{3, 3}, lib,
                                       /*add_detector=*/true);
  bool has_detector = false;
  for (const auto& op : assay.graph.operations()) {
    if (op.type == OperationType::kDetect) has_detector = true;
  }
  EXPECT_TRUE(has_detector);
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  EXPECT_TRUE(synth.schedule.validate_against(assay.graph).empty());
}

TEST(MixingTreeTest, ChainUsesMinimalSteps) {
  const auto lib = ModuleLibrary::standard();
  for (const auto& [k, d] : std::vector<std::pair<int, int>>{
           {1, 4}, {2, 4}, {8, 4}, {3, 4}}) {
    const auto assay = mixing_tree_assay(MixRatio{k, d}, lib);
    int dilutes = 0;
    for (const auto& op : assay.graph.operations()) {
      if (op.type == OperationType::kDilute) ++dilutes;
    }
    EXPECT_EQ(dilutes, mixing_steps_required(MixRatio{k, d}))
        << k << "/2^" << d;
  }
}

}  // namespace
}  // namespace dmfb
