// Tests for the on-line test-droplet walker (sim/tester.h).
#include "sim/tester.h"

#include <gtest/gtest.h>

#include "sim/fault.h"
#include "util/rng.h"

namespace dmfb {
namespace {

TEST(TesterTest, HealthyIdleChipFullCoverage) {
  const Chip chip(6, 5);
  const OnlineTester tester;
  const auto result = tester.run_test(chip);
  EXPECT_FALSE(result.fault_detected);
  EXPECT_EQ(result.cells_reachable, 30);
  EXPECT_EQ(result.cells_visited, 30);
  EXPECT_TRUE(result.complete_coverage());
  EXPECT_GE(result.steps_taken, 29);  // at least one move per new cell
}

TEST(TesterTest, DetectsAndLocalizesSingleFault) {
  Chip chip(8, 8);
  const Point fault{5, 3};
  inject_fault(chip, fault);
  const OnlineTester tester;
  const auto result = tester.run_test(chip);
  EXPECT_TRUE(result.fault_detected);
  EXPECT_EQ(result.faulty_cell, fault);
  EXPECT_LT(result.cells_visited, 64);
}

TEST(TesterTest, DetectsFaultAtStartCell) {
  Chip chip(4, 4);
  inject_fault(chip, Point{0, 0});
  const OnlineTester tester;
  const auto result = tester.run_test(chip);
  EXPECT_TRUE(result.fault_detected);
  EXPECT_EQ(result.faulty_cell, (Point{0, 0}));
}

TEST(TesterTest, EveryFaultLocationIsDetected) {
  const OnlineTester tester;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      Chip chip(5, 5);
      inject_fault(chip, Point{x, y});
      const auto result = tester.run_test(chip);
      EXPECT_TRUE(result.fault_detected) << x << "," << y;
      EXPECT_EQ(result.faulty_cell, (Point{x, y}));
    }
  }
}

TEST(TesterTest, OccupiedCellsAreSkipped) {
  const Chip chip(6, 6);
  Matrix<std::uint8_t> occupied(6, 6, 0);
  // A 3x3 module in the middle; the ring around it stays walkable.
  for (int y = 1; y <= 3; ++y) {
    for (int x = 1; x <= 3; ++x) occupied.at(x, y) = 1;
  }
  const OnlineTester tester;
  const auto result = tester.run_test(chip, occupied, Point{0, 0});
  EXPECT_FALSE(result.fault_detected);
  EXPECT_EQ(result.cells_reachable, 36 - 9);
  EXPECT_TRUE(result.complete_coverage());
}

TEST(TesterTest, FaultUnderModuleNotDetectedByPerimeterWalk) {
  // A fault hidden under an occupied module is invisible to the test
  // droplet — exactly why testing runs continuously as modules move.
  Chip chip(6, 6);
  inject_fault(chip, Point{2, 2});
  Matrix<std::uint8_t> occupied(6, 6, 0);
  for (int y = 1; y <= 3; ++y) {
    for (int x = 1; x <= 3; ++x) occupied.at(x, y) = 1;
  }
  const OnlineTester tester;
  const auto result = tester.run_test(chip, occupied, Point{0, 0});
  EXPECT_FALSE(result.fault_detected);
  EXPECT_TRUE(result.complete_coverage());
}

TEST(TesterTest, DisconnectedRegionNotReached) {
  const Chip chip(5, 5);
  Matrix<std::uint8_t> occupied(5, 5, 0);
  for (int y = 0; y < 5; ++y) occupied.at(2, y) = 1;  // full wall
  const OnlineTester tester;
  const auto result = tester.run_test(chip, occupied, Point{0, 0});
  EXPECT_EQ(result.cells_reachable, 10);  // left half only
  EXPECT_EQ(result.cells_visited, 10);
}

TEST(TesterTest, OccupiedStartReturnsEmptyResult) {
  const Chip chip(4, 4);
  Matrix<std::uint8_t> occupied(4, 4, 0);
  occupied.at(0, 0) = 1;
  const OnlineTester tester;
  const auto result = tester.run_test(chip, occupied, Point{0, 0});
  EXPECT_FALSE(result.fault_detected);
  EXPECT_EQ(result.cells_visited, 0);
}

TEST(TesterTest, MismatchedGridThrows) {
  const Chip chip(4, 4);
  const Matrix<std::uint8_t> occupied(5, 4, 0);
  const OnlineTester tester;
  EXPECT_THROW(tester.run_test(chip, occupied, Point{0, 0}),
               std::invalid_argument);
}

TEST(TesterTest, RandomOccupancyAlwaysCoversReachableCells) {
  Rng rng(23);
  const OnlineTester tester;
  for (int trial = 0; trial < 20; ++trial) {
    const int w = 4 + static_cast<int>(rng.next_below(6));
    const int h = 4 + static_cast<int>(rng.next_below(6));
    Chip chip(w, h);
    Matrix<std::uint8_t> occupied(w, h, 0);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        occupied.at(x, y) = rng.next_bool(0.3) ? 1 : 0;
      }
    }
    occupied.at(0, 0) = 0;
    const auto result = tester.run_test(chip, occupied, Point{0, 0});
    EXPECT_FALSE(result.fault_detected);
    EXPECT_TRUE(result.complete_coverage());
  }
}

}  // namespace
}  // namespace dmfb
