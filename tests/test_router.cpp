// Tests for the droplet router (sim/router.h).
#include "sim/router.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dmfb {
namespace {

Matrix<std::uint8_t> open_grid(int w, int h) {
  return Matrix<std::uint8_t>(w, h, 0);
}

TEST(RouterTest, TrivialSameCell) {
  const auto grid = open_grid(5, 5);
  const auto path = find_path(grid, {2, 2}, {2, 2});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(RouterTest, StraightLineIsShortest) {
  const auto grid = open_grid(10, 3);
  const auto path = find_path(grid, {0, 1}, {9, 1});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(static_cast<int>(path->size()) - 1, 9);
  EXPECT_TRUE(is_valid_path(grid, *path));
}

TEST(RouterTest, PathLengthEqualsManhattanWhenUnobstructed) {
  const auto grid = open_grid(8, 8);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Point from{static_cast<int>(rng.next_below(8)),
                     static_cast<int>(rng.next_below(8))};
    const Point to{static_cast<int>(rng.next_below(8)),
                   static_cast<int>(rng.next_below(8))};
    const auto path = find_path(grid, from, to);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(static_cast<int>(path->size()) - 1,
              manhattan_distance(from, to));
  }
}

TEST(RouterTest, RoutesAroundWall) {
  auto grid = open_grid(7, 7);
  for (int y = 0; y < 6; ++y) grid.at(3, y) = 1;  // wall with gap at top
  const auto path = find_path(grid, {0, 0}, {6, 0});
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(is_valid_path(grid, *path));
  // Must detour through y = 6: length > Manhattan distance.
  EXPECT_GT(static_cast<int>(path->size()) - 1, 6);
}

TEST(RouterTest, NoPathThroughClosedWall) {
  auto grid = open_grid(7, 7);
  for (int y = 0; y < 7; ++y) grid.at(3, y) = 1;
  EXPECT_FALSE(find_path(grid, {0, 0}, {6, 0}).has_value());
}

TEST(RouterTest, BlockedEndpointsFail) {
  auto grid = open_grid(5, 5);
  grid.at(0, 0) = 1;
  EXPECT_FALSE(find_path(grid, {0, 0}, {4, 4}).has_value());
  EXPECT_FALSE(find_path(grid, {4, 4}, {0, 0}).has_value());
}

TEST(RouterTest, OutOfBoundsEndpointsFail) {
  const auto grid = open_grid(5, 5);
  EXPECT_FALSE(find_path(grid, {-1, 0}, {4, 4}).has_value());
  EXPECT_FALSE(find_path(grid, {0, 0}, {5, 0}).has_value());
}

TEST(RouterTest, PathDuration) {
  DropletPath path{{0, 0}, {1, 0}, {2, 0}, {2, 1}};
  EXPECT_DOUBLE_EQ(path_duration_s(path, 10.0), 0.3);
  EXPECT_DOUBLE_EQ(path_duration_s({{0, 0}}, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(path_duration_s(path, 0.0), 0.0);
}

TEST(RouterTest, EmptyAndSingleCellPathEdgeCases) {
  auto grid = open_grid(5, 5);
  // The empty path: zero duration, never valid (a droplet is always
  // somewhere), and no negative-speed surprises.
  EXPECT_DOUBLE_EQ(path_duration_s({}, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(path_duration_s({}, -1.0), 0.0);
  EXPECT_FALSE(is_valid_path(grid, {}));
  // A single-cell path: zero duration, valid iff its cell is free.
  EXPECT_DOUBLE_EQ(path_duration_s({{2, 2}}, 10.0), 0.0);
  EXPECT_TRUE(is_valid_path(grid, {{2, 2}}));
  EXPECT_FALSE(is_valid_path(grid, {{-1, 2}}));
  grid.at(2, 2) = 1;
  EXPECT_FALSE(is_valid_path(grid, {{2, 2}}));
  EXPECT_FALSE(find_path(grid, {2, 2}, {2, 2}).has_value());  // blocked
  grid.at(2, 2) = 0;
  const auto path = find_path(grid, {2, 2}, {2, 2});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (DropletPath{{2, 2}}));
  EXPECT_TRUE(is_valid_path(grid, *path));
}

TEST(RouterTest, IsValidPathRejectsJumpsAndBlockedCells) {
  auto grid = open_grid(5, 5);
  EXPECT_TRUE(is_valid_path(grid, {{0, 0}, {1, 0}, {1, 1}}));
  EXPECT_FALSE(is_valid_path(grid, {{0, 0}, {2, 0}}));   // jump
  EXPECT_FALSE(is_valid_path(grid, {{0, 0}, {1, 1}}));   // diagonal
  EXPECT_FALSE(is_valid_path(grid, {}));                 // empty
  grid.at(1, 0) = 1;
  EXPECT_FALSE(is_valid_path(grid, {{0, 0}, {1, 0}}));   // blocked
}

TEST(RouterTest, MazeProperty) {
  // Random mazes: whenever a path is found it must be valid; when the
  // straight-line corridor is fully open the path must be optimal.
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const int w = 4 + static_cast<int>(rng.next_below(10));
    const int h = 4 + static_cast<int>(rng.next_below(10));
    auto grid = open_grid(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        grid.at(x, y) = rng.next_bool(0.25) ? 1 : 0;
      }
    }
    grid.at(0, 0) = 0;
    grid.at(w - 1, h - 1) = 0;
    const auto path = find_path(grid, {0, 0}, {w - 1, h - 1});
    if (path) {
      EXPECT_TRUE(is_valid_path(grid, *path));
      EXPECT_GE(static_cast<int>(path->size()) - 1,
                manhattan_distance({0, 0}, {w - 1, h - 1}));
      EXPECT_EQ(path->front(), (Point{0, 0}));
      EXPECT_EQ(path->back(), (Point{w - 1, h - 1}));
    }
  }
}

}  // namespace
}  // namespace dmfb
