// Tests for the annealer's generation function (core/moves.h).
#include "core/moves.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace dmfb {
namespace {

Schedule schedule_with(int modules) {
  Schedule s;
  const ModuleSpec square{"sq", ModuleKind::kMixer, 2, 2, 10.0};   // 4x4
  const ModuleSpec slim{"sl", ModuleKind::kMixer, 1, 4, 5.0};      // 3x6
  for (int i = 0; i < modules; ++i) {
    s.add(ScheduledModule{i, "M" + std::to_string(i),
                          i % 2 == 0 ? square : slim, 0.0, 10.0, -1, -1});
  }
  return s;
}

TEST(MovesTest, AnchorsAlwaysStayInCanvas) {
  Placement p(schedule_with(4), 12, 12);
  Rng rng(1);
  MoveOptions options;
  for (int i = 0; i < 2000; ++i) {
    const double fraction = rng.next_double();
    apply_random_move(p, fraction, options, rng);
    EXPECT_TRUE(p.within_canvas()) << "after move " << i;
  }
}

TEST(MovesTest, MaxAnchorAccountsForRotation) {
  Placement p(schedule_with(2), 12, 12);
  // Module 1 is 3x6; rotated it is 6x3.
  EXPECT_EQ(max_anchor(p, 1), (Point{9, 6}));
  p.set_rotated(1, true);
  EXPECT_EQ(max_anchor(p, 1), (Point{6, 9}));
}

TEST(MovesTest, ControllingWindowShrinksWithTemperature) {
  Placement p(schedule_with(2), 20, 10);
  MoveOptions options;
  const int full = controlling_window_span(p, 1.0, options);
  const int mid = controlling_window_span(p, 0.5, options);
  const int cold = controlling_window_span(p, 0.0, options);
  EXPECT_EQ(full, 20);
  EXPECT_EQ(mid, 10);
  EXPECT_EQ(cold, options.min_window);
  EXPECT_GT(full, mid);
  EXPECT_GT(mid, cold);
}

TEST(MovesTest, WindowDisabledIsAlwaysFull) {
  Placement p(schedule_with(2), 20, 10);
  MoveOptions options;
  options.use_controlling_window = false;
  EXPECT_EQ(controlling_window_span(p, 0.0, options), 20);
  EXPECT_EQ(controlling_window_span(p, 1.0, options), 20);
}

TEST(MovesTest, ColdDisplacementIsLocal) {
  Placement p(schedule_with(1), 20, 20);
  p.set_anchor(0, {8, 8});
  MoveOptions options;
  options.single_move_probability = 1.0;
  options.rotate_probability = 0.0;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    p.set_anchor(0, {8, 8});
    apply_random_move(p, 0.0, options, rng);  // coldest temperature
    const Point a = p.module(0).anchor;
    EXPECT_LE(std::abs(a.x - 8), options.min_window);
    EXPECT_LE(std::abs(a.y - 8), options.min_window);
  }
}

TEST(MovesTest, SingleProbabilityOneNeverSwaps) {
  Placement p(schedule_with(3), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {5, 5});
  p.set_anchor(2, {10, 10});
  MoveOptions options;
  options.single_move_probability = 1.0;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const MoveKind kind = apply_random_move(p, 0.5, options, rng);
    EXPECT_TRUE(kind == MoveKind::kDisplace ||
                kind == MoveKind::kDisplaceRotate);
  }
}

TEST(MovesTest, PairProbabilityOneAlwaysSwaps) {
  Placement p(schedule_with(3), 16, 16);
  MoveOptions options;
  options.single_move_probability = 0.0;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const MoveKind kind = apply_random_move(p, 0.5, options, rng);
    EXPECT_TRUE(kind == MoveKind::kSwap || kind == MoveKind::kSwapRotate);
  }
}

TEST(MovesTest, SingleModulePlacementNeverSwaps) {
  Placement p(schedule_with(1), 16, 16);
  MoveOptions options;
  options.single_move_probability = 0.0;  // would swap, but cannot
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const MoveKind kind = apply_random_move(p, 0.5, options, rng);
    EXPECT_TRUE(kind == MoveKind::kDisplace ||
                kind == MoveKind::kDisplaceRotate);
  }
}

TEST(MovesTest, RotationOnlyAffectsNonSquareModules) {
  Placement p(schedule_with(2), 16, 16);
  MoveOptions options;
  options.single_move_probability = 1.0;
  options.rotate_probability = 1.0;
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    apply_random_move(p, 0.5, options, rng);
    EXPECT_FALSE(p.module(0).rotated);  // 4x4 is rotation-invariant
  }
}

TEST(MovesTest, SwapExchangesNeighborhoods) {
  Placement p(schedule_with(2), 16, 16);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {10, 8});
  MoveOptions options;
  options.single_move_probability = 0.0;
  options.rotate_probability = 0.0;
  Rng rng(15);
  apply_random_move(p, 0.5, options, rng);
  // Anchors swapped (clamping may adjust, but both fit here).
  EXPECT_EQ(p.module(0).anchor, (Point{10, 8}));
  EXPECT_EQ(p.module(1).anchor, (Point{0, 0}));
}

TEST(MovesTest, MoveMixMatchesProbability) {
  Placement p(schedule_with(4), 16, 16);
  MoveOptions options;
  options.single_move_probability = 0.8;  // the paper's p
  Rng rng(17);
  std::map<MoveKind, int> histogram;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    ++histogram[apply_random_move(p, 0.5, options, rng)];
  }
  const double single_fraction =
      static_cast<double>(histogram[MoveKind::kDisplace] +
                          histogram[MoveKind::kDisplaceRotate]) /
      trials;
  EXPECT_NEAR(single_fraction, 0.8, 0.02);
}

TEST(MovesTest, WithSpanOverloadIsStreamIdentical) {
  // The annealing loop hoists the controlling-window span per
  // temperature step; the precomputed-span overload must consume the
  // same draws in the same order and produce the same moves.
  const Schedule schedule = schedule_with(5);
  Placement p(schedule, 14, 14);
  MoveOptions options;
  Rng rng_a(123);
  Rng rng_b(123);
  for (int step = 0; step < 200; ++step) {
    const double fraction = 1.0 - static_cast<double>(step) / 200.0;
    const int span = controlling_window_span(p, fraction, options);
    const PlacementMove a = generate_random_move(p, fraction, options, rng_a);
    const PlacementMove b =
        generate_random_move_with_span(p, span, options, rng_b);
    ASSERT_EQ(a.kind, b.kind) << "step " << step;
    ASSERT_EQ(a.count, b.count) << "step " << step;
    for (int c = 0; c < a.count; ++c) {
      ASSERT_EQ(a.changes[c].index, b.changes[c].index);
      ASSERT_EQ(a.changes[c].anchor, b.changes[c].anchor);
      ASSERT_EQ(a.changes[c].rotated, b.changes[c].rotated);
    }
    apply_move(p, a);
  }
  EXPECT_EQ(rng_a.next(), rng_b.next());  // identical stream consumption
}

}  // namespace
}  // namespace dmfb
