// Tests for the Fault Tolerance Index (core/fti.h), including the pinning
// property: the fast evaluator must agree with the MER-based reference
// definition cell by cell.
#include "core/fti.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"
#include "util/rng.h"

namespace dmfb {
namespace {

/// One 4x4 module alone in time.
Schedule single_module_schedule() {
  Schedule s;
  const ModuleSpec spec{"m", ModuleKind::kMixer, 2, 2, 10.0};
  s.add(ScheduledModule{0, "A", spec, 0.0, 10.0, -1, -1});
  return s;
}

TEST(FtiTest, TightArrayHasZeroFti) {
  // A 4x4 module on a 4x4 array: no spare cells, nothing is covered
  // inside the module, and there are no unused cells.
  Placement p(single_module_schedule(), 4, 4);
  p.set_anchor(0, {0, 0});
  const FtiResult r = evaluate_fti(p);
  EXPECT_EQ(r.array, (Rect{0, 0, 4, 4}));
  EXPECT_EQ(r.total_cells, 16);
  EXPECT_EQ(r.covered_cells, 0);
  EXPECT_DOUBLE_EQ(r.fti(), 0.0);
}

TEST(FtiTest, FullSpareRegionGivesFullCoverage) {
  // A 4x4 module on an 8x4 region: the module can always shift into the
  // free half, and the free half is unused, so FTI = 1.
  Placement p(single_module_schedule(), 8, 4);
  p.set_anchor(0, {0, 0});
  const FtiResult r = evaluate_fti(p, {}, Rect{0, 0, 8, 4});
  EXPECT_EQ(r.total_cells, 32);
  EXPECT_EQ(r.covered_cells, 32);
  EXPECT_DOUBLE_EQ(r.fti(), 1.0);
}

TEST(FtiTest, SpareTooSmallCoversOnlyShiftableCells) {
  // 4x4 module on a 6x4 region. The 2x4 spare strip alone cannot hold the
  // module, but removal frees the module's own cells: anchors x in
  // {0,1,2} are candidates. A fault in columns 0-1 is avoided by anchor
  // x=2; faults in columns 2-3 are inside every candidate. Covered:
  // module columns 0-1 (8 cells) + free columns 4-5 (8 cells).
  Placement p(single_module_schedule(), 6, 4);
  p.set_anchor(0, {0, 0});
  const FtiResult r = evaluate_fti(p, {}, Rect{0, 0, 6, 4});
  EXPECT_EQ(r.covered_cells, 16);
  EXPECT_DOUBLE_EQ(r.fti(), 16.0 / 24.0);
  for (int y = 0; y < 4; ++y) {
    EXPECT_EQ(r.covered.at(2, y), 0);
    EXPECT_EQ(r.covered.at(3, y), 0);
  }
}

TEST(FtiTest, RelocationMayReuseOwnCells) {
  // 4x4 module on a 5x4 region. Removing the module frees its cells; the
  // relocated module may reuse all of them except the faulty one. A 4x4
  // empty rect exists iff the faulty cell is in the leftmost column
  // (shift right) — for faults in columns 1..3 no 4x4 rect avoids them.
  Placement p(single_module_schedule(), 5, 4);
  p.set_anchor(0, {0, 0});
  const FtiResult r = evaluate_fti(p, {}, Rect{0, 0, 5, 4});
  // Covered: free column x=4 (4 cells) + module column x=0 (4 cells).
  EXPECT_EQ(r.covered_cells, 8);
  for (int y = 0; y < 4; ++y) {
    EXPECT_EQ(r.covered.at(0, y), 1) << y;
    EXPECT_EQ(r.covered.at(2, y), 0) << y;
    EXPECT_EQ(r.covered.at(4, y), 1) << y;
  }
}

TEST(FtiTest, RotationEnablesRelocation) {
  // A 3x6 module with a 6x3 spare region below: only the rotated
  // footprint fits.
  Schedule s;
  const ModuleSpec slim{"slim", ModuleKind::kMixer, 1, 4, 5.0};  // 3x6
  s.add(ScheduledModule{0, "A", slim, 0.0, 5.0, -1, -1});
  // Block the area right of the module with a second concurrent module
  // so only the 6x3 strip at the top remains.
  const ModuleSpec blocker{"blocker", ModuleKind::kMixer, 1, 4, 5.0};  // 3x6
  s.add(ScheduledModule{1, "B", blocker, 0.0, 5.0, -1, -1});

  Placement p(s, 6, 9);
  p.set_anchor(0, {0, 0});
  p.set_anchor(1, {3, 0});
  const Rect region{0, 0, 6, 9};

  FtiOptions with_rotation{.allow_rotation = true};
  FtiOptions without_rotation{.allow_rotation = false};
  const auto fti_rot = evaluate_fti(p, with_rotation, region);
  const auto fti_norot = evaluate_fti(p, without_rotation, region);
  // With rotation, A (and B) can always relocate into the 6x3 top strip,
  // so every cell is covered.
  EXPECT_GT(fti_rot.covered_cells, fti_norot.covered_cells);
  EXPECT_EQ(fti_rot.covered_cells, 54);
  // Without rotation a module can only shift vertically within its own
  // freed column: faults in rows 0..2 are avoidable (shift to rows 3..8),
  // faults in rows 3..5 are not. 9 covered cells per module + 18 free.
  EXPECT_EQ(fti_norot.covered_cells, 36);
}

TEST(FtiTest, FastEvaluatorMatchesReferenceOnPcr) {
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p = place_greedy(synth.schedule, 16, 16);
  const Rect region = p.bounding_box();
  const FtiResult fast = evaluate_fti(p, {}, region);
  long long reference_covered = 0;
  for (int y = region.y; y < region.top(); ++y) {
    for (int x = region.x; x < region.right(); ++x) {
      const bool ref = is_cell_covered_reference(p, Point{x, y}, {}, region);
      const bool fst =
          fast.covered.at(x - region.x, y - region.y) != 0;
      EXPECT_EQ(ref, fst) << "cell (" << x << "," << y << ")";
      if (ref) ++reference_covered;
    }
  }
  EXPECT_EQ(reference_covered, fast.covered_cells);
}

class FtiRandomPinning : public ::testing::TestWithParam<int> {};

TEST_P(FtiRandomPinning, FastEqualsReferenceOnRandomPlacements) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1237 + 3);
  const ModuleSpec shapes[] = {
      {"a", ModuleKind::kMixer, 2, 2, 10.0},
      {"b", ModuleKind::kMixer, 1, 4, 5.0},
      {"c", ModuleKind::kMixer, 2, 3, 6.0},
      {"d", ModuleKind::kStorage, 1, 1, 4.0},
  };
  for (int trial = 0; trial < 5; ++trial) {
    Schedule s;
    const int modules = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < modules; ++i) {
      const auto& spec = shapes[rng.next_below(4)];
      const double start = static_cast<double>(rng.next_below(3)) * 5.0;
      s.add(ScheduledModule{i, "M" + std::to_string(i), spec, start,
                            start + 5.0, -1, -1});
    }
    const int canvas = 12;
    Placement p(s, canvas, canvas);
    // Random (possibly infeasible) anchors; FTI must still be well defined.
    for (int i = 0; i < p.module_count(); ++i) {
      const Rect fp = p.module(i).footprint();
      p.set_anchor(i, Point{static_cast<int>(
                                rng.next_below(canvas - fp.width + 1)),
                            static_cast<int>(
                                rng.next_below(canvas - fp.height + 1))});
    }
    const Rect region = p.bounding_box();
    const FtiOptions options{.allow_rotation = rng.next_bool(0.5)};
    const FtiResult fast = evaluate_fti(p, options, region);
    for (int y = region.y; y < region.top(); ++y) {
      for (int x = region.x; x < region.right(); ++x) {
        const bool ref =
            is_cell_covered_reference(p, Point{x, y}, options, region);
        EXPECT_EQ(ref, fast.covered.at(x - region.x, y - region.y) != 0)
            << "trial " << trial << " cell (" << x << "," << y << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtiRandomPinning, ::testing::Range(0, 10));

TEST(FtiTest, CountOnlyPathAgreesWithFullEvaluation) {
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p = place_greedy(synth.schedule, 16, 16);
  const Rect region = p.bounding_box();
  EXPECT_EQ(covered_cell_count(p, {}, region),
            evaluate_fti(p, {}, region).covered_cells);
}

TEST(FtiTest, FtiBetweenZeroAndOne) {
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement p = place_greedy(synth.schedule, 20, 20);
  const auto r = evaluate_fti(p);
  EXPECT_GE(r.fti(), 0.0);
  EXPECT_LE(r.fti(), 1.0);
  EXPECT_EQ(r.total_cells, r.array.area());
}

TEST(FtiTest, EmptyRegionYieldsZero) {
  Placement p(single_module_schedule(), 6, 6);
  const FtiResult r = evaluate_fti(p, {}, Rect{});
  EXPECT_EQ(r.total_cells, 0);
  EXPECT_DOUBLE_EQ(r.fti(), 0.0);
}

}  // namespace
}  // namespace dmfb
