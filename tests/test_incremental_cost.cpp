// Cross-checks for the delta-cost engine (core/incremental_cost.h): the
// incremental state must track the from-scratch CostEvaluator exactly —
// after every propose, commit and revert, for beta = 0 and beta > 0, with
// and without defect maps — and the delta annealing engine must replay the
// copying engine's trajectory seed for seed.
#include "core/incremental_cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fti.h"
#include "core/moves.h"
#include "core/sa_placer.h"
#include "util/rng.h"

namespace dmfb {
namespace {

/// A schedule whose module intervals produce a mixed conflict structure:
/// some pairs overlap in time (and so may conflict spatially), some are
/// disjoint and reuse cells.
Schedule mixed_schedule(int modules, Rng& rng) {
  Schedule s;
  for (int i = 0; i < modules; ++i) {
    const int w = 1 + static_cast<int>(rng.next_below(4));
    const int h = 1 + static_cast<int>(rng.next_below(4));
    const double start = static_cast<double>(rng.next_below(30));
    const double duration = 5.0 + static_cast<double>(rng.next_below(20));
    const std::string id = std::to_string(i);
    const ModuleSpec spec{"m" + id, ModuleKind::kMixer, w, h, duration};
    s.add(ScheduledModule{i, "M" + id, spec, start, start + duration, -1, -1});
  }
  return s;
}

/// A placement with every anchor randomized (in canvas, any orientation).
Placement random_placement(const Schedule& schedule, int canvas, Rng& rng) {
  Placement p(schedule, canvas, canvas);
  MoveOptions scatter;
  scatter.single_move_probability = 1.0;
  scatter.rotate_probability = 0.5;
  scatter.use_controlling_window = false;
  for (int i = 0; i < 3 * p.module_count(); ++i) {
    apply_random_move(p, 1.0, scatter, rng);
  }
  return p;
}

void expect_matches_evaluator(const IncrementalPlacementState& state,
                              const CostEvaluator& evaluator) {
  const CostBreakdown fresh = evaluator.evaluate(state.placement());
  const CostBreakdown tracked = state.breakdown();
  EXPECT_EQ(tracked.area_cells, fresh.area_cells);
  EXPECT_EQ(tracked.overlap_cells, fresh.overlap_cells);
  EXPECT_EQ(tracked.defect_cells, fresh.defect_cells);
  EXPECT_DOUBLE_EQ(tracked.fti, fresh.fti);
  EXPECT_EQ(tracked.route_pressure, fresh.route_pressure);
  EXPECT_DOUBLE_EQ(tracked.value, fresh.value);
  EXPECT_DOUBLE_EQ(state.cost(), fresh.value);
  EXPECT_EQ(state.feasible(), state.placement().feasible());
  EXPECT_EQ(state.defect_cells(), evaluator.defect_usage(state.placement()));
}

/// Random move sequence with random commit/revert decisions; the tracked
/// cost must equal a fresh evaluation after every step.
void run_cross_check(double beta, std::vector<Point> defects,
                     std::uint64_t seed) {
  Rng rng(seed);
  const Schedule schedule = mixed_schedule(8, rng);
  const Placement initial = random_placement(schedule, 16, rng);

  CostWeights weights;
  weights.beta = beta;
  CostEvaluator evaluator(weights);
  evaluator.set_defects(std::move(defects));

  IncrementalPlacementState state(initial, evaluator);
  expect_matches_evaluator(state, evaluator);

  MoveOptions moves;  // defaults: displacements, swaps and rotations
  for (int step = 0; step < 200; ++step) {
    const double fraction = 1.0 - static_cast<double>(step) / 200.0;
    const PlacementMove move =
        generate_random_move(state.placement(), fraction, moves, rng);
    const double before = state.cost();
    const double delta = state.propose(move);
    ASSERT_TRUE(state.has_pending());
    // Mid-proposal, cost() keeps reporting the committed state.
    EXPECT_DOUBLE_EQ(state.cost(), before);

    if (rng.next_bool(0.5)) {
      EXPECT_DOUBLE_EQ(state.commit(), before + delta);
    } else {
      state.revert();
      EXPECT_DOUBLE_EQ(state.cost(), before);
    }
    ASSERT_FALSE(state.has_pending());
    expect_matches_evaluator(state, evaluator);
  }
}

TEST(IncrementalCostTest, TracksEvaluatorAreaOnly) {
  run_cross_check(/*beta=*/0.0, {}, /*seed=*/11);
  run_cross_check(/*beta=*/0.0, {}, /*seed=*/12);
}

TEST(IncrementalCostTest, TracksEvaluatorWithFti) {
  run_cross_check(/*beta=*/30.0, {}, /*seed=*/21);
  run_cross_check(/*beta=*/30.0, {}, /*seed=*/22);
}

TEST(IncrementalCostTest, TracksEvaluatorWithDefects) {
  const std::vector<Point> defects{{3, 3}, {7, 2}, {12, 12}, {3, 3}};
  run_cross_check(/*beta=*/0.0, defects, /*seed=*/31);
  run_cross_check(/*beta=*/30.0, defects, /*seed=*/32);
}

void expect_identical_outcomes(const PlacementOutcome& copy,
                               const PlacementOutcome& delta) {
  EXPECT_EQ(copy.stats.proposals, delta.stats.proposals);
  EXPECT_EQ(copy.stats.accepted, delta.stats.accepted);
  EXPECT_EQ(copy.stats.uphill_accepted, delta.stats.uphill_accepted);
  for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
    // Identical trajectories draw identical move kinds.
    EXPECT_EQ(copy.stats.proposals_by_kind[k],
              delta.stats.proposals_by_kind[k])
        << "kind " << k;
  }
  EXPECT_DOUBLE_EQ(copy.stats.best_cost, delta.stats.best_cost);
  EXPECT_DOUBLE_EQ(copy.cost.value, delta.cost.value);
  ASSERT_EQ(copy.placement.module_count(), delta.placement.module_count());
  for (int i = 0; i < copy.placement.module_count(); ++i) {
    EXPECT_EQ(copy.placement.module(i).anchor, delta.placement.module(i).anchor)
        << "module " << i;
    EXPECT_EQ(copy.placement.module(i).rotated,
              delta.placement.module(i).rotated)
        << "module " << i;
  }
}

/// Seed-for-seed equivalence of the copying and delta engines over a
/// shortened (but real) annealing run.
void run_engine_equivalence(double beta, std::vector<Point> defects,
                            std::uint64_t seed) {
  Rng rng(seed);
  const Schedule schedule = mixed_schedule(7, rng);
  const Placement initial = random_placement(schedule, 16, rng);

  SaPlacerOptions options;
  options.canvas_width = 16;
  options.canvas_height = 16;
  options.schedule.initial_temperature = 200.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module = 30;
  options.schedule.min_temperature = 0.5;
  options.weights.beta = beta;
  options.defects = std::move(defects);
  options.seed = seed;

  options.engine = AnnealingEngine::kCopy;
  const PlacementOutcome copy = anneal_from(initial, options);
  options.engine = AnnealingEngine::kDelta;
  const PlacementOutcome delta = anneal_from(initial, options);
  expect_identical_outcomes(copy, delta);
}

TEST(IncrementalCostTest, EnginesAgreeSeedForSeedAreaOnly) {
  run_engine_equivalence(/*beta=*/0.0, {}, /*seed=*/101);
  run_engine_equivalence(/*beta=*/0.0, {}, /*seed=*/102);
}

TEST(IncrementalCostTest, EnginesAgreeSeedForSeedWithFti) {
  run_engine_equivalence(/*beta=*/30.0, {}, /*seed=*/201);
}

TEST(IncrementalCostTest, EnginesAgreeSeedForSeedWithDefects) {
  run_engine_equivalence(/*beta=*/0.0, {{2, 2}, {9, 9}}, /*seed=*/301);
}

TEST(IncrementalCostTest, GenerateThenApplyEqualsApplyRandomMove) {
  // The two engines share one random stream contract: generating a move
  // and applying it must consume and produce exactly what the legacy
  // in-place mutation does.
  Rng seed_rng(7);
  const Schedule schedule = mixed_schedule(6, seed_rng);
  Placement a = random_placement(schedule, 16, seed_rng);
  Placement b = a;

  MoveOptions moves;
  Rng rng_a(99);
  Rng rng_b(99);
  for (int step = 0; step < 100; ++step) {
    const double fraction = 1.0 - static_cast<double>(step) / 100.0;
    const MoveKind kind_a = apply_random_move(a, fraction, moves, rng_a);
    const PlacementMove move =
        generate_random_move(b, fraction, moves, rng_b);
    apply_move(b, move);
    EXPECT_EQ(kind_a, move.kind);
    for (int i = 0; i < a.module_count(); ++i) {
      ASSERT_EQ(a.module(i).anchor, b.module(i).anchor) << "module " << i;
      ASSERT_EQ(a.module(i).rotated, b.module(i).rotated) << "module " << i;
    }
  }
  EXPECT_EQ(rng_a.next(), rng_b.next());  // identical stream consumption
}

/// The coverage-grid audit (the per-cell counterpart of
/// run_cross_check): 300+ random moves with random commit/revert
/// decisions, pinning the incremental evaluator's per-cell coverage
/// state against BOTH reference evaluators after every operation —
/// `evaluate_fti`'s mask and the definition-faithful
/// `is_cell_covered_reference` — including mid-proposal, where the
/// eager state reflects the proposed placement.
void run_coverage_audit(double beta, double gamma, std::uint64_t seed) {
  Rng rng(seed);
  const Schedule schedule = mixed_schedule(6, rng);
  const Placement initial = random_placement(schedule, 12, rng);

  CostWeights weights;
  weights.beta = beta;
  weights.gamma = gamma;
  CostEvaluator evaluator(weights);
  if (gamma != 0.0) {
    std::vector<RouteLink> links;
    for (int i = 0; i < initial.module_count(); ++i) {
      links.push_back(RouteLink{i > 0 ? i - 1 : -1, i, 1 + i % 3});
    }
    evaluator.set_route_links(std::move(links));
  }

  IncrementalPlacementState state(initial, evaluator);

  const auto audit_coverage = [&](const char* when, int step) {
    const FtiIncrementalEvaluator* fti = state.fti_evaluator();
    if (fti == nullptr) return;  // beta == 0: the term is never engaged
    const Rect region = state.placement().bounding_box();
    ASSERT_EQ(fti->region(), region) << when << " step " << step;
    const FtiResult reference =
        evaluate_fti(state.placement(), fti->options(), region);
    EXPECT_EQ(fti->covered_cells(), reference.covered_cells)
        << when << " step " << step;
    // Every region cell plus a one-cell ring outside (uncovered by
    // definition on both sides).
    for (int y = region.y - 1; y <= region.top(); ++y) {
      for (int x = region.x - 1; x <= region.right(); ++x) {
        const Point cell{x, y};
        const bool incremental = fti->is_cell_covered(cell);
        const bool in_region = region.contains(cell);
        const bool fast = in_region && reference.covered.at(
                                           x - region.x, y - region.y) != 0;
        ASSERT_EQ(incremental, fast)
            << when << " step " << step << " cell (" << x << "," << y << ")";
        const bool definition = is_cell_covered_reference(
            state.placement(), cell, fti->options(), region);
        ASSERT_EQ(incremental, definition)
            << when << " step " << step << " cell (" << x << "," << y << ")";
      }
    }
  };

  MoveOptions moves;  // defaults: displacements, swaps and rotations
  audit_coverage("initial", -1);
  const int kSteps = 320;
  for (int step = 0; step < kSteps; ++step) {
    const double fraction =
        1.0 - static_cast<double>(step) / static_cast<double>(kSteps);
    const PlacementMove move =
        generate_random_move(state.placement(), fraction, moves, rng);
    const double before = state.cost();
    const double delta = state.propose(move);
    ASSERT_TRUE(state.has_pending());
    audit_coverage("proposed", step);

    if (rng.next_bool(0.5)) {
      EXPECT_DOUBLE_EQ(state.commit(), before + delta);
    } else {
      state.revert();
      EXPECT_DOUBLE_EQ(state.cost(), before);
    }
    audit_coverage("resolved", step);
    expect_matches_evaluator(state, evaluator);
  }
}

TEST(IncrementalCostTest, CoverageAuditAreaOnly) {
  run_coverage_audit(/*beta=*/0.0, /*gamma=*/0.0, /*seed=*/401);
}

TEST(IncrementalCostTest, CoverageAuditWithFti) {
  run_coverage_audit(/*beta=*/30.0, /*gamma=*/0.0, /*seed=*/402);
}

TEST(IncrementalCostTest, CoverageAuditWithFtiAndRoutePressure) {
  run_coverage_audit(/*beta=*/30.0, /*gamma=*/0.05, /*seed=*/403);
}

TEST(IncrementalCostTest, CoverageAuditRoutePressureOnly) {
  run_coverage_audit(/*beta=*/0.0, /*gamma=*/0.05, /*seed=*/404);
}

TEST(IncrementalCostTest, ProposeRandomMatchesGenerateThenPropose) {
  // The fused proposal path re-implements the generator; this pins its
  // documented contract: same draws in the same order, same move, same
  // delta as generate_random_move_with_span + propose — the kFused
  // analogue of MovesTest.WithSpanOverloadIsStreamIdentical (kFused
  // results may differ from kDelta, so a drift between the two
  // generators would otherwise go unnoticed).
  Rng seed_rng(55);
  const Schedule schedule = mixed_schedule(7, seed_rng);
  const Placement initial = random_placement(schedule, 16, seed_rng);
  CostWeights weights;
  weights.beta = 30.0;
  CostEvaluator evaluator(weights);
  IncrementalPlacementState fused(initial, evaluator);
  IncrementalPlacementState split(initial, evaluator);

  MoveOptions moves;  // defaults: displacements, swaps and rotations
  Rng rng_fused(99);
  Rng rng_split(99);
  for (int step = 0; step < 200; ++step) {
    const double fraction = 1.0 - static_cast<double>(step) / 200.0;
    const int span =
        controlling_window_span(fused.placement(), fraction, moves);
    const double delta_fused = fused.propose_random(span, moves, rng_fused);
    const PlacementMove move = generate_random_move_with_span(
        split.placement(), span, moves, rng_split);
    const double delta_split = split.propose(move);
    ASSERT_DOUBLE_EQ(delta_fused, delta_split) << "step " << step;
    ASSERT_EQ(fused.last_move_kind(), move.kind) << "step " << step;
    if (step % 3 != 0) {
      ASSERT_DOUBLE_EQ(fused.commit(), split.commit()) << "step " << step;
    } else {
      fused.revert();
      split.revert();
    }
  }
  EXPECT_EQ(rng_fused.next(), rng_split.next());  // identical consumption
  for (int i = 0; i < fused.placement().module_count(); ++i) {
    ASSERT_EQ(fused.placement().module(i).anchor,
              split.placement().module(i).anchor)
        << "module " << i;
    ASSERT_EQ(fused.placement().module(i).rotated,
              split.placement().module(i).rotated)
        << "module " << i;
  }
}

/// Speculation audit: drive speculate_batch/activate with random
/// commit/revert decisions and verify every activated delta against the
/// state's own commit arithmetic and the from-scratch evaluator. Served
/// speculative deltas may differ from a fresh pricing in the last ULPs
/// (the stored price summed the same terms against marginally different
/// global totals), so the delta check is a NEAR; the committed absolute
/// state must still match the evaluator exactly.
void run_speculation_audit(double beta, std::vector<Point> defects,
                           int lookahead, std::uint64_t seed) {
  Rng rng(seed);
  const Schedule schedule = mixed_schedule(8, rng);
  const Placement initial = random_placement(schedule, 16, rng);

  CostWeights weights;
  weights.beta = beta;
  CostEvaluator evaluator(weights);
  evaluator.set_defects(std::move(defects));

  IncrementalPlacementState state(initial, evaluator);
  MoveOptions moves;  // defaults: displacements, swaps and rotations

  long long decisions = 0;
  for (int round = 0; round < 40; ++round) {
    const double fraction = 1.0 - static_cast<double>(round) / 40.0;
    const int span =
        controlling_window_span(state.placement(), fraction, moves);
    const int filled = state.speculate_batch(span, moves, rng, lookahead);
    ASSERT_EQ(filled, lookahead);
    for (int b = 0; b < filled; ++b) {
      const double before = state.cost();
      const double delta = state.activate(b);
      ASSERT_TRUE(state.has_pending());
      ++decisions;
      if (rng.next_bool(0.5)) {
        const double after = state.commit();
        const double scale = std::max(1.0, std::abs(before));
        EXPECT_NEAR(after - before, delta, 1e-9 * scale)
            << "round " << round << " entry " << b;
        expect_matches_evaluator(state, evaluator);
      } else {
        state.revert();
        EXPECT_DOUBLE_EQ(state.cost(), before);
      }
      ASSERT_FALSE(state.has_pending());
    }
  }
  expect_matches_evaluator(state, evaluator);
  if (beta == 0.0) {
    // The lazy path pre-prices every drawn move; commits inside a batch
    // invalidate some of those prices, never more than were priced.
    EXPECT_EQ(state.speculation_priced(), decisions);
    EXPECT_GT(state.speculation_hits(), 0);
    EXPECT_LE(state.speculation_hits(), state.speculation_priced());
  } else {
    // Eager pricing mutates the state, so speculation only pre-draws.
    EXPECT_EQ(state.speculation_priced(), 0);
    EXPECT_EQ(state.speculation_hits(), 0);
  }
}

TEST(IncrementalCostTest, SpeculationAuditAreaOnly) {
  run_speculation_audit(/*beta=*/0.0, {}, /*lookahead=*/6, /*seed=*/501);
  run_speculation_audit(/*beta=*/0.0, {}, /*lookahead=*/1, /*seed=*/502);
}

TEST(IncrementalCostTest, SpeculationAuditWithDefects) {
  run_speculation_audit(/*beta=*/0.0, {{3, 3}, {9, 12}, {3, 3}},
                        /*lookahead=*/6, /*seed=*/511);
}

TEST(IncrementalCostTest, SpeculationAuditWithFtiFallsBackToFreshPricing) {
  run_speculation_audit(/*beta=*/30.0, {}, /*lookahead=*/6, /*seed=*/521);
}

TEST(IncrementalCostTest, EmptyPlacementProposalsAreNoOps) {
  const Schedule empty;
  Placement placement(empty, 8, 8);
  CostEvaluator evaluator(CostWeights{});
  IncrementalPlacementState state(placement, evaluator);
  Rng rng(1);
  const PlacementMove move =
      generate_random_move(state.placement(), 1.0, MoveOptions{}, rng);
  EXPECT_EQ(move.count, 0);
  EXPECT_DOUBLE_EQ(state.propose(move), 0.0);
  EXPECT_DOUBLE_EQ(state.commit(), 0.0);
  EXPECT_DOUBLE_EQ(state.cost(), 0.0);
}

}  // namespace
}  // namespace dmfb
