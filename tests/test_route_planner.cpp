// Tests for the concurrent changeover route planner (sim/route_planner.h):
// all plans must satisfy the fluidic constraints they claim to.
#include "sim/route_planner.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/random_assay.h"
#include "assay/synthesis.h"
#include "core/greedy_placer.h"
#include "core/sa_placer.h"
#include "util/rng.h"

namespace dmfb {
namespace {

struct PcrSetup {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
};

PcrSetup pcr_setup(int canvas = 16) {
  const auto assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, canvas, canvas);
  return PcrSetup{assay.graph, std::move(synth.schedule),
                  std::move(placement)};
}

/// Blocked grid mirroring the planner's changeover rule (strict interval).
Matrix<std::uint8_t> blocked_at(const Placement& placement, double t, int w,
                                int h) {
  Matrix<std::uint8_t> blocked(w, h, 0);
  for (int i = 0; i < placement.module_count(); ++i) {
    const auto& m = placement.module(i);
    if (m.start_s + 1e-9 < t && t + 1e-9 < m.end_s) {
      blocked.fill_rect(m.footprint().inflated(-1), 1);
    }
  }
  return blocked;
}

TEST(RoutePlannerTest, PcrPlanSucceedsAndValidates) {
  const auto setup = pcr_setup();
  const RoutePlan plan =
      plan_routes(setup.graph, setup.schedule, setup.placement, 16, 16);
  ASSERT_TRUE(plan.success) << plan.failure_reason;
  EXPECT_FALSE(plan.changeovers.empty());
  for (const auto& changeover : plan.changeovers) {
    const auto blocked =
        blocked_at(setup.placement, changeover.time_s, 16, 16);
    const auto violations = validate_changeover(changeover, blocked);
    EXPECT_TRUE(violations.empty())
        << "t=" << changeover.time_s << ": " << violations.front();
  }
}

TEST(RoutePlannerTest, RoutesStartAndEndWhereRequested) {
  const auto setup = pcr_setup();
  const RoutePlan plan =
      plan_routes(setup.graph, setup.schedule, setup.placement, 16, 16);
  ASSERT_TRUE(plan.success);
  for (const auto& changeover : plan.changeovers) {
    for (const auto& route : changeover.routes) {
      ASSERT_FALSE(route.positions.empty());
      EXPECT_EQ(route.positions.front(), route.request.from);
      EXPECT_EQ(route.positions.back(), route.request.to);
      EXPECT_LE(route.arrival_step(), changeover.makespan_steps);
    }
  }
}

TEST(RoutePlannerTest, TotalStepsAndTransportTime) {
  const auto setup = pcr_setup();
  const RoutePlan plan =
      plan_routes(setup.graph, setup.schedule, setup.placement, 16, 16);
  ASSERT_TRUE(plan.success);
  EXPECT_GT(plan.total_steps, 0);
  EXPECT_GT(plan.total_transport_seconds(13.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.total_transport_seconds(0.0), 0.0);
  // Accounting: total_steps sums arrival steps (waits included),
  // total_moved_cells sums cells traversed (waits excluded).
  EXPECT_GT(plan.total_moved_cells, 0);
  EXPECT_GE(plan.total_steps, plan.total_moved_cells);
  long long steps = 0;
  long long cells = 0;
  for (const auto& changeover : plan.changeovers) {
    for (const auto& route : changeover.routes) {
      steps += route.arrival_step();
      cells += route.moved_cells();
    }
  }
  EXPECT_EQ(plan.total_steps, steps);
  EXPECT_EQ(plan.total_moved_cells, cells);
}

TEST(RoutePlannerTest, StepAndCellAccountingPerRoute) {
  TimedRoute route;
  EXPECT_EQ(route.arrival_step(), 0);  // empty route: no steps, no cells
  EXPECT_EQ(route.moved_cells(), 0);
  route.positions = {{0, 0}, {0, 0}, {1, 0}, {1, 0}, {1, 1}};
  EXPECT_EQ(route.arrival_step(), 4);  // steps count the two waits...
  EXPECT_EQ(route.moved_cells(), 2);   // ...cells traversed do not
}

TEST(RoutePlannerTest, MergingDropletsMayShareTarget) {
  // Two dispenses into one mixer: both droplets route to the same cell;
  // this must not be reported as a fluidic violation.
  SequencingGraph g("merge");
  const auto d1 = g.add_operation(OperationType::kDispense, "d1", "a");
  const auto d2 = g.add_operation(OperationType::kDispense, "d2", "b");
  const auto mix = g.add_operation(OperationType::kMix, "mix");
  g.add_dependency(d1, mix);
  g.add_dependency(d2, mix);
  Binding binding;
  binding.emplace(mix, ModuleSpec{"mixer", ModuleKind::kMixer, 2, 2, 5.0});
  const Schedule schedule = list_schedule(g, binding, {});
  Placement placement(schedule, 10, 10);
  placement.set_anchor(0, {3, 3});
  const RoutePlan plan = plan_routes(g, schedule, placement, 10, 10);
  ASSERT_TRUE(plan.success) << plan.failure_reason;
  ASSERT_EQ(plan.changeovers.size(), 1u);
  EXPECT_EQ(plan.changeovers.front().routes.size(), 2u);
}

TEST(RoutePlannerTest, SeparationEnforcedForUnrelatedDroplets) {
  // Two independent mixers fed concurrently: validate that the plan keeps
  // the unrelated droplets >= 2 apart at every step.
  SequencingGraph g("pair");
  Binding binding;
  const ModuleSpec mixer{"mixer", ModuleKind::kMixer, 2, 2, 5.0};
  for (int k = 0; k < 2; ++k) {
    const auto d1 = g.add_operation(OperationType::kDispense,
                                    "d" + std::to_string(2 * k), "a");
    const auto d2 = g.add_operation(OperationType::kDispense,
                                    "d" + std::to_string(2 * k + 1), "b");
    const auto mix =
        g.add_operation(OperationType::kMix, "mix" + std::to_string(k));
    g.add_dependency(d1, mix);
    g.add_dependency(d2, mix);
    binding.emplace(mix, mixer);
  }
  const Schedule schedule = list_schedule(g, binding, {});
  Placement placement(schedule, 14, 14);
  placement.set_anchor(0, {1, 1});
  placement.set_anchor(1, {9, 9});
  const RoutePlan plan = plan_routes(g, schedule, placement, 14, 14);
  ASSERT_TRUE(plan.success) << plan.failure_reason;
  for (const auto& changeover : plan.changeovers) {
    const auto blocked = blocked_at(placement, changeover.time_s, 14, 14);
    EXPECT_TRUE(validate_changeover(changeover, blocked).empty());
  }
}

TEST(RoutePlannerTest, ChipTooSmallThrows) {
  const auto setup = pcr_setup();
  EXPECT_THROW(
      plan_routes(setup.graph, setup.schedule, setup.placement, 4, 4),
      std::invalid_argument);
}

TEST(RoutePlannerTest, AnnealedPlacementsAreRoutable) {
  // Routing over the compact SA placement: tighter but should still plan.
  const auto assay = pcr_mixing_assay();
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  SaPlacerOptions options;
  options.schedule.initial_temperature = 1000.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module = 80;
  const auto sa = place_simulated_annealing(synth.schedule, options);
  const RoutePlan plan = plan_routes(assay.graph, synth.schedule,
                                     sa.placement, options.canvas_width,
                                     options.canvas_height);
  EXPECT_TRUE(plan.success) << plan.failure_reason;
}

class RoutePlannerRandomized : public ::testing::TestWithParam<int> {};

TEST_P(RoutePlannerRandomized, PlansValidateWheneverTheySucceed) {
  const auto lib = ModuleLibrary::standard();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 5);
  RandomAssayParams params;
  params.mix_operations = 4 + static_cast<int>(rng.next_below(5));
  const auto assay = random_assay(params, lib, rng);
  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  const Placement placement = place_greedy(synth.schedule, 24, 24);
  const RoutePlan plan =
      plan_routes(assay.graph, synth.schedule, placement, 24, 24);
  if (!plan.success) {
    // Prioritized planning is incomplete; failure is allowed but must be
    // explained.
    EXPECT_FALSE(plan.failure_reason.empty());
    return;
  }
  for (const auto& changeover : plan.changeovers) {
    const auto blocked = blocked_at(placement, changeover.time_s, 24, 24);
    const auto violations = validate_changeover(changeover, blocked);
    EXPECT_TRUE(violations.empty())
        << "t=" << changeover.time_s << ": " << violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutePlannerRandomized,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace dmfb
