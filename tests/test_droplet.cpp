// Unit tests for droplet mixing/splitting semantics (biochip/droplet.h).
#include "biochip/droplet.h"

#include <gtest/gtest.h>

namespace dmfb {
namespace {

TEST(DropletTest, ConstructionTracksSingleReagent) {
  const Droplet d(1, Point{2, 3}, "KCl", 100.0);
  EXPECT_EQ(d.id(), 1);
  EXPECT_EQ(d.position(), (Point{2, 3}));
  EXPECT_DOUBLE_EQ(d.volume_nl(), 100.0);
  EXPECT_DOUBLE_EQ(d.fraction_of("KCl"), 1.0);
  EXPECT_DOUBLE_EQ(d.fraction_of("water"), 0.0);
}

TEST(DropletTest, MergeEqualVolumes) {
  Droplet a(1, Point{0, 0}, "A", 100.0);
  const Droplet b(2, Point{1, 0}, "B", 100.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.volume_nl(), 200.0);
  EXPECT_DOUBLE_EQ(a.fraction_of("A"), 0.5);
  EXPECT_DOUBLE_EQ(a.fraction_of("B"), 0.5);
}

TEST(DropletTest, MergeUnequalVolumes) {
  Droplet a(1, Point{0, 0}, "A", 300.0);
  const Droplet b(2, Point{1, 0}, "B", 100.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.volume_nl(), 400.0);
  EXPECT_DOUBLE_EQ(a.fraction_of("A"), 0.75);
  EXPECT_DOUBLE_EQ(a.fraction_of("B"), 0.25);
}

TEST(DropletTest, FractionsSumToOneAfterChainOfMerges) {
  Droplet mix(0, Point{}, "r0", 100.0);
  for (int i = 1; i < 8; ++i) {
    mix.merge(Droplet(i, Point{}, "r" + std::to_string(i), 100.0));
  }
  double sum = 0.0;
  for (const auto& [reagent, fraction] : mix.contents()) sum += fraction;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(mix.contents().size(), 8u);
  for (const auto& [reagent, fraction] : mix.contents()) {
    EXPECT_NEAR(fraction, 1.0 / 8.0, 1e-12) << reagent;
  }
}

TEST(DropletTest, SplitHalvesVolumePreservesContents) {
  Droplet a(1, Point{0, 0}, "A", 200.0);
  a.merge(Droplet(2, Point{0, 0}, "B", 200.0));
  Droplet half = a.split(3, Point{5, 5});
  EXPECT_DOUBLE_EQ(a.volume_nl(), 200.0);
  EXPECT_DOUBLE_EQ(half.volume_nl(), 200.0);
  EXPECT_EQ(half.id(), 3);
  EXPECT_EQ(half.position(), (Point{5, 5}));
  EXPECT_DOUBLE_EQ(half.fraction_of("A"), 0.5);
  EXPECT_DOUBLE_EQ(half.fraction_of("B"), 0.5);
  EXPECT_DOUBLE_EQ(a.fraction_of("A"), 0.5);
}

TEST(DropletTest, SerialDilutionHalvesConcentration) {
  // Dilute protein 1:1 with buffer three times: 1/2, 1/4, 1/8.
  Droplet sample(0, Point{}, "protein", 100.0);
  for (int step = 1; step <= 3; ++step) {
    sample.merge(Droplet(step, Point{}, "buffer", sample.volume_nl()));
    sample.split(100 + step, Point{});  // discard one half
    EXPECT_NEAR(sample.fraction_of("protein"), 1.0 / (1 << step), 1e-12);
  }
}

TEST(DropletTest, MergeWithEmptyDropletIsNoop) {
  Droplet a(1, Point{0, 0}, "A", 100.0);
  const Droplet empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.volume_nl(), 100.0);
  EXPECT_DOUBLE_EQ(a.fraction_of("A"), 1.0);
}

TEST(DropletTest, MoveToUpdatesPosition) {
  Droplet d(1, Point{0, 0}, "X");
  d.move_to(Point{4, 7});
  EXPECT_EQ(d.position(), (Point{4, 7}));
}

}  // namespace
}  // namespace dmfb
