// Tests for the spare-capacity advisor (core/spare_advisor.h).
#include "core/spare_advisor.h"

#include <gtest/gtest.h>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/fti.h"

namespace dmfb {
namespace {

Schedule pcr_schedule() {
  const auto assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options)
      .schedule;
}

SpareAdvisorOptions fast_options(double target) {
  SpareAdvisorOptions options;
  options.target_fti = target;
  options.betas = {10.0, 40.0, 80.0};
  options.two_stage.stage1.schedule.initial_temperature = 1000.0;
  options.two_stage.stage1.schedule.cooling_rate = 0.8;
  options.two_stage.stage1.schedule.iterations_per_module = 80;
  options.two_stage.ltsa.iterations_per_module = 80;
  options.two_stage.ltsa.cooling_rate = 0.8;
  return options;
}

TEST(SpareAdvisorTest, FrontierHasOnePointPerBeta) {
  const auto advice = advise_spares(pcr_schedule(), fast_options(0.5));
  EXPECT_EQ(advice.frontier.size(), 3u);
  for (const auto& point : advice.frontier) {
    EXPECT_TRUE(point.placement.feasible());
    EXPECT_GE(point.fti, 0.0);
    EXPECT_LE(point.fti, 1.0);
    EXPECT_GT(point.area_cells, 0);
  }
}

TEST(SpareAdvisorTest, ModestTargetIsMet) {
  const auto advice = advise_spares(pcr_schedule(), fast_options(0.5));
  ASSERT_TRUE(advice.target_met);
  EXPECT_GE(advice.chosen.fti, 0.5);
  // The chosen point is the smallest-area point meeting the target.
  for (const auto& point : advice.frontier) {
    if (point.fti >= 0.5) {
      EXPECT_LE(advice.chosen.area_cells, point.area_cells);
    }
  }
}

TEST(SpareAdvisorTest, ImpossibleTargetReportsFailure) {
  SpareAdvisorOptions options = fast_options(1.01);  // FTI can't exceed 1
  const auto advice = advise_spares(pcr_schedule(), options);
  EXPECT_FALSE(advice.target_met);
  EXPECT_FALSE(advice.frontier.empty());
}

TEST(SpareAdvisorTest, ChosenFtiMatchesItsPlacement) {
  const auto advice = advise_spares(pcr_schedule(), fast_options(0.5));
  ASSERT_TRUE(advice.target_met);
  EXPECT_DOUBLE_EQ(advice.chosen.fti,
                   evaluate_fti(advice.chosen.placement).fti());
  EXPECT_EQ(advice.chosen.area_cells,
            advice.chosen.placement.bounding_box_cells());
}

}  // namespace
}  // namespace dmfb
