// bench_routing_actuation — extension experiment: droplet routing and the
// compiled electrode actuation program for the PCR placements. The paper
// stops at placement; this bench quantifies the rest of the control path
// (§2: configurations "dynamically programmed into a microcontroller"):
// concurrent changeover routing under fluidic constraints, and the frame
// program statistics.
#include <iostream>

#include "bench_common.h"
#include "assay/assay_library.h"
#include "sim/actuation.h"
#include "sim/route_planner.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Extension — changeover routing + actuation program");

  const auto assay = pcr_mixing_assay();
  const auto synth = bench::synthesized_pcr();

  struct Candidate {
    const char* name;
    Placement placement;
    int chip;
  };
  std::vector<Candidate> candidates;
  {
    const auto sa =
        place_simulated_annealing(synth.schedule, bench::paper_sa_options());
    candidates.push_back(Candidate{"area-only SA", sa.placement, 24});
    const auto two =
        place_two_stage(synth.schedule, bench::paper_two_stage_options(30.0));
    candidates.push_back(
        Candidate{"two-stage (beta=30)", two.stage2.placement, 24});
  }

  TextTable table("Routing + actuation for PCR (13 cells/s transport)");
  table.set_header({"placement", "changeovers", "droplet routes",
                    "total steps", "transport (s)", "frames",
                    "actuations", "peak cells on"});

  for (const auto& candidate : candidates) {
    const RoutePlan plan = plan_routes(assay.graph, synth.schedule,
                                       candidate.placement, candidate.chip,
                                       candidate.chip);
    if (!plan.success) {
      std::cout << candidate.name
                << ": routing FAILED: " << plan.failure_reason << '\n';
      continue;
    }
    int routes = 0;
    for (const auto& c : plan.changeovers) {
      routes += static_cast<int>(c.routes.size());
    }
    const ActuationProgram program =
        compile_actuation(synth.schedule, candidate.placement, plan,
                          candidate.chip, candidate.chip);
    const auto violations = validate_program(program);
    table.add_row({candidate.name,
                   std::to_string(plan.changeovers.size()),
                   std::to_string(routes),
                   std::to_string(plan.total_steps),
                   format_double(plan.total_transport_seconds(13.0), 2),
                   std::to_string(program.frames.size()),
                   std::to_string(program.total_actuations()),
                   std::to_string(program.peak_simultaneous())});
    if (!violations.empty()) {
      std::cout << candidate.name << ": program INVALID: "
                << violations.front() << '\n';
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\nnote: transport time is <3% of the 24 s assay makespan,\n"
               "which is why the paper's schedule ignores routing latency.\n";
  return 0;
}
