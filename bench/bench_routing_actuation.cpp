// bench_routing_actuation — extension experiment: droplet routing and the
// compiled electrode actuation program for the PCR placements. The paper
// stops at placement; this bench quantifies the rest of the control path
// (§2: configurations "dynamically programmed into a microcontroller"):
// concurrent changeover routing under fluidic constraints, and the frame
// program statistics. Fully registry-driven: placements come from the
// PlacerRegistry, the routing plan from the RouterRegistry.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "assay/assay_library.h"
#include "sim/actuation.h"
#include "sim/router_backend.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Extension — changeover routing + actuation program");

  const auto assay = pcr_mixing_assay();
  const auto synth = bench::pcr_via_pipeline();
  const PlacerContext context = bench::paper_context();

  struct Candidate {
    const char* name;
    const char* placer;  ///< registry name, for the JSON result line
    Placement placement;
    int chip;
  };
  std::vector<Candidate> candidates;
  {
    PlacerContext two_stage = context;
    two_stage.two_stage_beta = 30.0;
    candidates.push_back(Candidate{
        "area-only SA", "sa",
        make_placer("sa")->place(synth.schedule, context).placement, 24});
    candidates.push_back(Candidate{
        "two-stage (beta=30)", "two-stage",
        make_placer("two-stage")->place(synth.schedule, two_stage).placement,
        24});
  }

  const auto router = make_router("prioritized");
  bool any_failed = false;
  TextTable table("Routing + actuation for PCR (" +
                  format_double(kActuationStepsPerSecond, 0) +
                  " cells/s transport)");
  table.set_header({"placement", "changeovers", "droplet routes",
                    "total steps", "cells moved", "transport (s)", "frames",
                    "actuations", "peak cells on"});

  for (const auto& candidate : candidates) {
    const auto route_start = std::chrono::steady_clock::now();
    const RoutePlan plan =
        router->plan(assay.graph, synth.schedule, candidate.placement,
                     candidate.chip, candidate.chip);
    const double route_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      route_start)
            .count();
    if (!plan.success) {
      std::cout << candidate.name
                << ": routing FAILED: " << plan.failure_reason << '\n';
      // A failure still leaves a trajectory row (and fails the bench), so
      // a routing regression cannot pass as silently-missing data.
      bench::emit_router_json_line(
          std::string("routing_actuation/") + candidate.placer,
          router->name(), 0.0, 0, route_seconds);
      any_failed = true;
      continue;
    }
    int routes = 0;
    long long makespan_steps = 0;
    for (const auto& c : plan.changeovers) {
      routes += static_cast<int>(c.routes.size());
      makespan_steps += c.makespan_steps;
    }
    const ActuationProgram program =
        compile_actuation(synth.schedule, candidate.placement, plan,
                          candidate.chip, candidate.chip);
    const auto violations = validate_program(program);
    table.add_row({candidate.name,
                   std::to_string(plan.changeovers.size()),
                   std::to_string(routes),
                   std::to_string(plan.total_steps),
                   std::to_string(plan.total_moved_cells),
                   format_double(plan.total_transport_seconds(), 2),
                   std::to_string(program.frames.size()),
                   std::to_string(program.total_actuations()),
                   std::to_string(program.peak_simultaneous())});
    bench::emit_router_json_line(
        std::string("routing_actuation/") + candidate.placer, router->name(),
        1.0, makespan_steps, route_seconds);
    if (!violations.empty()) {
      std::cout << candidate.name << ": program INVALID: "
                << violations.front() << '\n';
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\nnote: transport time is <3% of the 24 s assay makespan,\n"
               "which is why the paper's schedule ignores routing latency.\n";
  return any_failed ? 1 : 0;
}
