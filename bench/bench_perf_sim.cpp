// bench_perf_sim — step-throughput comparison of the event-queue
// simulation engine (sim/sim_engine.h) against the pinned reference
// implementation, plus microbenchmarks of the engine's hot pieces.
//
// Two headline scenarios, simulated on a fabricated 384x384 array (the
// service's situation: the chip is far larger than the assay's bounding
// box, which is exactly where the reference's per-route O(W*H) grid
// rebuilds hurt most — its wall time grows with the array area while
// the event engine's stays flat), plus the same assays on their tight
// canvases:
//   - "pcr":       the paper's PCR mixing stage (Table 1 binding)
//   - "random200": a seeded random assay with 200+ scheduled modules
//
// Throughput rows are measured in the batch/service configuration
// (record_events=false for BOTH engines — a driver sweeping thousands
// of candidate chips reads the structured fields, not the log); the
// bit-identity audit runs at both record_events settings first.
//
// For every (scenario, engine) cell the binary emits one JSON line:
//   {"bench":"perf_sim","scenario":"pcr","engine":"event",
//    "steps_per_second":...,"speedup":...,"identical":true,...}
// where a step is one droplet move (route cell). The shape check exits
// non-zero when the event engine's SimulationResult is not bit-identical
// to the reference anywhere, when the random scenario has fewer than 200
// modules, or when the event engine's step throughput on a headline
// (fabricated-array) scenario is below 10x the reference's. `--smoke`
// shrinks the repetition counts and skips the microbenchmarks (CI
// Release job).
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "core/greedy_placer.h"
#include "sim/sim_engine.h"

namespace {

using namespace dmfb;

struct Scenario {
  std::string name;
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
  int chip_size = 0;
  bool headline = false;  ///< the >=10x shape check applies
};

Scenario make_pcr(int chip_size, bool headline, const std::string& name) {
  const AssayCase assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, 16, 16);
  return Scenario{name, assay.graph, std::move(synth.schedule),
                  std::move(placement), chip_size, headline};
}

Scenario make_random200(int chip_size, bool headline,
                        const std::string& name) {
  const auto lib = ModuleLibrary::standard();
  RandomAssayParams params;
  params.mix_operations = 200;
  params.max_layer_width = 6;
  params.max_concurrent_modules = 6;
  const AssayCase assay = random_assay(params, lib, bench::kBenchSeed);
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, 32, 32);
  return Scenario{name, assay.graph, std::move(synth.schedule),
                  std::move(placement), chip_size, headline};
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool identical_results(const SimulationResult& a, const SimulationResult& b) {
  if (a.success != b.success || a.failure_reason != b.failure_reason ||
      a.failed_module != b.failed_module || !(a.fault_cell == b.fault_cell) ||
      a.makespan_s != b.makespan_s || a.routes_planned != b.routes_planned ||
      a.route_cells != b.route_cells ||
      a.transport_seconds != b.transport_seconds ||
      a.events.size() != b.events.size() || a.op_outputs != b.op_outputs) {
    return false;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].time_s != b.events[i].time_s ||
        a.events[i].what != b.events[i].what) {
      return false;
    }
  }
  return true;
}

struct Measured {
  long long steps = 0;
  double wall_seconds = 0.0;
  double steps_per_second = 0.0;
};

/// Repeats the scenario `runs` times on one engine and reports droplet
/// steps (route cells) per wall second. The event engine instance is
/// reused across runs, as a batch driver would hold it, so its pooled
/// scratch reaches steady state; one untimed warmup run per engine
/// takes the cold first iteration (grid allocation, page faults) out of
/// the window for both.
Measured measure(const Scenario& scenario, SimEngineKind kind, int runs) {
  const Chip chip(scenario.chip_size, scenario.chip_size);
  SimOptions options;
  options.engine = kind;
  // Batch/service configuration for both engines: drivers that sweep
  // chips read the structured result fields, not the event log.
  options.record_events = false;
  Measured measured;
  if (kind == SimEngineKind::kEvent) {
    EventSimEngine engine(options);
    engine.run(scenario.graph, scenario.schedule, scenario.placement, chip);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < runs; ++r) {
      const auto run = engine.run(scenario.graph, scenario.schedule,
                                  scenario.placement, chip);
      measured.steps += run.result.route_cells;
      benchmark::DoNotOptimize(run.result.success);
    }
    measured.wall_seconds = seconds_since(start);
  } else {
    const Simulator simulator(options);
    simulator.run(scenario.graph, scenario.schedule, scenario.placement, chip);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < runs; ++r) {
      const auto result = simulator.run(scenario.graph, scenario.schedule,
                                        scenario.placement, chip);
      measured.steps += result.route_cells;
      benchmark::DoNotOptimize(result.success);
    }
    measured.wall_seconds = seconds_since(start);
  }
  measured.steps_per_second =
      measured.wall_seconds > 0.0 ? measured.steps / measured.wall_seconds
                                  : 0.0;
  return measured;
}

bool run_comparison(bool smoke) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(make_pcr(384, /*headline=*/true, "pcr"));
  scenarios.push_back(make_random200(384, /*headline=*/true, "random200"));
  // Tight-canvas rows for context (no 10x gate: on a 16x16 array there
  // is little grid for the reference to waste time rebuilding).
  scenarios.push_back(make_pcr(16, /*headline=*/false, "pcr_tight"));
  scenarios.push_back(make_random200(32, /*headline=*/false,
                                     "random200_tight"));

  bool ok = true;
  for (const Scenario& scenario : scenarios) {
    const Chip chip(scenario.chip_size, scenario.chip_size);

    // Bit-identity audit first, at both record_events settings (the
    // throughput rows below run the record_events=false configuration).
    bool identical = true;
    SimulationResult event_result;
    for (const bool record : {true, false}) {
      SimOptions event_options;
      event_options.engine = SimEngineKind::kEvent;
      event_options.record_events = record;
      SimOptions reference_options;
      reference_options.engine = SimEngineKind::kReference;
      reference_options.record_events = record;
      event_result = Simulator(event_options)
                         .run(scenario.graph, scenario.schedule,
                              scenario.placement, chip);
      const auto reference_result =
          Simulator(reference_options)
              .run(scenario.graph, scenario.schedule, scenario.placement,
                   chip);
      if (!identical_results(event_result, reference_result)) {
        std::cerr << "FAIL: " << scenario.name << " (record_events="
                  << (record ? "true" : "false")
                  << "): event engine result differs from reference\n";
        identical = false;
        ok = false;
      }
    }
    if (!event_result.success) {
      std::cerr << "FAIL: " << scenario.name << ": simulation failed: "
                << event_result.failure_reason << "\n";
      ok = false;
    }
    if (scenario.name == "random200" &&
        scenario.schedule.module_count() < 200) {
      std::cerr << "FAIL: random200 scenario has only "
                << scenario.schedule.module_count() << " modules\n";
      ok = false;
    }

    // Throughput: calibrate the repetition count so even the fast cells
    // get a measurable (multi-millisecond) window; small scenarios need
    // more reps, and smoke mode scales both down.
    const int runs = scenario.schedule.module_count() > 100 ? (smoke ? 5 : 40)
                                                            : (smoke ? 50
                                                                     : 200);
    const Measured reference = measure(scenario, SimEngineKind::kReference,
                                       runs);
    const Measured event = measure(scenario, SimEngineKind::kEvent, runs);
    const double speedup =
        reference.steps_per_second > 0.0
            ? event.steps_per_second / reference.steps_per_second
            : 0.0;
    bench::emit_sim_json_line(scenario.name, "reference",
                              scenario.schedule.module_count(), runs,
                              reference.steps, reference.steps_per_second,
                              reference.wall_seconds, 1.0, identical);
    bench::emit_sim_json_line(scenario.name, "event",
                              scenario.schedule.module_count(), runs,
                              event.steps, event.steps_per_second,
                              event.wall_seconds, speedup, identical);
    if (scenario.headline && speedup < 10.0) {
      std::cerr << "FAIL: " << scenario.name << ": event engine speedup "
                << speedup << "x is below the 10x floor\n";
      ok = false;
    }
  }
  return ok;
}

// ---- microbenchmarks (skipped in --smoke) ----------------------------

const Scenario& pcr_scenario() {
  static const Scenario scenario = make_pcr(64, true, "pcr");
  return scenario;
}

void BM_EventEnginePcr(benchmark::State& state) {
  const Scenario& scenario = pcr_scenario();
  const Chip chip(scenario.chip_size, scenario.chip_size);
  EventSimEngine engine;
  for (auto _ : state) {
    const auto run = engine.run(scenario.graph, scenario.schedule,
                                scenario.placement, chip);
    benchmark::DoNotOptimize(run.result.route_cells);
  }
}
BENCHMARK(BM_EventEnginePcr)->Unit(benchmark::kMicrosecond);

void BM_ReferenceEnginePcr(benchmark::State& state) {
  const Scenario& scenario = pcr_scenario();
  const Chip chip(scenario.chip_size, scenario.chip_size);
  SimOptions options;
  options.engine = SimEngineKind::kReference;
  const Simulator simulator(options);
  for (auto _ : state) {
    const auto result = simulator.run(scenario.graph, scenario.schedule,
                                      scenario.placement, chip);
    benchmark::DoNotOptimize(result.route_cells);
  }
}
BENCHMARK(BM_ReferenceEnginePcr)->Unit(benchmark::kMicrosecond);

void BM_EventEnginePcrNoLog(benchmark::State& state) {
  // record_events=false: the batch/service configuration.
  const Scenario& scenario = pcr_scenario();
  const Chip chip(scenario.chip_size, scenario.chip_size);
  SimOptions options;
  options.record_events = false;
  EventSimEngine engine(options);
  for (auto _ : state) {
    const auto run = engine.run(scenario.graph, scenario.schedule,
                                scenario.placement, chip);
    benchmark::DoNotOptimize(run.result.route_cells);
  }
}
BENCHMARK(BM_EventEnginePcrNoLog)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const bool smoke = dmfb::bench::smoke_flag(argc, argv);
  dmfb::bench::banner(smoke ? "perf_sim: engine comparison (smoke)"
                            : "perf_sim: engine comparison");
  if (!run_comparison(smoke)) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
