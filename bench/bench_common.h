// bench_common.h — shared setup for the reproduction benches.
//
// Every bench binary regenerates one table or figure of Su & Chakrabarty
// (DATE 2005) and prints it in a fixed format quoted by EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "assay/synthesis.h"
#include "core/placer.h"
#include "core/sa_placer.h"
#include "core/two_stage_placer.h"
#include "util/rng.h"

namespace dmfb::bench {

/// Seed used by all reproduction benches (printed so runs are replayable).
inline constexpr std::uint64_t kBenchSeed = 0xDA7E2005ULL;

/// Shared argv handling for the bench binaries: `--smoke` selects the
/// shrunken CI workload. Every bench that distinguishes the two parses
/// its flags through this one helper instead of a per-binary copy.
inline bool smoke_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// One machine-readable result line per bench measurement, so the perf
/// trajectory can be tracked across PRs by grepping stdout:
///   {"bench":"fig7","placer":"sa","cost":63,"wall_seconds":1.9,"seed":...}
inline void emit_json_line(const std::string& name, const std::string& placer,
                           double cost, double wall_seconds,
                           std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"" << name << "\",\"placer\":\"" << placer
            << "\",\"cost\":" << cost << ",\"wall_seconds\":" << wall_seconds
            << ",\"seed\":" << seed << "}\n";
}

/// The annealing-engine counterpart: one line per (engine, beta) cell of
/// bench_perf_sa's engine comparison. `identical_best` records whether
/// the engine reproduced the reference (copy-engine) placement anchor
/// for anchor — the delta engine's contract (the fused engine is
/// versioned off that stream and reports false by design). The stats
/// fields attribute where proposal time goes: acceptance counts plus
/// per-move-kind proposal/acceptance tallies.
inline void emit_engine_json_line(const std::string& name,
                                  const std::string& engine, double beta,
                                  double cost, double proposals_per_second,
                                  double wall_seconds, bool identical_best,
                                  const AnnealingStats& stats,
                                  std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"" << name << "\",\"engine\":\"" << engine
            << "\",\"beta\":" << beta << ",\"cost\":" << cost
            << ",\"proposals_per_second\":" << proposals_per_second
            << ",\"wall_seconds\":" << wall_seconds << ",\"identical\":"
            << (identical_best ? "true" : "false")
            << ",\"proposals\":" << stats.proposals
            << ",\"accepted\":" << stats.accepted
            << ",\"uphill_accepted\":" << stats.uphill_accepted
            << ",\"moves\":{";
  for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
    std::cout << (k == 0 ? "" : ",") << "\""
              << to_string(static_cast<MoveKind>(k))
              << "\":[" << stats.proposals_by_kind[k] << ","
              << stats.accepted_by_kind[k] << "]";
  }
  std::cout << "},\"seed\":" << seed << "}\n";
}

/// One line per (module count, beta, engine) cell of bench_perf_sa's
/// random-assay scaling sweep — the recorded artifact showing the delta
/// engine's advantage growing with instance size.
inline void emit_scaling_json_line(int modules, double beta,
                                   const std::string& engine,
                                   double proposals_per_second,
                                   double wall_seconds, bool identical_best,
                                   std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"perf_sa_scaling\",\"modules\":" << modules
            << ",\"beta\":" << beta << ",\"engine\":\"" << engine
            << "\",\"proposals_per_second\":" << proposals_per_second
            << ",\"wall_seconds\":" << wall_seconds << ",\"identical\":"
            << (identical_best ? "true" : "false") << ",\"seed\":" << seed
            << "}\n";
}

/// The portfolio-race counterpart: one line per (backend, replica count)
/// cell of bench_perf_sa's wall-clock-to-target race. `target_cost` is
/// the serial kFused run's best cost; `seconds_to_target` is the time at
/// which this row first reached it (for the portfolio rows: CRITICAL-PATH
/// time — the sum over exchange intervals of the slowest replica's
/// segment plus the serial exchange passes, i.e. the elapsed wall of the
/// same run on >= N free hardware threads); `reached` records whether it
/// ever did; `speedup` is the serial baseline's seconds-to-target over
/// this row's (1 on the baseline's own row, 0 when not reached).
inline void emit_portfolio_json_line(int modules, const std::string& backend,
                                     const std::string& engine, int replicas,
                                     double target_cost, double best_cost,
                                     bool reached, double seconds_to_target,
                                     double wall_seconds, double speedup,
                                     const AnnealingStats& stats,
                                     std::uint64_t seed = kBenchSeed) {
  const double hit_rate =
      stats.speculated > 0
          ? static_cast<double>(stats.speculation_hits) /
                static_cast<double>(stats.speculated)
          : 0.0;
  std::cout << "{\"bench\":\"perf_sa_portfolio\",\"modules\":" << modules
            << ",\"backend\":\"" << backend << "\",\"engine\":\"" << engine
            << "\",\"replicas\":" << replicas << ",\"target_cost\":"
            << target_cost << ",\"best_cost\":" << best_cost
            << ",\"reached\":" << (reached ? "true" : "false")
            << ",\"seconds_to_target\":" << seconds_to_target
            << ",\"wall_seconds\":" << wall_seconds << ",\"speedup\":"
            << speedup << ",\"proposals_per_second\":"
            << stats.proposals_per_second << ",\"exchanges_attempted\":"
            << stats.exchanges_attempted << ",\"exchanges_accepted\":"
            << stats.exchanges_accepted << ",\"speculation_hit_rate\":"
            << hit_rate << ",\"seed\":" << seed << "}\n";
}

/// The routing counterpart: one line per router backend, with the route
/// success rate over the bench's scenario set, the summed makespan of the
/// succeeded plans, the routing wall time, and (for the negotiated
/// backend) the summed rip-up rounds — the congestion-history ablation
/// reads convergence off this field.
inline void emit_router_json_line(const std::string& name,
                                  const std::string& router,
                                  double success_rate,
                                  long long makespan_steps,
                                  double wall_seconds,
                                  std::uint64_t seed = kBenchSeed,
                                  long long negotiation_rounds = 0) {
  std::cout << "{\"bench\":\"" << name << "\",\"router\":\"" << router
            << "\",\"success_rate\":" << success_rate
            << ",\"makespan_steps\":" << makespan_steps
            << ",\"wall_seconds\":" << wall_seconds
            << ",\"negotiation_rounds\":" << negotiation_rounds
            << ",\"seed\":" << seed << "}\n";
}

/// The simulator-engine counterpart: one line per (scenario, engine)
/// cell of bench_perf_sim. A "step" is one droplet move (route cell), so
/// `steps_per_second` is the simulator's droplet-step throughput;
/// `speedup` is this engine's throughput over the reference engine on
/// the same scenario (1 on the reference's own rows), and `identical`
/// records the full-SimulationResult bit-identity audit.
inline void emit_sim_json_line(const std::string& scenario,
                               const std::string& engine, int modules,
                               int runs, long long steps,
                               double steps_per_second, double wall_seconds,
                               double speedup, bool identical,
                               std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"perf_sim\",\"scenario\":\"" << scenario
            << "\",\"engine\":\"" << engine << "\",\"modules\":" << modules
            << ",\"runs\":" << runs << ",\"steps\":" << steps
            << ",\"steps_per_second\":" << steps_per_second
            << ",\"wall_seconds\":" << wall_seconds << ",\"speedup\":"
            << speedup << ",\"identical\":" << (identical ? "true" : "false")
            << ",\"seed\":" << seed << "}\n";
}

/// Per-stage CostStatistic columns for the closed-loop bench: one line
/// per (scenario, stage) with cross-run count/min/avg/max wall seconds,
/// collected by a StageStatsCollector observer.
inline void emit_stage_stats_json_line(const std::string& bench,
                                       const std::string& scenario,
                                       PipelineStage stage,
                                       const CostStatistic& stat,
                                       std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"" << bench << "_stages\",\"scenario\":\""
            << scenario << "\",\"stage\":\"" << to_string(stage)
            << "\",\"count\":" << stat.count << ",\"min_s\":"
            << stat.minimum() << ",\"avg_s\":" << stat.average()
            << ",\"max_s\":" << stat.max << ",\"seed\":" << seed << "}\n";
}

/// The closed-loop counterpart: one line per (scenario, feedback round),
/// with the transport-inclusive makespan the round achieved and whether
/// the pipeline selected it as the answer.
inline void emit_closed_loop_json_line(const std::string& scenario, int round,
                                       bool routed,
                                       double transport_makespan_s,
                                       double placement_cost, bool selected,
                                       std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"closed_loop\",\"scenario\":\"" << scenario
            << "\",\"round\":" << round << ",\"routed\":"
            << (routed ? "true" : "false") << ",\"transport_makespan_s\":"
            << transport_makespan_s << ",\"placement_cost\":"
            << placement_cost << ",\"selected\":"
            << (selected ? "true" : "false") << ",\"seed\":" << seed
            << "}\n";
}

/// Paper-parameter placement context (§4d): T0 = 10^4, alpha = 0.9,
/// Na = 400, area-only objective — the new-API counterpart of
/// paper_sa_options() below.
inline PlacerContext paper_context(std::uint64_t seed = kBenchSeed) {
  PlacerContext context;
  context.seed = seed;
  return context;  // defaults are the paper's
}

/// The paper's PCR case study synthesized through the pipeline (Table 1
/// binding, at most two concurrent mixers, storage inserted), stopping
/// after scheduling — benches drive the placers themselves.
inline PipelineResult pcr_via_pipeline(std::uint64_t seed = kBenchSeed) {
  PipelineOptions options;
  options.place = false;
  options.seed = seed;
  return SynthesisPipeline(options).run(pcr_mixing_assay());
}

/// The paper's PCR case study, synthesized: Table 1 binding, at most two
/// concurrent mixers, storage inserted for waiting droplets. Legacy-API
/// helper for the unmigrated benches; new benches use pcr_via_pipeline().
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
inline SynthesisResult synthesized_pcr() {
  const AssayCase assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options);
}
#pragma GCC diagnostic pop

/// Paper-parameter annealing options (§4d): T0 = 10^4, alpha = 0.9,
/// Na = 400, area-only objective.
inline SaPlacerOptions paper_sa_options(std::uint64_t seed = kBenchSeed) {
  SaPlacerOptions options;
  options.seed = seed;
  return options;  // defaults are the paper's
}

/// Two-stage options with the paper's stage-1 parameters and an LTSA
/// refinement stage at the given fault-tolerance weight.
inline TwoStageOptions paper_two_stage_options(double beta,
                                               std::uint64_t seed = kBenchSeed) {
  TwoStageOptions options;
  options.beta = beta;
  options.stage1 = paper_sa_options(seed);
  // Same stage-2 derivation as the registry's "two-stage" adapter, so the
  // legacy benches and the pipeline reproduce each other from one seed.
  options.stage2_seed = SplitMix64(seed ^ 0x5a5a5a5aULL).next();
  return options;
}

/// Standard bench banner.
inline void banner(const std::string& title) {
  std::cout << "==================================================\n"
            << title << '\n'
            << "seed: 0x" << std::hex << kBenchSeed << std::dec << '\n'
            << "==================================================\n";
}

}  // namespace dmfb::bench

// --- SVG helpers shared by the figure benches -------------------------

#include <filesystem>
#include <fstream>

#include "util/svg.h"

namespace dmfb::bench {

/// Directory the figure benches drop their artifacts (SVG slices) into,
/// so runs never dirty the working tree: `bench-out/` under the current
/// directory (inside the build tree when run from there), overridable
/// via DMFB_BENCH_OUT. Created on first use.
inline std::filesystem::path output_dir() {
  const char* override_dir = std::getenv("DMFB_BENCH_OUT");
  std::filesystem::path dir =
      override_dir != nullptr ? override_dir : "bench-out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Writes every time slice of `placement` as one SVG file per slice
/// under output_dir(): <prefix>_slice<k>.svg, drawn over the placement
/// bounding box. Returns the directory used (for the bench's log line).
inline std::filesystem::path write_placement_svgs(const Placement& placement,
                                                  const std::string& prefix) {
  const std::filesystem::path dir = output_dir();
  const Rect box = placement.bounding_box();
  const auto& slices = placement.slice_members();
  for (std::size_t s = 0; s < slices.size(); ++s) {
    std::vector<SvgRect> rects;
    for (const int index : slices[s]) {
      const auto& m = placement.module(index);
      Rect fp = m.footprint();
      fp.x -= box.x;
      fp.y -= box.y;
      rects.push_back(SvgRect{fp, m.label,
                              palette_color(static_cast<std::size_t>(index))});
    }
    std::ofstream out(dir / (prefix + "_slice" + std::to_string(s) + ".svg"));
    out << render_svg_grid(box.width, box.height, rects);
  }
  return dir;
}

}  // namespace dmfb::bench
