// bench_common.h — shared setup for the reproduction benches.
//
// Every bench binary regenerates one table or figure of Su & Chakrabarty
// (DATE 2005) and prints it in a fixed format quoted by EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <string>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "assay/synthesis.h"
#include "core/placer.h"
#include "core/sa_placer.h"
#include "core/two_stage_placer.h"
#include "util/rng.h"

namespace dmfb::bench {

/// Seed used by all reproduction benches (printed so runs are replayable).
inline constexpr std::uint64_t kBenchSeed = 0xDA7E2005ULL;

/// One machine-readable result line per bench measurement, so the perf
/// trajectory can be tracked across PRs by grepping stdout:
///   {"bench":"fig7","placer":"sa","cost":63,"wall_seconds":1.9,"seed":...}
inline void emit_json_line(const std::string& name, const std::string& placer,
                           double cost, double wall_seconds,
                           std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"" << name << "\",\"placer\":\"" << placer
            << "\",\"cost\":" << cost << ",\"wall_seconds\":" << wall_seconds
            << ",\"seed\":" << seed << "}\n";
}

/// The annealing-engine counterpart: one line per (engine, beta) cell of
/// bench_perf_sa's copy-vs-delta comparison. `identical_best` records
/// whether the engine reproduced the reference (copy-engine) placement
/// anchor for anchor — the delta engine's contract.
inline void emit_engine_json_line(const std::string& name,
                                  const std::string& engine, double beta,
                                  double cost, double proposals_per_second,
                                  double wall_seconds, bool identical_best,
                                  std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"" << name << "\",\"engine\":\"" << engine
            << "\",\"beta\":" << beta << ",\"cost\":" << cost
            << ",\"proposals_per_second\":" << proposals_per_second
            << ",\"wall_seconds\":" << wall_seconds << ",\"identical\":"
            << (identical_best ? "true" : "false") << ",\"seed\":" << seed
            << "}\n";
}

/// The routing counterpart: one line per router backend, with the route
/// success rate over the bench's scenario set, the summed makespan of the
/// succeeded plans, the routing wall time, and (for the negotiated
/// backend) the summed rip-up rounds — the congestion-history ablation
/// reads convergence off this field.
inline void emit_router_json_line(const std::string& name,
                                  const std::string& router,
                                  double success_rate,
                                  long long makespan_steps,
                                  double wall_seconds,
                                  std::uint64_t seed = kBenchSeed,
                                  long long negotiation_rounds = 0) {
  std::cout << "{\"bench\":\"" << name << "\",\"router\":\"" << router
            << "\",\"success_rate\":" << success_rate
            << ",\"makespan_steps\":" << makespan_steps
            << ",\"wall_seconds\":" << wall_seconds
            << ",\"negotiation_rounds\":" << negotiation_rounds
            << ",\"seed\":" << seed << "}\n";
}

/// The closed-loop counterpart: one line per (scenario, feedback round),
/// with the transport-inclusive makespan the round achieved and whether
/// the pipeline selected it as the answer.
inline void emit_closed_loop_json_line(const std::string& scenario, int round,
                                       bool routed,
                                       double transport_makespan_s,
                                       double placement_cost, bool selected,
                                       std::uint64_t seed = kBenchSeed) {
  std::cout << "{\"bench\":\"closed_loop\",\"scenario\":\"" << scenario
            << "\",\"round\":" << round << ",\"routed\":"
            << (routed ? "true" : "false") << ",\"transport_makespan_s\":"
            << transport_makespan_s << ",\"placement_cost\":"
            << placement_cost << ",\"selected\":"
            << (selected ? "true" : "false") << ",\"seed\":" << seed
            << "}\n";
}

/// Paper-parameter placement context (§4d): T0 = 10^4, alpha = 0.9,
/// Na = 400, area-only objective — the new-API counterpart of
/// paper_sa_options() below.
inline PlacerContext paper_context(std::uint64_t seed = kBenchSeed) {
  PlacerContext context;
  context.seed = seed;
  return context;  // defaults are the paper's
}

/// The paper's PCR case study synthesized through the pipeline (Table 1
/// binding, at most two concurrent mixers, storage inserted), stopping
/// after scheduling — benches drive the placers themselves.
inline PipelineResult pcr_via_pipeline(std::uint64_t seed = kBenchSeed) {
  PipelineOptions options;
  options.place = false;
  options.seed = seed;
  return SynthesisPipeline(options).run(pcr_mixing_assay());
}

/// The paper's PCR case study, synthesized: Table 1 binding, at most two
/// concurrent mixers, storage inserted for waiting droplets. Legacy-API
/// helper for the unmigrated benches; new benches use pcr_via_pipeline().
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
inline SynthesisResult synthesized_pcr() {
  const AssayCase assay = pcr_mixing_assay();
  return synthesize_with_binding(assay.graph, assay.binding,
                                 assay.scheduler_options);
}
#pragma GCC diagnostic pop

/// Paper-parameter annealing options (§4d): T0 = 10^4, alpha = 0.9,
/// Na = 400, area-only objective.
inline SaPlacerOptions paper_sa_options(std::uint64_t seed = kBenchSeed) {
  SaPlacerOptions options;
  options.seed = seed;
  return options;  // defaults are the paper's
}

/// Two-stage options with the paper's stage-1 parameters and an LTSA
/// refinement stage at the given fault-tolerance weight.
inline TwoStageOptions paper_two_stage_options(double beta,
                                               std::uint64_t seed = kBenchSeed) {
  TwoStageOptions options;
  options.beta = beta;
  options.stage1 = paper_sa_options(seed);
  // Same stage-2 derivation as the registry's "two-stage" adapter, so the
  // legacy benches and the pipeline reproduce each other from one seed.
  options.stage2_seed = SplitMix64(seed ^ 0x5a5a5a5aULL).next();
  return options;
}

/// Standard bench banner.
inline void banner(const std::string& title) {
  std::cout << "==================================================\n"
            << title << '\n'
            << "seed: 0x" << std::hex << kBenchSeed << std::dec << '\n'
            << "==================================================\n";
}

}  // namespace dmfb::bench

// --- SVG helpers shared by the figure benches -------------------------

#include <fstream>

#include "util/svg.h"

namespace dmfb::bench {

/// Writes every time slice of `placement` as one SVG file per slice:
/// <prefix>_slice<k>.svg, drawn over the placement bounding box.
inline void write_placement_svgs(const Placement& placement,
                                 const std::string& prefix) {
  const Rect box = placement.bounding_box();
  const auto& slices = placement.slice_members();
  for (std::size_t s = 0; s < slices.size(); ++s) {
    std::vector<SvgRect> rects;
    for (const int index : slices[s]) {
      const auto& m = placement.module(index);
      Rect fp = m.footprint();
      fp.x -= box.x;
      fp.y -= box.y;
      rects.push_back(SvgRect{fp, m.label,
                              palette_color(static_cast<std::size_t>(index))});
    }
    std::ofstream out(prefix + "_slice" + std::to_string(s) + ".svg");
    out << render_svg_grid(box.width, box.height, rects);
  }
}

}  // namespace dmfb::bench
