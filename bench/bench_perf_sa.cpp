// bench_perf_sa — microbenchmarks for the annealing machinery: cost
// evaluation, move generation, and end-to-end placement runs (the paper's
// §6 runtime context: 5 min for area-only SA, 20 min for two-stage, on a
// 1.0 GHz Pentium-III). Placement backends are resolved through the
// PlacerRegistry; the end-to-end pipeline is benchmarked as one unit too.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/cost.h"
#include "core/moves.h"
#include "util/rng.h"

namespace {

using namespace dmfb;

const Schedule& pcr_schedule() {
  static const Schedule schedule = bench::pcr_via_pipeline().schedule;
  return schedule;
}

Placement greedy_pcr_placement() {
  return make_placer("greedy")
      ->place(pcr_schedule(), bench::paper_context())
      .placement;
}

void BM_CostEvaluationAreaOnly(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  const CostEvaluator evaluator(CostWeights{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationAreaOnly);

void BM_CostEvaluationWithFti(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  CostWeights weights;
  weights.beta = 30.0;
  const CostEvaluator evaluator(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationWithFti);

void BM_MoveGeneration(benchmark::State& state) {
  Placement placement = greedy_pcr_placement();
  Rng rng(1);
  const MoveOptions options;
  for (auto _ : state) {
    Placement copy = placement;
    benchmark::DoNotOptimize(apply_random_move(copy, 0.5, options, rng));
  }
}
BENCHMARK(BM_MoveGeneration);

void BM_AreaOnlyPlacementEndToEnd(benchmark::State& state) {
  // Shortened schedule so a single iteration stays ~tens of ms.
  PlacerContext context = bench::paper_context();
  context.annealing.initial_temperature = 1000.0;
  context.annealing.cooling_rate = 0.8;
  context.annealing.iterations_per_module = static_cast<int>(state.range(0));
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AreaOnlyPlacementEndToEnd)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_PaperParameterPlacement(benchmark::State& state) {
  // Full paper parameters (T0=1e4, alpha=0.9, Na=400) — the modern
  // counterpart of the paper's 5-minute figure.
  PlacerContext context = bench::paper_context();
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
}
BENCHMARK(BM_PaperParameterPlacement)->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineEndToEnd(benchmark::State& state) {
  // Whole compile driver — bind, schedule, place, route — as users run it.
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module =
      static_cast<int>(state.range(0));
  const AssayCase assay = pcr_mixing_assay();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PipelineOptions per_run = options;
    per_run.seed = seed++;
    const auto result = SynthesisPipeline(per_run).run(assay);
    benchmark::DoNotOptimize(result.cost().area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
