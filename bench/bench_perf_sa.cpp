// bench_perf_sa — microbenchmarks for the annealing machinery plus the
// copy-vs-delta engine comparison (the paper's §6 runtime context: 5 min
// for area-only SA, 20 min for two-stage, on a 1.0 GHz Pentium-III).
//
// Before the Google-Benchmark suite runs, the binary anneals the paper's
// Fig. 7 configuration once per engine (and once per engine again with
// beta > 0, the two-stage LTSA objective) and emits one JSON line per
// (engine, beta) cell:
//
//   {"bench":"perf_sa","engine":"delta","beta":0,...,"identical":true,...}
//
// It exits non-zero when the delta engine is slower than the copy engine
// or the final placements differ — the CI shape check. `--smoke` shrinks
// the schedules and skips the microbenchmarks (CI Release job).
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "core/cost.h"
#include "core/moves.h"
#include "util/rng.h"

namespace {

using namespace dmfb;

const Schedule& pcr_schedule() {
  static const Schedule schedule = bench::pcr_via_pipeline().schedule;
  return schedule;
}

Placement greedy_pcr_placement() {
  return make_placer("greedy")
      ->place(pcr_schedule(), bench::paper_context())
      .placement;
}

// --- copy-vs-delta engine comparison ----------------------------------

/// One (engine, beta) comparison cell annealed from `initial`.
PlacementOutcome run_engine(AnnealingEngine engine, const Placement& initial,
                            const SaPlacerOptions& base) {
  SaPlacerOptions options = base;
  options.engine = engine;
  return anneal_from(initial, options);
}

bool same_placement(const Placement& a, const Placement& b) {
  if (a.module_count() != b.module_count()) return false;
  for (int i = 0; i < a.module_count(); ++i) {
    if (!(a.module(i).anchor == b.module(i).anchor) ||
        a.module(i).rotated != b.module(i).rotated) {
      return false;
    }
  }
  return true;
}

/// Runs both engines on one configuration, emits their JSON lines, and
/// returns whether the delta engine held its contract (identical best
/// placement, no slower than the copy engine). Runs are interleaved and
/// each engine reports its best proposals/sec of `rounds` runs, so CPU
/// frequency drift biases neither side.
bool compare_engines(const char* label, const Placement& initial,
                     const SaPlacerOptions& options, int rounds) {
  PlacementOutcome copy = run_engine(AnnealingEngine::kCopy, initial, options);
  PlacementOutcome delta =
      run_engine(AnnealingEngine::kDelta, initial, options);
  for (int round = 1; round < rounds; ++round) {
    PlacementOutcome c = run_engine(AnnealingEngine::kCopy, initial, options);
    if (c.stats.proposals_per_second > copy.stats.proposals_per_second) {
      copy = std::move(c);
    }
    PlacementOutcome d = run_engine(AnnealingEngine::kDelta, initial, options);
    if (d.stats.proposals_per_second > delta.stats.proposals_per_second) {
      delta = std::move(d);
    }
  }
  const bool identical = same_placement(copy.placement, delta.placement);

  bench::emit_engine_json_line("perf_sa", "copy", options.weights.beta,
                               copy.cost.value,
                               copy.stats.proposals_per_second,
                               copy.stats.wall_seconds, identical,
                               options.seed);
  bench::emit_engine_json_line("perf_sa", "delta", options.weights.beta,
                               delta.cost.value,
                               delta.stats.proposals_per_second,
                               delta.stats.wall_seconds, identical,
                               options.seed);
  const double speedup =
      copy.stats.proposals_per_second > 0.0
          ? delta.stats.proposals_per_second / copy.stats.proposals_per_second
          : 0.0;
  std::cout << label << ": delta/copy speedup " << speedup
            << "x (copy " << copy.stats.proposals_per_second
            << " proposals/s, delta " << delta.stats.proposals_per_second
            << " proposals/s), placements "
            << (identical ? "identical" : "DIFFER") << "\n";

  bool ok = true;
  if (!identical) {
    std::cerr << "SHAPE CHECK FAILED: " << label
              << ": engines returned different placements\n";
    ok = false;
  }
  if (speedup < 1.0) {
    std::cerr << "SHAPE CHECK FAILED: " << label
              << ": delta engine slower than copy engine (" << speedup
              << "x)\n";
    ok = false;
  }
  return ok;
}

/// The copy-vs-delta comparison over the Fig. 7 configuration (beta = 0)
/// and its two-stage LTSA counterpart (beta = 30). `smoke` shrinks the
/// schedules so the CI Release job finishes in seconds; the full run is
/// the recorded artifact quoted in README "Performance".
bool run_comparison(bool smoke) {
  const Placement initial = greedy_pcr_placement();
  const int rounds = smoke ? 1 : 3;

  // Fig. 7: area-only annealing at the paper's parameters.
  SaPlacerOptions stage1 = bench::paper_sa_options();
  if (smoke) {
    stage1.schedule.initial_temperature = 1000.0;
    stage1.schedule.cooling_rate = 0.8;
    stage1.schedule.iterations_per_module = 25;
  }
  bool ok = compare_engines(smoke ? "fig7 (smoke)" : "fig7", initial, stage1,
                            rounds);

  // Two-stage LTSA: beta > 0 exercises the incremental FTI cache. Single
  // displacements only, as in §6.2.
  SaPlacerOptions ltsa = stage1;
  ltsa.schedule = AnnealingSchedule{/*initial_temperature=*/100.0,
                                    /*cooling_rate=*/0.9,
                                    /*iterations_per_module=*/400,
                                    /*min_temperature=*/0.05};
  if (smoke) {
    ltsa.schedule.cooling_rate = 0.8;
    ltsa.schedule.iterations_per_module = 25;
  }
  ltsa.weights.beta = 30.0;
  ltsa.moves.single_move_probability = 1.0;
  ltsa.moves.rotate_probability = 0.0;
  ok = compare_engines(smoke ? "ltsa beta=30 (smoke)" : "ltsa beta=30",
                       initial, ltsa, rounds) &&
       ok;
  return ok;
}

// --- Google-Benchmark microbenches ------------------------------------

void BM_CostEvaluationAreaOnly(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  const CostEvaluator evaluator(CostWeights{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationAreaOnly);

void BM_CostEvaluationWithFti(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  CostWeights weights;
  weights.beta = 30.0;
  const CostEvaluator evaluator(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationWithFti);

void BM_MoveGeneration(benchmark::State& state) {
  Placement placement = greedy_pcr_placement();
  Rng rng(1);
  const MoveOptions options;
  for (auto _ : state) {
    Placement copy = placement;
    benchmark::DoNotOptimize(apply_random_move(copy, 0.5, options, rng));
  }
}
BENCHMARK(BM_MoveGeneration);

void BM_AreaOnlyPlacementEndToEnd(benchmark::State& state) {
  // Shortened schedule so a single iteration stays ~tens of ms; arg 1
  // selects the engine (0 = delta, 1 = copy) so the speedup shows up in
  // the benchmark table too.
  PlacerContext context = bench::paper_context();
  context.annealing.initial_temperature = 1000.0;
  context.annealing.cooling_rate = 0.8;
  context.annealing.iterations_per_module = static_cast<int>(state.range(0));
  context.engine =
      state.range(1) == 0 ? AnnealingEngine::kDelta : AnnealingEngine::kCopy;
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
  state.SetLabel(to_string(context.engine));
}
BENCHMARK(BM_AreaOnlyPlacementEndToEnd)
    ->Args({25, 0})
    ->Args({25, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Unit(benchmark::kMillisecond);

void BM_PaperParameterPlacement(benchmark::State& state) {
  // Full paper parameters (T0=1e4, alpha=0.9, Na=400) — the modern
  // counterpart of the paper's 5-minute figure, on the delta engine.
  PlacerContext context = bench::paper_context();
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
}
BENCHMARK(BM_PaperParameterPlacement)->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineEndToEnd(benchmark::State& state) {
  // Whole compile driver — bind, schedule, place, route — as users run it.
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module =
      static_cast<int>(state.range(0));
  const AssayCase assay = pcr_mixing_assay();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PipelineOptions per_run = options;
    per_run.seed = seed++;
    const auto result = SynthesisPipeline(per_run).run(assay);
    benchmark::DoNotOptimize(result.cost().area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::banner(smoke ? "perf_sa: copy vs delta engine (smoke)"
                      : "perf_sa: copy vs delta engine");
  const bool ok = run_comparison(smoke);
  if (!ok) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
