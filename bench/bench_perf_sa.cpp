// bench_perf_sa — microbenchmarks for the annealing machinery plus the
// engine comparison and the random-assay scaling sweep (the paper's §6
// runtime context: 5 min for area-only SA, 20 min for two-stage, on a
// 1.0 GHz Pentium-III).
//
// Before the Google-Benchmark suite runs, the binary
//   1. anneals the paper's Fig. 7 configuration once per engine
//      (copy / delta / fused), and once per engine again with beta > 0
//      (the two-stage LTSA objective), emitting one JSON line per
//      (engine, beta) cell:
//        {"bench":"perf_sa","engine":"delta","beta":0,...,"moves":{...}}
//   2. sweeps seeded random assays from ~10 to ~200 modules and runs
//      the copy-vs-delta comparison at every size, emitting one
//      {"bench":"perf_sa_scaling",...} line per (size, beta, engine)
//      cell — the recorded artifact showing the delta engine's
//      advantage growing with instance size.
//   3. races the "portfolio" backend against the serial kFused engine
//      on the largest sweep instance (~226 modules): every row records
//      the wall-clock to first reach the serial run's best cost
//      (critical-path time for the portfolio — what the same run costs
//      on >= N free hardware threads), across replica counts
//      {1, 2, 4, 8}, emitting one {"bench":"perf_sa_portfolio",...}
//      line per (backend, N) cell.
//
// It exits non-zero when the delta engine is slower than the copy
// engine or their final placements differ anywhere — including at any
// swept size — or when the portfolio at N >= 4 replicas fails to reach
// the serial target faster than the serial baseline did: the CI shape
// checks. `--smoke` shrinks the schedules, sweep and race instance and
// skips the microbenchmarks (CI Release job).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "core/cost.h"
#include "core/moves.h"
#include "core/portfolio_placer.h"
#include "util/rng.h"

namespace {

using namespace dmfb;

const Schedule& pcr_schedule() {
  static const Schedule schedule = bench::pcr_via_pipeline().schedule;
  return schedule;
}

Placement greedy_pcr_placement() {
  return make_placer("greedy")
      ->place(pcr_schedule(), bench::paper_context())
      .placement;
}

// --- engine comparison ------------------------------------------------

/// One (engine, beta) comparison cell annealed from `initial`.
PlacementOutcome run_engine(AnnealingEngine engine, const Placement& initial,
                            const SaPlacerOptions& base) {
  SaPlacerOptions options = base;
  options.engine = engine;
  return anneal_from(initial, options);
}

bool same_placement(const Placement& a, const Placement& b) {
  if (a.module_count() != b.module_count()) return false;
  for (int i = 0; i < a.module_count(); ++i) {
    if (!(a.module(i).anchor == b.module(i).anchor) ||
        a.module(i).rotated != b.module(i).rotated) {
      return false;
    }
  }
  return true;
}

/// Runs the three engines on one configuration, emits their JSON lines,
/// and returns whether the delta engine held its contract (identical
/// best placement, no slower than the copy engine). Runs are interleaved
/// and each engine reports its best proposals/sec of `rounds` runs, so
/// CPU frequency drift biases no side. The fused engine is versioned
/// off the legacy stream, so its placement legitimately differs; it is
/// reported for the trajectory, not shape-checked against copy.
bool compare_engines(const char* label, const Placement& initial,
                     const SaPlacerOptions& options, int rounds) {
  PlacementOutcome copy = run_engine(AnnealingEngine::kCopy, initial, options);
  PlacementOutcome delta =
      run_engine(AnnealingEngine::kDelta, initial, options);
  PlacementOutcome fused =
      run_engine(AnnealingEngine::kFused, initial, options);
  for (int round = 1; round < rounds; ++round) {
    PlacementOutcome c = run_engine(AnnealingEngine::kCopy, initial, options);
    if (c.stats.proposals_per_second > copy.stats.proposals_per_second) {
      copy = std::move(c);
    }
    PlacementOutcome d = run_engine(AnnealingEngine::kDelta, initial, options);
    if (d.stats.proposals_per_second > delta.stats.proposals_per_second) {
      delta = std::move(d);
    }
    PlacementOutcome f = run_engine(AnnealingEngine::kFused, initial, options);
    if (f.stats.proposals_per_second > fused.stats.proposals_per_second) {
      fused = std::move(f);
    }
  }
  const bool identical = same_placement(copy.placement, delta.placement);

  bench::emit_engine_json_line("perf_sa", "copy", options.weights.beta,
                               copy.cost.value,
                               copy.stats.proposals_per_second,
                               copy.stats.wall_seconds, identical, copy.stats,
                               options.seed);
  bench::emit_engine_json_line("perf_sa", "delta", options.weights.beta,
                               delta.cost.value,
                               delta.stats.proposals_per_second,
                               delta.stats.wall_seconds, identical,
                               delta.stats, options.seed);
  bench::emit_engine_json_line("perf_sa", "fused", options.weights.beta,
                               fused.cost.value,
                               fused.stats.proposals_per_second,
                               fused.stats.wall_seconds,
                               same_placement(copy.placement, fused.placement),
                               fused.stats, options.seed);
  const double speedup =
      copy.stats.proposals_per_second > 0.0
          ? delta.stats.proposals_per_second / copy.stats.proposals_per_second
          : 0.0;
  const double fused_speedup =
      copy.stats.proposals_per_second > 0.0
          ? fused.stats.proposals_per_second / copy.stats.proposals_per_second
          : 0.0;
  std::cout << label << ": delta/copy speedup " << speedup
            << "x (copy " << copy.stats.proposals_per_second
            << " proposals/s, delta " << delta.stats.proposals_per_second
            << " proposals/s), fused/copy " << fused_speedup
            << "x, placements " << (identical ? "identical" : "DIFFER")
            << "\n";

  bool ok = true;
  if (!identical) {
    std::cerr << "SHAPE CHECK FAILED: " << label
              << ": copy and delta engines returned different placements\n";
    ok = false;
  }
  if (speedup < 1.0) {
    std::cerr << "SHAPE CHECK FAILED: " << label
              << ": delta engine slower than copy engine (" << speedup
              << "x)\n";
    ok = false;
  }
  return ok;
}

/// The engine comparison over the Fig. 7 configuration (beta = 0) and
/// its two-stage LTSA counterpart (beta = 30). `smoke` shrinks the
/// schedules so the CI Release job finishes in seconds; the full run is
/// the recorded artifact quoted in README "Performance".
bool run_comparison(bool smoke) {
  const Placement initial = greedy_pcr_placement();
  const int rounds = smoke ? 1 : 3;

  // Fig. 7: area-only annealing at the paper's parameters.
  SaPlacerOptions stage1 = bench::paper_sa_options();
  if (smoke) {
    stage1.schedule.initial_temperature = 1000.0;
    stage1.schedule.cooling_rate = 0.8;
    stage1.schedule.iterations_per_module = 25;
  }
  bool ok = compare_engines(smoke ? "fig7 (smoke)" : "fig7", initial, stage1,
                            rounds);

  // Two-stage LTSA: beta > 0 exercises the incremental FTI coverage
  // state. Single displacements only, as in §6.2.
  SaPlacerOptions ltsa = stage1;
  ltsa.schedule = AnnealingSchedule{/*initial_temperature=*/100.0,
                                    /*cooling_rate=*/0.9,
                                    /*iterations_per_module=*/400,
                                    /*min_temperature=*/0.05};
  if (smoke) {
    ltsa.schedule.cooling_rate = 0.8;
    ltsa.schedule.iterations_per_module = 25;
  }
  ltsa.weights.beta = 30.0;
  ltsa.moves.single_move_probability = 1.0;
  ltsa.moves.rotate_probability = 0.0;
  ok = compare_engines(smoke ? "ltsa beta=30 (smoke)" : "ltsa beta=30",
                       initial, ltsa, rounds) &&
       ok;
  return ok;
}

// --- random-assay scaling sweep ---------------------------------------

/// One swept size: a seeded random assay scheduled through the
/// pipeline, annealed from greedy by both engines at `beta` under a
/// short shared schedule. Emits the two JSON rows and returns whether
/// the placements stayed identical (the CI divergence check).
bool sweep_point(const Schedule& schedule, int canvas, double beta,
                 const AnnealingSchedule& annealing) {
  const int modules = static_cast<int>(schedule.modules().size());

  SaPlacerOptions options;
  options.canvas_width = canvas;
  options.canvas_height = canvas;
  options.schedule = annealing;
  options.weights.beta = beta;
  options.seed = bench::kBenchSeed + static_cast<std::uint64_t>(modules);

  PlacerContext greedy_context;
  greedy_context.canvas_width = canvas;
  greedy_context.canvas_height = canvas;
  const Placement initial =
      make_placer("greedy")->place(schedule, greedy_context).placement;

  const PlacementOutcome copy =
      run_engine(AnnealingEngine::kCopy, initial, options);
  const PlacementOutcome delta =
      run_engine(AnnealingEngine::kDelta, initial, options);
  const bool identical = same_placement(copy.placement, delta.placement);

  bench::emit_scaling_json_line(modules, beta, "copy",
                                copy.stats.proposals_per_second,
                                copy.stats.wall_seconds, identical,
                                options.seed);
  bench::emit_scaling_json_line(modules, beta, "delta",
                                delta.stats.proposals_per_second,
                                delta.stats.wall_seconds, identical,
                                options.seed);
  const double ratio =
      copy.stats.proposals_per_second > 0.0
          ? delta.stats.proposals_per_second / copy.stats.proposals_per_second
          : 0.0;
  std::cout << "scaling n=" << modules << " beta=" << beta
            << " canvas=" << canvas << ": delta/copy " << ratio
            << "x, placements " << (identical ? "identical" : "DIFFER")
            << "\n";
  if (!identical) {
    std::cerr << "SHAPE CHECK FAILED: scaling n=" << modules << " beta="
              << beta << ": engines returned different placements\n";
  }
  return identical;
}

/// The sweep: module counts from the PCR scale (~10) to ~200 via
/// random_assay, each scheduled once and annealed by both engines at
/// beta = 0 and beta = 30. The copy engine's per-proposal cost grows
/// with the module count (it rebuilds every module's relocation state),
/// the delta engine's only with the temporal degree — the ratio's
/// growth with size is the artifact this records.
bool run_scaling_sweep(bool smoke) {
  bench::banner(smoke ? "perf_sa: random-assay scaling sweep (smoke)"
                      : "perf_sa: random-assay scaling sweep");
  const ModuleLibrary library = ModuleLibrary::standard();
  // Mix counts chosen so the scheduled instances (mixes + storage) span
  // the PCR scale (~10 modules) up to ~200.
  const std::vector<int> mix_counts = smoke
                                          ? std::vector<int>{8, 24, 48}
                                          : std::vector<int>{8, 16, 32, 64,
                                                             128};

  // Short shared schedule: throughput is time-normalized, so the sweep
  // needs samples, not convergence. (The copy engine at n ~ 200 costs
  // milliseconds per proposal — a full paper schedule would take hours.)
  AnnealingSchedule annealing;
  annealing.initial_temperature = smoke ? 50.0 : 100.0;
  annealing.cooling_rate = smoke ? 0.5 : 0.7;
  annealing.iterations_per_module = smoke ? 2 : 4;
  annealing.min_temperature = smoke ? 5.0 : 1.0;

  bool ok = true;
  for (const int mixes : mix_counts) {
    RandomAssayParams params;
    params.mix_operations = mixes;
    params.max_layer_width = std::max(4, mixes / 4);
    params.max_concurrent_modules = 8;
    const AssayCase assay = random_assay(
        params, library, bench::kBenchSeed + static_cast<std::uint64_t>(mixes));

    PipelineOptions pipeline_options;
    pipeline_options.place = false;
    pipeline_options.seed = bench::kBenchSeed;
    const Schedule schedule =
        SynthesisPipeline(pipeline_options).run(assay).schedule;

    // Canvas sized to hold the peak concurrent area with ~2x slack, so
    // annealing has room to both pack and spread.
    const int canvas = std::max(
        16,
        static_cast<int>(std::ceil(std::sqrt(
            2.0 * static_cast<double>(schedule.peak_concurrent_cells())))));

    ok = sweep_point(schedule, canvas, /*beta=*/0.0, annealing) && ok;
    ok = sweep_point(schedule, canvas, /*beta=*/30.0, annealing) && ok;
  }
  return ok;
}

// --- portfolio wall-clock-to-target race ------------------------------

/// The race instance: the scaling sweep's largest seeded random assay
/// (mixes = 128 schedules to ~226 modules; smoke shrinks to mixes = 64,
/// still large enough that the race is not timing noise), built with
/// the sweep's exact parameters so the portfolio rows and the scaling
/// rows describe the same workload.
Schedule race_schedule(bool smoke, int* canvas_out) {
  const ModuleLibrary library = ModuleLibrary::standard();
  const int mixes = smoke ? 64 : 128;
  RandomAssayParams params;
  params.mix_operations = mixes;
  params.max_layer_width = std::max(4, mixes / 4);
  params.max_concurrent_modules = 8;
  const AssayCase assay = random_assay(
      params, library, bench::kBenchSeed + static_cast<std::uint64_t>(mixes));

  PipelineOptions pipeline_options;
  pipeline_options.place = false;
  pipeline_options.seed = bench::kBenchSeed;
  Schedule schedule = SynthesisPipeline(pipeline_options).run(assay).schedule;
  *canvas_out = std::max(
      16, static_cast<int>(std::ceil(std::sqrt(
              2.0 * static_cast<double>(schedule.peak_concurrent_cells())))));
  return schedule;
}

/// One portfolio row of the race: anneals N exchange-coupled replicas
/// toward the serial baseline's best cost and emits its JSON line.
/// Returns whether the row beat the serial baseline's time-to-target
/// (used as the CI gate at N >= 4).
bool race_portfolio(int modules, const Placement& initial,
                    const SaPlacerOptions& options,
                    const PortfolioOptions& portfolio, double target,
                    double baseline_seconds) {
  PortfolioOptions race = portfolio;
  race.target_cost = target;
  const PlacementOutcome outcome =
      anneal_portfolio(initial, options, race);
  const bool reached = outcome.stats.best_cost <= target;
  const double seconds = outcome.stats.seconds_to_best;
  const double speedup =
      reached && seconds > 0.0 ? baseline_seconds / seconds : 0.0;
  bench::emit_portfolio_json_line(
      modules, "portfolio", to_string(options.engine), race.replicas, target,
      outcome.stats.best_cost, reached, seconds, outcome.stats.wall_seconds,
      speedup, outcome.stats, options.seed);
  std::cout << "portfolio N=" << race.replicas << ": "
            << (reached ? "reached" : "MISSED") << " target " << target
            << " (best " << outcome.stats.best_cost << ") in " << seconds
            << " s critical-path — " << speedup << "x vs serial, "
            << outcome.stats.exchanges_accepted << "/"
            << outcome.stats.exchanges_attempted << " exchanges\n";
  return reached && seconds <= baseline_seconds;
}

/// The race: serial kFused (and kBatched, report-only) set the target —
/// the serial best cost and the wall-clock at which it was reached —
/// then the portfolio chases it at N in {1, 2, 4, 8}. N = 1 and 2 are
/// recorded for the scaling table; N >= 4 must win (the CI gate, per
/// the critical-path accounting that charges each barrier interval the
/// slowest replica's segment).
///
/// Every row anneals from the same seeded SCATTERED initial (modules at
/// uniform random anchors), not from the greedy constructive one: on
/// the dense random-assay instances the slice-aware greedy packing is
/// already at the annealer's attainable floor (measured: 10M paper-
/// schedule proposals never improve it), so a greedy-start race ends at
/// t = 0 for every backend. The scattered start is the adversarial cold
/// case — it measures the engines' convergence dynamics themselves,
/// which is what the portfolio accelerates.
bool run_portfolio_race(bool smoke) {
  bench::banner(smoke ? "perf_sa: portfolio time-to-target race (smoke)"
                      : "perf_sa: portfolio time-to-target race");
  int canvas = 0;
  const Schedule schedule = race_schedule(smoke, &canvas);
  const int modules = static_cast<int>(schedule.modules().size());
  std::cout << modules << " modules on a " << canvas << "x" << canvas
            << " canvas\n";

  SaPlacerOptions options;
  options.canvas_width = canvas;
  options.canvas_height = canvas;
  options.engine = AnnealingEngine::kFused;
  // ~100 temperature steps full (~30 smoke): enough cooling for the
  // chains to feasibilize and settle from the scattered start.
  options.schedule.initial_temperature = smoke ? 50.0 : 100.0;
  options.schedule.cooling_rate = smoke ? 0.9 : 0.95;
  options.schedule.iterations_per_module = smoke ? 4 : 8;
  options.schedule.min_temperature = smoke ? 2.0 : 0.5;
  options.seed = bench::kBenchSeed + static_cast<std::uint64_t>(modules);

  Placement initial(schedule, canvas, canvas);
  Rng scatter(bench::kBenchSeed ^ static_cast<std::uint64_t>(modules));
  for (int i = 0; i < initial.module_count(); ++i) {
    const Rect footprint = initial.module(i).footprint();
    initial.set_position(
        i,
        Point{static_cast<int>(scatter.next_below(
                  static_cast<std::uint32_t>(canvas - footprint.width + 1))),
              static_cast<int>(scatter.next_below(static_cast<std::uint32_t>(
                  canvas - footprint.height + 1)))},
        /*rotated=*/false);
  }

  // Serial baselines. The kFused row is the target-setter: its best cost
  // is the cost every portfolio row must reach, its seconds_to_best the
  // time to beat.
  const PlacementOutcome serial =
      run_engine(AnnealingEngine::kFused, initial, options);
  const double target = serial.stats.best_cost;
  const double baseline_seconds = serial.stats.seconds_to_best;
  bench::emit_portfolio_json_line(modules, "sa", "fused", 1, target, target,
                                  true, baseline_seconds,
                                  serial.stats.wall_seconds, 1.0,
                                  serial.stats, options.seed);
  std::cout << "serial fused: best " << target << " at " << baseline_seconds
            << " s (of " << serial.stats.wall_seconds << " s total)\n";

  const PlacementOutcome batched =
      run_engine(AnnealingEngine::kBatched, initial, options);
  const bool batched_reached = batched.stats.best_cost <= target;
  bench::emit_portfolio_json_line(
      modules, "sa", "batched", 1, target, batched.stats.best_cost,
      batched_reached, batched.stats.seconds_to_best,
      batched.stats.wall_seconds,
      batched_reached && batched.stats.seconds_to_best > 0.0
          ? baseline_seconds / batched.stats.seconds_to_best
          : 0.0,
      batched.stats, options.seed);
  std::cout << "serial batched: best " << batched.stats.best_cost
            << ", speculation hit-rate "
            << (batched.stats.speculated > 0
                    ? static_cast<double>(batched.stats.speculation_hits) /
                          static_cast<double>(batched.stats.speculated)
                    : 0.0)
            << "\n";

  PortfolioOptions portfolio;
  portfolio.exchange_period = 4;
  // Rungs BELOW the base temperature: the extra replicas quench early
  // (reaching near-final costs in the opening barriers) while replica 0
  // anneals the full base schedule, and the exchange pass hands stuck
  // quenches back up the ladder. Measured much stronger on
  // time-to-target than a hotter ladder (0.7 won the {0.6,0.7,0.8} x
  // {K=2,K=4} tuning grid on this instance).
  portfolio.ladder_ratio = 0.7;
  bool ok = true;
  for (const int replicas : {1, 2, 4, 8}) {
    portfolio.replicas = replicas;
    const bool won = race_portfolio(modules, initial, options, portfolio,
                                    target, baseline_seconds);
    if (replicas >= 4 && !won) {
      std::cerr << "SHAPE CHECK FAILED: portfolio N=" << replicas
                << " did not reach the serial target faster than the serial"
                   " kFused baseline\n";
      ok = false;
    }
  }
  return ok;
}

// --- Google-Benchmark microbenches ------------------------------------

void BM_CostEvaluationAreaOnly(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  const CostEvaluator evaluator(CostWeights{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationAreaOnly);

void BM_CostEvaluationWithFti(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  CostWeights weights;
  weights.beta = 30.0;
  const CostEvaluator evaluator(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationWithFti);

void BM_MoveGeneration(benchmark::State& state) {
  Placement placement = greedy_pcr_placement();
  Rng rng(1);
  const MoveOptions options;
  for (auto _ : state) {
    Placement copy = placement;
    benchmark::DoNotOptimize(apply_random_move(copy, 0.5, options, rng));
  }
}
BENCHMARK(BM_MoveGeneration);

void BM_AreaOnlyPlacementEndToEnd(benchmark::State& state) {
  // Shortened schedule so a single iteration stays ~tens of ms; arg 1
  // selects the engine (0 = delta, 1 = copy, 2 = fused) so the speedup
  // shows up in the benchmark table too.
  PlacerContext context = bench::paper_context();
  context.annealing.initial_temperature = 1000.0;
  context.annealing.cooling_rate = 0.8;
  context.annealing.iterations_per_module = static_cast<int>(state.range(0));
  context.engine = state.range(1) == 0   ? AnnealingEngine::kDelta
                   : state.range(1) == 1 ? AnnealingEngine::kCopy
                                         : AnnealingEngine::kFused;
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
  state.SetLabel(to_string(context.engine));
}
BENCHMARK(BM_AreaOnlyPlacementEndToEnd)
    ->Args({25, 0})
    ->Args({25, 1})
    ->Args({25, 2})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Unit(benchmark::kMillisecond);

void BM_PaperParameterPlacement(benchmark::State& state) {
  // Full paper parameters (T0=1e4, alpha=0.9, Na=400) — the modern
  // counterpart of the paper's 5-minute figure, on the delta engine.
  PlacerContext context = bench::paper_context();
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
}
BENCHMARK(BM_PaperParameterPlacement)->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineEndToEnd(benchmark::State& state) {
  // Whole compile driver — bind, schedule, place, route — as users run it.
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module =
      static_cast<int>(state.range(0));
  const AssayCase assay = pcr_mixing_assay();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PipelineOptions per_run = options;
    per_run.seed = seed++;
    const auto result = SynthesisPipeline(per_run).run(assay);
    benchmark::DoNotOptimize(result.cost().area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const bool smoke = dmfb::bench::smoke_flag(argc, argv);

  dmfb::bench::banner(smoke ? "perf_sa: engine comparison (smoke)"
                            : "perf_sa: engine comparison");
  bool ok = run_comparison(smoke);
  ok = run_scaling_sweep(smoke) && ok;
  ok = run_portfolio_race(smoke) && ok;
  if (!ok) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
