// bench_perf_sa — microbenchmarks for the annealing machinery: cost
// evaluation, move generation, and end-to-end placement runs (the paper's
// §6 runtime context: 5 min for area-only SA, 20 min for two-stage, on a
// 1.0 GHz Pentium-III).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/cost.h"
#include "core/greedy_placer.h"
#include "core/moves.h"
#include "util/rng.h"

namespace {

using namespace dmfb;

void BM_CostEvaluationAreaOnly(benchmark::State& state) {
  const auto synth = bench::synthesized_pcr();
  const Placement placement = place_greedy(synth.schedule, 24, 24);
  const CostEvaluator evaluator(CostWeights{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationAreaOnly);

void BM_CostEvaluationWithFti(benchmark::State& state) {
  const auto synth = bench::synthesized_pcr();
  const Placement placement = place_greedy(synth.schedule, 24, 24);
  CostWeights weights;
  weights.beta = 30.0;
  const CostEvaluator evaluator(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationWithFti);

void BM_MoveGeneration(benchmark::State& state) {
  const auto synth = bench::synthesized_pcr();
  Placement placement = place_greedy(synth.schedule, 24, 24);
  Rng rng(1);
  const MoveOptions options;
  for (auto _ : state) {
    Placement copy = placement;
    benchmark::DoNotOptimize(apply_random_move(copy, 0.5, options, rng));
  }
}
BENCHMARK(BM_MoveGeneration);

void BM_AreaOnlyPlacementEndToEnd(benchmark::State& state) {
  const auto synth = bench::synthesized_pcr();
  // Shortened schedule so a single iteration stays ~tens of ms.
  SaPlacerOptions options = bench::paper_sa_options();
  options.schedule.initial_temperature = 1000.0;
  options.schedule.cooling_rate = 0.8;
  options.schedule.iterations_per_module =
      static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto outcome = place_simulated_annealing(synth.schedule, options);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AreaOnlyPlacementEndToEnd)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_PaperParameterPlacement(benchmark::State& state) {
  // Full paper parameters (T0=1e4, alpha=0.9, Na=400) — the modern
  // counterpart of the paper's 5-minute figure.
  const auto synth = bench::synthesized_pcr();
  SaPlacerOptions options = bench::paper_sa_options();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto outcome = place_simulated_annealing(synth.schedule, options);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
}
BENCHMARK(BM_PaperParameterPlacement)->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
