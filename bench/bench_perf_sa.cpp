// bench_perf_sa — microbenchmarks for the annealing machinery plus the
// engine comparison and the random-assay scaling sweep (the paper's §6
// runtime context: 5 min for area-only SA, 20 min for two-stage, on a
// 1.0 GHz Pentium-III).
//
// Before the Google-Benchmark suite runs, the binary
//   1. anneals the paper's Fig. 7 configuration once per engine
//      (copy / delta / fused), and once per engine again with beta > 0
//      (the two-stage LTSA objective), emitting one JSON line per
//      (engine, beta) cell:
//        {"bench":"perf_sa","engine":"delta","beta":0,...,"moves":{...}}
//   2. sweeps seeded random assays from ~10 to ~200 modules and runs
//      the copy-vs-delta comparison at every size, emitting one
//      {"bench":"perf_sa_scaling",...} line per (size, beta, engine)
//      cell — the recorded artifact showing the delta engine's
//      advantage growing with instance size.
//
// It exits non-zero when the delta engine is slower than the copy
// engine or their final placements differ anywhere — including at any
// swept size — the CI shape check. `--smoke` shrinks the schedules and
// sweep and skips the microbenchmarks (CI Release job).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "core/cost.h"
#include "core/moves.h"
#include "util/rng.h"

namespace {

using namespace dmfb;

const Schedule& pcr_schedule() {
  static const Schedule schedule = bench::pcr_via_pipeline().schedule;
  return schedule;
}

Placement greedy_pcr_placement() {
  return make_placer("greedy")
      ->place(pcr_schedule(), bench::paper_context())
      .placement;
}

// --- engine comparison ------------------------------------------------

/// One (engine, beta) comparison cell annealed from `initial`.
PlacementOutcome run_engine(AnnealingEngine engine, const Placement& initial,
                            const SaPlacerOptions& base) {
  SaPlacerOptions options = base;
  options.engine = engine;
  return anneal_from(initial, options);
}

bool same_placement(const Placement& a, const Placement& b) {
  if (a.module_count() != b.module_count()) return false;
  for (int i = 0; i < a.module_count(); ++i) {
    if (!(a.module(i).anchor == b.module(i).anchor) ||
        a.module(i).rotated != b.module(i).rotated) {
      return false;
    }
  }
  return true;
}

/// Runs the three engines on one configuration, emits their JSON lines,
/// and returns whether the delta engine held its contract (identical
/// best placement, no slower than the copy engine). Runs are interleaved
/// and each engine reports its best proposals/sec of `rounds` runs, so
/// CPU frequency drift biases no side. The fused engine is versioned
/// off the legacy stream, so its placement legitimately differs; it is
/// reported for the trajectory, not shape-checked against copy.
bool compare_engines(const char* label, const Placement& initial,
                     const SaPlacerOptions& options, int rounds) {
  PlacementOutcome copy = run_engine(AnnealingEngine::kCopy, initial, options);
  PlacementOutcome delta =
      run_engine(AnnealingEngine::kDelta, initial, options);
  PlacementOutcome fused =
      run_engine(AnnealingEngine::kFused, initial, options);
  for (int round = 1; round < rounds; ++round) {
    PlacementOutcome c = run_engine(AnnealingEngine::kCopy, initial, options);
    if (c.stats.proposals_per_second > copy.stats.proposals_per_second) {
      copy = std::move(c);
    }
    PlacementOutcome d = run_engine(AnnealingEngine::kDelta, initial, options);
    if (d.stats.proposals_per_second > delta.stats.proposals_per_second) {
      delta = std::move(d);
    }
    PlacementOutcome f = run_engine(AnnealingEngine::kFused, initial, options);
    if (f.stats.proposals_per_second > fused.stats.proposals_per_second) {
      fused = std::move(f);
    }
  }
  const bool identical = same_placement(copy.placement, delta.placement);

  bench::emit_engine_json_line("perf_sa", "copy", options.weights.beta,
                               copy.cost.value,
                               copy.stats.proposals_per_second,
                               copy.stats.wall_seconds, identical, copy.stats,
                               options.seed);
  bench::emit_engine_json_line("perf_sa", "delta", options.weights.beta,
                               delta.cost.value,
                               delta.stats.proposals_per_second,
                               delta.stats.wall_seconds, identical,
                               delta.stats, options.seed);
  bench::emit_engine_json_line("perf_sa", "fused", options.weights.beta,
                               fused.cost.value,
                               fused.stats.proposals_per_second,
                               fused.stats.wall_seconds,
                               same_placement(copy.placement, fused.placement),
                               fused.stats, options.seed);
  const double speedup =
      copy.stats.proposals_per_second > 0.0
          ? delta.stats.proposals_per_second / copy.stats.proposals_per_second
          : 0.0;
  const double fused_speedup =
      copy.stats.proposals_per_second > 0.0
          ? fused.stats.proposals_per_second / copy.stats.proposals_per_second
          : 0.0;
  std::cout << label << ": delta/copy speedup " << speedup
            << "x (copy " << copy.stats.proposals_per_second
            << " proposals/s, delta " << delta.stats.proposals_per_second
            << " proposals/s), fused/copy " << fused_speedup
            << "x, placements " << (identical ? "identical" : "DIFFER")
            << "\n";

  bool ok = true;
  if (!identical) {
    std::cerr << "SHAPE CHECK FAILED: " << label
              << ": copy and delta engines returned different placements\n";
    ok = false;
  }
  if (speedup < 1.0) {
    std::cerr << "SHAPE CHECK FAILED: " << label
              << ": delta engine slower than copy engine (" << speedup
              << "x)\n";
    ok = false;
  }
  return ok;
}

/// The engine comparison over the Fig. 7 configuration (beta = 0) and
/// its two-stage LTSA counterpart (beta = 30). `smoke` shrinks the
/// schedules so the CI Release job finishes in seconds; the full run is
/// the recorded artifact quoted in README "Performance".
bool run_comparison(bool smoke) {
  const Placement initial = greedy_pcr_placement();
  const int rounds = smoke ? 1 : 3;

  // Fig. 7: area-only annealing at the paper's parameters.
  SaPlacerOptions stage1 = bench::paper_sa_options();
  if (smoke) {
    stage1.schedule.initial_temperature = 1000.0;
    stage1.schedule.cooling_rate = 0.8;
    stage1.schedule.iterations_per_module = 25;
  }
  bool ok = compare_engines(smoke ? "fig7 (smoke)" : "fig7", initial, stage1,
                            rounds);

  // Two-stage LTSA: beta > 0 exercises the incremental FTI coverage
  // state. Single displacements only, as in §6.2.
  SaPlacerOptions ltsa = stage1;
  ltsa.schedule = AnnealingSchedule{/*initial_temperature=*/100.0,
                                    /*cooling_rate=*/0.9,
                                    /*iterations_per_module=*/400,
                                    /*min_temperature=*/0.05};
  if (smoke) {
    ltsa.schedule.cooling_rate = 0.8;
    ltsa.schedule.iterations_per_module = 25;
  }
  ltsa.weights.beta = 30.0;
  ltsa.moves.single_move_probability = 1.0;
  ltsa.moves.rotate_probability = 0.0;
  ok = compare_engines(smoke ? "ltsa beta=30 (smoke)" : "ltsa beta=30",
                       initial, ltsa, rounds) &&
       ok;
  return ok;
}

// --- random-assay scaling sweep ---------------------------------------

/// One swept size: a seeded random assay scheduled through the
/// pipeline, annealed from greedy by both engines at `beta` under a
/// short shared schedule. Emits the two JSON rows and returns whether
/// the placements stayed identical (the CI divergence check).
bool sweep_point(const Schedule& schedule, int canvas, double beta,
                 const AnnealingSchedule& annealing) {
  const int modules = static_cast<int>(schedule.modules().size());

  SaPlacerOptions options;
  options.canvas_width = canvas;
  options.canvas_height = canvas;
  options.schedule = annealing;
  options.weights.beta = beta;
  options.seed = bench::kBenchSeed + static_cast<std::uint64_t>(modules);

  PlacerContext greedy_context;
  greedy_context.canvas_width = canvas;
  greedy_context.canvas_height = canvas;
  const Placement initial =
      make_placer("greedy")->place(schedule, greedy_context).placement;

  const PlacementOutcome copy =
      run_engine(AnnealingEngine::kCopy, initial, options);
  const PlacementOutcome delta =
      run_engine(AnnealingEngine::kDelta, initial, options);
  const bool identical = same_placement(copy.placement, delta.placement);

  bench::emit_scaling_json_line(modules, beta, "copy",
                                copy.stats.proposals_per_second,
                                copy.stats.wall_seconds, identical,
                                options.seed);
  bench::emit_scaling_json_line(modules, beta, "delta",
                                delta.stats.proposals_per_second,
                                delta.stats.wall_seconds, identical,
                                options.seed);
  const double ratio =
      copy.stats.proposals_per_second > 0.0
          ? delta.stats.proposals_per_second / copy.stats.proposals_per_second
          : 0.0;
  std::cout << "scaling n=" << modules << " beta=" << beta
            << " canvas=" << canvas << ": delta/copy " << ratio
            << "x, placements " << (identical ? "identical" : "DIFFER")
            << "\n";
  if (!identical) {
    std::cerr << "SHAPE CHECK FAILED: scaling n=" << modules << " beta="
              << beta << ": engines returned different placements\n";
  }
  return identical;
}

/// The sweep: module counts from the PCR scale (~10) to ~200 via
/// random_assay, each scheduled once and annealed by both engines at
/// beta = 0 and beta = 30. The copy engine's per-proposal cost grows
/// with the module count (it rebuilds every module's relocation state),
/// the delta engine's only with the temporal degree — the ratio's
/// growth with size is the artifact this records.
bool run_scaling_sweep(bool smoke) {
  bench::banner(smoke ? "perf_sa: random-assay scaling sweep (smoke)"
                      : "perf_sa: random-assay scaling sweep");
  const ModuleLibrary library = ModuleLibrary::standard();
  // Mix counts chosen so the scheduled instances (mixes + storage) span
  // the PCR scale (~10 modules) up to ~200.
  const std::vector<int> mix_counts = smoke
                                          ? std::vector<int>{8, 24, 48}
                                          : std::vector<int>{8, 16, 32, 64,
                                                             128};

  // Short shared schedule: throughput is time-normalized, so the sweep
  // needs samples, not convergence. (The copy engine at n ~ 200 costs
  // milliseconds per proposal — a full paper schedule would take hours.)
  AnnealingSchedule annealing;
  annealing.initial_temperature = smoke ? 50.0 : 100.0;
  annealing.cooling_rate = smoke ? 0.5 : 0.7;
  annealing.iterations_per_module = smoke ? 2 : 4;
  annealing.min_temperature = smoke ? 5.0 : 1.0;

  bool ok = true;
  for (const int mixes : mix_counts) {
    RandomAssayParams params;
    params.mix_operations = mixes;
    params.max_layer_width = std::max(4, mixes / 4);
    params.max_concurrent_modules = 8;
    const AssayCase assay = random_assay(
        params, library, bench::kBenchSeed + static_cast<std::uint64_t>(mixes));

    PipelineOptions pipeline_options;
    pipeline_options.place = false;
    pipeline_options.seed = bench::kBenchSeed;
    const Schedule schedule =
        SynthesisPipeline(pipeline_options).run(assay).schedule;

    // Canvas sized to hold the peak concurrent area with ~2x slack, so
    // annealing has room to both pack and spread.
    const int canvas = std::max(
        16,
        static_cast<int>(std::ceil(std::sqrt(
            2.0 * static_cast<double>(schedule.peak_concurrent_cells())))));

    ok = sweep_point(schedule, canvas, /*beta=*/0.0, annealing) && ok;
    ok = sweep_point(schedule, canvas, /*beta=*/30.0, annealing) && ok;
  }
  return ok;
}

// --- Google-Benchmark microbenches ------------------------------------

void BM_CostEvaluationAreaOnly(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  const CostEvaluator evaluator(CostWeights{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationAreaOnly);

void BM_CostEvaluationWithFti(benchmark::State& state) {
  const Placement placement = greedy_pcr_placement();
  CostWeights weights;
  weights.beta = 30.0;
  const CostEvaluator evaluator(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(placement));
  }
}
BENCHMARK(BM_CostEvaluationWithFti);

void BM_MoveGeneration(benchmark::State& state) {
  Placement placement = greedy_pcr_placement();
  Rng rng(1);
  const MoveOptions options;
  for (auto _ : state) {
    Placement copy = placement;
    benchmark::DoNotOptimize(apply_random_move(copy, 0.5, options, rng));
  }
}
BENCHMARK(BM_MoveGeneration);

void BM_AreaOnlyPlacementEndToEnd(benchmark::State& state) {
  // Shortened schedule so a single iteration stays ~tens of ms; arg 1
  // selects the engine (0 = delta, 1 = copy, 2 = fused) so the speedup
  // shows up in the benchmark table too.
  PlacerContext context = bench::paper_context();
  context.annealing.initial_temperature = 1000.0;
  context.annealing.cooling_rate = 0.8;
  context.annealing.iterations_per_module = static_cast<int>(state.range(0));
  context.engine = state.range(1) == 0   ? AnnealingEngine::kDelta
                   : state.range(1) == 1 ? AnnealingEngine::kCopy
                                         : AnnealingEngine::kFused;
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
  state.SetLabel(to_string(context.engine));
}
BENCHMARK(BM_AreaOnlyPlacementEndToEnd)
    ->Args({25, 0})
    ->Args({25, 1})
    ->Args({25, 2})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Unit(benchmark::kMillisecond);

void BM_PaperParameterPlacement(benchmark::State& state) {
  // Full paper parameters (T0=1e4, alpha=0.9, Na=400) — the modern
  // counterpart of the paper's 5-minute figure, on the delta engine.
  PlacerContext context = bench::paper_context();
  const auto placer = make_placer("sa");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    context.seed = seed++;
    const auto outcome = placer->place(pcr_schedule(), context);
    benchmark::DoNotOptimize(outcome.cost.area_cells);
  }
}
BENCHMARK(BM_PaperParameterPlacement)->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineEndToEnd(benchmark::State& state) {
  // Whole compile driver — bind, schedule, place, route — as users run it.
  PipelineOptions options;
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module =
      static_cast<int>(state.range(0));
  const AssayCase assay = pcr_mixing_assay();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PipelineOptions per_run = options;
    per_run.seed = seed++;
    const auto result = SynthesisPipeline(per_run).run(assay);
    benchmark::DoNotOptimize(result.cost().area_cells);
  }
  state.counters["Na"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const bool smoke = dmfb::bench::smoke_flag(argc, argv);

  dmfb::bench::banner(smoke ? "perf_sa: engine comparison (smoke)"
                            : "perf_sa: engine comparison");
  bool ok = run_comparison(smoke);
  ok = run_scaling_sweep(smoke) && ok;
  if (!ok) return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
