// bench_fig7_placement — regenerates §6.1 + Fig. 7 of the paper:
//   * the greedy baseline placement (paper: 84 cells = 189 mm^2),
//   * the area-only simulated-annealing placement (paper: 63 cells =
//     141.75 mm^2, 25% less than the baseline, FTI 0.1270).
// Paper-parameter annealing (T0 = 10^4, alpha = 0.9, Na = 400), with both
// placers resolved by name from the PlacerRegistry.
#include <iostream>

#include "bench_common.h"
#include "core/fti.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Fig. 7 — area-only SA placement vs greedy baseline");

  const Schedule schedule = bench::pcr_via_pipeline().schedule;
  const PlacerContext context = bench::paper_context();

  // Baseline (§6.1): modules sorted by decreasing area, bottom-left.
  const PlacementOutcome greedy =
      make_placer("greedy")->place(schedule, context);
  const double greedy_fti = evaluate_fti(greedy.placement).fti();

  // Area-only simulated annealing (Fig. 7).
  const PlacementOutcome sa = make_placer("sa")->place(schedule, context);
  const FtiResult sa_fti = evaluate_fti(sa.placement);

  TextTable table("PCR placement: baseline vs simulated annealing");
  table.set_header({"Method", "Cells", "Area (mm^2)", "FTI", "Paper"});
  table.add_row({"greedy baseline", std::to_string(greedy.cost.area_cells),
                 format_mm2(greedy.cost.area_mm2()),
                 format_double(greedy_fti, 4), "84 cells / 189.00 mm^2"});
  table.add_row({"SA (area-only)", std::to_string(sa.cost.area_cells),
                 format_mm2(sa.cost.area_mm2()),
                 format_double(sa_fti.fti(), 4),
                 "63 cells / 141.75 mm^2 / FTI 0.1270"});
  table.print(std::cout);

  const double reduction =
      100.0 * (1.0 - static_cast<double>(sa.cost.area_cells) /
                         greedy.cost.area_cells);
  std::cout << "\narea reduction vs baseline: " << format_double(reduction, 1)
            << "% (paper: 25%)\n"
            << "bounding box: " << sa.placement.bounding_box().width << "x"
            << sa.placement.bounding_box().height << " cells (paper: 7x9)\n"
            << "C-covered cells: " << sa_fti.covered_cells << "/"
            << sa_fti.total_cells << " (paper: 8/63)\n"
            << "SA wall time: " << format_double(sa.wall_seconds, 2)
            << " s (paper: 5 min on a 1.0 GHz Pentium-III)\n"
            << "SA proposals: " << sa.stats.proposals
            << ", accepted: " << sa.stats.accepted << "\n\n"
            << "Placement by time slice (Fig. 7 analogue):\n"
            << sa.placement.render();

  bench::emit_json_line("fig7", "greedy",
                        static_cast<double>(greedy.cost.area_cells),
                        greedy.wall_seconds);
  bench::emit_json_line("fig7", "sa",
                        static_cast<double>(sa.cost.area_cells),
                        sa.wall_seconds);

  const auto svg_dir = bench::write_placement_svgs(sa.placement, "fig7");
  std::cout << "wrote " << (svg_dir / "fig7_slice*.svg").string() << "\n";

  // Shape checks mirrored in EXPERIMENTS.md.
  const bool sane = sa.placement.feasible() &&
                    sa.cost.area_cells <= greedy.cost.area_cells &&
                    sa_fti.fti() < 0.5;
  std::cout << "shape check (SA <= greedy, SA FTI poor): "
            << (sane ? "OK" : "VIOLATED") << '\n';
  return sane ? 0 : 1;
}
