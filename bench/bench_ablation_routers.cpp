// bench_ablation_routers — router shoot-out. The paper's flow stops at
// placement and treats routing as a given; this bench puts every routing
// backend registered in the RouterRegistry side by side on a scenario set
// that mixes the paper's PCR case (the fig. 8 placements) with random
// assays on increasingly tight chips:
//   * prioritized — classic decoupled planning (fast, incomplete),
//   * negotiated  — Pathfinder-style negotiated congestion,
//   * restart     — seeded random-restart over transfer orderings.
// Per backend it reports the route success rate, the summed changeover
// makespan over commonly-solved scenarios (droplet transport time), and
// wall time — one JSON line each for the perf trajectory.
#include <chrono>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "sim/router_backend.h"
#include "util/table.h"

using namespace dmfb;

namespace {

struct Scenario {
  std::string name;
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
  int chip = 24;
  int step_horizon = 0;  ///< 0 = auto; small = an actuation deadline
};

/// PCR (fig. 8 flow), seeded random assays, and the same random assays
/// under a tight per-changeover step horizon — the actuation-deadline
/// regime where decoupled planning actually runs out of slack and the
/// backends' completeness differs. `smoke` trims the random/stress
/// trial counts for the CI job.
std::vector<Scenario> make_scenarios(bool smoke) {
  std::vector<Scenario> scenarios;

  const AssayCase pcr = pcr_mixing_assay();
  for (const auto& [placer, chip] :
       std::map<std::string, int>{{"greedy", 16}, {"sa", 16}}) {
    PipelineOptions options;
    options.placer = placer;
    options.placer_context = bench::paper_context();
    options.placer_context.canvas_width = chip;
    options.placer_context.canvas_height = chip;
    options.plan_droplet_routes = false;
    const PipelineResult result = SynthesisPipeline(options).run(pcr);
    scenarios.push_back(Scenario{"pcr/" + placer, pcr.graph, result.schedule,
                                 result.placement.placement, chip});
  }

  const ModuleLibrary library = ModuleLibrary::standard();
  auto compiled = [&](const AssayCase& assay, int chip) {
    PipelineOptions options;
    options.placer = "sa";
    options.placer_context.canvas_width = chip;
    options.placer_context.canvas_height = chip;
    // Short anneal: compact placements quickly, routing is the subject.
    options.placer_context.annealing.initial_temperature = 1000.0;
    options.placer_context.annealing.cooling_rate = 0.8;
    options.placer_context.annealing.iterations_per_module = 60;
    options.plan_droplet_routes = false;
    return SynthesisPipeline(options).run(assay);
  };
  const int random_trials = smoke ? 4 : 10;
  for (int trial = 0; trial < random_trials; ++trial) {
    RandomAssayParams params;
    params.mix_operations = 6 + trial % 4;
    const AssayCase assay = random_assay(
        params, library, bench::kBenchSeed + static_cast<std::uint64_t>(trial));
    const int chip = 16;
    const PipelineResult result = compiled(assay, chip);
    scenarios.push_back(Scenario{"random" + std::to_string(trial),
                                 assay.graph, result.schedule,
                                 result.placement.placement, chip});
    // The same compiled assay under an 8/10-step changeover deadline.
    scenarios.push_back(Scenario{
        "random" + std::to_string(trial) + "/deadline", assay.graph,
        result.schedule, result.placement.placement, chip,
        trial % 2 == 0 ? 8 : 10});
  }

  // Corridor / permutation stress scenarios (assay/random_assay.h): long
  // -lived walls carve the chip into lanes and a whole wave of crossing
  // transfers lands on one changeover — the structure where decoupled
  // prioritized planning actually runs out of slack under a deadline.
  const int permutation_trials = smoke ? 2 : 4;
  for (int trial = 0; trial < permutation_trials; ++trial) {
    const AssayCase assay = permutation_assay(
        4 + trial % 2, 2, library,
        bench::kBenchSeed + 100 + static_cast<std::uint64_t>(trial));
    const int chip = 16;
    const PipelineResult result = compiled(assay, chip);
    scenarios.push_back(Scenario{"perm" + std::to_string(trial) + "/deadline",
                                 assay.graph, result.schedule,
                                 result.placement.placement, chip,
                                 trial % 2 == 0 ? 8 : 10});
  }
  {
    StressAssayParams params;
    const AssayCase assay = corridor_assay(params, library,
                                           bench::kBenchSeed + 200);
    const int chip = 18;
    const PipelineResult result = compiled(assay, chip);
    scenarios.push_back(Scenario{"corridor/deadline", assay.graph,
                                 result.schedule, result.placement.placement,
                                 chip, 10});
  }
  return scenarios;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_flag(argc, argv);
  bench::banner(smoke
                    ? "Ablation — every registered router, side by side (smoke)"
                    : "Ablation — every registered router, side by side");

  using Clock = std::chrono::steady_clock;
  const auto scenarios = make_scenarios(smoke);
  std::cout << scenarios.size() << " scenarios (PCR fig. 8 placements + "
            << "random assays on 16-cell chips, with and without "
            << "changeover deadlines)\n";

  struct Result {
    int solved = 0;
    double wall_seconds = 0.0;
    /// Per-scenario outcomes, aligned with `scenarios`; makespan is the
    /// sum of the plan's changeover makespans (0 when unsolved).
    std::vector<bool> solved_mask;
    std::vector<long long> makespans;
    std::vector<long long> steps;
    /// Per-scenario negotiation rounds (negotiated backends only);
    /// summed over the commonly-solved set like the quality columns, so
    /// cold-vs-warm convergence compares identical scenario sets.
    std::vector<long long> rounds;
  };
  std::map<std::string, Result> results;

  // Every registered backend, plus the negotiated backend warm-starting
  // its Pathfinder history across changeovers — the ablation that records
  // the convergence-round reduction persistence buys.
  struct Variant {
    std::string label;
    std::string router;
    bool persist_history = false;
  };
  std::vector<Variant> variants;
  for (const auto& name : registered_routers()) {
    variants.push_back(Variant{name, name, false});
  }
  variants.push_back(Variant{"negotiated+history", "negotiated", true});

  for (const auto& variant : variants) {
    const auto router = make_router(variant.router);
    Result& r = results[variant.label];
    for (const auto& scenario : scenarios) {
      RoutePlannerOptions options;
      options.seed = bench::kBenchSeed;
      options.step_horizon = scenario.step_horizon;
      options.persist_congestion_history = variant.persist_history;
      const auto start = Clock::now();
      const RoutePlan plan =
          router->plan(scenario.graph, scenario.schedule, scenario.placement,
                       scenario.chip, scenario.chip, options);
      r.wall_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      r.solved_mask.push_back(plan.success);
      r.solved += plan.success ? 1 : 0;
      r.rounds.push_back(plan.negotiation_rounds);
      long long makespan = 0;
      for (const auto& changeover : plan.changeovers) {
        makespan += changeover.makespan_steps;
      }
      r.makespans.push_back(plan.success ? makespan : 0);
      r.steps.push_back(plan.success ? plan.total_steps : 0);
    }
  }

  // Quality comparisons only make sense over the scenarios *every*
  // registered backend solved; success rate covers the rest. The
  // +history variant is excluded from the mask (it is an ablation of
  // "negotiated", not a fourth backend) so its solved set cannot shift
  // the makespan/steps columns the perf trajectory tracks for the base
  // backends; its own sums below are guarded per scenario.
  std::vector<bool> common(scenarios.size(), true);
  for (const auto& variant : variants) {
    if (variant.persist_history) continue;
    const Result& r = results[variant.label];
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      common[s] = common[s] && r.solved_mask[s];
    }
  }

  TextTable table("Routing backends (makespan/steps over commonly-solved)");
  table.set_header({"router", "solved", "success rate", "makespan steps",
                    "droplet steps", "negot. rounds", "wall (s)"});
  for (const auto& [name, r] : results) {
    const double rate =
        static_cast<double>(r.solved) / static_cast<double>(scenarios.size());
    long long makespan_steps = 0;
    long long total_steps = 0;
    long long negotiation_rounds = 0;
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      if (!common[s] || !r.solved_mask[s]) continue;
      makespan_steps += r.makespans[s];
      total_steps += r.steps[s];
      negotiation_rounds += r.rounds[s];
    }
    table.add_row({name,
                   std::to_string(r.solved) + "/" +
                       std::to_string(scenarios.size()),
                   format_double(100.0 * rate, 1) + "%",
                   std::to_string(makespan_steps),
                   std::to_string(total_steps),
                   std::to_string(negotiation_rounds),
                   format_double(r.wall_seconds, 3)});
    bench::emit_router_json_line("ablation_routers", name, rate,
                                 makespan_steps, r.wall_seconds,
                                 bench::kBenchSeed, negotiation_rounds);
  }
  table.print(std::cout);

  // The congestion-history ablation: persistence should converge in no
  // more rip-up rounds than cold-starting every changeover. Summed over
  // scenarios *both* negotiated variants solved, so cold and warm cover
  // the identical set (informational; the hard shape check is below).
  {
    const Result& cold = results["negotiated"];
    const Result& warm = results["negotiated+history"];
    long long cold_rounds = 0;
    long long warm_rounds = 0;
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      if (!cold.solved_mask[s] || !warm.solved_mask[s]) continue;
      cold_rounds += cold.rounds[s];
      warm_rounds += warm.rounds[s];
    }
    std::cout << "congestion-history convergence: " << cold_rounds
              << " rounds cold vs " << warm_rounds << " rounds warm\n";
  }

  // Shape check (the PR's acceptance criterion): negotiated congestion
  // must solve at least everything decoupled prioritized planning does.
  const bool sane =
      results["negotiated"].solved >= results["prioritized"].solved &&
      results["negotiated+history"].solved >=
          results["prioritized"].solved;
  std::cout << "shape check (negotiated >= prioritized): "
            << (sane ? "OK" : "VIOLATED") << '\n';
  return sane ? 0 : 1;
}
