// bench_ablation_window — ablation A2: the paper's controlling window
// (§4c) discourages long displacements at low temperature. This bench
// runs the same annealing with and without the window and reports area
// and acceptance behaviour.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Ablation A2 — controlling window on/off");

  const auto synth = bench::synthesized_pcr();
  const std::uint64_t seeds[] = {1, 2, 3, 4, 5, 6, 7, 8};

  TextTable table("Area-only SA with and without the controlling window");
  table.set_header({"window", "mean cells", "best", "worst",
                    "mean accept %", "mean uphill"});

  for (const bool use_window : {true, false}) {
    double total = 0.0;
    long long best = 1LL << 40;
    long long worst = 0;
    double accept = 0.0;
    double uphill = 0.0;
    for (const std::uint64_t seed : seeds) {
      SaPlacerOptions options = bench::paper_sa_options(seed);
      options.schedule.initial_temperature = 2000.0;
      options.schedule.cooling_rate = 0.85;
      options.schedule.iterations_per_module = 150;
      options.moves.use_controlling_window = use_window;
      const auto outcome =
          place_simulated_annealing(synth.schedule, options);
      total += static_cast<double>(outcome.cost.area_cells);
      best = std::min(best, outcome.cost.area_cells);
      worst = std::max(worst, outcome.cost.area_cells);
      accept += 100.0 * static_cast<double>(outcome.stats.accepted) /
                static_cast<double>(outcome.stats.proposals);
      uphill += static_cast<double>(outcome.stats.uphill_accepted);
    }
    const double n = static_cast<double>(std::size(seeds));
    table.add_row({use_window ? "on" : "off", format_double(total / n, 1),
                   std::to_string(best), std::to_string(worst),
                   format_double(accept / n, 1),
                   format_double(uphill / n, 0)});
  }
  table.print(std::cout);
  std::cout << "\nexpectation: the window concentrates low-temperature moves"
               " locally,\nraising late acceptance and (slightly) final"
               " quality.\n";
  return 0;
}
