// bench_service — the synthesis service's headline artifact: request
// latency and throughput under mixed traffic against the content-hashed
// placement cache (service/).
//
// Phase 1 drives CompileService in-process with three traffic classes —
// cold misses (unique assays), exact repeats (cache hits) and near-misses
// (label-perturbed assays on a known layout, which warm-start from the
// cached placement) — and reports per-class p50/p99 latency. Every
// near-miss is also compiled cold on a cache-less service as the
// reference its warm start must beat. Phase 2 replays the whole request
// mix as JSON lines through CompileServer::serve's worker pool and
// reports requests/sec.
//
// One JSON line per traffic class plus one for the mixed replay:
//   {"bench":"service","class":"miss","requests":...,"p50_ms":...,
//    "p99_ms":...,"mean_ms":...,"seed":...}
//   {"bench":"service","class":"mixed","requests":...,"workers":...,
//    "wall_seconds":...,"requests_per_second":...,"seed":...}
//
// Shape checks (non-zero exit on violation):
//   - exact hits are >= 10x faster than cold compiles (p50 vs p50);
//   - every near-miss warm-starts, lands at equal-or-better placement
//     cost than its cold reference, and the class beats cold on p50
//     wall-clock.
//
// `--smoke` trims the assay set and anneal depth for CI.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "io/assay_format.h"
#include "io/json.h"
#include "service/server.h"
#include "util/table.h"

using namespace dmfb;

namespace {

/// The bench's compile options: classic feed-forward flow, anneal depth
/// scaled to the mode (the cache's speedup is the subject, not absolute
/// anneal quality).
PipelineOptions bench_options(bool smoke) {
  PipelineOptions options;
  options.seed = bench::kBenchSeed;
  options.placer_context = bench::paper_context();
  if (smoke) {
    options.placer_context.annealing.initial_temperature = 1000.0;
    options.placer_context.annealing.cooling_rate = 0.8;
    options.placer_context.annealing.iterations_per_module = 80;
  } else {
    options.placer_context.annealing.iterations_per_module = 150;
  }
  return options;
}

std::vector<AssayCase> base_assays(bool smoke) {
  const ModuleLibrary library = ModuleLibrary::standard();
  std::vector<AssayCase> assays;
  assays.push_back(pcr_mixing_assay());
  assays.push_back(permutation_assay(4, 2, library, 11));
  if (!smoke) {
    assays.push_back(permutation_assay(5, 2, library, 23));
    RandomAssayParams params;
    params.mix_operations = 8;
    assays.push_back(random_assay(params, library, 7));
  }
  return assays;
}

/// A near-miss of `base`: same graph structure and binding, perturbed
/// assay name and mix labels — a different cache key (the canonical form
/// sees names and labels) whose schedule signature still matches, so the
/// service warm-starts it from `base`'s cached placement.
AssayCase perturbed(const AssayCase& base, int variant) {
  const std::string tag = "-v" + std::to_string(variant);
  SequencingGraph graph(base.graph.name());
  for (const auto& op : base.graph.operations()) {
    const bool rename = op.type == OperationType::kMix;
    graph.add_operation(op.type, rename ? op.label + tag : op.label,
                        op.reagent);
  }
  for (const auto& op : base.graph.operations()) {
    for (const OperationId succ : base.graph.successors(op.id)) {
      graph.add_dependency(op.id, succ);
    }
  }
  AssayCase assay = base;
  assay.name = base.name + tag;
  assay.graph = std::move(graph);
  return assay;
}

struct ClassStats {
  std::vector<double> wall_ms;

  void record(double seconds) { wall_ms.push_back(seconds * 1000.0); }
  /// Nearest-rank percentile (q in [0,1]) over the recorded latencies.
  double percentile(double q) const {
    if (wall_ms.empty()) return 0.0;
    std::vector<double> sorted = wall_ms;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  double mean() const {
    if (wall_ms.empty()) return 0.0;
    double sum = 0.0;
    for (const double ms : wall_ms) sum += ms;
    return sum / static_cast<double>(wall_ms.size());
  }
};

void emit_class_line(const std::string& traffic_class,
                     const ClassStats& stats) {
  std::cout << "{\"bench\":\"service\",\"class\":\"" << traffic_class
            << "\",\"requests\":" << stats.wall_ms.size()
            << ",\"p50_ms\":" << stats.percentile(0.50)
            << ",\"p99_ms\":" << stats.percentile(0.99)
            << ",\"mean_ms\":" << stats.mean()
            << ",\"seed\":" << bench::kBenchSeed << "}\n";
}

std::string request_line(const std::string& id, const AssayCase& assay,
                         bool smoke) {
  json::Value options;
  if (smoke) {
    json::Value annealing;
    annealing.set("T0", 1000.0);
    annealing.set("alpha", 0.8);
    annealing.set("iterations_per_module", 80);
    options.set("annealing", std::move(annealing));
  } else {
    json::Value annealing;
    annealing.set("iterations_per_module", 150);
    options.set("annealing", std::move(annealing));
  }
  options.set("seed", static_cast<long long>(bench::kBenchSeed));
  json::Value doc;
  doc.set("id", id);
  doc.set("assay", assay_to_string(assay));
  doc.set("options", std::move(options));
  return doc.dump();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_flag(argc, argv);
  bench::banner("Synthesis service — compile cache latency and throughput");

  const std::vector<AssayCase> bases = base_assays(smoke);
  const int exact_repeats = smoke ? 2 : 3;
  const int variants = smoke ? 1 : 2;
  std::cout << bases.size() << " base assays, " << exact_repeats
            << " exact repeats and " << variants
            << " near-miss variants each\n";

  bool shape_ok = true;
  CompileService service;
  CompileService cold_service;  // cache bypass: the warm starts' reference
  ClassStats miss, exact, warm, cold;
  std::vector<std::pair<std::string, std::string>> lines;  // (id, request)

  const auto expect_source = [&shape_ok](const CompileResponse& response,
                                         CompileSource source) {
    if (!response.ok) {
      std::cout << "request " << response.id << " FAILED: " << response.error
                << '\n';
      shape_ok = false;
      return false;
    }
    if (response.source != source) {
      std::cout << "request " << response.id << ": expected "
                << to_string(source) << ", got " << to_string(response.source)
                << '\n';
      shape_ok = false;
      return false;
    }
    return true;
  };

  for (const AssayCase& base : bases) {
    CompileRequest request;
    request.id = base.name;
    request.assay = base;
    request.options = bench_options(smoke);
    lines.emplace_back(request.id, request_line(request.id, base, smoke));

    const CompileResponse first = service.compile(request);
    if (expect_source(first, CompileSource::kMiss)) {
      miss.record(first.wall_seconds);
    }
    for (int repeat = 0; repeat < exact_repeats; ++repeat) {
      const CompileResponse hit = service.compile(request);
      if (expect_source(hit, CompileSource::kExactHit)) {
        exact.record(hit.wall_seconds);
      }
      lines.emplace_back(request.id, lines.back().second);
    }

    for (int variant = 0; variant < variants; ++variant) {
      CompileRequest near_miss = request;
      near_miss.assay = perturbed(base, variant);
      near_miss.id = near_miss.assay.name;
      lines.emplace_back(near_miss.id,
                         request_line(near_miss.id, near_miss.assay, smoke));

      const CompileResponse warmed = service.compile(near_miss);
      CompileRequest cold_request = near_miss;
      cold_request.use_cache = false;
      const CompileResponse reference = cold_service.compile(cold_request);
      if (!expect_source(warmed, CompileSource::kWarmStart) ||
          !expect_source(reference, CompileSource::kMiss)) {
        continue;
      }
      warm.record(warmed.wall_seconds);
      cold.record(reference.wall_seconds);
      // Equal-or-better cost: the warm anneal seeds from the cached
      // placement and never records a worse state than its seed.
      if (warmed.result->placement.cost.value >
          reference.result->placement.cost.value + 1e-9) {
        std::cout << near_miss.id << ": warm cost "
                  << warmed.result->placement.cost.value
                  << " WORSE than cold "
                  << reference.result->placement.cost.value << '\n';
        shape_ok = false;
      }
    }
  }

  // Portfolio warm-start seam: a structure-matched warm start seeds
  // replica 0 of the portfolio only (replicas 1..N-1 keep their fresh
  // split-seeded chains), so the cached placement's cost bounds the warm
  // incumbent from above and a warm-started portfolio compile must land
  // at equal-or-better cost than the same request compiled cold.
  {
    CompileRequest request;
    request.assay = bases.front();
    request.id = request.assay.name + "-portfolio";
    request.options = bench_options(smoke);
    request.options.placer = "portfolio";
    // Fixed replica count: the result is a function of (seed, N, K), so
    // the shape check is reproducible on any machine.
    request.options.placer_context.portfolio.replicas = 2;

    CompileService portfolio_service;
    const CompileResponse base_compile = portfolio_service.compile(request);
    CompileRequest near_miss = request;
    near_miss.assay = perturbed(bases.front(), 0);
    near_miss.assay.name += "-portfolio";
    near_miss.id = near_miss.assay.name;
    const CompileResponse warmed = portfolio_service.compile(near_miss);
    CompileRequest cold_request = near_miss;
    cold_request.use_cache = false;
    const CompileResponse reference = cold_service.compile(cold_request);
    if (expect_source(base_compile, CompileSource::kMiss) &&
        expect_source(warmed, CompileSource::kWarmStart) &&
        expect_source(reference, CompileSource::kMiss)) {
      const double warm_cost = warmed.result->placement.cost.value;
      const double cold_cost = reference.result->placement.cost.value;
      std::cout << "portfolio warm-start: warm cost " << warm_cost
                << " vs cold cost " << cold_cost << '\n';
      std::cout << "{\"bench\":\"service\",\"class\":\"portfolio-warm\","
                << "\"warm_cost\":" << warm_cost << ",\"cold_cost\":"
                << cold_cost << ",\"seed\":" << bench::kBenchSeed << "}\n";
      if (warm_cost > cold_cost + 1e-9) {
        std::cout << near_miss.id << ": warm-started portfolio cost "
                  << warm_cost << " WORSE than cold portfolio cost "
                  << cold_cost << '\n';
        shape_ok = false;
      }
    }
  }

  TextTable table("Service latency by traffic class (ms)");
  table.set_header({"class", "requests", "p50", "p99", "mean"});
  const auto add_class = [&table](const std::string& name,
                                  const ClassStats& stats) {
    table.add_row({name, std::to_string(stats.wall_ms.size()),
                   format_double(stats.percentile(0.50), 3),
                   format_double(stats.percentile(0.99), 3),
                   format_double(stats.mean(), 3)});
  };
  add_class("miss (cold)", miss);
  add_class("exact-hit", exact);
  add_class("warm-start", warm);
  add_class("cold reference", cold);
  table.print(std::cout);

  emit_class_line("miss", miss);
  emit_class_line("exact-hit", exact);
  emit_class_line("warm-start", warm);
  emit_class_line("cold-reference", cold);

  // Shape: exact hits only hash and schedule — they must sit far under
  // the cold compiles they replace.
  if (exact.percentile(0.50) * 10.0 > miss.percentile(0.50)) {
    std::cout << "exact-hit p50 " << exact.percentile(0.50)
              << " ms NOT >=10x faster than miss p50 "
              << miss.percentile(0.50) << " ms\n";
    shape_ok = false;
  }
  // Shape: the short refinement anneal must buy wall-clock, not just tie.
  if (!warm.wall_ms.empty() &&
      warm.percentile(0.50) >= cold.percentile(0.50)) {
    std::cout << "warm-start p50 " << warm.percentile(0.50)
              << " ms not faster than cold p50 " << cold.percentile(0.50)
              << " ms\n";
    shape_ok = false;
  }

  // Phase 2: the same mix as wire traffic through the server's worker
  // pool (fresh cache, so first occurrences miss and repeats hit).
  ServerOptions server_options;
  server_options.workers =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  CompileServer server(server_options);
  std::size_t cursor = 0;
  std::size_t answered = 0;
  const auto start = std::chrono::steady_clock::now();
  server.serve(
      [&](std::string& line) {
        if (cursor >= lines.size()) return false;
        line = lines[cursor++].second;
        return true;
      },
      [&](const std::string&) { ++answered; });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double rps = answered / std::max(wall, 1e-9);
  std::cout << "\nmixed replay: " << answered << " responses from "
            << lines.size() << " requests over " << server_options.workers
            << " workers in " << format_double(wall, 3) << " s ("
            << format_double(rps, 1) << " req/s)\n";
  std::cout << "{\"bench\":\"service\",\"class\":\"mixed\",\"requests\":"
            << answered << ",\"workers\":" << server_options.workers
            << ",\"wall_seconds\":" << wall
            << ",\"requests_per_second\":" << rps
            << ",\"seed\":" << bench::kBenchSeed << "}\n";
  if (answered != lines.size()) {
    std::cout << "mixed replay LOST responses\n";
    shape_ok = false;
  }

  const CacheStats stats = service.cache_stats();
  std::cout << "cache: " << stats.exact_hits << " exact hits, "
            << stats.warm_hits << " warm hits, " << stats.misses
            << " misses, " << stats.entries << " entries\n";

  std::cout << "\nshape check (hits >=10x, warm faster at <= cost): "
            << (shape_ok ? "OK" : "VIOLATED") << '\n';
  return shape_ok ? 0 : 1;
}
