// bench_fig5_fig6_schedule — regenerates Fig. 5 (the PCR sequencing graph)
// and Fig. 6 (the schedule highlighting module usage) of the paper.
// The schedule comes from our list scheduler with the paper's resource
// profile (at most two concurrent mixers, storage for waiting droplets).
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "util/svg.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Fig. 5 + Fig. 6 — PCR sequencing graph and schedule");

  const auto assay = pcr_mixing_assay();
  std::cout << "Sequencing graph '" << assay.graph.name() << "' (Fig. 5):\n";
  for (const auto& op : assay.graph.operations()) {
    std::cout << "  " << op.label << " [" << to_string(op.type);
    if (!op.reagent.empty()) std::cout << ": " << op.reagent;
    std::cout << "]";
    if (!assay.graph.successors(op.id).empty()) {
      std::cout << " ->";
      for (const auto succ : assay.graph.successors(op.id)) {
        std::cout << ' ' << assay.graph.operation(succ).label;
      }
    }
    std::cout << '\n';
  }
  std::cout << "  operations: " << assay.graph.operation_count()
            << ", longest path: " << assay.graph.longest_path_length()
            << " ops\n\n";

  const auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                             assay.scheduler_options);
  std::cout << "Schedule (Fig. 6), max 2 concurrent mixers:\n"
            << render_gantt(synth.schedule)
            << "\nmakespan: " << synth.makespan_s << " s"
            << "\npeak concurrent footprint: " << synth.peak_concurrent_cells
            << " cells\n";

  TextTable table("Module usage");
  table.set_header({"Module", "Type", "Cells", "Start", "End"});
  for (const auto& m : synth.schedule.modules()) {
    table.add_row({m.label, m.spec.name,
                   std::to_string(m.spec.footprint_cells()),
                   format_double(m.start_s, 1) + "s",
                   format_double(m.end_s, 1) + "s"});
  }
  table.print(std::cout);

  // SVG rendition of Fig. 6.
  std::vector<SvgGanttBar> bars;
  std::size_t color = 0;
  for (const auto& m : synth.schedule.modules()) {
    bars.push_back(SvgGanttBar{m.label, m.start_s, m.end_s,
                               palette_color(color++)});
  }
  std::ofstream svg("fig6_schedule.svg");
  svg << render_svg_gantt(bars);
  std::cout << "\nwrote fig6_schedule.svg\n";

  const auto violations = synth.schedule.validate_against(assay.graph);
  std::cout << "precedence check: "
            << (violations.empty() ? "OK" : violations.front()) << '\n';
  return violations.empty() ? 0 : 1;
}
