// bench_ablation_cooling — ablation A3: cooling rate alpha. The paper
// uses alpha = 0.9; this bench sweeps alpha to show the quality/runtime
// trade-off that justifies it.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Ablation A3 — cooling rate alpha");

  const auto synth = bench::synthesized_pcr();
  const std::uint64_t seeds[] = {1, 2, 3, 4, 5};

  TextTable table("Area-only SA vs cooling rate (T0 = 10^4, Na = 150)");
  table.set_header({"alpha", "mean cells", "best", "temp steps",
                    "proposals", "mean wall (ms)"});

  for (const double alpha : {0.80, 0.85, 0.90, 0.95}) {
    double total = 0.0;
    long long best = 1LL << 40;
    long long proposals = 0;
    int steps = 0;
    double wall = 0.0;
    for (const std::uint64_t seed : seeds) {
      SaPlacerOptions options = bench::paper_sa_options(seed);
      options.schedule.cooling_rate = alpha;
      options.schedule.iterations_per_module = 150;
      const auto outcome =
          place_simulated_annealing(synth.schedule, options);
      total += static_cast<double>(outcome.cost.area_cells);
      best = std::min(best, outcome.cost.area_cells);
      proposals = outcome.stats.proposals;
      steps = outcome.stats.temperature_steps;
      wall += outcome.wall_seconds * 1000.0;
    }
    const double n = static_cast<double>(std::size(seeds));
    table.add_row({format_double(alpha, 2), format_double(total / n, 1),
                   std::to_string(best), std::to_string(steps),
                   std::to_string(proposals),
                   format_double(wall / n, 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpectation: slower cooling (larger alpha) costs linearly"
               " more proposals\nfor diminishing area returns; alpha = 0.9"
               " (the paper's) is the knee.\n";
  return 0;
}
