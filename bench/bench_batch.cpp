// bench_batch — the batch fleet's headline artifact: multi-process
// scaling, kill-and-resume correctness, and cross-process cache reuse
// for dmfb_batch (service/batch.h).
//
// Builds a manifest of random assays, then:
//   1. runs it fresh with --workers 1 and --workers 4 and reports
//      items/sec per worker count. Throughput uses CRITICAL-PATH time
//      (max over workers of summed per-item compile seconds) — the
//      elapsed wall of the same run on >= N free cores — because CI
//      containers often pin this bench to one core; real wall is
//      reported alongside.
//   2. spawns a 4-worker run as a process group, SIGKILLs the whole
//      group once half the items are checkpointed, and reruns with
//      --resume. The resumed run must recompute nothing checkpointed
//      (every ledger index appears exactly once) and the deduplicated
//      results file must be line-identical to an uninterrupted run's.
//   3. repeats the batch against a shared cache file: the second pass
//      must serve every item as an exact hit.
//
// One JSON line per measurement:
//   {"bench":"batch_scaling","workers":4,"items":64,
//    "items_per_second":...,"critical_path_s":...,"wall_s":...,"seed":...}
//   {"bench":"batch_resume","items":64,"checkpointed_at_kill":...,
//    "skipped":...,"completed":...,"duplicate_lines":...,
//    "identical":true,"seed":...}
//   {"bench":"batch_cache","items":64,"exact_hits":64,"seed":...}
//
// Non-zero exit when 4 workers fail to reach 2x the 1-worker items/sec,
// when resume recomputes a checkpointed item or diverges from the
// uninterrupted results, or when the cached rerun misses. `--smoke`
// shrinks the manifest for CI.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "io/assay_format.h"
#include "io/json.h"
#include "service/batch.h"
#include "service/server.h"
#include "util/subprocess.h"

using namespace dmfb;

namespace {

/// Base compile options of every batch run — also emitted as the
/// --options handshake, so they must stay inside the wire surface.
PipelineOptions bench_base_options() {
  PipelineOptions options;
  options.seed = bench::kBenchSeed;
  options.placer_context = bench::paper_context();
  options.placer_context.annealing.initial_temperature = 1000.0;
  options.placer_context.annealing.cooling_rate = 0.8;
  options.placer_context.annealing.iterations_per_module = 60;
  return options;
}

std::filesystem::path write_manifest(int items) {
  const ModuleLibrary library = ModuleLibrary::standard();
  const std::filesystem::path path = bench::output_dir() / "batch.jsonl";
  std::ofstream out(path, std::ios::trunc);
  for (int i = 0; i < items; ++i) {
    RandomAssayParams params;
    params.mix_operations = 5 + i % 3;
    AssayCase assay =
        random_assay(params, library, bench::kBenchSeed + 1000 + i);
    assay.name = "batch-" + std::to_string(i);
    json::Value doc;
    doc.set("id", "item-" + std::to_string(i));
    doc.set("assay", assay_to_string(assay));
    out << doc.dump() << '\n';
  }
  return path;
}

std::string batch_binary() {
  if (const char* override_bin = std::getenv("DMFB_BATCH_BIN")) {
    return override_bin;
  }
  return "./dmfb_batch";
}

BatchOptions base_batch_options(const std::filesystem::path& manifest,
                                const std::filesystem::path& results,
                                int workers) {
  BatchOptions options;
  options.manifest_path = manifest.string();
  options.results_path = results.string();
  options.workers = workers;
  options.base = bench_base_options();
  options.worker_exe = batch_binary();
  return options;
}

std::set<std::string> line_set(const std::string& path) {
  const std::vector<std::string> lines = read_lines(path);
  return {lines.begin(), lines.end()};
}

void emit_scaling(int workers, int items, const BatchSummary& summary) {
  const double ips = summary.critical_path_s > 0.0
                         ? static_cast<double>(summary.completed) /
                               summary.critical_path_s
                         : 0.0;
  std::cout << "{\"bench\":\"batch_scaling\",\"workers\":" << workers
            << ",\"items\":" << items << ",\"items_per_second\":" << ips
            << ",\"critical_path_s\":" << summary.critical_path_s
            << ",\"wall_s\":" << summary.wall_s << ",\"seed\":"
            << bench::kBenchSeed << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_flag(argc, argv);
  const int items = smoke ? 16 : 64;
  bench::banner("batch fleet: multi-process scaling + kill/resume "
                "(dmfb_batch)");

  if (!std::filesystem::exists(batch_binary())) {
    std::cerr << "bench_batch: worker binary " << batch_binary()
              << " not found (run from the build directory or set "
                 "DMFB_BATCH_BIN)\n";
    return 2;
  }
  const std::filesystem::path manifest = write_manifest(items);
  const std::filesystem::path out_dir = bench::output_dir();
  bool ok = true;

  // --- 1. scaling: 1 worker vs 4 workers ------------------------------
  double reference_ips = 0.0;
  std::set<std::string> reference_lines;
  for (const int workers : {1, 4}) {
    const std::filesystem::path results =
        out_dir / ("batch_w" + std::to_string(workers) + ".jsonl");
    const BatchSummary summary =
        run_batch(base_batch_options(manifest, results, workers));
    emit_scaling(workers, items, summary);
    if (!summary.ok ||
        summary.completed != static_cast<std::size_t>(items)) {
      std::cerr << "FAIL: workers=" << workers << " run incomplete\n";
      ok = false;
      continue;
    }
    const double ips = static_cast<double>(summary.completed) /
                       summary.critical_path_s;
    if (workers == 1) {
      reference_ips = ips;
      reference_lines = line_set(results.string());
    } else if (ips < 2.0 * reference_ips) {
      std::cerr << "FAIL: workers=4 items/sec " << ips
                << " < 2x workers=1 " << reference_ips << "\n";
      ok = false;
    } else if (line_set(results.string()) != reference_lines) {
      std::cerr << "FAIL: workers=4 results differ from workers=1\n";
      ok = false;
    }
  }

  // --- 2. kill at ~50%, resume, verify --------------------------------
  {
    const std::filesystem::path results = out_dir / "batch_kill.jsonl";
    const std::string ledger = results.string() + ".ledger";
    std::filesystem::remove(results);
    std::filesystem::remove(ledger);

    Subprocess::Options spawn_options;
    spawn_options.new_process_group = true;
    // Same base options as the in-process runs (via the wire encoding),
    // or the resumed run's fingerprints would not match the ledger's.
    const std::string options_json =
        pipeline_options_to_json(bench_base_options()).dump();
    Subprocess driver = Subprocess::spawn(
        {batch_binary(), "--manifest", manifest.string(), "--results",
         results.string(), "--workers", "4", "--options", options_json},
        spawn_options);

    // Poll checkpoints; SIGKILL the whole group at half the manifest.
    std::size_t checkpointed = 0;
    for (int poll = 0; poll < 30000; ++poll) {
      checkpointed = load_ledger(ledger).size();
      if (checkpointed >= static_cast<std::size_t>(items) / 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    driver.kill(SIGKILL, /*whole_group=*/true);
    driver.wait();

    BatchOptions resume_options = base_batch_options(manifest, results, 4);
    resume_options.resume = true;
    const BatchSummary resumed = run_batch(resume_options);

    // Zero recompute: one checkpoint per item, ever. A resumed run that
    // recomputed a checkpointed item would append its index again.
    std::vector<int> checkpoint_counts(items, 0);
    bool unique = true;
    for (const LedgerEntry& entry : load_ledger(ledger)) {
      if (entry.index < static_cast<std::size_t>(items)) {
        unique &= ++checkpoint_counts[entry.index] == 1;
      }
    }
    for (const int count : checkpoint_counts) unique &= count == 1;

    const std::vector<std::string> lines = read_lines(results.string());
    const std::set<std::string> unique_lines = line_set(results.string());
    const std::size_t duplicates = lines.size() - unique_lines.size();
    const bool identical = unique_lines == reference_lines;

    std::cout << "{\"bench\":\"batch_resume\",\"items\":" << items
              << ",\"checkpointed_at_kill\":" << checkpointed
              << ",\"skipped\":" << resumed.skipped << ",\"completed\":"
              << resumed.completed << ",\"duplicate_lines\":" << duplicates
              << ",\"identical\":" << (identical ? "true" : "false")
              << ",\"seed\":" << bench::kBenchSeed << "}\n";

    if (!resumed.ok ||
        resumed.skipped + resumed.completed !=
            static_cast<std::size_t>(items)) {
      std::cerr << "FAIL: resume did not account for every item\n";
      ok = false;
    }
    if (!unique) {
      std::cerr << "FAIL: resume recomputed a checkpointed item\n";
      ok = false;
    }
    if (!identical) {
      std::cerr << "FAIL: resumed results differ from uninterrupted run\n";
      ok = false;
    }
    // Each killed worker can leave at most one result line without its
    // checkpoint (the crash window between the two appends).
    if (duplicates > 4) {
      std::cerr << "FAIL: " << duplicates << " duplicate result lines\n";
      ok = false;
    }
  }

  // --- 3. shared cache: second pass must be all exact hits ------------
  {
    const std::filesystem::path cache = out_dir / "batch_cache.txt";
    std::filesystem::remove(cache);
    for (const int pass : {0, 1}) {
      const std::filesystem::path results =
          out_dir / ("batch_cached" + std::to_string(pass) + ".jsonl");
      BatchOptions options = base_batch_options(manifest, results, 2);
      options.cache_path = cache.string();
      const BatchSummary summary = run_batch(options);
      if (pass == 1) {
        std::cout << "{\"bench\":\"batch_cache\",\"items\":" << items
                  << ",\"exact_hits\":" << summary.exact_hits
                  << ",\"critical_path_s\":" << summary.critical_path_s
                  << ",\"seed\":" << bench::kBenchSeed << "}\n";
        if (summary.exact_hits != static_cast<std::size_t>(items)) {
          std::cerr << "FAIL: cached rerun compiled "
                    << (items - summary.exact_hits) << " items\n";
          ok = false;
        }
        if (line_set(results.string()) != reference_lines) {
          std::cerr << "FAIL: cache-served results differ\n";
          ok = false;
        }
      }
      if (!summary.ok) {
        std::cerr << "FAIL: cached pass " << pass << " incomplete\n";
        ok = false;
      }
    }
  }

  std::cout << (ok ? "batch fleet OK\n" : "batch fleet FAILED\n");
  return ok ? 0 : 1;
}
