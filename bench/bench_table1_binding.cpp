// bench_table1_binding — regenerates Table 1 of the paper: the resource
// binding for the PCR mixing stage (module type, cell footprint, mixing
// time per operation M1..M7), plus the geometry constants.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Table 1 — Resource binding in PCR");

  const auto graph = pcr_mixing_graph();
  const auto binding = pcr_table1_binding(graph);

  TextTable table("Resource binding in PCR (electrode pitch 1.5 mm, gap height 600 um)");
  table.set_header({"Operation", "Hardware", "Module (cells)", "Mixing time"});
  for (const auto& op : graph.operations()) {
    const auto it = binding.find(op.id);
    if (it == binding.end()) continue;
    const ModuleSpec& spec = it->second;
    const std::string hardware =
        std::to_string(spec.functional_width) + "x" +
        std::to_string(spec.functional_height) + " electrode array";
    const std::string module_cells =
        std::to_string(spec.footprint_width()) + "x" +
        std::to_string(spec.footprint_height()) + " cells";
    table.add_row({op.label, hardware, module_cells,
                   format_double(spec.duration_s, 0) + "s"});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference rows (Table 1):\n"
               "  M1 2x2 array -> 4x4 cells, 10s   M2 linear-4 -> 3x6, 5s\n"
               "  M3 2x3 array -> 4x5 cells,  6s   M4 linear-4 -> 3x6, 5s\n"
               "  M5 linear-4  -> 3x6 cells,  5s   M6 2x2 array -> 4x4, 10s\n"
               "  M7 2x4 array -> 4x6 cells,  3s\n";
  return 0;
}
