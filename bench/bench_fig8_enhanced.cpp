// bench_fig8_enhanced — regenerates §6.2 + Fig. 8 of the paper: the
// two-stage (SA + low-temperature SA) fault-aware placement at beta = 30.
// Paper result: 77 cells (173.25 mm^2), FTI 0.8052 — a 534% FTI gain for
// a 22.2% area increase over the area-only placement.
#include <iostream>

#include "bench_common.h"
#include "core/fti.h"
#include "core/reconfig.h"
#include "sim/recovery.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Fig. 8 — enhanced (two-stage) fault-aware placement, beta=30");

  const auto synth = bench::synthesized_pcr();
  const TwoStageOptions options = bench::paper_two_stage_options(30.0);
  const auto outcome = place_two_stage(synth.schedule, options);

  const FtiResult fti1 = evaluate_fti(outcome.stage1.placement);
  const FtiResult fti2 = evaluate_fti(outcome.stage2.placement);

  TextTable table("Two-stage placement (alpha=1, beta=30)");
  table.set_header({"Stage", "Cells", "Area (mm^2)", "FTI", "Paper"});
  table.add_row({"1: area-only SA",
                 std::to_string(outcome.stage1.cost.area_cells),
                 format_mm2(outcome.stage1.cost.area_mm2()),
                 format_double(fti1.fti(), 4),
                 "63 cells / 141.75 mm^2 / FTI 0.1270"});
  table.add_row({"2: LTSA refine",
                 std::to_string(outcome.stage2.cost.area_cells),
                 format_mm2(outcome.stage2.cost.area_mm2()),
                 format_double(fti2.fti(), 4),
                 "77 cells / 173.25 mm^2 / FTI 0.8052"});
  table.print(std::cout);

  const double fti_gain =
      fti1.fti() > 0.0
          ? 100.0 * (fti2.fti() - fti1.fti()) / fti1.fti()
          : 0.0;
  const double area_increase =
      100.0 * (static_cast<double>(outcome.stage2.cost.area_cells) /
                   outcome.stage1.cost.area_cells -
               1.0);
  std::cout << "\nFTI increase: " << format_double(fti_gain, 1)
            << "% (paper: 534%)\n"
            << "area increase: " << format_double(area_increase, 1)
            << "% (paper: 22.2%)\n"
            << "stage-1 wall: " << format_double(outcome.stage1.wall_seconds, 2)
            << " s, stage-2 wall: "
            << format_double(outcome.stage2.wall_seconds, 2)
            << " s (paper: 20 min total on a 1.0 GHz Pentium-III)\n\n"
            << "Enhanced placement by time slice (Fig. 8 analogue):\n"
            << outcome.stage2.placement.render();

  // Cross-check the FTI against the real reconfiguration engine.
  const Rect array = outcome.stage2.placement.bounding_box();
  const Reconfigurator reconfig;
  const auto campaign =
      exhaustive_fault_campaign(outcome.stage2.placement, array, reconfig);
  std::cout << "exhaustive single-fault campaign: "
            << campaign.survivable_cells << "/" << campaign.total_cells
            << " cells survivable ("
            << format_double(campaign.survivable_fraction(), 4) << ")\n"
            << "FTI evaluator agreement: "
            << (campaign.survivable_cells == fti2.covered_cells ? "EXACT"
                                                                 : "MISMATCH")
            << '\n';

  const auto svg_dir =
      bench::write_placement_svgs(outcome.stage2.placement, "fig8");
  std::cout << "wrote " << (svg_dir / "fig8_slice*.svg").string() << "\n";

  const bool sane = outcome.stage2.placement.feasible() &&
                    fti2.fti() > fti1.fti() &&
                    campaign.survivable_cells == fti2.covered_cells;
  std::cout << "shape check (FTI improved, campaign == FTI): "
            << (sane ? "OK" : "VIOLATED") << '\n';
  return sane ? 0 : 1;
}
