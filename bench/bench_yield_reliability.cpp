// bench_yield_reliability — extension experiment: from FTI to reliability.
// §5.2 of the paper: "the failure model can be easily updated when
// statistical failure data becomes available". This bench performs that
// update for a sweep of per-cell failure probabilities and compares the
// area-only placement (Fig. 7) against the fault-aware one (Fig. 8):
// analytic at-most-one-fault survival plus Monte Carlo with multi-fault
// defect maps and the real reconfiguration engine in the loop.
#include <iostream>

#include "bench_common.h"
#include "core/fti.h"
#include "sim/reliability.h"
#include "util/csv.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner(
      "Extension — assay survival vs per-cell failure probability");

  const auto synth = bench::synthesized_pcr();

  const auto area_only =
      place_simulated_annealing(synth.schedule, bench::paper_sa_options());
  const auto enhanced =
      place_two_stage(synth.schedule, bench::paper_two_stage_options(40.0));

  struct Candidate {
    const char* name;
    const Placement* placement;
  };
  const Candidate candidates[] = {
      {"area-only (Fig. 7)", &area_only.placement},
      {"fault-aware (Fig. 8)", &enhanced.stage2.placement},
  };

  for (const auto& candidate : candidates) {
    const Rect array = candidate.placement->bounding_box();
    std::cout << '\n'
              << candidate.name << ": " << array.width << "x" << array.height
              << " cells, FTI "
              << format_double(
                     evaluate_fti(*candidate.placement, {}, array).fti(), 4)
              << '\n';

    TextTable table("Survival probability");
    table.set_header({"p(cell fails)", "analytic (<=1 fault)",
                      "Monte Carlo (multi-fault)", "mean faults/trial"});
    std::cout << "csv: placement,p,analytic,monte_carlo\n";
    for (const double p : {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02}) {
      const auto analytic =
          single_fault_reliability(*candidate.placement, array, p);
      Rng rng(bench::kBenchSeed ^ static_cast<std::uint64_t>(p * 1e6));
      const auto mc = monte_carlo_reliability(*candidate.placement, array, p,
                                              600, rng);
      table.add_row({format_double(p, 4),
                     format_double(analytic.survival_probability(), 4),
                     format_double(mc.survival_probability(), 4),
                     format_double(mc.mean_faults_per_trial, 2)});
      write_csv_row(std::cout,
                    {candidate.name, format_double(p, 4),
                     format_double(analytic.survival_probability(), 4),
                     format_double(mc.survival_probability(), 4)});
    }
    table.print(std::cout);
  }

  std::cout << "\nexpected shape: the fault-aware placement dominates the\n"
               "area-only one at every failure probability, and the gap\n"
               "widens as p grows until multi-fault effects cap both.\n";
  return 0;
}
