// bench_recovery — gates on the online fault-recovery stack
// (sim/recovery.h + EventSimEngine::run_online): checkpointed resume
// must beat a from-scratch rerun, the completed prefix must be
// bit-identical, and fault campaigns must agree with the Fault
// Tolerance Index.
//
// Three measurements, each one JSON line:
//
//   recovery_resume    a 200+-module random assay is failed by a fault
//                      injected during its last-started module (the
//                      latest a concurrent-testing detection can fire);
//                      the run resumes from the captured SimCheckpoint
//                      on a retimed schedule and the residual wall time
//                      is compared against re-running from t = 0.
//                      Gates: the checkpoint's completed-prefix events
//                      are bit-identical to the uninterrupted run's and
//                      resume is >= 2x faster than the rerun.
//   recovery_ladder    the same late fault driven end-to-end through
//                      OnlineRecoveryEngine (detect -> escalate ->
//                      resume). Gate: the fault fires, is detected, and
//                      the assay still completes.
//   recovery_campaign  the paper's PCR placement under (a) a small
//                      exhaustive single-fault campaign — empirical
//                      survivability must equal evaluate_fti() cell for
//                      cell — and (b) seeded mid-run single-fault plans
//                      through the reconfigure-only ladder, whose
//                      outcome must match the FTI's covered/uncovered
//                      prediction for every sampled cell.
//
// `--smoke` shrinks repetition and sample counts (CI Release job). Any
// gate failure exits non-zero.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "core/fti.h"
#include "core/greedy_placer.h"
#include "core/reconfig.h"
#include "sim/fault.h"
#include "sim/recovery.h"
#include "sim/sim_engine.h"

namespace {

using namespace dmfb;

struct Scenario {
  SequencingGraph graph;
  Schedule schedule;
  Placement placement;
  int chip_size = 0;
};

/// bench_perf_sim's random200: a seeded assay with 200+ scheduled
/// modules on a 32x32 greedy placement.
Scenario make_random200() {
  const auto lib = ModuleLibrary::standard();
  RandomAssayParams params;
  params.mix_operations = 200;
  params.max_layer_width = 6;
  params.max_concurrent_modules = 6;
  const AssayCase assay = random_assay(params, lib, bench::kBenchSeed);
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, 32, 32);
  return Scenario{assay.graph, std::move(synth.schedule),
                  std::move(placement), 32};
}

Scenario make_pcr() {
  const AssayCase assay = pcr_mixing_assay();
  auto synth = synthesize_with_binding(assay.graph, assay.binding,
                                       assay.scheduler_options);
  Placement placement = place_greedy(synth.schedule, 16, 16);
  return Scenario{assay.graph, std::move(synth.schedule),
                  std::move(placement), 16};
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The module whose start event is dispatched last — a fault during its
/// run rolls back the *tail* of the event log, so the checkpoint's
/// event list is a strict prefix of the uninterrupted run's.
int last_started_module(const Schedule& schedule) {
  int victim = -1;
  for (int i = 0; i < schedule.module_count(); ++i) {
    const ScheduledModule& sm = schedule.module(i);
    if (sm.end_s <= sm.start_s) continue;
    if (victim < 0 || sm.start_s > schedule.module(victim).start_s) {
      victim = i;
    }
  }
  return victim;
}

bool prefix_identical(const SimulationResult& clean,
                      const SimulationResult& resumed, std::size_t prefix) {
  if (clean.events.size() < prefix || resumed.events.size() < prefix) {
    return false;
  }
  for (std::size_t i = 0; i < prefix; ++i) {
    if (clean.events[i].time_s != resumed.events[i].time_s ||
        clean.events[i].what != resumed.events[i].what) {
      return false;
    }
  }
  return true;
}

// --- 1. resume vs rerun + prefix bit-identity -------------------------

bool run_resume_gate(const Scenario& scenario, bool smoke) {
  bool ok = true;
  const Chip chip(scenario.chip_size, scenario.chip_size);
  EventSimEngine engine;  // record_events=true: the identity audit needs it

  const SimEngineRun clean = engine.run_online(
      scenario.graph, scenario.schedule, scenario.placement, chip, {});
  if (!clean.result.success) {
    std::cerr << "FAIL: clean random200 run failed: "
              << clean.result.failure_reason << "\n";
    return false;
  }
  if (scenario.schedule.module_count() < 200) {
    std::cerr << "FAIL: random200 scenario has only "
              << scenario.schedule.module_count() << " modules\n";
    ok = false;
  }

  const int victim = last_started_module(scenario.schedule);
  const ScheduledModule& vm = scenario.schedule.module(victim);
  const Rect site = scenario.placement.module(victim).footprint();
  // Inject just after the victim's start event: the roll-back then
  // removes exactly the log tail (no event lands between the start and
  // the detection), which is what makes the checkpoint a clean prefix.
  FaultInjectionPlan plan;
  plan.faults.push_back(PlannedFault{
      Point{site.x + site.width / 2, site.y + site.height / 2},
      vm.start_s + 1e-9, -1});

  SimCheckpoint ckpt;
  const SimEngineRun failed =
      engine.run_online(scenario.graph, scenario.schedule,
                        scenario.placement, chip, plan, nullptr, &ckpt);
  if (failed.result.success || !ckpt.valid ||
      failed.faults_fired.size() != 1) {
    std::cerr << "FAIL: late fault did not fail the run "
              << "(checkpoint valid=" << ckpt.valid << ")\n";
    return false;
  }
  if (ckpt.time_s < 0.5 * clean.result.makespan_s) {
    std::cerr << "FAIL: fault fired at " << ckpt.time_s
              << "s — not a late-run fault (makespan "
              << clean.result.makespan_s << "s)\n";
    ok = false;
  }

  // The repaired schedule a recovery rung would resume on: the
  // interrupted operation re-runs from the detection instant (the fault
  // is treated as transient here — the ladder's actual repair rungs are
  // exercised by the recovery_ladder row; this row times the
  // checkpoint/resume machinery itself).
  Schedule resumed_schedule = scenario.schedule;
  const double delta = ckpt.time_s - vm.start_s;
  if (delta > 0.0) {
    resumed_schedule.shift_from(vm.end_s, delta);
    resumed_schedule.retime(victim, ckpt.time_s,
                            ckpt.time_s + (vm.end_s - vm.start_s));
  }

  const SimEngineRun resumed =
      engine.run_online(scenario.graph, resumed_schedule,
                        scenario.placement, chip, {}, &ckpt);
  if (!resumed.result.success) {
    std::cerr << "FAIL: resumed run failed: "
              << resumed.result.failure_reason << "\n";
    return false;
  }
  const std::size_t prefix = ckpt.events.size();
  const bool identical =
      prefix_identical(clean.result, resumed.result, prefix);
  if (!identical) {
    std::cerr << "FAIL: completed-prefix events (" << prefix
              << ") are not bit-identical to the uninterrupted run\n";
    ok = false;
  }

  // Wall-clock: resume (residual tail only) vs rerun from t = 0.
  const int reps = smoke ? 5 : 25;
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    const auto run = engine.run_online(scenario.graph, scenario.schedule,
                                       scenario.placement, chip, {});
    if (!run.result.success) ok = false;
  }
  const double rerun_wall = seconds_since(start) / reps;
  start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    const auto run = engine.run_online(scenario.graph, resumed_schedule,
                                       scenario.placement, chip, {}, &ckpt);
    if (!run.result.success) ok = false;
  }
  const double resume_wall = seconds_since(start) / reps;
  const double speedup =
      resume_wall > 0.0 ? rerun_wall / resume_wall : 0.0;

  std::cout << "{\"bench\":\"recovery_resume\",\"modules\":"
            << scenario.schedule.module_count()
            << ",\"fault_time_s\":" << ckpt.time_s
            << ",\"makespan_s\":" << clean.result.makespan_s
            << ",\"prefix_events\":" << prefix
            << ",\"identical_prefix\":" << (identical ? "true" : "false")
            << ",\"rerun_wall_s\":" << rerun_wall
            << ",\"resume_wall_s\":" << resume_wall
            << ",\"speedup\":" << speedup
            << ",\"seed\":" << bench::kBenchSeed << "}\n";
  if (speedup < 2.0) {
    std::cerr << "FAIL: resume speedup " << speedup
              << "x is below the 2x floor\n";
    ok = false;
  }
  return ok;
}

// --- 2. the escalation ladder end-to-end ------------------------------

bool run_ladder_gate(const Scenario& scenario) {
  const int victim = last_started_module(scenario.schedule);
  const ScheduledModule& vm = scenario.schedule.module(victim);
  const Rect site = scenario.placement.module(victim).footprint();
  FaultInjectionPlan plan;
  plan.faults.push_back(PlannedFault{
      Point{site.x + site.width / 2, site.y + site.height / 2},
      0.5 * (vm.start_s + vm.end_s), -1});

  RecoveryOptions options;
  // Short annealing for the replace rung so a ladder that escalates all
  // the way stays inside the bench budget.
  options.replace_context.annealing.initial_temperature = 1000.0;
  options.replace_context.annealing.cooling_rate = 0.8;
  options.replace_context.annealing.iterations_per_module = 60;
  const OnlineRecoveryEngine engine(options);
  const auto start = std::chrono::steady_clock::now();
  const OnlineRunResult out = engine.run(
      scenario.graph, scenario.schedule, scenario.placement,
      Rect{0, 0, scenario.chip_size, scenario.chip_size}, plan);
  const double wall = seconds_since(start);

  std::string ladder;
  for (const RecoveryAttempt& attempt : out.recovery.attempts) {
    if (!ladder.empty()) ladder += ">";
    ladder += to_string(attempt.action);
  }
  std::cout << "{\"bench\":\"recovery_ladder\",\"modules\":"
            << scenario.schedule.module_count()
            << ",\"faults\":" << out.recovery.faults_injected
            << ",\"cycles\":" << out.recovery.recovery_cycles
            << ",\"attempts\":\"" << ladder << "\""
            << ",\"recovered\":" << (out.recovery.recovered ? "true" : "false")
            << ",\"completed\":" << (out.recovery.completed ? "true" : "false")
            << ",\"time_lost_s\":" << out.recovery.time_lost_s
            << ",\"resumed_from_s\":" << out.recovery.resumed_from_s
            << ",\"wall_s\":" << wall
            << ",\"seed\":" << bench::kBenchSeed << "}\n";
  if (out.recovery.faults_injected != 1 || !out.recovery.completed) {
    std::cerr << "FAIL: ladder did not complete the faulted run: "
              << out.recovery.detail << "\n";
    return false;
  }
  return true;
}

// --- 3. campaigns vs the Fault Tolerance Index ------------------------

bool run_campaign_gate(bool smoke) {
  bool ok = true;
  const Scenario pcr = make_pcr();
  const Rect array = pcr.placement.bounding_box();
  const FtiResult fti = evaluate_fti(pcr.placement, {}, array);

  // (a) exhaustive: empirical survivability == the FTI, cell for cell.
  const Reconfigurator reconfig;
  const auto campaign =
      exhaustive_fault_campaign(pcr.placement, array, reconfig);
  const bool exhaustive_ok =
      campaign.total_cells == fti.total_cells &&
      campaign.survivable_cells == fti.covered_cells;
  std::cout << "{\"bench\":\"recovery_campaign\",\"mode\":\"exhaustive\""
            << ",\"cells\":" << campaign.total_cells
            << ",\"survivable_fraction\":" << campaign.survivable_fraction()
            << ",\"fti\":" << fti.fti()
            << ",\"agrees\":" << (exhaustive_ok ? "true" : "false")
            << ",\"seed\":" << bench::kBenchSeed << "}\n";
  if (!exhaustive_ok) {
    std::cerr << "FAIL: exhaustive campaign survivable fraction "
              << campaign.survivable_fraction() << " != FTI " << fti.fti()
              << "\n";
    ok = false;
  }

  // (b) seeded mid-run faults through the reconfigure-only ladder: the
  // online outcome must match the FTI's per-cell prediction.
  RecoveryOptions options;
  options.enable_reroute = false;
  options.enable_replace = false;
  const OnlineRecoveryEngine engine(options);
  Rng rng(bench::kBenchSeed);
  const int target = smoke ? 6 : 16;
  int checked = 0;
  int agreed = 0;
  for (int trial = 0; trial < 20 * target && checked < target; ++trial) {
    const Point cell = sample_uniform_fault(array, rng);
    int owner = -1;
    for (int i = 0; i < pcr.placement.module_count(); ++i) {
      if (pcr.placement.module(i).footprint().contains(cell) &&
          pcr.schedule.module(i).end_s > pcr.schedule.module(i).start_s) {
        owner = i;
        break;
      }
    }
    if (owner < 0) continue;
    ++checked;
    const ScheduledModule& sm = pcr.schedule.module(owner);
    FaultInjectionPlan plan;
    plan.faults.push_back(
        PlannedFault{cell, 0.5 * (sm.start_s + sm.end_s), -1});
    const auto out =
        engine.run(pcr.graph, pcr.schedule, pcr.placement, array, plan);
    const bool covered =
        fti.covered.at(cell.x - array.x, cell.y - array.y) != 0;
    if (out.recovery.recovered == covered) {
      ++agreed;
    } else {
      std::cerr << "FAIL: seeded fault (" << cell.x << "," << cell.y
                << "): online recovered=" << out.recovery.recovered
                << " but FTI covered=" << covered << "\n";
      ok = false;
    }
  }
  std::cout << "{\"bench\":\"recovery_campaign\",\"mode\":\"seeded\""
            << ",\"checked\":" << checked << ",\"agreed\":" << agreed
            << ",\"seed\":" << bench::kBenchSeed << "}\n";
  if (checked == 0) {
    std::cerr << "FAIL: seeded campaign sampled no module-owned cells\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = dmfb::bench::smoke_flag(argc, argv);
  dmfb::bench::banner(
      smoke ? "recovery: checkpointed resume + fault campaigns (smoke)"
            : "recovery: checkpointed resume + fault campaigns");
  const Scenario random200 = make_random200();
  bool ok = true;
  if (!run_resume_gate(random200, smoke)) ok = false;
  if (!run_ladder_gate(random200)) ok = false;
  if (!run_campaign_gate(smoke)) ok = false;
  return ok ? 0 : 1;
}
