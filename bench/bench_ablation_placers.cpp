// bench_ablation_placers — placer shoot-out. The paper argues annealing
// over DRFPGA-style online template placement ([11], Bazargan et al.) and
// a greedy baseline (§6.1); this bench puts all of them side by side:
//   * greedy bottom-left (the paper's baseline),
//   * KAMER-style online best-fit over maximal empty rectangles,
//   * simulated annealing (the paper's method),
//   * exact branch-and-bound (ground truth, small instances only).
#include <iostream>

#include "bench_common.h"
#include "core/fti.h"
#include "core/greedy_placer.h"
#include "core/kamer_placer.h"
#include "core/optimal_placer.h"
#include "util/table.h"

using namespace dmfb;

namespace {

/// A reduced PCR instance (first stage of the mix tree) small enough for
/// the exact search.
Schedule small_instance() {
  const auto full = bench::synthesized_pcr().schedule;
  Schedule reduced;
  for (const auto& m : full.modules()) {
    if (m.label == "M1" || m.label == "M2" || m.label == "M3" ||
        m.label == "M4" || m.label == "S(M3)") {
      reduced.add(m);
    }
  }
  return reduced;
}

}  // namespace

int main() {
  bench::banner("Ablation A6 — greedy vs KAMER vs SA vs exact optimum");

  // Full PCR: heuristics only (10 modules is beyond exact search).
  {
    const auto synth = bench::synthesized_pcr();
    TextTable table("Full PCR mixing stage (10 modules incl. storage)");
    table.set_header({"placer", "cells", "area (mm^2)", "FTI"});

    const Placement greedy = place_greedy(synth.schedule, 24, 24);
    table.add_row({"greedy bottom-left",
                   std::to_string(greedy.bounding_box_cells()),
                   format_mm2(greedy.bounding_box_cells() *
                              kPaperCellAreaMm2),
                   format_double(evaluate_fti(greedy).fti(), 4)});

    const auto kamer = smallest_kamer_array(synth.schedule, 24);
    if (kamer) {
      table.add_row({"KAMER online best-fit",
                     std::to_string(kamer->placement.bounding_box_cells()),
                     format_mm2(kamer->placement.bounding_box_cells() *
                                kPaperCellAreaMm2),
                     format_double(evaluate_fti(kamer->placement).fti(), 4)});
    }

    const auto sa = place_simulated_annealing(synth.schedule,
                                              bench::paper_sa_options());
    table.add_row({"simulated annealing (paper)",
                   std::to_string(sa.cost.area_cells),
                   format_mm2(sa.cost.area_mm2()),
                   format_double(evaluate_fti(sa.placement).fti(), 4)});
    table.print(std::cout);
  }

  // Reduced instance: the exact optimum is computable, giving the SA
  // optimality gap.
  {
    const Schedule schedule = small_instance();
    TextTable table("\nReduced instance (M1..M4 + storage, exact optimum known)");
    table.set_header({"placer", "cells", "gap vs optimum"});

    const auto optimal = place_optimal(schedule);
    const Placement greedy = place_greedy(schedule, 24, 24);
    SaPlacerOptions sa_options = bench::paper_sa_options();
    const auto sa = place_simulated_annealing(schedule, sa_options);
    const auto kamer = smallest_kamer_array(schedule, 24);

    auto gap = [&](long long cells) {
      return format_double(
                 100.0 * (static_cast<double>(cells) / optimal.area_cells -
                          1.0),
                 1) +
             "%";
    };
    table.add_row({"exact branch-and-bound",
                   std::to_string(optimal.area_cells), "0.0%"});
    table.add_row({"simulated annealing (paper)",
                   std::to_string(sa.cost.area_cells),
                   gap(sa.cost.area_cells)});
    table.add_row({"greedy bottom-left",
                   std::to_string(greedy.bounding_box_cells()),
                   gap(greedy.bounding_box_cells())});
    if (kamer) {
      table.add_row({"KAMER online best-fit",
                     std::to_string(kamer->placement.bounding_box_cells()),
                     gap(kamer->placement.bounding_box_cells())});
    }
    table.print(std::cout);
    std::cout << "\nexact search visited " << optimal.nodes_visited
              << " nodes\n";

    const bool sane = sa.cost.area_cells >= optimal.area_cells;
    std::cout << "shape check (SA >= optimum): " << (sane ? "OK" : "VIOLATED")
              << '\n';
    if (!sane) return 1;
  }
  return 0;
}
