// bench_ablation_placers — placer shoot-out. The paper argues annealing
// over DRFPGA-style online template placement ([11], Bazargan et al.) and
// a greedy baseline (§6.1); this bench puts every placer registered in the
// PlacerRegistry side by side:
//   * greedy bottom-left (the paper's baseline),
//   * KAMER-style online best-fit over maximal empty rectangles,
//   * simulated annealing (the paper's method),
//   * two-stage fault-aware annealing,
//   * exact branch-and-bound (ground truth, small instances only).
#include <iostream>

#include "bench_common.h"
#include "core/fti.h"
#include "util/table.h"

using namespace dmfb;

namespace {

/// A reduced PCR instance (first stage of the mix tree) small enough for
/// the exact search.
Schedule small_instance(const Schedule& full) {
  Schedule reduced;
  for (const auto& m : full.modules()) {
    if (m.label == "M1" || m.label == "M2" || m.label == "M3" ||
        m.label == "M4" || m.label == "S(M3)") {
      reduced.add(m);
    }
  }
  return reduced;
}

}  // namespace

int main() {
  bench::banner("Ablation A6 — every registered placer, side by side");

  const Schedule full = bench::pcr_via_pipeline().schedule;
  const PlacerContext context = bench::paper_context();

  // Full PCR: heuristics only (10 modules is beyond exact search).
  {
    TextTable table("Full PCR mixing stage (10 modules incl. storage)");
    table.set_header({"placer", "cells", "area (mm^2)", "FTI"});
    for (const auto& name : registered_placers()) {
      if (name == "optimal") continue;  // instance too large for exact search
      try {
        const PlacementOutcome outcome =
            make_placer(name)->place(full, context);
        table.add_row({name, std::to_string(outcome.cost.area_cells),
                       format_mm2(outcome.cost.area_mm2()),
                       format_double(evaluate_fti(outcome.placement).fti(),
                                     4)});
        bench::emit_json_line("ablation_placers_full", name,
                              static_cast<double>(outcome.cost.area_cells),
                              outcome.wall_seconds);
      } catch (const std::exception& e) {
        // An infeasible backend costs its row, not the whole shoot-out.
        table.add_row({name, "failed", e.what(), "-"});
      }
    }
    table.print(std::cout);
  }

  // Reduced instance: the exact optimum is computable, giving each
  // heuristic's optimality gap.
  {
    const Schedule schedule = small_instance(full);
    TextTable table(
        "\nReduced instance (M1..M4 + storage, exact optimum known)");
    table.set_header({"placer", "cells", "gap vs optimum"});

    const PlacementOutcome optimal =
        make_placer("optimal")->place(schedule, context);
    auto gap = [&](long long cells) {
      return format_double(
                 100.0 * (static_cast<double>(cells) /
                              optimal.cost.area_cells -
                          1.0),
                 1) +
             "%";
    };

    long long sa_cells = 0;
    for (const auto& name : registered_placers()) {
      try {
        const PlacementOutcome outcome =
            name == "optimal" ? optimal
                              : make_placer(name)->place(schedule, context);
        if (name == "sa") sa_cells = outcome.cost.area_cells;
        table.add_row({name, std::to_string(outcome.cost.area_cells),
                       gap(outcome.cost.area_cells)});
        bench::emit_json_line("ablation_placers_reduced", name,
                              static_cast<double>(outcome.cost.area_cells),
                              outcome.wall_seconds);
      } catch (const std::exception& e) {
        table.add_row({name, "failed", e.what()});
      }
    }
    table.print(std::cout);

    const bool sane = sa_cells >= optimal.cost.area_cells;
    std::cout << "shape check (SA >= optimum): " << (sane ? "OK" : "VIOLATED")
              << '\n';
    if (!sane) return 1;
  }
  return 0;
}
