// bench_closed_loop — the closed synthesis loop's headline artifact:
// transport-inclusive makespan per feedback round on deadline-constrained
// assays. Round 0 is the classic feed-forward flow (schedule -> place ->
// route); rounds >= 1 fold the previous round's measured route costs back
// into the placement objective (routing-pressure weight gamma) and
// re-place/re-route. The pipeline keeps the best round, so the selected
// result must be no worse than round 0 — the bench exits non-zero when
// that shape is violated (or when a scenario produces no rounds at all).
//
// One JSON line per (scenario, round):
//   {"bench":"closed_loop","scenario":...,"round":...,"routed":...,
//    "transport_makespan_s":...,"placement_cost":...,"selected":...}
//
// `--smoke` trims the scenario set and rounds for CI.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "assay/random_assay.h"
#include "util/table.h"

using namespace dmfb;

namespace {

struct Scenario {
  std::string name;
  AssayCase assay;
  int canvas = 24;
  int step_horizon = 0;  ///< tight = a changeover actuation deadline
};

std::vector<Scenario> make_scenarios(bool smoke) {
  const ModuleLibrary library = ModuleLibrary::standard();
  std::vector<Scenario> scenarios;
  scenarios.push_back(Scenario{"pcr/deadline", pcr_mixing_assay(), 16, 12});
  scenarios.push_back(
      Scenario{"perm4/deadline", permutation_assay(4, 2, library, 11), 18,
               10});
  if (!smoke) {
    scenarios.push_back(
        Scenario{"perm5/deadline", permutation_assay(5, 2, library, 23), 18,
                 12});
    StressAssayParams corridor;
    scenarios.push_back(Scenario{
        "corridor/deadline", corridor_assay(corridor, library, 42), 20, 12});
  }
  return scenarios;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_flag(argc, argv);
  bench::banner("Closed loop — routing-aware placement feedback rounds");

  const int rounds = smoke ? 2 : 3;
  const auto scenarios = make_scenarios(smoke);
  std::cout << scenarios.size() << " deadline-constrained scenarios, "
            << rounds << " feedback rounds, gamma = 0.05\n";

  TextTable table("Transport-inclusive makespan (s) per feedback round");
  table.set_header({"scenario", "round", "routed", "makespan (s)",
                    "transport-incl (s)", "cost", "selected"});
  // Per-stage CostStatistic telemetry (count/min/avg/max wall time across
  // every time the stage ran, feedback re-runs included), collected by
  // the pipeline's stage observer.
  TextTable stage_table("Per-stage wall time across rounds (ms)");
  stage_table.set_header(
      {"scenario", "stage", "count", "min", "avg", "max"});
  const PipelineStage all_stages[] = {
      PipelineStage::kBind, PipelineStage::kSchedule, PipelineStage::kPlace,
      PipelineStage::kRoute, PipelineStage::kSimulate};

  bool shape_ok = true;
  for (const auto& scenario : scenarios) {
    StageStatsCollector stage_stats;
    PipelineOptions options;
    options.seed = bench::kBenchSeed;
    options.placer_context = bench::paper_context();
    options.placer_context.canvas_width = scenario.canvas;
    options.placer_context.canvas_height = scenario.canvas;
    // Short anneals: the loop structure is the subject, not anneal depth.
    options.placer_context.annealing.initial_temperature = 1000.0;
    options.placer_context.annealing.cooling_rate = 0.8;
    options.placer_context.annealing.iterations_per_module = 80;
    options.placer_context.weights.gamma = 0.05;
    options.feedback_rounds = rounds;
    options.routing.step_horizon = scenario.step_horizon;
    // Simulate the winning round droplet-by-droplet (event engine), so
    // the stage telemetry covers the whole flow including execution.
    options.simulate = true;
    options.observer = stage_stats.observer();

    const PipelineResult result =
        SynthesisPipeline(options).run(scenario.assay);

    for (const PipelineStage stage : all_stages) {
      const CostStatistic stat = stage_stats.statistic(stage);
      if (stat.count == 0) continue;
      stage_table.add_row({scenario.name, to_string(stage),
                           std::to_string(stat.count),
                           format_double(stat.minimum() * 1e3, 3),
                           format_double(stat.average() * 1e3, 3),
                           format_double(stat.max * 1e3, 3)});
      bench::emit_stage_stats_json_line("closed_loop", scenario.name, stage,
                                        stat);
    }

    if (result.feedback_history.empty()) {
      std::cout << scenario.name << ": NO feedback rounds recorded\n";
      shape_ok = false;
      continue;
    }
    for (const auto& round : result.feedback_history) {
      const bool selected = round.round == result.selected_round;
      table.add_row({scenario.name, std::to_string(round.round),
                     round.routed ? "yes" : "NO",
                     format_double(result.schedule.makespan_s(), 2),
                     format_double(round.transport_makespan_s, 2),
                     format_double(round.placement_cost, 1),
                     selected ? "*" : ""});
      bench::emit_closed_loop_json_line(scenario.name, round.round,
                                        round.routed,
                                        round.transport_makespan_s,
                                        round.placement_cost, selected);
    }

    // Shape: the selected round is never worse than round 0 — routed
    // plans beat unrouted ones, and among routed plans the
    // transport-inclusive makespan must not regress.
    const auto& round0 = result.feedback_history.front();
    const auto& chosen = result.feedback_history[static_cast<std::size_t>(
        result.selected_round)];
    if (round0.routed &&
        (!chosen.routed ||
         chosen.transport_makespan_s > round0.transport_makespan_s)) {
      std::cout << scenario.name << ": feedback REGRESSED past round 0\n";
      shape_ok = false;
    }
    // All-unrouted scenarios tie on makespan, so selection falls through
    // to placement cost — which must then not regress either.
    if (!round0.routed && !chosen.routed &&
        chosen.placement_cost > round0.placement_cost) {
      std::cout << scenario.name
                << ": costlier unrouted round selected over round 0\n";
      shape_ok = false;
    }
  }
  table.print(std::cout);
  stage_table.print(std::cout);

  std::cout << "\nshape check (selected round no worse than round 0): "
            << (shape_ok ? "OK" : "VIOLATED") << '\n';
  return shape_ok ? 0 : 1;
}
