// bench_ablation_two_stage — ablation A5: is the paper's two-stage
// decomposition (area-only SA, then low-temperature fault-aware
// refinement) actually better than annealing the weighted objective
// alpha*area - beta*FTI in a single full-temperature run? Single-stage
// pays the FTI evaluation on every proposal at every temperature and may
// still converge worse.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "core/fti.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Ablation A5 — two-stage (SA + LTSA) vs single-stage weighted SA");

  const auto synth = bench::synthesized_pcr();
  const double beta = 30.0;
  const std::uint64_t seeds[] = {1, 2, 3};

  TextTable table("Weighted objective (area_cells - 30*FTI), PCR");
  table.set_header({"method", "seed", "cells", "FTI", "weighted",
                    "wall (s)"});

  double two_stage_total = 0.0;
  double single_total = 0.0;
  double two_stage_wall = 0.0;
  double single_wall = 0.0;

  for (const std::uint64_t seed : seeds) {
    {
      TwoStageOptions options = bench::paper_two_stage_options(beta, seed);
      // Match the reduced effort of the single-stage run below.
      options.stage1.schedule.iterations_per_module = 150;
      options.ltsa.iterations_per_module = 150;
      const auto outcome = place_two_stage(synth.schedule, options);
      const double fti = evaluate_fti(outcome.stage2.placement).fti();
      const double weighted =
          static_cast<double>(outcome.stage2.cost.area_cells) - beta * fti;
      const double wall =
          outcome.stage1.wall_seconds + outcome.stage2.wall_seconds;
      two_stage_total += weighted;
      two_stage_wall += wall;
      table.add_row({"two-stage", std::to_string(seed),
                     std::to_string(outcome.stage2.cost.area_cells),
                     format_double(fti, 4), format_double(weighted, 2),
                     format_double(wall, 2)});
    }
    {
      SaPlacerOptions options = bench::paper_sa_options(seed);
      options.schedule.iterations_per_module = 150;
      options.weights.beta = beta;  // FTI inside the hot loop
      const auto outcome =
          place_simulated_annealing(synth.schedule, options);
      const double fti = evaluate_fti(outcome.placement).fti();
      const double weighted =
          static_cast<double>(outcome.cost.area_cells) - beta * fti;
      single_total += weighted;
      single_wall += outcome.wall_seconds;
      table.add_row({"single-stage", std::to_string(seed),
                     std::to_string(outcome.cost.area_cells),
                     format_double(fti, 4), format_double(weighted, 2),
                     format_double(outcome.wall_seconds, 2)});
    }
  }
  table.print(std::cout);

  const double n = static_cast<double>(std::size(seeds));
  std::cout << "\nmean weighted objective: two-stage "
            << format_double(two_stage_total / n, 2) << " vs single-stage "
            << format_double(single_total / n, 2)
            << "\nmean wall time: two-stage "
            << format_double(two_stage_wall / n, 2) << " s vs single-stage "
            << format_double(single_wall / n, 2) << " s\n"
            << "(lower weighted objective is better)\n";
  return 0;
}
