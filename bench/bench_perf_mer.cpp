// bench_perf_mer — microbenchmarks for the maximal-empty-rectangle
// machinery (ablation A4 + the paper's §6.2 runtime claim: FTI of the
// 7x9 placement took 1.7 s of CPU on a 2004 PC; the staircase algorithm
// is what makes it fast). Compares:
//   * staircase enumeration (the paper's algorithm),
//   * brute-force enumeration (reference),
//   * prefix-sum existence check (what the FTI evaluator uses),
//   * full FTI evaluation of the PCR placement.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/fti.h"
#include "core/greedy_placer.h"
#include "core/mer.h"
#include "util/prefix_sum.h"
#include "util/rng.h"

namespace {

using namespace dmfb;

Matrix<std::uint8_t> random_grid(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::uint8_t> grid(n, n, 0);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      grid.at(x, y) = rng.next_bool(density) ? 1 : 0;
    }
  }
  return grid;
}

void BM_MerStaircase(benchmark::State& state) {
  const auto grid = random_grid(static_cast<int>(state.range(0)), 0.3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximal_empty_rectangles(grid));
  }
}
BENCHMARK(BM_MerStaircase)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MerBruteForce(benchmark::State& state) {
  const auto grid = random_grid(static_cast<int>(state.range(0)), 0.3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximal_empty_rectangles_brute(grid));
  }
}
BENCHMARK(BM_MerBruteForce)->Arg(8)->Arg(16)->Arg(32);

void BM_PrefixSumExistence(benchmark::State& state) {
  const auto grid = random_grid(static_cast<int>(state.range(0)), 0.3, 7);
  for (auto _ : state) {
    const PrefixSum2D sums(grid);
    benchmark::DoNotOptimize(sums.fits_empty(4, 4));
  }
}
BENCHMARK(BM_PrefixSumExistence)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_FtiEvaluationPcr(benchmark::State& state) {
  const auto synth = bench::synthesized_pcr();
  const Placement placement = place_greedy(synth.schedule, 24, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_fti(placement));
  }
  state.counters["cells"] =
      static_cast<double>(placement.bounding_box_cells());
}
BENCHMARK(BM_FtiEvaluationPcr);

void BM_FtiReferencePcr(benchmark::State& state) {
  // The MER-per-cell reference — the paper's “1.7 s” style evaluation.
  const auto synth = bench::synthesized_pcr();
  const Placement placement = place_greedy(synth.schedule, 24, 24);
  const Rect region = placement.bounding_box();
  for (auto _ : state) {
    long long covered = 0;
    for (int y = region.y; y < region.top(); ++y) {
      for (int x = region.x; x < region.right(); ++x) {
        covered +=
            is_cell_covered_reference(placement, Point{x, y}, {}, region);
      }
    }
    benchmark::DoNotOptimize(covered);
  }
}
BENCHMARK(BM_FtiReferencePcr);

}  // namespace

BENCHMARK_MAIN();
