// bench_ablation_moves — ablation A1: the paper sets the single-move /
// pair-interchange ratio p/(1-p) "experimentally" but does not publish
// the value. This bench sweeps p and reports the resulting area (mean
// over seeds), justifying our default p = 0.8.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Ablation A1 — single-move probability p (generation mix)");

  const auto synth = bench::synthesized_pcr();
  const std::uint64_t seeds[] = {1, 2, 3, 4, 5};

  TextTable table("Area vs p (area-only SA, reduced schedule, 5 seeds)");
  table.set_header({"p", "mean cells", "best cells", "worst cells",
                    "mean accept %"});

  double best_mean = 1e9;
  double best_p = -1.0;
  for (const double p : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    double total = 0.0;
    long long best = 1LL << 40;
    long long worst = 0;
    double accept = 0.0;
    for (const std::uint64_t seed : seeds) {
      SaPlacerOptions options = bench::paper_sa_options(seed);
      options.schedule.initial_temperature = 2000.0;
      options.schedule.cooling_rate = 0.85;
      options.schedule.iterations_per_module = 150;
      options.moves.single_move_probability = p;
      const auto outcome =
          place_simulated_annealing(synth.schedule, options);
      total += static_cast<double>(outcome.cost.area_cells);
      best = std::min(best, outcome.cost.area_cells);
      worst = std::max(worst, outcome.cost.area_cells);
      accept += 100.0 * static_cast<double>(outcome.stats.accepted) /
                static_cast<double>(outcome.stats.proposals);
    }
    const double mean = total / std::size(seeds);
    table.add_row({format_double(p, 1), format_double(mean, 1),
                   std::to_string(best), std::to_string(worst),
                   format_double(accept / std::size(seeds), 1)});
    if (mean < best_mean) {
      best_mean = mean;
      best_p = p;
    }
  }
  table.print(std::cout);
  std::cout << "\nbest mean area at p = " << format_double(best_p, 1)
            << " (library default: 0.8)\n";
  return 0;
}
