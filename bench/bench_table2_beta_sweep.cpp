// bench_table2_beta_sweep — regenerates Table 2 of the paper: the
// area/FTI trade-off as the fault-tolerance weight beta sweeps 10..60.
// Paper rows:
//   beta  10      20      30      40      50      60
//   area  141.75  157.5   173.25  189.0   204.75  222.75  (mm^2)
//   FTI   0.2857  0.7143  0.8052  0.8571  0.9780  1.0
// Re-run against the transport-inclusive makespan: each beta's winning
// placement is routed and its changeover transport folded into the
// schedule (fold_transport), so the sweep also reports the makespan the
// chip actually needs — the paper's instantaneous-changeover makespan is
// deprecated as a chip-time estimate.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/fti.h"
#include "sim/router_backend.h"
#include "util/csv.h"
#include "util/table.h"

using namespace dmfb;

int main() {
  bench::banner("Table 2 — solutions for different values of beta");

  const auto synth = bench::synthesized_pcr();
  const auto assay = pcr_mixing_assay();
  const auto router = make_router("prioritized");

  const double paper_area[] = {141.75, 157.5, 173.25, 189.0, 204.75, 222.75};
  const double paper_fti[] = {0.2857, 0.7143, 0.8052, 0.8571, 0.9780, 1.0};

  TextTable table("Two-stage placement vs beta (alpha = 1)");
  table.set_header({"beta", "Cells", "Area (mm^2)", "FTI", "Paper area",
                    "Paper FTI", "Transport-incl (s)"});

  std::cout << "csv: beta,cells,area_mm2,fti,makespan_s,transport_makespan_s,"
               "routed\n";
  double first_fti = -1.0;
  double last_fti = -1.0;
  long long first_cells = 0;
  long long last_cells = 0;
  int row = 0;
  for (const double beta : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    // A couple of seeds per beta; keep the best weighted objective, the
    // way a designer would pick "the acceptable solution" (§6.2).
    double best_weighted = 0.0;
    long long best_cells = 0;
    double best_fti = 0.0;
    Placement best_placement;
    bool first = true;
    for (const std::uint64_t seed :
         {bench::kBenchSeed, bench::kBenchSeed + 17}) {
      const auto outcome = place_two_stage(
          synth.schedule, bench::paper_two_stage_options(beta, seed));
      const double fti = evaluate_fti(outcome.stage2.placement).fti();
      const double weighted =
          static_cast<double>(outcome.stage2.cost.area_cells) - beta * fti;
      if (first || weighted < best_weighted) {
        best_weighted = weighted;
        best_cells = outcome.stage2.cost.area_cells;
        best_fti = fti;
        best_placement = outcome.stage2.placement;
        first = false;
      }
    }

    // The Table 2 sweep against the transport-inclusive makespan: route
    // the winning placement and fold the measured changeover transport
    // into the schedule.
    const Rect box = best_placement.bounding_box();
    const int chip_w = std::max(best_placement.canvas_width(), box.right());
    const int chip_h = std::max(best_placement.canvas_height(), box.top());
    RoutePlannerOptions routing;
    routing.seed = bench::kBenchSeed;  // the seed the JSON rows report
    const RoutePlan plan = router->plan(assay.graph, synth.schedule,
                                        best_placement, chip_w, chip_h,
                                        routing);
    const double transport_makespan_s =
        plan.success ? fold_transport(synth.schedule, plan).makespan_s()
                     : synth.makespan_s;

    table.add_row({format_double(beta, 0), std::to_string(best_cells),
                   format_mm2(best_cells * kPaperCellAreaMm2),
                   format_double(best_fti, 4),
                   format_mm2(paper_area[row]),
                   format_double(paper_fti[row], 4),
                   plan.success ? format_double(transport_makespan_s, 2)
                                : "unrouted"});
    write_csv_row(std::cout,
                  {format_double(beta, 0), std::to_string(best_cells),
                   format_mm2(best_cells * kPaperCellAreaMm2),
                   format_double(best_fti, 4),
                   format_double(synth.makespan_s, 2),
                   format_double(transport_makespan_s, 2),
                   plan.success ? "1" : "0"});
    std::cout << "{\"bench\":\"table2\",\"beta\":" << beta
              << ",\"cells\":" << best_cells << ",\"fti\":" << best_fti
              << ",\"makespan_s\":" << synth.makespan_s
              << ",\"transport_makespan_s\":" << transport_makespan_s
              << ",\"routed\":" << (plan.success ? "true" : "false")
              << ",\"seed\":" << bench::kBenchSeed << "}\n";

    if (first_fti < 0.0) {
      first_fti = best_fti;
      first_cells = best_cells;
    }
    last_fti = best_fti;
    last_cells = best_cells;
    (void)best_weighted;
    ++row;
  }

  std::cout << '\n';
  table.print(std::cout);
  // Individual beta steps can wobble across seeds; the trade-off the
  // paper's Table 2 demonstrates is that raising beta buys FTI with area.
  const bool shape_ok = last_fti > first_fti && last_cells >= first_cells;
  std::cout << "\nshape check (beta=60 has higher FTI and no smaller area "
               "than beta=10): "
            << (shape_ok ? "OK" : "VIOLATED") << '\n';
  return shape_ok ? 0 : 1;
}
