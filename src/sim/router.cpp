#include "sim/router.h"

#include <algorithm>
#include <queue>

namespace dmfb {
namespace {

struct Node {
  int f;  // g + heuristic
  int g;
  Point p;

  bool operator>(const Node& other) const {
    if (f != other.f) return f > other.f;
    if (g != other.g) return g > other.g;
    return std::pair(p.x, p.y) > std::pair(other.p.x, other.p.y);
  }
};

}  // namespace

std::optional<DropletPath> find_path(const Matrix<std::uint8_t>& blocked,
                                     Point from, Point to) {
  if (!blocked.in_bounds(from) || !blocked.in_bounds(to)) return std::nullopt;
  if (blocked.at(from) != 0 || blocked.at(to) != 0) return std::nullopt;
  if (from == to) return DropletPath{from};

  const int width = blocked.width();
  const int height = blocked.height();
  Matrix<int> best_g(width, height, -1);
  Matrix<Point> parent(width, height, Point{-1, -1});

  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> open;
  open.push(Node{manhattan_distance(from, to), 0, from});
  best_g.at(from) = 0;

  const Point steps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  while (!open.empty()) {
    const Node node = open.top();
    open.pop();
    if (node.g > best_g.at(node.p)) continue;  // stale entry
    if (node.p == to) break;
    for (const Point& step : steps) {
      const Point next{node.p.x + step.x, node.p.y + step.y};
      if (!blocked.in_bounds(next) || blocked.at(next) != 0) continue;
      const int g = node.g + 1;
      if (best_g.at(next) == -1 || g < best_g.at(next)) {
        best_g.at(next) = g;
        parent.at(next) = node.p;
        open.push(Node{g + manhattan_distance(next, to), g, next});
      }
    }
  }

  if (best_g.at(to) == -1) return std::nullopt;
  DropletPath path;
  for (Point p = to; !(p == from); p = parent.at(p)) path.push_back(p);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

double path_duration_s(const DropletPath& path, double cells_per_second) {
  // Guard the empty path before forming path.size() - 1: size() is
  // unsigned, so the subtraction would wrap to a huge hop count.
  if (path.size() <= 1 || cells_per_second <= 0.0) return 0.0;
  return static_cast<double>(path.size() - 1) / cells_per_second;
}

bool is_valid_path(const Matrix<std::uint8_t>& blocked,
                   const DropletPath& path) {
  if (path.empty()) return false;  // a droplet is always somewhere
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!blocked.in_bounds(path[i]) || blocked.at(path[i]) != 0) return false;
    if (i > 0 && manhattan_distance(path[i - 1], path[i]) != 1) return false;
  }
  return true;
}

}  // namespace dmfb
