// router.h — droplet transport on the array.
//
// Droplets move one cell per actuation step in the four cardinal
// directions, steered by sequentially energizing adjacent electrodes.
// The router plans shortest collision-free paths with A* (Manhattan
// heuristic, which is exact for 4-connected grids without obstacles).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// A droplet path, as the sequence of cells visited (including endpoints).
using DropletPath = std::vector<Point>;

/// Plans a shortest 4-connected path from `from` to `to` avoiding cells
/// where `blocked` is nonzero. Endpoints must be in bounds and unblocked.
/// Returns nullopt when no path exists. `from == to` yields the
/// single-cell path {from} (the droplet is already there).
std::optional<DropletPath> find_path(const Matrix<std::uint8_t>& blocked,
                                     Point from, Point to);

/// Seconds the path takes at the given transport speed (cells per
/// second): (path.size() - 1) / cells_per_second. Empty and single-cell
/// paths take 0 s, as does any path at a non-positive speed.
double path_duration_s(const DropletPath& path, double cells_per_second);

/// Validates a path: non-empty, consecutive cells 4-adjacent, all
/// unblocked and in bounds. A single-cell path is valid iff its one cell
/// is in bounds and unblocked; the empty path is invalid (a droplet is
/// always somewhere). Used by tests and the simulator's assertions.
bool is_valid_path(const Matrix<std::uint8_t>& blocked,
                   const DropletPath& path);

}  // namespace dmfb
