// reliability.h — from fault-tolerance index to reliability numbers.
//
// The paper's FTI assumes exactly one faulty cell with uniform location
// probability (§5.2) and notes "the failure model can be easily updated
// when statistical failure data becomes available". This module does that
// update: given a per-cell failure probability, it computes the
// probability the assay survives — analytically for the at-most-one-fault
// regime, and by Monte Carlo over multi-fault defect maps with the real
// reconfiguration engine in the loop.
#pragma once

#include <vector>

#include "core/fti.h"
#include "core/placement.h"
#include "core/reconfig.h"
#include "util/rng.h"

namespace dmfb {

/// Analytic single-fault survival: conditioned on exactly one fault,
/// uniformly located, the survival probability IS the FTI. Unconditioned,
/// with independent per-cell failure probability p (small), the first-order
/// survival probability is
///   P(0 faults) + sum over covered cells of p * (1-p)^(n-1).
struct SingleFaultReliability {
  double p_no_fault = 0.0;
  double p_one_fault_survived = 0.0;
  double survival_probability() const {
    return p_no_fault + p_one_fault_survived;
  }
};

SingleFaultReliability single_fault_reliability(const Placement& placement,
                                                const Rect& array,
                                                double cell_failure_prob,
                                                const FtiOptions& options = {});

/// Monte Carlo estimate of survival under independent per-cell failures
/// with no fault-count cap. A defect map survives when sequentially
/// recovering from every faulty cell (in detection order: row-major)
/// succeeds — each recovery must avoid *all* faulty cells.
struct MonteCarloReliability {
  int trials = 0;
  int survived = 0;
  double mean_faults_per_trial = 0.0;
  double survival_probability() const {
    return trials == 0 ? 0.0 : static_cast<double>(survived) / trials;
  }
};

MonteCarloReliability monte_carlo_reliability(
    const Placement& placement, const Rect& array, double cell_failure_prob,
    int trials, Rng& rng,
    const Reconfigurator& reconfigurator = Reconfigurator{});

/// Attempts to recover `placement` from a specific defect map (several
/// faulty cells at once). Relocations are applied fault by fault; every
/// relocation grid marks all faults occupied. Returns success and the
/// final placement.
RecoveryResult recover_from_defect_map(const Placement& placement,
                                       const std::vector<Point>& faults,
                                       const Rect& array,
                                       const Reconfigurator& reconfigurator);

}  // namespace dmfb
