#include "sim/actuation.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "biochip/module_spec.h"

namespace dmfb {

long long ActuationProgram::total_actuations() const {
  long long total = 0;
  for (const auto& frame : frames) {
    total += static_cast<long long>(frame.actuated.size());
  }
  return total;
}

int ActuationProgram::peak_simultaneous() const {
  int peak = 0;
  for (const auto& frame : frames) {
    peak = std::max(peak, static_cast<int>(frame.actuated.size()));
  }
  return peak;
}

ActuationProgram compile_actuation(const Schedule& schedule,
                                   const Placement& placement,
                                   const RoutePlan& routes, int chip_width,
                                   int chip_height,
                                   const ActuationOptions& options) {
  ActuationProgram program;
  program.chip_width = chip_width;
  program.chip_height = chip_height;
  program.control_voltage = options.control_voltage;

  // Per-frame cell scratch, hoisted out of the loops: frames are built
  // thousands at a time, and sort + unique on one reused vector yields
  // the same (x, y)-lexicographic order a std::set iterates in without
  // a node allocation per cell.
  std::vector<std::pair<int, int>> cells;
  auto emit_cells = [&](ActuationFrame& frame) {
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    frame.actuated.reserve(cells.size());
    for (const auto& [x, y] : cells) frame.actuated.push_back(Point{x, y});
  };

  // Transport frames: per changeover, one frame per step; each frame
  // energizes the cell every moving droplet should occupy at that step.
  for (const auto& changeover : routes.changeovers) {
    for (int step = 0; step <= changeover.makespan_steps; ++step) {
      ActuationFrame frame;
      frame.time_s = changeover.time_s + step * options.seconds_per_step;
      frame.note = "transport step " + std::to_string(step) + " @" +
                   std::to_string(changeover.time_s) + "s";
      cells.clear();
      for (const auto& route : changeover.routes) {
        const int clamped = std::min(
            step, static_cast<int>(route.positions.size()) - 1);
        const Point p = route.positions[static_cast<std::size_t>(clamped)];
        cells.emplace_back(p.x, p.y);
      }
      emit_cells(frame);
      program.frames.push_back(std::move(frame));
    }
  }

  // Hold frames: one per time slice, energizing every functional cell of
  // the slice's modules (keeps droplets captive while operations run).
  const auto& slices = placement.slice_members();
  std::vector<std::pair<double, double>> slice_times;
  {
    std::set<double> boundaries;
    for (const auto& m : schedule.modules()) {
      boundaries.insert(m.start_s);
      boundaries.insert(m.end_s);
    }
    std::vector<double> sorted(boundaries.begin(), boundaries.end());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      slice_times.emplace_back(sorted[i], sorted[i + 1]);
    }
  }
  std::size_t slice_index = 0;
  for (const auto& [begin, end] : slice_times) {
    // Find modules active in this interval directly from the placement.
    ActuationFrame frame;
    frame.time_s = begin;
    std::ostringstream note;
    note << "hold slice [" << begin << "s, " << end << "s)";
    frame.note = note.str();
    cells.clear();
    for (int i = 0; i < placement.module_count(); ++i) {
      const auto& m = placement.module(i);
      if (m.start_s <= begin && end <= m.end_s) {
        const Rect functional =
            m.footprint().inflated(-kSegregationRingCells);
        for (int y = functional.y; y < functional.top(); ++y) {
          for (int x = functional.x; x < functional.right(); ++x) {
            cells.emplace_back(x, y);
          }
        }
      }
    }
    if (!cells.empty()) {
      emit_cells(frame);
      program.frames.push_back(std::move(frame));
    }
    ++slice_index;
  }
  (void)slices;
  (void)slice_index;

  std::sort(program.frames.begin(), program.frames.end(),
            [](const ActuationFrame& a, const ActuationFrame& b) {
              return a.time_s < b.time_s;
            });
  return program;
}

std::vector<std::string> validate_program(const ActuationProgram& program) {
  std::vector<std::string> violations;
  double last_time = -1.0;
  for (const auto& frame : program.frames) {
    if (frame.time_s < last_time) {
      violations.push_back("frame at " + std::to_string(frame.time_s) +
                           "s out of order");
    }
    last_time = frame.time_s;
    std::set<std::pair<int, int>> seen;
    for (const Point& p : frame.actuated) {
      if (p.x < 0 || p.x >= program.chip_width || p.y < 0 ||
          p.y >= program.chip_height) {
        violations.push_back("actuated cell out of bounds in frame '" +
                             frame.note + "'");
        break;
      }
      if (!seen.emplace(p.x, p.y).second) {
        violations.push_back("duplicate cell in frame '" + frame.note + "'");
        break;
      }
    }
  }
  return violations;
}

}  // namespace dmfb
