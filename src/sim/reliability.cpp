#include "sim/reliability.h"

#include <cmath>

#include "sim/fault.h"

namespace dmfb {

SingleFaultReliability single_fault_reliability(const Placement& placement,
                                                const Rect& array,
                                                double cell_failure_prob,
                                                const FtiOptions& options) {
  SingleFaultReliability result;
  const long long n = array.area();
  if (n <= 0) return result;
  const double p = cell_failure_prob;
  result.p_no_fault = std::pow(1.0 - p, static_cast<double>(n));

  const FtiResult fti = evaluate_fti(placement, options, array);
  // Each covered cell contributes the probability that it alone fails.
  result.p_one_fault_survived =
      static_cast<double>(fti.covered_cells) * p *
      std::pow(1.0 - p, static_cast<double>(n - 1));
  return result;
}

MonteCarloReliability monte_carlo_reliability(
    const Placement& placement, const Rect& array, double cell_failure_prob,
    int trials, Rng& rng, const Reconfigurator& reconfigurator) {
  MonteCarloReliability result;
  result.trials = trials;
  long long total_faults = 0;

  const std::vector<Point> cells = enumerate_cells(array);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<Point> faults;
    for (const Point& cell : cells) {
      if (rng.next_bool(cell_failure_prob)) faults.push_back(cell);
    }
    total_faults += static_cast<long long>(faults.size());

    if (faults.empty()) {
      ++result.survived;
      continue;
    }
    const RecoveryResult recovery =
        recover_from_defect_map(placement, faults, array, reconfigurator);
    if (recovery.success) ++result.survived;
  }
  result.mean_faults_per_trial =
      trials == 0 ? 0.0 : static_cast<double>(total_faults) / trials;
  return result;
}

RecoveryResult recover_from_defect_map(const Placement& placement,
                                       const std::vector<Point>& faults,
                                       const Rect& array,
                                       const Reconfigurator& reconfigurator) {
  return reconfigurator.recover(placement, faults, array);
}

}  // namespace dmfb
