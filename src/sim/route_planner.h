// route_planner.h — concurrent droplet routing at configuration
// changeovers, with fluidic constraints.
//
// The simulator (simulator.h) routes droplets one at a time and ignores
// droplet-droplet interactions; the planners here produce a *checkable
// actuation-ready* plan: at every changeover instant all pending droplet
// transfers are routed simultaneously on a space-time grid under the
// standard DMFB fluidic constraints (droplets must stay >= 2 cells apart
// in Chebyshev distance, both against the other droplet's current and
// previous position, unless they are being merged at the same target).
//
// This header carries the plan data model (TransferRequest, TimedRoute,
// ChangeoverPlan, RoutePlan), the shared building blocks every routing
// backend composes (`routing::` namespace), and the legacy `plan_routes`
// entry point — now a deprecated thin wrapper over the "prioritized"
// backend. Polymorphic backends live in sim/router_backend.h:
//
//   auto router = make_router("negotiated");
//   RoutePlan plan = router->plan(graph, schedule, placement, 16, 16);
//
// Units: a *step* is one actuation interval (a droplet moves one cell or
// waits in place for one step); a *cell* is one cell actually traversed.
// Waits cost steps but no cells, so step counts >= cell counts. Steps
// convert to seconds through the one actuation-rate constant below
// (kActuationStepsPerSecond); every `transport_seconds()` accessor uses
// it, so benches and the pipeline agree on the steps->seconds seam.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assay/schedule.h"
#include "assay/sequencing_graph.h"
#include "core/cost.h"
#include "core/placement.h"
#include "util/deprecation.h"
#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// The electrode actuation rate the repo's timing model assumes: droplets
/// advance one cell per actuation period, so a route of N steps takes
/// N / kActuationStepsPerSecond seconds. 13 Hz is 20 cm/s droplet
/// transport at the paper's 1.5 mm pitch — the rate the simulator,
/// actuation compiler and benches have always quoted; it is defined once
/// here (and consumed by SimOptions/ActuationOptions defaults) so every
/// layer agrees on the steps->seconds conversion.
inline constexpr double kActuationStepsPerSecond = 13.0;

/// Seconds per actuation step (the period of kActuationStepsPerSecond).
inline constexpr double kActuationPeriodS = 1.0 / kActuationStepsPerSecond;

/// One droplet transfer request at a changeover.
struct TransferRequest {
  std::string label;   ///< droplet identity (producer op label)
  Point from;
  Point to;
  int target_module = -1;  ///< module index the droplet enters (-1: none)
  /// Module index the droplet leaves (-1: dispensed from the perimeter).
  /// Together with `target_module` this names the transfer's demand edge,
  /// which routing-aware placement prices (core/cost.h RouteLink).
  int source_module = -1;
};

/// A timed route: position per timestep (waits repeat the position).
struct TimedRoute {
  TransferRequest request;
  std::vector<Point> positions;  ///< positions[step], step 0 = at `from`

  /// Steps until arrival (unit: steps — waits in place count, so this is
  /// the droplet's transport *time*, not distance). 0 for an empty route.
  int arrival_step() const {
    return positions.empty() ? 0 : static_cast<int>(positions.size()) - 1;
  }

  /// Cells actually traversed (unit: cells — waits in place do not count,
  /// so this is the droplet's transport *distance*). <= arrival_step().
  int moved_cells() const {
    int moved = 0;
    for (std::size_t i = 1; i < positions.size(); ++i) {
      if (!(positions[i] == positions[i - 1])) ++moved;
    }
    return moved;
  }

  /// This droplet's transport time at the chip's actuation rate.
  double transport_seconds() const {
    return arrival_step() * kActuationPeriodS;
  }
};

/// All routes of one changeover.
struct ChangeoverPlan {
  double time_s = 0.0;
  std::vector<TimedRoute> routes;
  int makespan_steps = 0;  ///< latest arrival among the routes (steps)
  /// Rip-up-and-reroute rounds the "negotiated" backend spent before this
  /// changeover went conflict-free (0: first congestion-aware pass already
  /// was, or another backend planned it).
  int negotiation_rounds = 0;

  /// Wall time the changeover adds to the assay: droplets move
  /// concurrently, so it is the latest arrival at the actuation rate.
  double transport_seconds() const {
    return makespan_steps * kActuationPeriodS;
  }
};

/// A complete routing plan for an assay execution.
struct RoutePlan {
  bool success = false;
  std::string failure_reason;
  std::vector<ChangeoverPlan> changeovers;
  /// Sum of per-droplet arrival steps (unit: droplet-steps, waits
  /// included). Never smaller than `total_moved_cells`.
  long long total_steps = 0;
  /// Sum of per-droplet cells traversed (unit: droplet-cells, waits
  /// excluded) — the electrode-actuation work the plan implies.
  long long total_moved_cells = 0;
  /// Summed negotiation rounds over changeovers (the "negotiated"
  /// backend's convergence effort; 0 for the other backends).
  long long negotiation_rounds = 0;

  /// Transport time implied by the plan at the chip's actuation rate
  /// (kActuationStepsPerSecond): changeover makespans are serial, droplets
  /// within a changeover are concurrent. This is exactly the time
  /// `fold_transport` inserts into a schedule.
  double total_transport_seconds() const {
    return total_transport_seconds(kActuationStepsPerSecond);
  }

  /// Same at an explicit rate — for what-if analyses at other actuation
  /// frequencies; everything in-repo uses the no-argument form.
  double total_transport_seconds(double cells_per_second) const;
};

/// The transport-inclusive schedule: every changeover's measured
/// transport time (ChangeoverPlan::transport_seconds) is folded into the
/// module start times — modules starting at or after a changeover are
/// delayed by it, cumulatively over changeovers — so the result's
/// `makespan_s()` is the transport-inclusive makespan the chip actually
/// needs. Built from Schedule::shift_from, so durations, precedence and
/// time-disjointness are preserved and the placement stays feasible.
Schedule fold_transport(const Schedule& schedule, const RoutePlan& plan);

/// Planner options, shared by every routing backend; backends read the
/// fields relevant to them and ignore the rest.
struct RoutePlannerOptions {
  /// Max timesteps per changeover before giving up (0 = auto: 4*(W+H)).
  int step_horizon = 0;
  /// Minimum Chebyshev separation between unrelated droplets.
  int separation_cells = 2;

  // "negotiated" backend (Pathfinder-style rip-up-and-reroute).
  /// Max negotiation rounds per changeover before falling back.
  int negotiation_rounds = 24;
  /// Cost of sharing a space-time neighbourhood, escalated per round.
  double present_congestion_weight = 1.0;
  /// Weight of accumulated (historic) congestion on a space-time cell.
  double history_congestion_weight = 0.4;
  /// Carry the Pathfinder history grid forward across changeovers (warm
  /// start) instead of resetting it per changeover: space-time cells that
  /// caused conflicts earlier in the assay stay expensive, which cuts
  /// negotiation rounds on layouts whose chokepoints persist (the
  /// ROADMAP's "cross-changeover congestion history"). Forces the
  /// negotiated backend to solve changeovers sequentially in time order
  /// (`threads` is ignored for it) since each warm start consumes the
  /// previous changeover's outcome; the resulting plan is still
  /// deterministic.
  bool persist_congestion_history = false;
  /// Cross-run congestion ledger (the synthesis service's per-layout
  /// Pathfinder memory): when set together with
  /// persist_congestion_history, the negotiated backend warm-starts from
  /// and updates *this* history grid in place instead of a per-plan local
  /// one, so later compiles on the same layout inherit earlier compiles'
  /// conflict record. The router resizes the grid when its dimensions do
  /// not match the current problem. Not thread-safe across concurrent
  /// plan() calls sharing one ledger — callers serialize or copy.
  std::shared_ptr<std::vector<double>> congestion_ledger;

  // "restart" backend (seeded random-restart over transfer orderings).
  /// Shuffled orderings tried per changeover beyond the deterministic one.
  int max_restarts = 8;
  /// Seed for the ordering shuffles; the pipeline overrides this with the
  /// run seed so one number reproduces the whole flow.
  std::uint64_t seed = 0xDA7E2005ULL;

  /// Worker threads for per-changeover routing (all backends). Changeovers
  /// are independent once extracted and stochastic backends derive a
  /// per-changeover seed from `seed`, so the resulting plan is identical
  /// for any thread count (test_parallel_routing.cpp pins 1 vs 4).
  /// 1 = solve in the calling thread, 0 = hardware concurrency.
  int threads = 1;
};

/// Plans droplet routing for the full assay with the classic prioritized
/// planner. Deprecated: resolve a backend through the RouterRegistry
/// (sim/router_backend.h) instead; `make_router("prioritized")` reproduces
/// this function exactly.
DMFB_DEPRECATED(
    "use make_router(\"prioritized\")->plan(...) from sim/router_backend.h")
RoutePlan plan_routes(const SequencingGraph& graph, const Schedule& schedule,
                      const Placement& placement, int chip_width,
                      int chip_height,
                      const RoutePlannerOptions& options = {});

/// Validates a changeover plan against the fluidic constraints; returns
/// human-readable violations (empty = valid). Exposed for tests and used
/// by the shared router conformance suite.
std::vector<std::string> validate_changeover(
    const ChangeoverPlan& plan, const Matrix<std::uint8_t>& blocked,
    const RoutePlannerOptions& options = {});

// --- shared building blocks for routing backends ----------------------
//
// Everything below is the backend-independent core: changeover extraction
// from the schedule, the space-time A* primitive, and the prioritized
// per-changeover solver. Router implementations (sim/router_backend.cpp)
// compose these; they are exposed here so custom backends registered with
// RouterRegistry can too.
namespace routing {

/// Sentinel `from` of a dispense transfer: the droplet has no on-chip
/// position yet, and the solver picks a conflict-free perimeter entry.
inline constexpr Point kDispensePending{-1, -1};

/// One changeover's routing problem, extracted from the schedule: the
/// blocked grid at that instant and the pending transfers (dispense
/// requests carry `kDispensePending` as `from`).
struct ChangeoverProblem {
  double time_s = 0.0;
  Matrix<std::uint8_t> blocked;
  std::vector<TransferRequest> requests;
};

/// Extracts every changeover with at least one transfer, in time order.
/// Droplet positions between changeovers are tracked internally (a
/// droplet always lands at its request's `to`, so extraction does not
/// depend on the backend's path choices). Throws std::invalid_argument
/// when schedule and placement disagree or the chip is too small.
std::vector<ChangeoverProblem> extract_problems(const SequencingGraph& graph,
                                                const Schedule& schedule,
                                                const Placement& placement,
                                                int chip_width,
                                                int chip_height);

/// The droplet-transfer demand edges of a schedule, aggregated per
/// (source module, target module) pair with `weight` = number of
/// transfers on the edge. Placement-independent (derived from graph +
/// schedule alone, with the same droplet bookkeeping as
/// `extract_problems`), so a placer can price routing pressure *before*
/// any placement exists — the routing-aware placement term
/// (CostWeights::gamma, core/cost.h) consumes exactly these. Sorted by
/// (source, target) for determinism.
std::vector<RouteLink> extract_links(const SequencingGraph& graph,
                                     const Schedule& schedule);

/// `links` with measured route costs folded in: each link's weight
/// becomes its transfer count plus the summed arrival steps of the
/// plan's routes on that (source, target) edge. This is the
/// placement-feedback signal — congested edges get heavier, so the next
/// placement round pulls their endpoints together. Links absent from the
/// plan (e.g. changeovers past a routing failure) keep their demand
/// weight.
std::vector<RouteLink> reweight_links(std::vector<RouteLink> links,
                                      const RoutePlan& plan);

/// The per-changeover step horizon implied by `options` (0 = auto).
int resolve_horizon(const RoutePlannerOptions& options, int chip_width,
                    int chip_height);

/// Position of `route` at `step`: clamped to the endpoints (a droplet is
/// parked at its target after arrival).
Point position_at(const TimedRoute& route, int step);

/// All free perimeter cells, nearest to `target` first (dispense entry
/// candidates — the reservoir sits off-chip next to the chosen cell).
std::vector<Point> perimeter_entries(const Matrix<std::uint8_t>& blocked,
                                     Point target);

/// The one fluidic rule, reservation form: does a droplet at `p` on
/// `step` violate the separation constraints against `other`'s timed
/// positions? Checks the static rule plus both directions of the dynamic
/// rule (the other droplet's previous *and* next position). Callers
/// handle the merge-at-same-target exemption.
bool conflicts_with_route(Point p, int step, const TimedRoute& other,
                          int separation);

/// The one fluidic rule, pairwise form: do routes `a` and `b` violate the
/// separation constraints at `step` (static rule, plus the dynamic rule
/// against each other's previous position — the forward direction is
/// covered by the check at step+1)? Callers handle the merge exemption.
bool pair_violates_at(const TimedRoute& a, const TimedRoute& b, int step,
                      int separation);

/// Space-time A* for one transfer against `earlier` routes' reservations
/// (hard fluidic constraints, including both directions of the dynamic
/// rule). Returns the per-step positions, or nullopt when no conflict-free
/// path exists within `horizon` steps.
std::optional<std::vector<Point>> route_transfer(
    const TransferRequest& request, const Matrix<std::uint8_t>& blocked,
    const std::vector<TimedRoute>& earlier, int horizon, int separation);

/// The deterministic visit order: on-chip transfers first (their start
/// cells are fixed), longest first; dispenses last so their entry choice
/// can dodge everything already routed.
std::vector<std::size_t> default_order(
    const std::vector<TransferRequest>& requests);

/// Routes one changeover's transfers in the given visit order, each
/// avoiding the space-time reservations of those before it (prioritized /
/// decoupled planning). Returns nullopt and sets `failure` when some
/// transfer cannot be routed.
std::optional<ChangeoverPlan> solve_prioritized(
    const ChangeoverProblem& problem, const std::vector<std::size_t>& order,
    const RoutePlannerOptions& options, int horizon, std::string* failure);

/// One changeover's solver: plan the changeover at `index` in `problems`,
/// or return nullopt and set `failure`. Must be thread-safe across
/// changeovers (every built-in backend's solver is: changeovers share no
/// mutable state, and seeded backends split a per-changeover stream from
/// the run seed by index).
using ChangeoverSolver = std::function<std::optional<ChangeoverPlan>(
    const ChangeoverProblem& /*problem*/, std::size_t /*index*/,
    std::string* /*failure*/)>;

/// Solves every changeover with `solve` across `threads` workers (1 =
/// inline in the calling thread, 0 = hardware concurrency) and folds the
/// results into a RoutePlan in changeover order. Because the solver is
/// index-seeded and changeovers are independent, the returned plan is
/// identical for any thread count; on failure the first unroutable
/// changeover (in time order) supplies `failure_reason`.
RoutePlan solve_changeovers(const std::vector<ChangeoverProblem>& problems,
                            int threads, const ChangeoverSolver& solve);

/// Folds a solved changeover into `plan` (routes + step/cell totals).
void accumulate(RoutePlan& plan, ChangeoverPlan&& changeover);

/// The full prioritized planner (extraction + per-changeover solve in
/// `default_order`) — the implementation behind the "prioritized" backend
/// and the deprecated `plan_routes`.
RoutePlan plan_prioritized(const SequencingGraph& graph,
                           const Schedule& schedule,
                           const Placement& placement, int chip_width,
                           int chip_height, const RoutePlannerOptions& options);

}  // namespace routing

}  // namespace dmfb
