// route_planner.h — concurrent droplet routing at configuration
// changeovers, with fluidic constraints.
//
// The simulator (simulator.h) routes droplets one at a time and ignores
// droplet-droplet interactions; this planner produces a *checkable
// actuation-ready* plan: at every changeover instant all pending droplet
// transfers are routed simultaneously on a space-time grid under the
// standard DMFB fluidic constraints (droplets must stay >= 2 cells apart
// in Chebyshev distance, both against the other droplet's current and
// previous position, unless they are being merged at the same target).
//
// Prioritized planning: transfers are routed one after another, each
// avoiding the space-time reservations of those before it; a droplet may
// wait in place to let another pass. This is the classic decoupled
// approach used by DMFB routers descended from this paper's group's work.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "assay/schedule.h"
#include "assay/sequencing_graph.h"
#include "core/placement.h"
#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// One droplet transfer request at a changeover.
struct TransferRequest {
  std::string label;   ///< droplet identity (producer op label)
  Point from;
  Point to;
  int target_module = -1;  ///< module index the droplet enters (-1: none)
};

/// A timed route: position per timestep (waits repeat the position).
struct TimedRoute {
  TransferRequest request;
  std::vector<Point> positions;  ///< positions[step], step 0 = at `from`
  int arrival_step() const {
    return static_cast<int>(positions.size()) - 1;
  }
};

/// All routes of one changeover.
struct ChangeoverPlan {
  double time_s = 0.0;
  std::vector<TimedRoute> routes;
  int makespan_steps = 0;  ///< latest arrival among the routes
};

/// A complete routing plan for an assay execution.
struct RoutePlan {
  bool success = false;
  std::string failure_reason;
  std::vector<ChangeoverPlan> changeovers;
  long long total_steps = 0;  ///< sum of per-droplet path lengths

  /// Transport time implied by the plan at `cells_per_second`.
  double total_transport_seconds(double cells_per_second) const;
};

/// Planner options.
struct RoutePlannerOptions {
  /// Max timesteps per changeover before giving up (0 = auto: 4*(W+H)).
  int step_horizon = 0;
  /// Minimum Chebyshev separation between unrelated droplets.
  int separation_cells = 2;
};

/// Plans droplet routing for the full assay: for every changeover in the
/// schedule, routes all transfers concurrently. Requires a chip of
/// `chip_width` x `chip_height` covering the placement.
RoutePlan plan_routes(const SequencingGraph& graph, const Schedule& schedule,
                      const Placement& placement, int chip_width,
                      int chip_height,
                      const RoutePlannerOptions& options = {});

/// Validates a changeover plan against the fluidic constraints; returns
/// human-readable violations (empty = valid). Exposed for tests.
std::vector<std::string> validate_changeover(
    const ChangeoverPlan& plan, const Matrix<std::uint8_t>& blocked,
    const RoutePlannerOptions& options = {});

}  // namespace dmfb
