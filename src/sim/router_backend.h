// router_backend.h — the polymorphic droplet-routing interface and its
// string-keyed registry.
//
// Droplet routing at configuration changeovers is the flow's second
// NP-hard stage (placement being the first), and just like placement it
// admits very different algorithms. This header unifies them behind one
// abstract `Router`, mirroring the `Placer`/`PlacerRegistry` pair
// (core/placer.h), so drivers, benches and the `SynthesisPipeline` facade
// select a backend by name:
//
//   auto router = make_router("negotiated");
//   RoutePlan plan = router->plan(graph, schedule, placement, 16, 16);
//
// Built-in backends:
//   * "prioritized" — the classic decoupled planner: transfers are routed
//     one after another, each avoiding the space-time reservations of
//     those before it (the approach descended from this paper's group's
//     work). Fast, incomplete.
//   * "negotiated"  — Pathfinder-style negotiated congestion: all
//     transfers are routed concurrently and allowed to share space-time
//     neighbourhoods at an escalating cost; conflicted routes are ripped
//     up and rerouted until the changeover is conflict-free. Falls back
//     to "prioritized" on a changeover that fails to converge, so its
//     route success rate dominates the prioritized planner's.
//   * "restart"     — seeded random-restart over transfer orderings: the
//     prioritized solver is retried with shuffled visit orders and the
//     minimum-makespan conflict-free changeover wins. Reproducible from
//     RoutePlannerOptions::seed.
//
// New routers register with `RouterRegistry::global()` and are
// immediately usable everywhere a router name is accepted.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/route_planner.h"
#include "util/enum_text.h"
#include "util/registry.h"

namespace dmfb {

/// The built-in routing backends, in registry-name order.
enum class RouterKind {
  kNegotiated,   ///< Pathfinder-style negotiated congestion
  kPrioritized,  ///< classic decoupled prioritized planning
  kRestart,      ///< seeded random-restart over transfer orderings
};

/// Registry name of a built-in router kind ("negotiated", "prioritized",
/// "restart").
const char* to_string(RouterKind kind);
template <>
RouterKind from_string<RouterKind>(std::string_view text);
std::ostream& operator<<(std::ostream& os, RouterKind kind);
std::istream& operator>>(std::istream& is, RouterKind& kind);

/// Abstract routing backend: a scheduled, placed assay in, a checkable
/// per-changeover droplet plan out.
///
/// Implementations are stateless w.r.t. `plan` (const, reentrant), so one
/// instance may serve concurrent pipeline runs; stochastic backends draw
/// all randomness from RoutePlannerOptions::seed. `plan` reports routing
/// failure through RoutePlan::success/failure_reason (prioritized-style
/// planning is incomplete by nature) and throws std::invalid_argument
/// when the inputs are inconsistent (schedule/placement mismatch, chip
/// smaller than the placement).
class Router {
 public:
  virtual ~Router() = default;

  /// Registry key of this backend (e.g. "negotiated").
  virtual std::string name() const = 0;

  /// Plans droplet routing for the full assay: for every changeover in
  /// the schedule, routes all pending transfers concurrently under the
  /// fluidic constraints on a `chip_width` x `chip_height` chip.
  virtual RoutePlan plan(const SequencingGraph& graph,
                         const Schedule& schedule, const Placement& placement,
                         int chip_width, int chip_height,
                         const RoutePlannerOptions& options = {}) const = 0;
};

/// String-keyed router factory. The three built-ins are pre-registered;
/// `register_router` adds custom backends process-wide. All methods are
/// thread-safe (run_many workers resolve routers concurrently). The
/// locking machinery is the shared detail::NamedRegistry (util/registry.h).
class RouterRegistry {
 public:
  using Factory = detail::NamedRegistry<Router>::Factory;

  /// The process-wide registry, with built-ins pre-registered.
  static RouterRegistry& global();

  /// Registers a backend under `name`. Throws std::invalid_argument when
  /// the name is empty or already taken.
  void register_router(const std::string& name, Factory factory) {
    registry_.add(name, std::move(factory));
  }

  /// Instantiates the backend registered under `name`. Throws
  /// std::invalid_argument for unknown names; the message lists every
  /// registered name.
  std::unique_ptr<Router> make(const std::string& name) const {
    return registry_.make(name);
  }

  bool contains(const std::string& name) const {
    return registry_.contains(name);
  }

  /// All registered names, sorted.
  std::vector<std::string> names() const { return registry_.names(); }

 private:
  RouterRegistry();

  detail::NamedRegistry<Router> registry_{"router"};
};

/// Convenience forwarders to RouterRegistry::global().
std::unique_ptr<Router> make_router(const std::string& name);
std::unique_ptr<Router> make_router(RouterKind kind);
std::vector<std::string> registered_routers();

}  // namespace dmfb
