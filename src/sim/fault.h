// fault.h — single-cell fault injection (§5.2 fault model), offline and
// online.
//
// Every cell fails with uniform probability; testing and reconfiguration
// run frequently enough that at most one fault is outstanding. Statistical
// failure data for DMFBs did not exist when the paper was written, so the
// uniform model is the one the paper defines — the sampler below makes it
// executable.
//
// Two injection modes:
//   - inject_fault() plants a fault on the chip *before* a run (the
//     offline campaigns in recovery.h).
//   - FaultInjectionPlan hands a sequence of faults to the event engine
//     (EventSimEngine::run_online) to be injected *while the event queue
//     is live* — at a wall-clock instant of the simulated run or after
//     the k-th dispatched event — which is what the paper's online
//     testing story actually implies: electrodes fail mid-assay.
#pragma once

#include <vector>

#include "biochip/chip.h"
#include "util/geometry.h"
#include "util/rng.h"

namespace dmfb {

/// Uniform single-cell fault sampler over an array region.
Point sample_uniform_fault(const Rect& array, Rng& rng);

/// All cells of a region in deterministic (row-major, bottom-up) order —
/// the enumeration used by exhaustive fault campaigns.
std::vector<Point> enumerate_cells(const Rect& array);

/// Injects a fault into `chip` at `cell` (throws when out of bounds).
void inject_fault(Chip& chip, Point cell);

/// Clears every fault on the chip.
void clear_faults(Chip& chip);

// --- online (mid-run) injection ---------------------------------------

/// One fault to inject while a simulation run is in flight. Exactly one
/// trigger applies: `time_s >= 0` fires when the engine is about to
/// dispatch the first event at or after that instant; otherwise
/// `after_event` fires once that many events have been dispatched.
struct PlannedFault {
  Point cell{};
  /// Simulated-time trigger: fire before the first event with
  /// time >= time_s. Negative = use `after_event` instead.
  double time_s = -1.0;
  /// Event-count trigger: fire before dispatching event `after_event + 1`
  /// (0 = before the first event). Counts are relative to the engine
  /// invocation that carries the plan, so on a checkpointed resume they
  /// restart with the residual run; time triggers are absolute and are
  /// the ones campaigns should use.
  long long after_event = -1;
};

/// A sequence of mid-run faults, fired strictly in vector order (the
/// engine holds a cursor; sort time-triggered plans by time).
struct FaultInjectionPlan {
  std::vector<PlannedFault> faults;

  bool empty() const { return faults.empty(); }
};

/// One fault that actually fired during a run: the planned cell plus the
/// simulated instant the engine injected it at.
struct FiredFault {
  Point cell{};
  double time_s = 0.0;
};

/// Seeded uniform campaign sampler: `count` time-triggered faults, cells
/// uniform over `array`, times uniform over [0, horizon_s), sorted by
/// time. One (seed, array, count, horizon) tuple reproduces the plan.
FaultInjectionPlan sample_fault_plan(const Rect& array, int count,
                                     double horizon_s, Rng& rng);

}  // namespace dmfb
