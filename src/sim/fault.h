// fault.h — single-cell fault injection (§5.2 fault model).
//
// Every cell fails with uniform probability; testing and reconfiguration
// run frequently enough that at most one fault is outstanding. Statistical
// failure data for DMFBs did not exist when the paper was written, so the
// uniform model is the one the paper defines — the sampler below makes it
// executable.
#pragma once

#include <vector>

#include "biochip/chip.h"
#include "util/geometry.h"
#include "util/rng.h"

namespace dmfb {

/// Uniform single-cell fault sampler over an array region.
Point sample_uniform_fault(const Rect& array, Rng& rng);

/// All cells of a region in deterministic (row-major, bottom-up) order —
/// the enumeration used by exhaustive fault campaigns.
std::vector<Point> enumerate_cells(const Rect& array);

/// Injects a fault into `chip` at `cell` (throws when out of bounds).
void inject_fault(Chip& chip, Point cell);

/// Clears every fault on the chip.
void clear_faults(Chip& chip);

}  // namespace dmfb
