#include "sim/router_backend.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace dmfb {
namespace {

using routing::ChangeoverProblem;
using routing::position_at;

// --- "prioritized" ----------------------------------------------------

class PrioritizedRouter final : public Router {
 public:
  std::string name() const override { return "prioritized"; }

  RoutePlan plan(const SequencingGraph& graph, const Schedule& schedule,
                 const Placement& placement, int chip_width, int chip_height,
                 const RoutePlannerOptions& options) const override {
    return routing::plan_prioritized(graph, schedule, placement, chip_width,
                                     chip_height, options);
  }
};

// --- "negotiated" -----------------------------------------------------
//
// Pathfinder-style negotiated congestion on the space-time grid. Every
// transfer is routed with a cost-based A* that may enter another route's
// fluidic neighbourhood at a price: an escalating present-congestion cost
// plus a history cost accumulated on space-time cells that keep seeing
// conflicts. Conflicted routes are ripped up and rerouted each round
// until the changeover is conflict-free.

/// A routed candidate with its congestion-aware cost.
struct SoftRoute {
  std::vector<Point> positions;
  double cost = 0.0;
};

/// Reusable space-time search buffers: one A* needs (horizon+1)*W*H
/// entries of best-cost and parent state, and the negotiation loop runs
/// many searches per changeover — reallocating each time would dominate
/// the backend's wall time.
struct SoftScratch {
  std::vector<double> best_g;
  std::vector<int> parent;
};

/// Cost-based space-time A* for one transfer. `others` are the current
/// routes of every transfer; `self` is skipped (as are merging partners).
/// `present_weight` prices entering another route's neighbourhood;
/// `history` prices space-time cells with a conflict record. With both at
/// zero this degenerates to an unconstrained shortest path.
std::optional<SoftRoute> route_soft(
    const TransferRequest& request, const Matrix<std::uint8_t>& blocked,
    const std::vector<TimedRoute>& others, std::size_t self, int horizon,
    int separation, double present_weight, const std::vector<double>& history,
    double history_weight, SoftScratch& scratch) {
  const int width = blocked.width();
  const int height = blocked.height();
  if (!blocked.in_bounds(request.from) || !blocked.in_bounds(request.to)) {
    return std::nullopt;
  }
  if (blocked.at(request.from) != 0 || blocked.at(request.to) != 0) {
    return std::nullopt;
  }

  const auto key = [&](Point p, int step) {
    return (static_cast<std::size_t>(step) * height + p.y) * width + p.x;
  };

  auto penalty = [&](Point p, int step) {
    double cost = history.empty() ? 0.0
                                  : history[key(p, step)] * history_weight;
    for (std::size_t o = 0; o < others.size(); ++o) {
      if (o == self) continue;
      const TimedRoute& other = others[o];
      if (other.positions.empty()) continue;  // not routed yet
      if (other.request.to == request.to) continue;  // merging pair
      if (routing::conflicts_with_route(p, step, other, separation)) {
        cost += present_weight;
      }
    }
    return cost;
  };

  struct Node {
    double f;
    double g;
    int step;
    Point p;
    bool operator>(const Node& o) const {
      if (f != o.f) return f > o.f;
      if (step != o.step) return step > o.step;
      return std::pair(p.x, p.y) > std::pair(o.p.x, o.p.y);
    }
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t states =
      static_cast<std::size_t>(horizon + 1) * width * height;
  std::vector<double>& best_g = scratch.best_g;
  std::vector<int>& parent = scratch.parent;
  best_g.assign(states, kInf);  // reuses the buffers' capacity
  parent.assign(states, -1);

  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> open;
  const double start_g = penalty(request.from, 0);
  best_g[key(request.from, 0)] = start_g;
  open.push(Node{start_g + manhattan_distance(request.from, request.to),
                 start_g, 0, request.from});

  const Point steps[5] = {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  while (!open.empty()) {
    const Node node = open.top();
    open.pop();
    if (node.g > best_g[key(node.p, node.step)]) continue;  // stale entry
    if (node.p == request.to) {
      SoftRoute route;
      route.cost = node.g;
      route.positions.resize(static_cast<std::size_t>(node.step) + 1);
      Point p = node.p;
      for (int s = node.step; s >= 0; --s) {
        route.positions[static_cast<std::size_t>(s)] = p;
        const int parent_index = parent[key(p, s)];
        if (s > 0) {
          p = Point{parent_index % width, (parent_index / width) % height};
        }
      }
      return route;
    }
    if (node.step >= horizon) continue;
    for (const Point& delta : steps) {
      const Point next{node.p.x + delta.x, node.p.y + delta.y};
      const int next_step = node.step + 1;
      if (!blocked.in_bounds(next) || blocked.at(next) != 0) continue;
      const double g = node.g + 1.0 + penalty(next, next_step);
      if (g >= best_g[key(next, next_step)]) continue;
      best_g[key(next, next_step)] = g;
      parent[key(next, next_step)] = static_cast<int>(
          key(node.p, 0) % (static_cast<std::size_t>(width) * height));
      open.push(Node{g + manhattan_distance(next, request.to), g, next_step,
                     next});
    }
  }
  return std::nullopt;
}

/// Routes `request`, resolving a dispense's pending entry by evaluating
/// the nearest free perimeter cells and keeping the cheapest route. The
/// resolved request (with the chosen entry as `from`) is written back.
std::optional<SoftRoute> route_soft_resolved(
    TransferRequest& request, const Matrix<std::uint8_t>& blocked,
    const std::vector<TimedRoute>& others, std::size_t self, int horizon,
    int separation, double present_weight, const std::vector<double>& history,
    double history_weight, SoftScratch& scratch) {
  if (!(request.from == routing::kDispensePending)) {
    return route_soft(request, blocked, others, self, horizon, separation,
                      present_weight, history, history_weight, scratch);
  }
  // Evaluating every perimeter cell is an A* each; the nearest few are
  // where a sensible entry lives.
  constexpr std::size_t kMaxEntries = 12;
  std::optional<SoftRoute> best;
  Point best_entry = request.from;
  const auto entries = routing::perimeter_entries(blocked, request.to);
  for (std::size_t i = 0; i < entries.size() && i < kMaxEntries; ++i) {
    TransferRequest candidate = request;
    candidate.from = entries[i];
    auto route = route_soft(candidate, blocked, others, self, horizon,
                            separation, present_weight, history,
                            history_weight, scratch);
    if (route && (!best || route->cost < best->cost)) {
      best = std::move(route);
      best_entry = entries[i];
    }
  }
  if (best) request.from = best_entry;
  return best;
}

/// Indices of routes involved in at least one fluidic violation, and —
/// when `history` is non-null — a history bump on every space-time cell
/// the offenders occupy at a violating step.
std::vector<std::size_t> conflicted_routes(
    const std::vector<TimedRoute>& routes, int separation, int horizon,
    int width, int height, std::vector<double>* history) {
  const auto key = [&](Point p, int step) {
    return (static_cast<std::size_t>(step) * height + p.y) * width + p.x;
  };
  std::vector<bool> conflicted(routes.size(), false);
  int makespan = 0;
  for (const auto& route : routes) {
    makespan = std::max(makespan, route.arrival_step());
  }
  for (std::size_t i = 0; i < routes.size(); ++i) {
    for (std::size_t j = i + 1; j < routes.size(); ++j) {
      const TimedRoute& a = routes[i];
      const TimedRoute& b = routes[j];
      if (a.request.to == b.request.to) continue;  // merging pair
      for (int step = 0; step <= makespan; ++step) {
        if (!routing::pair_violates_at(a, b, step, separation)) continue;
        conflicted[i] = conflicted[j] = true;
        if (history) {
          const int s = std::min(step, horizon);
          (*history)[key(position_at(a, step), s)] += 1.0;
          (*history)[key(position_at(b, step), s)] += 1.0;
        }
      }
    }
  }
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (conflicted[i]) result.push_back(i);
  }
  return result;
}

class NegotiatedRouter final : public Router {
 public:
  std::string name() const override { return "negotiated"; }

  RoutePlan plan(const SequencingGraph& graph, const Schedule& schedule,
                 const Placement& placement, int chip_width, int chip_height,
                 const RoutePlannerOptions& options) const override {
    const int horizon =
        routing::resolve_horizon(options, chip_width, chip_height);
    const auto problems = routing::extract_problems(
        graph, schedule, placement, chip_width, chip_height);

    if (options.persist_congestion_history) {
      // Warm-started history: each changeover negotiates against the
      // conflict record every earlier changeover accumulated, so
      // persistent chokepoints (corridors between long-lived modules)
      // start expensive and convergence takes fewer rounds. Sequential
      // by construction — the warm start consumes the previous
      // changeover's outcome — so the solves run inline (threads = 1
      // puts solve_changeovers on its deterministic fail-fast path).
      // The history grid is local per plan unless the caller supplied a
      // cross-run ledger (RoutePlannerOptions::congestion_ledger), in
      // which case this plan continues — and extends — that record.
      std::vector<double> local_history;
      std::vector<double>& history =
          options.congestion_ledger ? *options.congestion_ledger
                                    : local_history;
      return routing::solve_changeovers(
          problems, /*threads=*/1,
          [&](const ChangeoverProblem& problem, std::size_t,
              std::string* failure) {
            auto changeover = negotiate(problem, options, horizon, &history);
            if (!changeover) {
              changeover = routing::solve_prioritized(
                  problem, routing::default_order(problem.requests), options,
                  horizon, failure);
              // The failed negotiation burned its full round budget; the
              // convergence accounting must say so, or fallback-heavy
              // plans would report suspiciously few rounds.
              if (changeover) {
                changeover->negotiation_rounds = options.negotiation_rounds;
              }
            }
            return changeover;
          });
    }

    // Changeovers negotiate independently (each owns its history grid and
    // scratch), so they fan out across the routing thread pool.
    return routing::solve_changeovers(
        problems, options.threads,
        [&](const ChangeoverProblem& problem, std::size_t,
            std::string* failure) {
          auto changeover = negotiate(problem, options, horizon, nullptr);
          if (!changeover) {
            // A changeover the negotiation cannot converge on may still
            // yield to decoupled planning, so "negotiated" never does
            // worse than "prioritized".
            changeover = routing::solve_prioritized(
                problem, routing::default_order(problem.requests), options,
                horizon, failure);
            // The failed negotiation still burned its full round budget.
            if (changeover) {
              changeover->negotiation_rounds = options.negotiation_rounds;
            }
          }
          return changeover;
        });
  }

 private:
  /// `carried`, when non-null, is the cross-changeover history grid: read
  /// as the warm start and left holding whatever this changeover added.
  std::optional<ChangeoverPlan> negotiate(const ChangeoverProblem& problem,
                                          const RoutePlannerOptions& options,
                                          int horizon,
                                          std::vector<double>* carried) const {
    const int width = problem.blocked.width();
    const int height = problem.blocked.height();
    const int separation = options.separation_cells;
    const std::size_t states =
        static_cast<std::size_t>(horizon + 1) * width * height;
    // Every changeover shares the chip grid and horizon, so a carried
    // history only needs sizing once.
    std::vector<double> local;
    if (carried && carried->size() != states) carried->assign(states, 0.0);
    if (!carried) local.assign(states, 0.0);
    std::vector<double>& history = carried ? *carried : local;
    SoftScratch scratch;

    // Initial pass: route each transfer congestion-aware against the
    // routes placed so far (soft — sharing is allowed, just priced).
    std::vector<TimedRoute> routes(problem.requests.size());
    for (const std::size_t r : routing::default_order(problem.requests)) {
      TransferRequest request = problem.requests[r];
      auto soft = route_soft_resolved(
          request, problem.blocked, routes, r, horizon, separation,
          options.present_congestion_weight, history,
          options.history_congestion_weight, scratch);
      if (!soft) return std::nullopt;  // physically unroutable
      routes[r].request = request;
      routes[r].positions = std::move(soft->positions);
    }

    // Negotiation rounds: rip up every conflicted route and reroute it at
    // an escalating present-congestion cost.
    for (int round = 1; round <= options.negotiation_rounds; ++round) {
      const auto conflicted = conflicted_routes(routes, separation, horizon,
                                                width, height, &history);
      // round - 1 rip-up rounds were spent getting here.
      if (conflicted.empty()) return finish(problem.time_s, routes, round - 1);
      const double present =
          options.present_congestion_weight * static_cast<double>(round);
      for (const std::size_t r : conflicted) {
        TransferRequest request = problem.requests[r];
        auto soft = route_soft_resolved(
            request, problem.blocked, routes, r, horizon, separation, present,
            history, options.history_congestion_weight, scratch);
        if (!soft) return std::nullopt;
        routes[r].request = request;
        routes[r].positions = std::move(soft->positions);
      }
    }
    if (conflicted_routes(routes, separation, horizon, width, height, nullptr)
            .empty()) {
      return finish(problem.time_s, routes, options.negotiation_rounds);
    }
    return std::nullopt;  // failed to converge
  }

  static ChangeoverPlan finish(double time_s, std::vector<TimedRoute> routes,
                               int negotiation_rounds) {
    ChangeoverPlan changeover;
    changeover.time_s = time_s;
    changeover.negotiation_rounds = negotiation_rounds;
    for (const auto& route : routes) {
      changeover.makespan_steps =
          std::max(changeover.makespan_steps, route.arrival_step());
    }
    changeover.routes = std::move(routes);
    return changeover;
  }
};

// --- "restart" --------------------------------------------------------

class RestartRouter final : public Router {
 public:
  std::string name() const override { return "restart"; }

  RoutePlan plan(const SequencingGraph& graph, const Schedule& schedule,
                 const Placement& placement, int chip_width, int chip_height,
                 const RoutePlannerOptions& options) const override {
    const int horizon =
        routing::resolve_horizon(options, chip_width, chip_height);
    return routing::solve_changeovers(
        routing::extract_problems(graph, schedule, placement, chip_width,
                                  chip_height),
        options.threads,
        [&](const ChangeoverProblem& problem, std::size_t c,
            std::string* failure) -> std::optional<ChangeoverPlan> {
          // Per-changeover stream split from the one seed, so a
          // changeover's orderings depend on neither how many came before
          // it succeeded nor which worker picked it up.
          Rng rng(SplitMix64(options.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)))
                      .next());

          std::optional<ChangeoverPlan> best;
          auto consider = [&](const std::vector<std::size_t>& order) {
            auto candidate = routing::solve_prioritized(problem, order,
                                                        options, horizon,
                                                        failure);
            if (!candidate) return;
            if (!best || better(*candidate, *best)) {
              best = std::move(candidate);
            }
          };

          std::vector<std::size_t> order =
              routing::default_order(problem.requests);
          consider(order);
          for (int restart = 0; restart < options.max_restarts; ++restart) {
            shuffle(order, rng);
            consider(order);
          }
          return best;
        });
  }

 private:
  /// Min makespan, then min total droplet-steps.
  static bool better(const ChangeoverPlan& a, const ChangeoverPlan& b) {
    if (a.makespan_steps != b.makespan_steps) {
      return a.makespan_steps < b.makespan_steps;
    }
    return total_steps(a) < total_steps(b);
  }

  static long long total_steps(const ChangeoverPlan& plan) {
    long long steps = 0;
    for (const auto& route : plan.routes) steps += route.arrival_step();
    return steps;
  }

  static void shuffle(std::vector<std::size_t>& order, Rng& rng) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
  }
};

}  // namespace

const char* to_string(RouterKind kind) {
  switch (kind) {
    case RouterKind::kNegotiated:
      return "negotiated";
    case RouterKind::kPrioritized:
      return "prioritized";
    case RouterKind::kRestart:
      return "restart";
  }
  return "?";
}

template <>
RouterKind from_string<RouterKind>(std::string_view text) {
  if (text == "negotiated") return RouterKind::kNegotiated;
  if (text == "prioritized") return RouterKind::kPrioritized;
  if (text == "restart") return RouterKind::kRestart;
  throw std::invalid_argument(
      "unknown RouterKind \"" + std::string(text) +
      "\" (expected one of: negotiated, prioritized, restart)");
}

std::ostream& operator<<(std::ostream& os, RouterKind kind) {
  return os << to_string(kind);
}

std::istream& operator>>(std::istream& is, RouterKind& kind) {
  std::string token;
  is >> token;
  kind = from_string<RouterKind>(token);
  return is;
}

RouterRegistry::RouterRegistry() {
  register_router(to_string(RouterKind::kNegotiated),
                  [] { return std::make_unique<NegotiatedRouter>(); });
  register_router(to_string(RouterKind::kPrioritized),
                  [] { return std::make_unique<PrioritizedRouter>(); });
  register_router(to_string(RouterKind::kRestart),
                  [] { return std::make_unique<RestartRouter>(); });
}

RouterRegistry& RouterRegistry::global() {
  static RouterRegistry registry;
  return registry;
}

std::unique_ptr<Router> make_router(const std::string& name) {
  return RouterRegistry::global().make(name);
}

std::unique_ptr<Router> make_router(RouterKind kind) {
  return make_router(std::string(to_string(kind)));
}

std::vector<std::string> registered_routers() {
  return RouterRegistry::global().names();
}

}  // namespace dmfb
