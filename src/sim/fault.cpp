#include "sim/fault.h"

#include <algorithm>
#include <stdexcept>

namespace dmfb {

Point sample_uniform_fault(const Rect& array, Rng& rng) {
  if (array.empty()) {
    throw std::invalid_argument("sample_uniform_fault: empty array");
  }
  const long long index = static_cast<long long>(
      rng.next_below(static_cast<std::uint64_t>(array.area())));
  const int dx = static_cast<int>(index % array.width);
  const int dy = static_cast<int>(index / array.width);
  return Point{array.x + dx, array.y + dy};
}

std::vector<Point> enumerate_cells(const Rect& array) {
  std::vector<Point> cells;
  cells.reserve(static_cast<std::size_t>(array.area()));
  for (int y = array.y; y < array.top(); ++y) {
    for (int x = array.x; x < array.right(); ++x) {
      cells.push_back(Point{x, y});
    }
  }
  return cells;
}

void inject_fault(Chip& chip, Point cell) {
  if (!chip.in_bounds(cell)) {
    throw std::out_of_range("inject_fault: cell outside the chip");
  }
  chip.set_faulty(cell, true);
}

void clear_faults(Chip& chip) {
  for (const Point& cell : chip.faulty_cells()) chip.set_faulty(cell, false);
}

FaultInjectionPlan sample_fault_plan(const Rect& array, int count,
                                     double horizon_s, Rng& rng) {
  if (count < 0) {
    throw std::invalid_argument("sample_fault_plan: negative count");
  }
  FaultInjectionPlan plan;
  plan.faults.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PlannedFault fault;
    fault.cell = sample_uniform_fault(array, rng);
    fault.time_s = rng.next_double() * horizon_s;
    plan.faults.push_back(fault);
  }
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const PlannedFault& a, const PlannedFault& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              if (a.cell.y != b.cell.y) return a.cell.y < b.cell.y;
              return a.cell.x < b.cell.x;
            });
  return plan;
}

}  // namespace dmfb
