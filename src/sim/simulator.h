// simulator.h — droplet-level execution of a synthesized, placed assay.
//
// This substrate substitutes for the fabricated chips the paper's group
// used: it executes the schedule on the placement, dispensing droplets at
// boundary ports, routing them to module sites with the A* router, merging
// and splitting their contents, and stalling whenever a module footprint
// or a route touches a faulty electrode. The behaviour the CAD results
// depend on — "a fault inside a module makes the assay fail until the
// module is relocated" — is preserved exactly.
//
// Routing model: only the functional regions of active modules block a
// droplet; segregation rings are passable, since per §6 of the paper the
// ring "provides a communication path for droplet movement".
//
// Simplifications (documented in DESIGN.md): transport happens at slice
// boundaries and is not added to the schedule's makespan (the paper's
// schedule also excludes routing time); droplet-droplet collision is
// avoided structurally by routing one droplet at a time against the
// module occupancy.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "assay/schedule.h"
#include "assay/sequencing_graph.h"
#include "biochip/chip.h"
#include "biochip/droplet.h"
#include "core/placement.h"
#include "sim/route_planner.h"
#include "sim/router.h"

namespace dmfb {

/// Simulator tuning.
struct SimOptions {
  /// Droplet transport speed; defaults to the repo-wide actuation rate
  /// (sim/route_planner.h), so simulated times and the routing layer's
  /// transport_seconds() agree.
  double droplet_speed_cells_per_s = kActuationStepsPerSecond;
  /// Plan real droplet routes (and fail when none exists). When false,
  /// droplets teleport; useful for placement-only experiments.
  bool verify_routing = true;
};

/// One timestamped thing that happened during simulation.
struct SimEvent {
  double time_s = 0.0;
  std::string what;
};

/// Result of one assay execution.
struct SimulationResult {
  bool success = false;
  std::string failure_reason;
  /// Index (into schedule.modules()) of the module that failed, -1 if none.
  int failed_module = -1;
  /// The faulty cell responsible for the failure (valid iff failed).
  Point fault_cell{};
  double makespan_s = 0.0;
  std::vector<SimEvent> events;
  /// Output droplet of every completed reconfigurable operation.
  std::map<OperationId, Droplet> op_outputs;
  int routes_planned = 0;
  long long route_cells = 0;
  double transport_seconds = 0.0;
};

/// Executes assays on a chip.
class Simulator {
 public:
  explicit Simulator(SimOptions options = {}) : options_(options) {}

  /// Runs `graph`'s operations per `schedule` at the locations in
  /// `placement` on `chip`. The chip must be at least as large as the
  /// placement's canvas requirement (bounding box).
  SimulationResult run(const SequencingGraph& graph, const Schedule& schedule,
                       const Placement& placement, const Chip& chip) const;

 private:
  SimOptions options_;
};

}  // namespace dmfb
