// simulator.h — droplet-level execution of a synthesized, placed assay.
//
// This substrate substitutes for the fabricated chips the paper's group
// used: it executes the schedule on the placement, dispensing droplets at
// boundary ports, routing them to module sites with the A* router, merging
// and splitting their contents, and stalling whenever a module footprint
// or a route touches a faulty electrode. The behaviour the CAD results
// depend on — "a fault inside a module makes the assay fail until the
// module is relocated" — is preserved exactly.
//
// Routing model: only the functional regions of active modules block a
// droplet; segregation rings are passable, since per §6 of the paper the
// ring "provides a communication path for droplet movement".
//
// Simplifications (documented in DESIGN.md): transport happens at slice
// boundaries and is not added to the schedule's makespan (the paper's
// schedule also excludes routing time); droplet-droplet collision is
// avoided structurally by routing one droplet at a time against the
// module occupancy. Under the event-queue engine (sim/sim_engine.h, the
// default) those slice boundaries are exactly the changeover events the
// queue dispatches: droplets and modules sleep until a module-start
// event pulls their inputs across the array, so nothing is stepped
// between boundaries — but the slice-boundary timing model itself is
// unchanged, and both engines produce bit-identical results.
//
// Two engines implement the model:
//   - SimEngineKind::kEvent (default): the event-queue engine — pooled
//     per-step state, O(dirty) blocked-grid maintenance, stall
//     diagnostics (sim/sim_engine.h).
//   - SimEngineKind::kReference: the original straight-line
//     implementation, kept as the pinned behavioural reference the
//     event engine is audited against (tests/test_sim_engine.cpp), the
//     same way the copy annealing engine pins the delta engine.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "assay/schedule.h"
#include "assay/sequencing_graph.h"
#include "biochip/chip.h"
#include "biochip/droplet.h"
#include "core/placement.h"
#include "sim/route_planner.h"
#include "sim/router.h"
#include "util/enum_text.h"

namespace dmfb {

/// Which implementation executes the run. Both produce bit-identical
/// SimulationResults (events, op_outputs, route accounting, failure
/// reasons) — kEvent is the fast production engine, kReference the
/// pinned audit baseline.
enum class SimEngineKind {
  kEvent,      ///< event-queue engine with pooled per-step state
  kReference,  ///< original implementation, kept as the identity pin
};

/// "event" / "reference", for configs and bench JSON; `from_string` and
/// `>>` throw std::invalid_argument on unknown text.
const char* to_string(SimEngineKind kind);
template <>
SimEngineKind from_string<SimEngineKind>(std::string_view text);
std::ostream& operator<<(std::ostream& os, SimEngineKind kind);
std::istream& operator>>(std::istream& is, SimEngineKind& kind);

/// Simulator tuning.
struct SimOptions {
  /// Droplet transport speed; defaults to the repo-wide actuation rate
  /// (sim/route_planner.h), so simulated times and the routing layer's
  /// transport_seconds() agree.
  double droplet_speed_cells_per_s = kActuationStepsPerSecond;
  /// Plan real droplet routes (and fail when none exists). When false,
  /// droplets teleport; useful for placement-only experiments.
  bool verify_routing = true;
  /// Record the human-readable event log (SimulationResult::events).
  /// Batch and service runs that only consume the structured fields set
  /// this false to keep per-event string formatting off the hot path;
  /// everything except `events` is bit-identical either way. Reached
  /// through the pipeline as PipelineOptions::simulation.record_events.
  bool record_events = true;
  /// Executing engine; kEvent unless pinning against the reference.
  SimEngineKind engine = SimEngineKind::kEvent;
};

/// One timestamped thing that happened during simulation.
struct SimEvent {
  double time_s = 0.0;
  std::string what;
};

/// Result of one assay execution.
struct SimulationResult {
  bool success = false;
  std::string failure_reason;
  /// Index (into schedule.modules()) of the module that failed, -1 if none.
  int failed_module = -1;
  /// The faulty cell responsible for the failure (valid iff failed).
  Point fault_cell{};
  double makespan_s = 0.0;
  std::vector<SimEvent> events;
  /// Output droplet of every completed reconfigurable operation.
  std::map<OperationId, Droplet> op_outputs;
  int routes_planned = 0;
  long long route_cells = 0;
  double transport_seconds = 0.0;
};

/// Executes assays on a chip.
class Simulator {
 public:
  explicit Simulator(SimOptions options = {}) : options_(options) {}

  /// Runs `graph`'s operations per `schedule` at the locations in
  /// `placement` on `chip`. The chip must be at least as large as the
  /// placement's canvas requirement (bounding box). A thin adapter: the
  /// work happens in the engine options().engine selects — use
  /// EventSimEngine (sim/sim_engine.h) directly for stall diagnostics,
  /// per-phase telemetry, or cross-run scratch reuse.
  SimulationResult run(const SequencingGraph& graph, const Schedule& schedule,
                       const Placement& placement, const Chip& chip) const;

 private:
  SimOptions options_;
};

}  // namespace dmfb
