// actuation.h — compiling a placed, routed assay into the electrode
// actuation program a DMFB microcontroller executes.
//
// §2 of the paper: "the configurations of the microfluidic array are
// dynamically programmed into a microcontroller that controls the
// voltages of electrodes in the array". This module produces that
// program: a sequence of frames, each the set of electrodes held at the
// actuation voltage — module hold patterns while operations run, and
// per-step droplet-transport patterns at changeovers.
#pragma once

#include <string>
#include <vector>

#include "assay/schedule.h"
#include "core/placement.h"
#include "sim/route_planner.h"

namespace dmfb {

/// One control frame: every listed cell is driven at the actuation
/// voltage from `time_s` until the next frame.
struct ActuationFrame {
  double time_s = 0.0;
  std::vector<Point> actuated;
  std::string note;  ///< e.g. "hold slice [0,6)" or "transport step 3"
};

/// A compiled control program.
struct ActuationProgram {
  int chip_width = 0;
  int chip_height = 0;
  double control_voltage = 80.0;
  std::vector<ActuationFrame> frames;

  long long total_actuations() const;
  int peak_simultaneous() const;
  double duration_s() const {
    return frames.empty() ? 0.0 : frames.back().time_s;
  }
};

/// Compiler options.
struct ActuationOptions {
  double control_voltage = 80.0;
  /// Transport step duration (seconds per droplet move); defaults to the
  /// repo-wide actuation period (sim/route_planner.h).
  double seconds_per_step = kActuationPeriodS;
};

/// Compiles placement + schedule + routes into a frame program. Hold
/// frames actuate every functional-region cell of the modules active in
/// each slice; transport frames actuate the destination electrode of each
/// moving droplet (electrowetting pulls the droplet onto the energized
/// neighbour).
ActuationProgram compile_actuation(const Schedule& schedule,
                                   const Placement& placement,
                                   const RoutePlan& routes, int chip_width,
                                   int chip_height,
                                   const ActuationOptions& options = {});

/// Sanity checks: frames in chronological order, all cells in bounds,
/// no duplicate cell within one frame. Returns violations (empty = OK).
std::vector<std::string> validate_program(const ActuationProgram& program);

}  // namespace dmfb
