// tester.h — on-line testing of the array (after Su et al., ITC 2003 [13]).
//
// A test droplet is dispensed and walked over every currently-free cell of
// the array while assays run on the occupied part. A droplet that fails to
// arrive where it was steered localizes the faulty electrode: the cell it
// was asked to enter did not actuate. This is the detection mechanism the
// paper assumes ("detected using the technique described in [13]") before
// partial reconfiguration kicks in.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "biochip/chip.h"
#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// Result of one test-droplet pass.
struct TestResult {
  bool fault_detected = false;
  Point faulty_cell{};       ///< valid iff fault_detected
  int cells_visited = 0;     ///< distinct free cells reached
  int cells_reachable = 0;   ///< free cells connected to the start
  int steps_taken = 0;       ///< droplet moves performed
  bool complete_coverage() const {
    return cells_visited == cells_reachable;
  }
};

/// Walks a test droplet over the free cells of the chip.
class OnlineTester {
 public:
  /// `occupied` marks cells reserved by running modules (the test droplet
  /// must not disturb them); its dimensions must match the chip.
  /// `start` is where the test droplet enters (must be free and fault-free,
  /// else detection is reported immediately at the start cell).
  TestResult run_test(const Chip& chip, const Matrix<std::uint8_t>& occupied,
                      Point start) const;

  /// Convenience: tests an idle chip (nothing occupied) from cell (0, 0).
  TestResult run_test(const Chip& chip) const;
};

}  // namespace dmfb
