// recovery.h — the closed loop the paper's fault-tolerance story implies:
// detect (tester) -> relocate (reconfigurator) -> resume (simulator).
//
// Also provides the exhaustive fault campaign used to cross-validate the
// Fault Tolerance Index: injecting a fault into every cell one at a time
// and attempting recovery must succeed for exactly the C-covered cells.
#pragma once

#include <string>
#include <vector>

#include "assay/schedule.h"
#include "assay/sequencing_graph.h"
#include "core/fti.h"
#include "core/placement.h"
#include "core/reconfig.h"
#include "sim/simulator.h"

namespace dmfb {

/// Outcome of one detect-reconfigure-resume scenario.
struct OnlineRecoveryResult {
  bool fault_hit = false;      ///< the fault actually disturbed the assay
  bool recovered = false;      ///< reconfiguration succeeded
  bool completed = false;      ///< the (re-run) assay completed
  std::string detail;
  RecoveryResult reconfiguration;
  SimulationResult first_run;   ///< run that hit (or missed) the fault
  SimulationResult second_run;  ///< run after reconfiguration (if any)
};

/// Simulates the assay on a chip with a fault at `faulty_cell`. If the
/// fault stalls a module, applies partial reconfiguration within `array`
/// and re-runs. A fault on an unused cell simply completes the first run.
OnlineRecoveryResult simulate_online_recovery(
    const SequencingGraph& graph, const Schedule& schedule,
    const Placement& placement, Point faulty_cell, const Rect& array,
    const Reconfigurator& reconfigurator, const SimOptions& sim_options = {});

/// Exhaustive single-fault campaign over every cell of `array`.
struct FaultCampaignResult {
  long long total_cells = 0;
  long long survivable_cells = 0;  ///< recovery succeeded (or fault harmless)
  std::vector<Point> unsurvivable;
  double survivable_fraction() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(survivable_cells) / total_cells;
  }
};

/// For every cell: can the placement survive that cell failing, using
/// partial reconfiguration only? This is the *empirical* FTI; it must
/// equal evaluate_fti()'s prediction (tests assert this).
FaultCampaignResult exhaustive_fault_campaign(
    const Placement& placement, const Rect& array,
    const Reconfigurator& reconfigurator);

}  // namespace dmfb
