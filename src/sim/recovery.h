// recovery.h — the closed loop the paper's fault-tolerance story implies:
// detect (tester) -> repair -> resume.
//
// Two generations of that loop live here:
//
//   - The offline loop (simulate_online_recovery): run, and if a fault
//     stalls a module, relocate it (partial reconfiguration, §5.1) and
//     re-run the whole assay from t = 0. Simple, and still the engine
//     behind the exhaustive fault campaign cross-validating the Fault
//     Tolerance Index (empirical survivability == evaluate_fti()'s
//     prediction, asserted by tests).
//
//   - The online engine (OnlineRecoveryEngine): faults are injected
//     *mid-run* through EventSimEngine::run_online while the event queue
//     is live; a detected failure captures a SimCheckpoint (clock,
//     completed ops, in-flight modules, droplet inventory) and repair is
//     attempted up an escalation ladder —
//
//         reconfigure  relocate only the modules touching the fault
//                      (Reconfigurator over maximal empty rectangles),
//                      dragging their droplets along, and re-run just the
//                      interrupted operation from the detection instant;
//         reroute      a routing stall whose wait chain has a known
//                      clearing time is retimed past it (shift_from), the
//                      local fix for a blocked changeover;
//         replace      full re-place of the residual schedule by a
//                      defect-aware placer, warm-started from the current
//                      placement (the compile-cache seam), droplets of
//                      in-flight modules migrated to their new sites —
//
//     and the run *resumes from the checkpoint* instead of re-running:
//     completed-prefix events are bit-identical to the uninterrupted run
//     and resume is gated >= 2x faster than a rerun (bench_recovery).
//     Every attempt is budgeted by a host-wall deadline and a cycle cap;
//     when the ladder is exhausted the engine degrades gracefully to a
//     partial result plus the structured RecoveryReport.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "assay/schedule.h"
#include "assay/sequencing_graph.h"
#include "core/fti.h"
#include "core/placement.h"
#include "core/placer.h"
#include "core/reconfig.h"
#include "sim/fault.h"
#include "sim/sim_engine.h"
#include "sim/simulator.h"

namespace dmfb {

/// Outcome of one detect-reconfigure-resume scenario.
struct OnlineRecoveryResult {
  bool fault_hit = false;      ///< the fault actually disturbed the assay
  bool recovered = false;      ///< reconfiguration succeeded
  bool completed = false;      ///< the (re-run) assay completed
  std::string detail;
  RecoveryResult reconfiguration;
  SimulationResult first_run;   ///< run that hit (or missed) the fault
  SimulationResult second_run;  ///< run after reconfiguration (if any)
};

/// Simulates the assay on a chip with a fault at `faulty_cell`. If the
/// fault stalls a module, applies partial reconfiguration within `array`
/// and re-runs. A fault on an unused cell simply completes the first run.
OnlineRecoveryResult simulate_online_recovery(
    const SequencingGraph& graph, const Schedule& schedule,
    const Placement& placement, Point faulty_cell, const Rect& array,
    const Reconfigurator& reconfigurator, const SimOptions& sim_options = {});

/// Exhaustive single-fault campaign over every cell of `array`.
struct FaultCampaignResult {
  long long total_cells = 0;
  long long survivable_cells = 0;  ///< recovery succeeded (or fault harmless)
  std::vector<Point> unsurvivable;
  double survivable_fraction() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(survivable_cells) / total_cells;
  }
};

/// For every cell: can the placement survive that cell failing, using
/// partial reconfiguration only? This is the *empirical* FTI; it must
/// equal evaluate_fti()'s prediction (tests assert this).
FaultCampaignResult exhaustive_fault_campaign(
    const Placement& placement, const Rect& array,
    const Reconfigurator& reconfigurator);

// ---------------------------------------------------------------------------
// Online recovery: checkpointed resume up the escalation ladder.
// ---------------------------------------------------------------------------

/// The escalation ladder, cheapest rung first.
enum class RecoveryAction {
  kReconfigure,  ///< partial reconfiguration of the modules on the fault
  kReroute,      ///< retime the stalled changeover past its wait chain
  kReplace,      ///< defect-aware re-place of the residual schedule
};

const char* to_string(RecoveryAction action);

/// One rung attempt within one recovery cycle (telemetry).
struct RecoveryAttempt {
  RecoveryAction action = RecoveryAction::kReconfigure;
  int cycle = 0;         ///< recovery cycle (1-based) the attempt belongs to
  bool success = false;  ///< the repair was applied (the resume may still fail)
  double wall_s = 0.0;   ///< host seconds spent in this attempt
  std::string detail;
  std::vector<RelocationOutcome> relocations;  ///< reconfigure/replace moves
};

/// Structured telemetry of one online run: what fired, what was tried,
/// and where the assay ended up. Surfaced through the pipeline stage
/// observer and the dmfb_serve response.
struct RecoveryReport {
  int faults_injected = 0;  ///< planned faults that actually fired
  int recovery_cycles = 0;  ///< simulator failures the ladder handled
  std::vector<RecoveryAttempt> attempts;
  bool recovered = false;  ///< >= 1 repair was applied successfully
  bool completed = false;  ///< the assay ultimately finished
  /// Simulated seconds added by recovery: rolled-back work re-run plus
  /// retiming slack (final makespan == nominal makespan + time_lost_s
  /// when only reconfigure/reroute rungs fired).
  double time_lost_s = 0.0;
  double recovery_wall_s = 0.0;  ///< host seconds across all attempts
  double resumed_from_s = 0.0;   ///< simulated clock of the last resume
  /// Events in the clean completed prefix of the last checkpoint —
  /// bit-identical to the uninterrupted run's first this-many events.
  std::size_t clean_prefix_events = 0;
  std::string detail;  ///< one-line outcome summary
  StallReport last_stall;  ///< diagnosis of the last stall seen (if any)
};

/// Budgets and knobs of the online engine.
struct RecoveryOptions {
  SimOptions sim;
  FtiOptions fti;
  RelocationPolicy policy = RelocationPolicy::kNearest;
  /// Host-wall budget across all repair attempts of one run; when it is
  /// exhausted the engine degrades to a partial result. <= 0: unlimited.
  double deadline_s = 5.0;
  /// Hard cap on detect->repair->resume cycles (multi-fault campaigns
  /// escalate one failure at a time).
  int max_cycles = 8;
  bool enable_reconfigure = true;
  bool enable_reroute = true;
  bool enable_replace = true;
  /// Placer registry name for the replace rung; must be defect-aware
  /// ("sa", "greedy", "two-stage", "portfolio").
  std::string replace_placer = "sa";
  /// Context for the replace rung. canvas dimensions of 0 inherit the
  /// failing placement's canvas; defects and the warm-start placement are
  /// filled in by the engine.
  PlacerContext replace_context;
};

/// Result of one online run: the merged simulation (reads as one
/// continuous execution), the recovery telemetry, and the repaired
/// schedule/placement the run finished on.
struct OnlineRunResult {
  SimulationResult simulation;
  RecoveryReport recovery;
  Schedule final_schedule;
  Placement final_placement;
  /// Valid iff the run degraded: the state at the last unrecovered
  /// failure, for diagnostics or an out-of-band retry.
  SimCheckpoint last_checkpoint;
};

/// The online recovery engine (tentpole of the robustness story): drives
/// EventSimEngine::run_online under a FaultInjectionPlan, escalating each
/// detected failure up the reconfigure -> reroute -> replace ladder and
/// resuming from the failure checkpoint after every successful repair.
class OnlineRecoveryEngine {
 public:
  explicit OnlineRecoveryEngine(RecoveryOptions options = {});

  const RecoveryOptions& options() const { return options_; }

  /// Runs the assay on a pristine `array`-sized chip while injecting
  /// `plan` (see FaultInjectionPlan for trigger semantics). Never throws
  /// on recovery failure — inspect `recovery.completed`; throws only on
  /// the same argument errors EventSimEngine::run_online rejects.
  OnlineRunResult run(const SequencingGraph& graph, const Schedule& schedule,
                      const Placement& placement, const Rect& array,
                      const FaultInjectionPlan& plan) const;

 private:
  RecoveryOptions options_;
};

}  // namespace dmfb
