#include "sim/sim_engine.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "biochip/module_spec.h"

namespace dmfb {
namespace {

// Same slice-boundary fuzz as the reference engine: a module ending (or
// starting) exactly at the changeover instant does not block transport.
constexpr double kEps = 1e-9;

/// Center cell of a module's footprint (always inside it).
Point footprint_center(const Rect& fp) {
  return Point{fp.x + fp.width / 2, fp.y + fp.height / 2};
}

void append_int(std::string& out, int value) {
  char digits[16];
  const auto [last, ec] = std::to_chars(digits, digits + sizeof digits, value);
  (void)ec;  // int always fits
  out.append(digits, last);
}

/// Appends "(x,y)" — the same bytes the reference's fmt_point produces.
void append_point(std::string& out, Point p) {
  out.push_back('(');
  append_int(out, p.x);
  out.push_back(',');
  append_int(out, p.y);
  out.push_back(')');
}

std::string fmt_point(Point p) {
  std::string text;
  append_point(text, p);
  return text;
}

// A* frontier nodes packed into one integer so the open list is a flat
// uint64 binary heap (no per-node allocation, one cache line per 8
// nodes): f in the top 22 bits, g (complemented) in the middle 21, cell
// index in the low 20. Complementing g makes equal-f ties pop the
// *deepest* node first, which drives the search straight at the goal
// instead of sweeping the whole equal-f frontier. The tie-break differs
// from the reference router's (f, g, (x, y)) order, but only the
// optimal path *length* is consumed and that is invariant to expansion
// order under the admissible Manhattan heuristic.
constexpr int kIndexBits = 20;
constexpr int kGBits = 21;
constexpr std::uint64_t kGMask = (1u << kGBits) - 1;
constexpr long long kMaxAStarCells = 1LL << kIndexBits;

constexpr std::uint64_t pack_node(int f, int g, int index) {
  return (static_cast<std::uint64_t>(f) << (kIndexBits + kGBits)) |
         ((kGMask - static_cast<std::uint64_t>(g)) << kIndexBits) |
         static_cast<std::uint64_t>(index);
}
constexpr int node_g(std::uint64_t key) {
  return static_cast<int>(kGMask - ((key >> kIndexBits) & kGMask));
}
constexpr int node_index(std::uint64_t key) {
  return static_cast<int>(key & ((1u << kIndexBits) - 1));
}

/// One entry in the event queue. `phase` orders ties at one instant:
/// teardowns (0) dispatch before starts (1), matching the changeover
/// model where transport happens while the array is reprogrammed; `seq`
/// replays the reference's (start_s, schedule index) processing order.
struct QueuedEvent {
  double time_s = 0.0;
  int phase = 0;
  int seq = 0;
  int module = -1;
};

/// Min-heap comparator (std::push_heap wants "a sorts before b" = fires
/// later, so the heap root is the earliest event).
bool fires_later(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.time_s != b.time_s) return a.time_s > b.time_s;
  if (a.phase != b.phase) return a.phase > b.phase;
  return a.seq > b.seq;
}

}  // namespace

EventSimEngine::EventSimEngine(SimOptions options) : options_(options) {}

void EventSimEngine::set_observer(SimEngineObserver observer) {
  observer_ = std::move(observer);
}

SimEngineRun EventSimEngine::run(const SequencingGraph& graph,
                                 const Schedule& schedule,
                                 const Placement& placement,
                                 const Chip& chip) {
  return run_online(graph, schedule, placement, chip, FaultInjectionPlan{});
}

SimEngineRun EventSimEngine::run_online(const SequencingGraph& graph,
                                        const Schedule& schedule,
                                        const Placement& placement,
                                        const Chip& chip,
                                        const FaultInjectionPlan& plan,
                                        const SimCheckpoint* resume_from,
                                        SimCheckpoint* checkpoint_out) {
  if (schedule.module_count() != placement.module_count()) {
    throw std::invalid_argument(
        "Simulator::run: schedule and placement disagree on module count");
  }
  const Rect region{0, 0, chip.width(), chip.height()};
  const Rect bbox = placement.bounding_box();
  if (!region.contains(bbox)) {
    throw std::invalid_argument(
        "Simulator::run: chip smaller than the placement bounding box");
  }
  for (const PlannedFault& fault : plan.faults) {
    if (!region.contains(Rect{fault.cell.x, fault.cell.y, 1, 1})) {
      throw std::invalid_argument(
          "EventSimEngine::run_online: planned fault outside the chip");
    }
  }
  if (resume_from != nullptr &&
      (!resume_from->valid ||
       resume_from->start_done.size() !=
           static_cast<std::size_t>(schedule.module_count()))) {
    throw std::invalid_argument(
        "EventSimEngine::run_online: checkpoint does not match the schedule");
  }

  SimEngineRun out;
  SimulationResult& result = out.result;
  SimEngineTelemetry& telemetry = out.telemetry;
  const int module_count = schedule.module_count();
  const int op_count = graph.operation_count();

  // ---- per-run scratch reset (buffers persist across runs) ----
  // Fast path: a clean previous run left blocked_ at its faults-only
  // state, and a chip with fault_revision() == 0 provably never had a
  // fault injected — with matching dimensions and an empty cached fault
  // set the grids are already exactly right, no O(W*H) work needed.
  const bool reuse_grids = grid_clean_ && faults_.empty() &&
                           chip.fault_revision() == 0 &&
                           blocked_.width() == region.width &&
                           blocked_.height() == region.height;
  if (!reuse_grids) {
    blocked_.reset(region.width, region.height, 0);
    fault_grid_.reset(region.width, region.height, 0);
    faults_.clear();
    fault_bbox_ = Rect{};
    if (chip.fault_revision() != 0) {
      for (int y = 0; y < region.height; ++y) {
        for (int x = 0; x < region.width; ++x) {
          const Point p{x, y};
          if (chip.is_faulty(p)) {
            faults_.push_back(p);  // row-major: = faulty_cells() order
            fault_grid_.at(p) = 1;
            blocked_.at(p) = 1;
            fault_bbox_ = fault_bbox_.united(Rect{x, y, 1, 1});
          }
        }
      }
    }
  }
  grid_clean_ = false;  // until this run tears every module down again
  filled_.clear();
  filled_rects_.clear();
  pending_fills_.clear();
  func_rects_.clear();
  func_rects_.reserve(static_cast<std::size_t>(module_count));
  for (int i = 0; i < module_count; ++i) {
    func_rects_.push_back(
        placement.module(i).footprint().inflated(-kSegregationRingCells));
  }
  const std::size_t cell_count = static_cast<std::size_t>(blocked_.size());
  if (astar_stamp_.size() != cell_count) {
    astar_stamp_.assign(cell_count, 0);
    astar_g_.resize(cell_count);
    astar_generation_ = 0;
  }

  // Droplet state, dense by operation id (the reference keeps maps; ids
  // and contents come out identical because creation order is replayed).
  // Operation outputs live directly in result.op_outputs — std::map nodes
  // are address-stable, so droplet_ref aliases them instead of keeping a
  // second copy; only dispense droplets that have not produced an output
  // yet need their own storage.
  std::vector<Droplet*> droplet_ref(static_cast<std::size_t>(op_count),
                                    nullptr);
  std::vector<std::optional<Droplet>> dispensed(
      static_cast<std::size_t>(op_count));
  std::vector<Point> droplet_pos(static_cast<std::size_t>(op_count));
  std::vector<std::uint8_t> droplet_placed(static_cast<std::size_t>(op_count),
                                           0);
  int next_droplet_id = 0;

  // Online bookkeeping: which start/end events already dispatched (this
  // is what a checkpoint snapshots), the injection cursor, and — when
  // both injection and the log are on — where each started module's
  // deferred (end-timestamped) "finish"/"split" lines sit in the event
  // log, so a fault detected under a live module can roll exactly those
  // lines back.
  const bool injecting = !plan.faults.empty();
  std::vector<std::uint8_t> start_done(static_cast<std::size_t>(module_count),
                                       0);
  std::vector<std::uint8_t> end_done(static_cast<std::size_t>(module_count),
                                     0);
  std::size_t fault_cursor = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> deferred_range;
  if (injecting && options_.record_events) {
    deferred_range.assign(static_cast<std::size_t>(module_count), {0u, 0u});
  }

  if (options_.record_events) {
    // ~2-4 lines per module (start/finish/stored/split/dispense).
    result.events.reserve(static_cast<std::size_t>(module_count) * 4);
  }
  auto push_event = [&](double t) {
    result.events.push_back(SimEvent{t, event_buffer_});
  };

  // ---- blocked-grid maintenance: event-driven stamping ----
  // The dispatch loop owns the grid; routing calls never rebuild it. A
  // start event *pends* its module's functional rect — the reference's
  // active predicate is strict on both ends, so a module never blocks at
  // its own start instant — and pending rects are stamped when the clock
  // first advances past that instant. An end event clears the rect and
  // re-stamps any faults under it; teardowns dispatch before starts at
  // one instant, so every route at t sees exactly the modules running
  // *across* t, the set the reference recomputes from scratch per call.
  // The reference's `exclude` needs no counterpart here: the module being
  // serviced is at most pending, never stamped, at its own start.
  // Placement feasibility makes time-overlapping footprints spatially
  // disjoint, so a teardown's clear cannot erase another active module.
  bool grid_dirty_since_route = true;
  auto clear_rect = [&](const Rect& r) {
    blocked_.fill_rect(r, 0);
    const Rect clipped = r.intersection(region);
    telemetry.blocked_cells_touched += clipped.area();
    const Rect overlap = clipped.intersection(fault_bbox_);
    for (int y = overlap.y; y < overlap.top(); ++y) {
      for (int x = overlap.x; x < overlap.right(); ++x) {
        if (fault_grid_.at(x, y) != 0) blocked_.at(x, y) = 1;
      }
    }
  };
  auto flush_pending_fills = [&]() {
    for (int idx : pending_fills_) {
      const Rect& r = func_rects_[static_cast<std::size_t>(idx)];
      blocked_.fill_rect(r, 1);
      telemetry.blocked_cells_touched += r.intersection(region).area();
      filled_.push_back(idx);
      filled_rects_.push_back(r);
    }
    pending_fills_.clear();
    grid_dirty_since_route = true;
  };

  // ---- shortest-path length on the current blocked grid ----
  // Returns the optimal path length in moves, 0 for from==to, -1 when
  // unreachable — exactly the values the reference extracts from
  // find_path (path->size() - 1), with the same endpoint guards.
  auto astar_length = [&](Point from, Point to) -> int {
    ++astar_generation_;
    if (astar_generation_ == 0) {  // uint32 wrap: restamp everything once
      std::fill(astar_stamp_.begin(), astar_stamp_.end(), 0u);
      astar_generation_ = 1;
    }
    auto frontier = frontier_pool_.acquire();
    std::vector<std::uint64_t>& heap = *frontier;
    heap.clear();
    const int width = blocked_.width();
    const int to_index = to.y * width + to.x;
    const int from_index = from.y * width + from.x;
    astar_g_[static_cast<std::size_t>(from_index)] = 0;
    astar_stamp_[static_cast<std::size_t>(from_index)] = astar_generation_;
    heap.push_back(pack_node(manhattan_distance(from, to), 0, from_index));
    std::push_heap(heap.begin(), heap.end(), std::greater<std::uint64_t>());
    ++telemetry.astar_pushes;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<std::uint64_t>());
      const std::uint64_t key = heap.back();
      heap.pop_back();
      const int g = node_g(key);
      const int index = node_index(key);
      if (index == to_index) return g;  // first goal pop is optimal
      if (g > astar_g_[static_cast<std::size_t>(index)]) continue;  // stale
      const int x = index % width;
      const int y = index / width;
      const Point steps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (const Point& step : steps) {
        const int nx = x + step.x;
        const int ny = y + step.y;
        if (!blocked_.in_bounds(nx, ny) || blocked_.at(nx, ny) != 0) continue;
        const int nindex = ny * width + nx;
        const int ng = g + 1;
        if (astar_stamp_[static_cast<std::size_t>(nindex)] !=
                astar_generation_ ||
            ng < astar_g_[static_cast<std::size_t>(nindex)]) {
          astar_g_[static_cast<std::size_t>(nindex)] = ng;
          astar_stamp_[static_cast<std::size_t>(nindex)] = astar_generation_;
          heap.push_back(pack_node(
              ng + std::abs(nx - to.x) + std::abs(ny - to.y), ng, nindex));
          std::push_heap(heap.begin(), heap.end(),
                         std::greater<std::uint64_t>());
          ++telemetry.astar_pushes;
        }
      }
    }
    return -1;
  };
  auto route_length = [&](Point from, Point to) -> int {
    if (!blocked_.in_bounds(from) || !blocked_.in_bounds(to)) return -1;
    if (blocked_.at(from) != 0 || blocked_.at(to) != 0) return -1;
    if (from == to) return 0;
    // Manhattan fast path: with no active-module rect and no fault inside
    // the source-target bounding box, a staircase walk is unobstructed
    // and the Manhattan distance is the exact optimum.
    const Rect corridor{std::min(from.x, to.x), std::min(from.y, to.y),
                        std::abs(from.x - to.x) + 1,
                        std::abs(from.y - to.y) + 1};
    bool obstructed = false;
    for (const Rect& r : filled_rects_) {
      if (r.intersects(corridor)) {
        obstructed = true;
        break;
      }
    }
    if (!obstructed && corridor.intersects(fault_bbox_)) {
      for (const Point& f : faults_) {
        if (corridor.contains(f)) {
          obstructed = true;
          break;
        }
      }
    }
    if (!obstructed) {
      ++telemetry.manhattan_fast_paths;
      return manhattan_distance(from, to);
    }
    if (blocked_.size() >= kMaxAStarCells) {
      // Grid too large for packed nodes (>1M cells): use the reference
      // router; correctness over speed for out-of-envelope chips.
      const auto path = find_path(blocked_, from, to);
      return path ? static_cast<int>(path->size()) - 1 : -1;
    }
    return astar_length(from, to);
  };

  // ---- stall diagnosis (engine-only; the reference just says "cannot
  // reach"). Cold path: runs at most once, on the event that fails. ----
  auto blockers_on_witness = [&](const DropletPath& witness) {
    StallReport& stall = out.stall;
    double earliest = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < filled_.size(); ++k) {
      const Rect& r = filled_rects_[k];
      for (const Point& cell : witness) {
        if (r.contains(cell)) {
          stall.blocking_modules.push_back(filled_[k]);
          earliest = std::min(earliest, schedule.module(filled_[k]).end_s);
          break;
        }
      }
    }
    if (!stall.blocking_modules.empty()) stall.earliest_unblock_s = earliest;
    // filled_ is maintained swap-erase order; the report promises
    // schedule order.
    std::sort(stall.blocking_modules.begin(), stall.blocking_modules.end());
  };
  auto describe_blockers = [&](std::ostringstream& os, double t) {
    const StallReport& stall = out.stall;
    os << "blocked by {";
    for (std::size_t k = 0; k < stall.blocking_modules.size(); ++k) {
      const ScheduledModule& b = schedule.module(stall.blocking_modules[k]);
      if (k > 0) os << ", ";
      os << b.label << " [" << b.start_s << "," << b.end_s << ")s";
    }
    os << "}; earliest teardown t=" << stall.earliest_unblock_s << "s";
    if (stall.earliest_unblock_s > t + kEps) {
      os << " — transport happens at the changeover instant, so the "
            "schedule must be retimed past that teardown";
    }
  };
  auto diagnose_route_stall = [&](double t, int waiting, OperationId producer,
                                  Point from, Point target) {
    StallReport& stall = out.stall;
    stall.stalled = true;
    stall.time_s = t;
    stall.waiting_module = waiting;
    stall.droplet_label = graph.operation(producer).label;
    stall.target = target;
    std::ostringstream os;
    os << "droplet of '" << stall.droplet_label << "' -> module '"
       << schedule.module(waiting).label << "' at t=" << t << "s: ";
    // Witness route on the faults-only grid: if none exists even with
    // every module torn down, defects sever the path outright.
    const auto witness = find_path(fault_grid_, from, target);
    if (!witness) {
      stall.fault_walled = true;
      os << "no path exists even with every module torn down — faulty "
            "electrodes wall the target off";
    } else {
      blockers_on_witness(*witness);
      if (stall.blocking_modules.empty()) {
        // Endpoint blocked rather than path crossed (e.g. infeasible
        // placement overlapping the target).
        os << "route endpoint occupied by an active module";
      } else {
        describe_blockers(os, t);
      }
    }
    stall.chain = os.str();
  };
  auto diagnose_dispense_stall = [&](double t, int waiting, Point target) {
    StallReport& stall = out.stall;
    stall.stalled = true;
    stall.time_s = t;
    stall.waiting_module = waiting;
    stall.target = target;
    // Which running modules cover perimeter cells? If none do, only
    // faults can be occupying the boundary.
    const Rect edges[4] = {{0, 0, region.width, 1},
                           {0, region.height - 1, region.width, 1},
                           {0, 0, 1, region.height},
                           {region.width - 1, 0, 1, region.height}};
    double earliest = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < filled_.size(); ++k) {
      for (const Rect& edge : edges) {
        if (filled_rects_[k].intersects(edge)) {
          stall.blocking_modules.push_back(filled_[k]);
          earliest = std::min(earliest, schedule.module(filled_[k]).end_s);
          break;
        }
      }
    }
    std::sort(stall.blocking_modules.begin(), stall.blocking_modules.end());
    std::ostringstream os;
    os << "dispense for module '" << schedule.module(waiting).label
       << "' at t=" << t << "s: every perimeter cell is occupied";
    if (stall.blocking_modules.empty()) {
      stall.fault_walled = true;
      os << " by faulty electrodes";
    } else {
      stall.earliest_unblock_s = earliest;
      os << "; ";
      describe_blockers(os, t);
    }
    stall.chain = os.str();
  };

  // ---- the reference's route_droplet, on pooled state ----
  auto route_droplet = [&](OperationId producer, Point target, double t,
                           int exclude_module) -> bool {
    if (!options_.verify_routing) {
      droplet_pos[static_cast<std::size_t>(producer)] = target;
      droplet_placed[static_cast<std::size_t>(producer)] = 1;
      return true;
    }
    ScopedCostTimer timer(telemetry.route_cost);
    if (!grid_dirty_since_route) ++telemetry.blocked_grid_reuses;
    grid_dirty_since_route = false;

    // Dispense droplets enter at the free perimeter cell nearest the
    // target; their reservoir sits off-chip next to it.
    Point from;
    if (droplet_placed[static_cast<std::size_t>(producer)] != 0) {
      from = droplet_pos[static_cast<std::size_t>(producer)];
    } else {
      int best_distance = -1;
      Point best{-1, -1};
      // The reference enumerates the bottom/top rows then the left/right
      // columns in full, visiting the four corners twice; skipping the
      // corner rows in the second sweep is result-identical because the
      // strict `<` comparison always keeps the *first* minimal cell.
      for (int x = 0; x < region.width; ++x) {
        for (int y : {0, region.height - 1}) {
          const Point p{x, y};
          if (blocked_.at(p) == 0) {
            const int d = manhattan_distance(p, target);
            if (best_distance < 0 || d < best_distance) {
              best_distance = d;
              best = p;
            }
          }
        }
      }
      for (int y = 1; y < region.height - 1; ++y) {
        for (int x : {0, region.width - 1}) {
          const Point p{x, y};
          if (blocked_.at(p) == 0) {
            const int d = manhattan_distance(p, target);
            if (best_distance < 0 || d < best_distance) {
              best_distance = d;
              best = p;
            }
          }
        }
      }
      if (best_distance < 0) {
        result.failure_reason =
            "no free perimeter cell to dispense at t=" + std::to_string(t);
        diagnose_dispense_stall(t, exclude_module, target);
        return false;
      }
      from = best;
      if (options_.record_events) {
        event_buffer_.clear();
        event_buffer_.append("dispense '");
        event_buffer_.append(graph.operation(producer).reagent);
        event_buffer_.append("' enters at ");
        append_point(event_buffer_, from);
        push_event(t);
      }
    }

    const int length = route_length(from, target);
    if (length < 0) {
      std::ostringstream os;
      os << "droplet of '" << graph.operation(producer).label
         << "' cannot reach " << fmt_point(target) << " at t=" << t;
      result.failure_reason = os.str();
      diagnose_route_stall(t, exclude_module, producer, from, target);
      return false;
    }
    ++result.routes_planned;
    ++telemetry.routes_planned;
    result.route_cells += length;
    if (length > 0 && options_.droplet_speed_cells_per_s > 0.0) {
      result.transport_seconds += length / options_.droplet_speed_cells_per_s;
    }
    droplet_pos[static_cast<std::size_t>(producer)] = target;
    droplet_placed[static_cast<std::size_t>(producer)] = 1;
    return true;
  };

  // Droplet bookkeeping for a dispense operation reaching its consumer.
  auto droplet_for = [&](OperationId op) -> Droplet& {
    Droplet*& ref = droplet_ref[static_cast<std::size_t>(op)];
    if (ref == nullptr) {
      const Operation& o = graph.operation(op);
      std::optional<Droplet>& slot = dispensed[static_cast<std::size_t>(op)];
      slot.emplace(next_droplet_id++, Point{},
                   o.reagent.empty() ? o.label : o.reagent);
      ref = &*slot;
    }
    return *ref;
  };

  auto fail_on_fault = [&](int index, const Rect& fp, double t) -> bool {
    if (faults_.empty() || !fp.intersects(fault_bbox_)) return false;
    // Row-major scan over the footprint finds the same first fault as the
    // reference's linear pass over faulty_cells() (itself row-major).
    const Rect clipped = fp.intersection(region);
    for (int y = clipped.y; y < clipped.top(); ++y) {
      for (int x = clipped.x; x < clipped.right(); ++x) {
        if (fault_grid_.at(x, y) == 0) continue;
        const Point f{x, y};
        result.failure_reason = "module '" + schedule.module(index).label +
                                "' contains faulty cell " + fmt_point(f);
        result.failed_module = index;
        result.fault_cell = f;
        if (options_.record_events) {
          result.events.push_back(SimEvent{t, result.failure_reason});
        }
        return true;
      }
    }
    return false;
  };

  // Executes one module-start event: route inputs in, merge, split,
  // record outputs. Returns false when the run fails here.
  auto process_module_start = [&](int index) -> bool {
    const ScheduledModule& sm = schedule.module(index);
    const Rect fp = placement.module(index).footprint();
    const Point site = footprint_center(fp);

    if (fail_on_fault(index, fp, sm.start_s)) return false;

    if (sm.op_id < 0) {
      // Inserted storage: move the producer's droplet into the store.
      if (sm.producer_op >= 0) {
        if (!route_droplet(sm.producer_op, site, sm.start_s, index)) {
          result.failed_module = index;
          return false;
        }
        if (options_.record_events) {
          event_buffer_.clear();
          event_buffer_.append("droplet of '");
          event_buffer_.append(graph.operation(sm.producer_op).label);
          event_buffer_.append("' stored in ");
          event_buffer_.append(sm.label);
          event_buffer_.append(" at ");
          append_point(event_buffer_, site);
          push_event(sm.start_s);
        }
      }
      return true;
    }

    const Operation& op = graph.operation(sm.op_id);
    if (options_.record_events) {
      event_buffer_.clear();
      event_buffer_.append("start '");
      event_buffer_.append(op.label);
      event_buffer_.append("' (");
      event_buffer_.append(sm.spec.name);
      event_buffer_.append(") at ");
      append_point(event_buffer_, site);
      push_event(sm.start_s);
    }

    // Route every input droplet to the module site and merge.
    Droplet mixed;
    bool first_input = true;
    for (OperationId pred : graph.predecessors(sm.op_id)) {
      if (!route_droplet(pred, site, sm.start_s, index)) {
        result.failed_module = index;
        return false;
      }
      Droplet& input = droplet_for(pred);
      if (first_input) {
        mixed = input;
        first_input = false;
      } else {
        mixed.merge(input);
      }
    }
    if (first_input) {
      // No predecessors (unusual but legal): synthesize a droplet in place.
      mixed = Droplet(next_droplet_id++, site, op.label);
    }
    mixed.move_to(site);

    if (!deferred_range.empty()) {
      deferred_range[static_cast<std::size_t>(index)].first =
          static_cast<std::uint32_t>(result.events.size());
    }
    if (op.type == OperationType::kDilute) {
      // Discard one half to waste; the remaining half is the output.
      Droplet waste = mixed.split(next_droplet_id++, site);
      if (options_.record_events) {
        event_buffer_.clear();
        event_buffer_.push_back('\'');
        event_buffer_.append(op.label);
        event_buffer_.append("' split; ");
        event_buffer_.append(std::to_string(waste.volume_nl()));
        event_buffer_.append(" nl sent to waste");
        push_event(sm.end_s);
      }
    }

    // One droplet copy in total (the `mixed = input` seed above): the
    // merged result is moved into op_outputs and downstream consumers
    // alias the map node. The reference copies the contents map thrice.
    Droplet& stored = result.op_outputs[sm.op_id];
    stored = std::move(mixed);
    droplet_ref[static_cast<std::size_t>(sm.op_id)] = &stored;
    droplet_pos[static_cast<std::size_t>(sm.op_id)] = site;
    droplet_placed[static_cast<std::size_t>(sm.op_id)] = 1;
    if (options_.record_events) {
      event_buffer_.clear();
      event_buffer_.append("finish '");
      event_buffer_.append(op.label);
      event_buffer_.push_back('\'');
      push_event(sm.end_s);
    }
    if (!deferred_range.empty()) {
      deferred_range[static_cast<std::size_t>(index)].second =
          static_cast<std::uint32_t>(result.events.size());
    }
    return true;
  };

  // ---- seed the event queue ----
  // Start events replay the reference's (start_s, schedule index)
  // processing order through their `seq` rank; end events wake the
  // observer at teardowns (they carry no simulation state — the
  // active-module predicate is evaluated against the clock).
  std::vector<int> order(static_cast<std::size_t>(module_count));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (schedule.module(a).start_s != schedule.module(b).start_s) {
      return schedule.module(a).start_s < schedule.module(b).start_s;
    }
    return a < b;
  });
  // ---- checkpointed resume: restore mid-flight state ----
  // The prior invocation failed at time_s; recovery retimed/repaired in
  // between. Completed modules replay nothing (their events are already
  // in the restored log), in-flight modules re-arm only their end
  // events, and the droplet inventory picks up exactly where it stopped.
  double now = -std::numeric_limits<double>::infinity();
  if (resume_from != nullptr) {
    const SimCheckpoint& c = *resume_from;
    now = c.time_s;
    start_done = c.start_done;
    end_done = c.end_done;
    result.op_outputs = c.op_outputs;
    for (auto& [op, droplet] : result.op_outputs) {
      droplet_ref[static_cast<std::size_t>(op)] = &droplet;
    }
    dispensed = c.dispensed;
    dispensed.resize(static_cast<std::size_t>(op_count));
    for (std::size_t op = 0; op < dispensed.size(); ++op) {
      if (dispensed[op].has_value() && droplet_ref[op] == nullptr) {
        droplet_ref[op] = &*dispensed[op];
      }
    }
    droplet_pos = c.droplet_pos;
    droplet_pos.resize(static_cast<std::size_t>(op_count));
    droplet_placed = c.droplet_placed;
    droplet_placed.resize(static_cast<std::size_t>(op_count), 0);
    next_droplet_id = c.next_droplet_id;
    result.events = c.events;
    result.routes_planned = c.routes_planned;
    result.route_cells = c.route_cells;
    result.transport_seconds = c.transport_seconds;
    // Re-arm the grid: modules in flight at the failure go back to
    // blocking (started strictly before the checkpoint instant) or
    // pending (started exactly at it — the strict active predicate keeps
    // them transparent to other transfers at that same instant).
    if (options_.verify_routing) {
      for (int i = 0; i < module_count; ++i) {
        if (start_done[static_cast<std::size_t>(i)] == 0 ||
            end_done[static_cast<std::size_t>(i)] != 0) {
          continue;
        }
        const ScheduledModule& sm = schedule.module(i);
        if (!(sm.end_s > sm.start_s)) continue;
        if (sm.start_s < now - kEps) {
          const Rect& r = func_rects_[static_cast<std::size_t>(i)];
          blocked_.fill_rect(r, 1);
          telemetry.blocked_cells_touched += r.intersection(region).area();
          filled_.push_back(i);
          filled_rects_.push_back(r);
        } else {
          pending_fills_.push_back(i);
        }
      }
    }
  }

  std::vector<QueuedEvent> queue;
  queue.reserve(static_cast<std::size_t>(module_count) * 2);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const int index = order[rank];
    if (start_done[static_cast<std::size_t>(index)] == 0) {
      queue.push_back(QueuedEvent{schedule.module(index).start_s, 1,
                                  static_cast<int>(rank), index});
    }
    if (end_done[static_cast<std::size_t>(index)] == 0) {
      queue.push_back(
          QueuedEvent{schedule.module(index).end_s, 0, index, index});
    }
  }
  std::make_heap(queue.begin(), queue.end(), fires_later);

  auto notify = [&](SimUpdate::Kind kind, double t, int module, bool ok) {
    if (observer_) observer_(SimUpdate{kind, t, module, ok});
  };

  // ---- failure-instant snapshot (nullable) ----
  auto capture = [&](double t) {
    if (checkpoint_out == nullptr) return;
    SimCheckpoint& c = *checkpoint_out;
    c.valid = true;
    c.time_s = t;
    c.failed_module = result.failed_module;
    c.start_done = start_done;
    c.end_done = end_done;
    c.op_outputs = result.op_outputs;
    c.dispensed = dispensed;
    c.droplet_pos = droplet_pos;
    c.droplet_placed = droplet_placed;
    c.next_droplet_id = next_droplet_id;
    // The clean completed prefix: everything logged up to (not
    // including) the failure-reason line, which the recovery driver
    // re-appends along with its own markers.
    c.events = result.events;
    if (!c.events.empty() && c.events.back().what == result.failure_reason) {
      c.events.pop_back();
    }
    c.routes_planned = result.routes_planned;
    c.route_cells = result.route_cells;
    c.transport_seconds = result.transport_seconds;
  };

  // ---- mid-run fault injection ----
  // Rolls an interrupted module's optimistic effects back so the resumed
  // run re-executes it: its output droplet, its deferred finish/split
  // log lines, its start_done bit and its blocked-grid stamp.
  auto rollback_module = [&](int index) {
    if (!deferred_range.empty()) {
      const auto [begin, end] = deferred_range[static_cast<std::size_t>(index)];
      if (end > begin && end <= result.events.size()) {
        result.events.erase(result.events.begin() + begin,
                            result.events.begin() + end);
      }
    }
    const ScheduledModule& sm = schedule.module(index);
    if (sm.op_id >= 0) {
      result.op_outputs.erase(sm.op_id);
      droplet_ref[static_cast<std::size_t>(sm.op_id)] = nullptr;
      droplet_placed[static_cast<std::size_t>(sm.op_id)] = 0;
    }
    start_done[static_cast<std::size_t>(index)] = 0;
    if (auto it = std::find(pending_fills_.begin(), pending_fills_.end(), index);
        it != pending_fills_.end()) {
      pending_fills_.erase(it);
    }
    for (std::size_t k = 0; k < filled_.size(); ++k) {
      if (filled_[k] == index) {
        clear_rect(filled_rects_[k]);
        filled_[k] = filled_.back();
        filled_rects_[k] = filled_rects_.back();
        filled_.pop_back();
        filled_rects_.pop_back();
        grid_dirty_since_route = true;
        break;
      }
    }
  };
  // Injects one planned fault at simulated instant t_eff. Returns true
  // when the run fails right here: concurrent testing detects a fault
  // under a live operation immediately; a fault elsewhere stays latent
  // until a start-time scan or a routing stall trips over it.
  auto apply_fault = [&](const PlannedFault& fault, double t_eff) -> bool {
    out.faults_fired.push_back(FiredFault{fault.cell, t_eff});
    if (fault_grid_.at(fault.cell) == 0) {
      fault_grid_.at(fault.cell) = 1;
      blocked_.at(fault.cell) = 1;
      const auto row_major_less = [](const Point& a, const Point& b) {
        if (a.y != b.y) return a.y < b.y;
        return a.x < b.x;
      };
      faults_.insert(std::lower_bound(faults_.begin(), faults_.end(),
                                      fault.cell, row_major_less),
                     fault.cell);
      fault_bbox_ =
          fault_bbox_.united(Rect{fault.cell.x, fault.cell.y, 1, 1});
      grid_dirty_since_route = true;
    }
    for (int i = 0; i < module_count; ++i) {
      if (start_done[static_cast<std::size_t>(i)] == 0 ||
          end_done[static_cast<std::size_t>(i)] != 0) {
        continue;
      }
      const ScheduledModule& sm = schedule.module(i);
      if (t_eff + kEps >= sm.end_s) continue;  // logically complete already
      if (!placement.module(i).footprint().contains(fault.cell)) continue;
      rollback_module(i);
      result.failure_reason = "module '" + sm.label +
                              "' contains faulty cell " + fmt_point(fault.cell);
      result.failed_module = i;
      result.fault_cell = fault.cell;
      if (options_.record_events) {
        result.events.push_back(SimEvent{t_eff, result.failure_reason});
      }
      return true;
    }
    return false;
  };

  // ---- dispatch loop ----
  while (!queue.empty()) {
    std::pop_heap(queue.begin(), queue.end(), fires_later);
    const QueuedEvent ev = queue.back();
    queue.pop_back();
    // Fire every planned fault due before this event dispatches. A time
    // trigger fires once the next event's time reaches it (the fault's
    // own timestamp is the detection instant); an event-count trigger
    // fires between the k-th and (k+1)-th dispatch of this invocation.
    while (injecting && fault_cursor < plan.faults.size()) {
      const PlannedFault& planned = plan.faults[fault_cursor];
      const bool due_time = planned.time_s >= 0.0 && planned.time_s <= ev.time_s;
      const bool due_count =
          planned.time_s < 0.0 && planned.after_event >= 0 &&
          telemetry.events_dispatched >= planned.after_event;
      if (!due_time && !due_count) break;
      ++fault_cursor;
      const double t_eff =
          due_time ? std::max(planned.time_s, now)
                   : (now > -std::numeric_limits<double>::infinity()
                          ? now
                          : ev.time_s);
      if (apply_fault(planned, t_eff)) {
        capture(t_eff);
        notify(SimUpdate::Kind::kFault, t_eff, result.failed_module, false);
        return out;
      }
    }
    ++telemetry.events_dispatched;
    ScopedCostTimer timer(telemetry.event_cost);
    if (ev.time_s > now) {
      // The clock advanced past the instant the pending modules started
      // at; from here on they block transport.
      if (!pending_fills_.empty()) flush_pending_fills();
      now = ev.time_s;
    }
    if (ev.phase == 0) {
      // Teardown: clear the rect if the module ever got stamped (a
      // zero-duration module ends before it starts and never pends).
      for (std::size_t k = 0; k < filled_.size(); ++k) {
        if (filled_[k] == ev.module) {
          clear_rect(filled_rects_[k]);
          filled_[k] = filled_.back();
          filled_rects_[k] = filled_rects_.back();
          filled_.pop_back();
          filled_rects_.pop_back();
          grid_dirty_since_route = true;
          break;
        }
      }
      end_done[static_cast<std::size_t>(ev.module)] = 1;
      notify(SimUpdate::Kind::kModuleEnd, ev.time_s, ev.module, true);
      continue;
    }
    if (!process_module_start(ev.module)) {
      capture(ev.time_s);
      notify(out.stall.stalled ? SimUpdate::Kind::kStall
                               : SimUpdate::Kind::kModuleStart,
             ev.time_s, ev.module, false);
      return out;
    }
    start_done[static_cast<std::size_t>(ev.module)] = 1;
    const ScheduledModule& started = schedule.module(ev.module);
    if (options_.verify_routing && started.end_s > started.start_s) {
      pending_fills_.push_back(ev.module);
    }
    notify(SimUpdate::Kind::kModuleStart, ev.time_s, ev.module, true);
  }

  // Every stamped module was torn down by its end event, so the grid is
  // back to its faults-only state — the next run on an unmutated chip of
  // the same dimensions skips the rebuild.
  grid_clean_ = filled_.empty() && pending_fills_.empty();
  result.success = true;
  result.makespan_s = schedule.makespan_s();
  return out;
}

}  // namespace dmfb
