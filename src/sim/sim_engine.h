// sim_engine.h — the event-queue droplet simulation engine.
//
// The reference simulator walks the schedule module by module, building a
// chip-sized blocked matrix from scratch for every routing call, scanning
// the fault list linearly per module, and formatting event strings
// through stringstreams. This engine executes the identical model as a
// discrete-event loop with pooled per-step state:
//
//   - An event queue (binary heap keyed by (time, tie-break rank))
//     dispatches module-start and module-end events; droplets sleep in
//     their producer slots until a consuming module's start event pulls
//     them across the array, and modules sleep until their scheduled
//     times — nothing is stepped in between.
//   - The blocked grid is a persistent scratch maintained by the events
//     themselves: a start event stamps its module's functional rect (on
//     the next clock advance), an end event clears it (faults re-stamped
//     from an O(1) occupancy grid) — routing calls find the grid already
//     correct instead of rebuilding W*H cells each, and a run that tears
//     every module down leaves a clean grid the next run reuses outright
//     (keyed on Chip::fault_revision()).
//   - Shortest-path queries run on a generation-stamped A* (pooled
//     frontier and cost arrays, no per-call allocation) that returns the
//     optimal path *length* — the only thing the simulation model
//     consumes — and skips the search entirely when no obstacle
//     intersects the source-target bounding box (the Manhattan distance
//     is then exact).
//   - Event strings are built into one reused buffer (identical bytes to
//     the reference), and SimOptions::record_events turns the log off
//     for batch runs that only read the structured fields.
//
// The results are bit-identical to SimEngineKind::kReference — events,
// op_outputs, route accounting, failure reasons — pinned by the audit in
// tests/test_sim_engine.cpp, the same way the copy annealing engine pins
// the delta engine. On top of that contract the engine reports what the
// reference cannot: a StallReport naming the wait chain behind a routing
// failure (which running modules wall the droplet off, and when the
// earliest of them would clear) instead of just "cannot reach", plus
// per-phase CostStatistic telemetry (the Scheduler/UpdateResult
// notification split: callers observe every dispatched event).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/simulator.h"
#include "util/cost_statistic.h"
#include "util/matrix.h"
#include "util/memory_pool.h"

namespace dmfb {

/// What the queue just dispatched — the engine's UpdateResult. Observers
/// (set_observer) receive one per event, in dispatch order.
struct SimUpdate {
  enum class Kind {
    kModuleStart,  ///< a module's inputs arrived and its operation ran
    kModuleEnd,    ///< a module's interval ended (teardown)
    kStall,        ///< a droplet could not be routed; the run fails here
    kFault,        ///< an injected fault was detected under a live module
  };
  Kind kind = Kind::kModuleStart;
  double time_s = 0.0;
  int module = -1;  ///< index into schedule.modules()
  bool ok = true;   ///< false: this event failed the run
};

using SimEngineObserver = std::function<void(const SimUpdate&)>;

/// Diagnosis of a routing stall: the wait chain the reference simulator's
/// bare "cannot reach" hides. Populated on the events the engine fails —
/// a droplet walled off its target, or no free perimeter entry for a
/// dispense.
struct StallReport {
  bool stalled = false;
  double time_s = 0.0;
  /// Module (schedule index) whose input transfer stalled.
  int waiting_module = -1;
  /// Label of the stalled droplet's producer operation (empty for a
  /// dispense with no free perimeter entry).
  std::string droplet_label;
  Point target{};
  /// Running modules (schedule indices) whose functional regions wall
  /// the droplet off — the wait-for chain, in schedule order. Empty with
  /// `fault_walled` set when faulty electrodes alone sever the path.
  std::vector<int> blocking_modules;
  /// Earliest end_s among the blockers: the soonest instant the chain
  /// would clear. The model routes at the changeover instant, so a
  /// positive gap to `time_s` is the deadlock certificate — waiting
  /// cannot help without retiming the schedule.
  double earliest_unblock_s = 0.0;
  /// Faulty electrodes sever every path even with no module active.
  bool fault_walled = false;
  /// Human-readable wait chain, e.g.
  /// "droplet of 'M3' -> 'M5' blocked by {M1 [2,8)s, S(M2) [0,6)s}; ...".
  std::string chain;
};

/// Where the engine's wall time goes, phase by phase (CostStatistic
/// min/avg/max per invocation), plus structural counters showing the
/// pooled state at work.
struct SimEngineTelemetry {
  CostStatistic route_cost;  ///< per routing call (A* + grid upkeep)
  CostStatistic event_cost;  ///< per dispatched module event
  long long events_dispatched = 0;
  long long routes_planned = 0;
  /// Heap pushes across all A* runs — the search effort actually spent.
  long long astar_pushes = 0;
  /// Routes priced by the obstacle-free Manhattan fast path (no search).
  long long manhattan_fast_paths = 0;
  /// Cells touched maintaining the blocked grid (event-driven stamping
  /// and dirty-rect clearing); the reference rebuilds W*H cells per
  /// routing call.
  long long blocked_cells_touched = 0;
  /// Routing calls that found the blocked grid untouched since the
  /// previous routing call (no start/end event moved a module between
  /// them).
  long long blocked_grid_reuses = 0;
};

/// Mid-run execution snapshot, captured at the instant a run fails (when
/// run_online is given a checkpoint slot): everything the recovery
/// driver needs to resume the assay *from the failure* instead of
/// re-running from t=0 — the clock, which start/end events already
/// dispatched, the droplet inventory (positions, contents, the id
/// counter), and the completed-prefix result accounting. The residual
/// run seeded from a checkpoint replays nothing: completed modules are
/// skipped, in-flight modules re-arm only their end events, and the
/// restored event log / route counters make the merged SimulationResult
/// read as one continuous execution (completed-prefix events
/// bit-identical to the uninterrupted run — pinned by
/// tests/test_recovery.cpp and bench_recovery).
struct SimCheckpoint {
  bool valid = false;
  double time_s = 0.0;     ///< simulated clock at the failure
  int failed_module = -1;  ///< schedule index the run failed at (-1: stall)

  /// Per schedule index: has this module's start/end event dispatched?
  /// (A rolled-back module — injected fault under a live operation —
  /// reads as not-started, so the resume re-executes it.)
  std::vector<std::uint8_t> start_done;
  std::vector<std::uint8_t> end_done;

  // Droplet inventory, dense by operation id.
  std::map<OperationId, Droplet> op_outputs;
  std::vector<std::optional<Droplet>> dispensed;
  std::vector<Point> droplet_pos;
  std::vector<std::uint8_t> droplet_placed;
  int next_droplet_id = 0;

  // Completed-prefix accounting (the failure-reason line, if any, is
  // excluded — the resumed run appends from here).
  std::vector<SimEvent> events;
  int routes_planned = 0;
  long long route_cells = 0;
  double transport_seconds = 0.0;
};

/// One engine execution: the bit-identical simulation result plus the
/// engine-only diagnostics.
struct SimEngineRun {
  SimulationResult result;
  StallReport stall;
  SimEngineTelemetry telemetry;
  /// Planned faults that actually fired this invocation, in plan order
  /// (a prefix of the plan — the rest is still pending when the run
  /// failed first). The recovery driver injects these into its chip
  /// before resuming so grid rebuilds see them.
  std::vector<FiredFault> faults_fired;
};

/// The event-queue engine. Reusable: scratch state (grids, A* arrays,
/// path/heap pools) persists across run() calls, so batch drivers that
/// keep one engine per worker thread simulate allocation-free in steady
/// state. Not thread-safe; one engine per thread (the annealer's scratch
/// discipline). `options.engine` is ignored here — constructing this
/// class *is* choosing the event engine.
class EventSimEngine {
 public:
  explicit EventSimEngine(SimOptions options = {});

  const SimOptions& options() const { return options_; }

  /// Per-event notification (the Scheduler/UpdateResult split); null to
  /// disable. Invoked after each event's effects are applied.
  void set_observer(SimEngineObserver observer);

  /// Executes the assay. Same contract as Simulator::run (including the
  /// std::invalid_argument validation), with diagnostics on the side.
  SimEngineRun run(const SequencingGraph& graph, const Schedule& schedule,
                   const Placement& placement, const Chip& chip);

  /// The online variant: executes the assay while injecting `plan`'s
  /// faults mid-run (strictly in plan order), optionally resuming from a
  /// prior checkpoint, optionally capturing one at failure.
  ///
  ///   - A fault landing under a *live* module is detected immediately
  ///     (the paper's concurrent-testing model): the module's start is
  ///     rolled back — its output droplet and deferred finish/split log
  ///     lines removed, its start event re-armed for the resume — and the
  ///     run fails at the injection instant with the same
  ///     "module ... contains faulty cell" reason a start-time hit
  ///     produces. A latent fault is caught later by the existing
  ///     fail-on-start scan or as a routing StallReport.
  ///   - `resume_from` (nullable): restart the run mid-flight from a
  ///     checkpoint captured by an earlier invocation. The schedule may
  ///     have been retimed and the placement repaired in between — module
  ///     indices must be unchanged. Faults that fired earlier must
  ///     already be on `chip` (the recovery driver owns that).
  ///   - `checkpoint_out` (nullable): filled at the first failure.
  ///
  /// With an empty plan and no checkpoint this is bit-identical to
  /// run() (pinned by tests/test_sim_engine.cpp).
  SimEngineRun run_online(const SequencingGraph& graph,
                          const Schedule& schedule,
                          const Placement& placement, const Chip& chip,
                          const FaultInjectionPlan& plan,
                          const SimCheckpoint* resume_from = nullptr,
                          SimCheckpoint* checkpoint_out = nullptr);

 private:
  friend struct EngineRunState;

  SimOptions options_;
  SimEngineObserver observer_;

  // Persistent scratch, recycled across runs.
  Matrix<std::uint8_t> blocked_;     ///< module rects + faults
  Matrix<std::uint8_t> fault_grid_;  ///< faults only (O(1) membership)
  std::vector<Point> faults_;        ///< row-major, = Chip::faulty_cells()
  Rect fault_bbox_{};                ///< union of faults_ (fast reject)
  std::vector<int> filled_;          ///< modules currently in blocked_
  std::vector<Rect> filled_rects_;   ///< their functional rects, aligned
  std::vector<int> pending_fills_;   ///< started this instant, stamped on
                                     ///< the next clock advance
  std::vector<Rect> func_rects_;     ///< per-module functional region
  /// True when blocked_ is back to its faults-only state (every stamped
  /// module cleared by its end event). With matching dimensions and a
  /// provably fault-free chip (Chip::fault_revision() == 0) the per-run
  /// grid rebuild is skipped entirely; faulty or mutated chips always
  /// rebuild.
  bool grid_clean_ = false;
  std::vector<int> astar_g_;         ///< generation-stamped best-g grid
  std::vector<std::uint32_t> astar_stamp_;
  std::uint32_t astar_generation_ = 0;
  MemoryPool<std::vector<std::uint64_t>> frontier_pool_;  ///< A* heaps
  std::string event_buffer_;  ///< reused event-string assembly buffer
};

}  // namespace dmfb
