// sim_engine.h — the event-queue droplet simulation engine.
//
// The reference simulator walks the schedule module by module, building a
// chip-sized blocked matrix from scratch for every routing call, scanning
// the fault list linearly per module, and formatting event strings
// through stringstreams. This engine executes the identical model as a
// discrete-event loop with pooled per-step state:
//
//   - An event queue (binary heap keyed by (time, tie-break rank))
//     dispatches module-start and module-end events; droplets sleep in
//     their producer slots until a consuming module's start event pulls
//     them across the array, and modules sleep until their scheduled
//     times — nothing is stepped in between.
//   - The blocked grid is a persistent scratch maintained by the events
//     themselves: a start event stamps its module's functional rect (on
//     the next clock advance), an end event clears it (faults re-stamped
//     from an O(1) occupancy grid) — routing calls find the grid already
//     correct instead of rebuilding W*H cells each, and a run that tears
//     every module down leaves a clean grid the next run reuses outright
//     (keyed on Chip::fault_revision()).
//   - Shortest-path queries run on a generation-stamped A* (pooled
//     frontier and cost arrays, no per-call allocation) that returns the
//     optimal path *length* — the only thing the simulation model
//     consumes — and skips the search entirely when no obstacle
//     intersects the source-target bounding box (the Manhattan distance
//     is then exact).
//   - Event strings are built into one reused buffer (identical bytes to
//     the reference), and SimOptions::record_events turns the log off
//     for batch runs that only read the structured fields.
//
// The results are bit-identical to SimEngineKind::kReference — events,
// op_outputs, route accounting, failure reasons — pinned by the audit in
// tests/test_sim_engine.cpp, the same way the copy annealing engine pins
// the delta engine. On top of that contract the engine reports what the
// reference cannot: a StallReport naming the wait chain behind a routing
// failure (which running modules wall the droplet off, and when the
// earliest of them would clear) instead of just "cannot reach", plus
// per-phase CostStatistic telemetry (the Scheduler/UpdateResult
// notification split: callers observe every dispatched event).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/cost_statistic.h"
#include "util/matrix.h"
#include "util/memory_pool.h"

namespace dmfb {

/// What the queue just dispatched — the engine's UpdateResult. Observers
/// (set_observer) receive one per event, in dispatch order.
struct SimUpdate {
  enum class Kind {
    kModuleStart,  ///< a module's inputs arrived and its operation ran
    kModuleEnd,    ///< a module's interval ended (teardown)
    kStall,        ///< a droplet could not be routed; the run fails here
  };
  Kind kind = Kind::kModuleStart;
  double time_s = 0.0;
  int module = -1;  ///< index into schedule.modules()
  bool ok = true;   ///< false: this event failed the run
};

using SimEngineObserver = std::function<void(const SimUpdate&)>;

/// Diagnosis of a routing stall: the wait chain the reference simulator's
/// bare "cannot reach" hides. Populated on the events the engine fails —
/// a droplet walled off its target, or no free perimeter entry for a
/// dispense.
struct StallReport {
  bool stalled = false;
  double time_s = 0.0;
  /// Module (schedule index) whose input transfer stalled.
  int waiting_module = -1;
  /// Label of the stalled droplet's producer operation (empty for a
  /// dispense with no free perimeter entry).
  std::string droplet_label;
  Point target{};
  /// Running modules (schedule indices) whose functional regions wall
  /// the droplet off — the wait-for chain, in schedule order. Empty with
  /// `fault_walled` set when faulty electrodes alone sever the path.
  std::vector<int> blocking_modules;
  /// Earliest end_s among the blockers: the soonest instant the chain
  /// would clear. The model routes at the changeover instant, so a
  /// positive gap to `time_s` is the deadlock certificate — waiting
  /// cannot help without retiming the schedule.
  double earliest_unblock_s = 0.0;
  /// Faulty electrodes sever every path even with no module active.
  bool fault_walled = false;
  /// Human-readable wait chain, e.g.
  /// "droplet of 'M3' -> 'M5' blocked by {M1 [2,8)s, S(M2) [0,6)s}; ...".
  std::string chain;
};

/// Where the engine's wall time goes, phase by phase (CostStatistic
/// min/avg/max per invocation), plus structural counters showing the
/// pooled state at work.
struct SimEngineTelemetry {
  CostStatistic route_cost;  ///< per routing call (A* + grid upkeep)
  CostStatistic event_cost;  ///< per dispatched module event
  long long events_dispatched = 0;
  long long routes_planned = 0;
  /// Heap pushes across all A* runs — the search effort actually spent.
  long long astar_pushes = 0;
  /// Routes priced by the obstacle-free Manhattan fast path (no search).
  long long manhattan_fast_paths = 0;
  /// Cells touched maintaining the blocked grid (event-driven stamping
  /// and dirty-rect clearing); the reference rebuilds W*H cells per
  /// routing call.
  long long blocked_cells_touched = 0;
  /// Routing calls that found the blocked grid untouched since the
  /// previous routing call (no start/end event moved a module between
  /// them).
  long long blocked_grid_reuses = 0;
};

/// One engine execution: the bit-identical simulation result plus the
/// engine-only diagnostics.
struct SimEngineRun {
  SimulationResult result;
  StallReport stall;
  SimEngineTelemetry telemetry;
};

/// The event-queue engine. Reusable: scratch state (grids, A* arrays,
/// path/heap pools) persists across run() calls, so batch drivers that
/// keep one engine per worker thread simulate allocation-free in steady
/// state. Not thread-safe; one engine per thread (the annealer's scratch
/// discipline). `options.engine` is ignored here — constructing this
/// class *is* choosing the event engine.
class EventSimEngine {
 public:
  explicit EventSimEngine(SimOptions options = {});

  const SimOptions& options() const { return options_; }

  /// Per-event notification (the Scheduler/UpdateResult split); null to
  /// disable. Invoked after each event's effects are applied.
  void set_observer(SimEngineObserver observer);

  /// Executes the assay. Same contract as Simulator::run (including the
  /// std::invalid_argument validation), with diagnostics on the side.
  SimEngineRun run(const SequencingGraph& graph, const Schedule& schedule,
                   const Placement& placement, const Chip& chip);

 private:
  friend struct EngineRunState;

  SimOptions options_;
  SimEngineObserver observer_;

  // Persistent scratch, recycled across runs.
  Matrix<std::uint8_t> blocked_;     ///< module rects + faults
  Matrix<std::uint8_t> fault_grid_;  ///< faults only (O(1) membership)
  std::vector<Point> faults_;        ///< row-major, = Chip::faulty_cells()
  Rect fault_bbox_{};                ///< union of faults_ (fast reject)
  std::vector<int> filled_;          ///< modules currently in blocked_
  std::vector<Rect> filled_rects_;   ///< their functional rects, aligned
  std::vector<int> pending_fills_;   ///< started this instant, stamped on
                                     ///< the next clock advance
  std::vector<Rect> func_rects_;     ///< per-module functional region
  /// True when blocked_ is back to its faults-only state (every stamped
  /// module cleared by its end event). With matching dimensions and a
  /// provably fault-free chip (Chip::fault_revision() == 0) the per-run
  /// grid rebuild is skipped entirely; faulty or mutated chips always
  /// rebuild.
  bool grid_clean_ = false;
  std::vector<int> astar_g_;         ///< generation-stamped best-g grid
  std::vector<std::uint32_t> astar_stamp_;
  std::uint32_t astar_generation_ = 0;
  MemoryPool<std::vector<std::uint64_t>> frontier_pool_;  ///< A* heaps
  std::string event_buffer_;  ///< reused event-string assembly buffer
};

}  // namespace dmfb
