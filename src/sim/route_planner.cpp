#include "sim/route_planner.h"

#include <algorithm>
#include <exception>
#include <map>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "biochip/module_spec.h"
#include "util/parallel.h"

namespace dmfb {
namespace {

constexpr double kEps = 1e-9;

// The shared center convention (also the routing-pressure term's), so
// placement pressure and actual route endpoints cannot diverge.
using detail::footprint_center;

/// Functional regions of modules strictly spanning time t (the changeover
/// rule shared with the simulator: modules starting or ending exactly at t
/// do not block).
Matrix<std::uint8_t> blocked_at(const Placement& placement, double t,
                                int width, int height) {
  Matrix<std::uint8_t> blocked(width, height, 0);
  for (int i = 0; i < placement.module_count(); ++i) {
    const auto& m = placement.module(i);
    if (m.start_s + kEps < t && t + kEps < m.end_s) {
      blocked.fill_rect(m.footprint().inflated(-kSegregationRingCells), 1);
    }
  }
  return blocked;
}

}  // namespace

double RoutePlan::total_transport_seconds(double cells_per_second) const {
  if (cells_per_second <= 0.0) return 0.0;
  double seconds = 0.0;
  for (const auto& changeover : changeovers) {
    seconds += changeover.makespan_steps / cells_per_second;
  }
  return seconds;
}

Schedule fold_transport(const Schedule& schedule, const RoutePlan& plan) {
  Schedule result = schedule;
  // Reverse time order, so every shift's threshold is the changeover's
  // *original* time: a later changeover's shift only moves modules at or
  // after it, leaving every earlier threshold's matches untouched. The
  // net effect is the cumulative delay sum over preceding changeovers.
  for (auto it = plan.changeovers.rbegin(); it != plan.changeovers.rend();
       ++it) {
    result.shift_from(it->time_s, it->transport_seconds());
  }
  return result;
}

namespace routing {

Point position_at(const TimedRoute& route, int step) {
  if (route.positions.empty()) return route.request.to;
  const int clamped =
      std::clamp(step, 0, static_cast<int>(route.positions.size()) - 1);
  return route.positions[static_cast<std::size_t>(clamped)];
}

int resolve_horizon(const RoutePlannerOptions& options, int chip_width,
                    int chip_height) {
  return options.step_horizon > 0 ? options.step_horizon
                                  : 4 * (chip_width + chip_height);
}

bool conflicts_with_route(Point p, int step, const TimedRoute& other,
                          int separation) {
  if (chebyshev_distance(p, position_at(other, step)) < separation) {
    return true;
  }
  // Dynamic constraint, both directions: distance to the other droplet's
  // previous position (no head-on swaps) and to its next position (the
  // other must not be steered into my neighbourhood).
  if (step > 0 &&
      chebyshev_distance(p, position_at(other, step - 1)) < separation) {
    return true;
  }
  return chebyshev_distance(p, position_at(other, step + 1)) < separation;
}

bool pair_violates_at(const TimedRoute& a, const TimedRoute& b, int step,
                      int separation) {
  const Point pa = position_at(a, step);
  const Point pb = position_at(b, step);
  if (chebyshev_distance(pa, pb) < separation) return true;
  return step > 0 &&
         (chebyshev_distance(pa, position_at(b, step - 1)) < separation ||
          chebyshev_distance(pb, position_at(a, step - 1)) < separation);
}

std::optional<std::vector<Point>> route_transfer(
    const TransferRequest& request, const Matrix<std::uint8_t>& blocked,
    const std::vector<TimedRoute>& earlier, int horizon, int separation) {
  const int width = blocked.width();
  const int height = blocked.height();
  if (!blocked.in_bounds(request.from) || !blocked.in_bounds(request.to)) {
    return std::nullopt;
  }
  if (blocked.at(request.from) != 0 || blocked.at(request.to) != 0) {
    return std::nullopt;
  }

  auto conflicts = [&](Point p, int step) {
    for (const TimedRoute& other : earlier) {
      if (other.request.to == request.to) continue;  // merging pair
      if (conflicts_with_route(p, step, other, separation)) return true;
    }
    return false;
  };

  struct Node {
    int f;
    int step;
    Point p;
    bool operator>(const Node& o) const {
      if (f != o.f) return f > o.f;
      if (step != o.step) return step > o.step;
      return std::pair(p.x, p.y) > std::pair(o.p.x, o.p.y);
    }
  };

  // visited[(x, y, step)] — steps bounded by horizon.
  const auto key = [&](Point p, int step) {
    return (static_cast<std::size_t>(step) * height + p.y) * width + p.x;
  };
  std::vector<bool> visited(
      static_cast<std::size_t>(horizon + 1) * width * height, false);
  std::vector<int> parent(
      static_cast<std::size_t>(horizon + 1) * width * height, -1);

  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> open;
  if (conflicts(request.from, 0)) return std::nullopt;
  open.push(
      Node{manhattan_distance(request.from, request.to), 0, request.from});
  visited[key(request.from, 0)] = true;

  const Point steps[5] = {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  while (!open.empty()) {
    const Node node = open.top();
    open.pop();
    if (node.p == request.to) {
      // Reconstruct by walking parents backwards.
      std::vector<Point> positions(static_cast<std::size_t>(node.step) + 1);
      Point p = node.p;
      for (int s = node.step; s >= 0; --s) {
        positions[static_cast<std::size_t>(s)] = p;
        const int parent_index = parent[key(p, s)];
        if (s > 0) {
          p = Point{parent_index % width, (parent_index / width) % height};
        }
      }
      return positions;
    }
    if (node.step >= horizon) continue;
    for (const Point& delta : steps) {
      const Point next{node.p.x + delta.x, node.p.y + delta.y};
      const int next_step = node.step + 1;
      if (!blocked.in_bounds(next) || blocked.at(next) != 0) continue;
      if (visited[key(next, next_step)]) continue;
      if (conflicts(next, next_step)) continue;
      visited[key(next, next_step)] = true;
      parent[key(next, next_step)] = static_cast<int>(
          key(node.p, 0) % (static_cast<std::size_t>(width) * height));
      open.push(Node{next_step + manhattan_distance(next, request.to),
                     next_step, next});
    }
  }
  return std::nullopt;
}

std::vector<Point> perimeter_entries(const Matrix<std::uint8_t>& blocked,
                                     Point target) {
  std::vector<Point> entries;
  auto consider = [&](Point p) {
    if (blocked.at(p) == 0) entries.push_back(p);
  };
  for (int x = 0; x < blocked.width(); ++x) {
    consider(Point{x, 0});
    consider(Point{x, blocked.height() - 1});
  }
  for (int y = 1; y + 1 < blocked.height(); ++y) {
    consider(Point{0, y});
    consider(Point{blocked.width() - 1, y});
  }
  std::sort(entries.begin(), entries.end(), [&](Point a, Point b) {
    const int da = manhattan_distance(a, target);
    const int db = manhattan_distance(b, target);
    if (da != db) return da < db;
    return std::pair(a.x, a.y) < std::pair(b.x, b.y);
  });
  return entries;
}

std::vector<ChangeoverProblem> extract_problems(const SequencingGraph& graph,
                                                const Schedule& schedule,
                                                const Placement& placement,
                                                int chip_width,
                                                int chip_height) {
  if (schedule.module_count() != placement.module_count()) {
    throw std::invalid_argument(
        "extract_problems: schedule and placement disagree on module count");
  }
  const Rect chip{0, 0, chip_width, chip_height};
  if (!chip.contains(placement.bounding_box())) {
    throw std::invalid_argument(
        "extract_problems: chip smaller than the placement bounding box");
  }

  // Group schedule entries by start time.
  std::map<double, std::vector<int>> groups;
  for (int i = 0; i < schedule.module_count(); ++i) {
    groups[schedule.module(i).start_s].push_back(i);
  }

  std::vector<ChangeoverProblem> problems;
  std::map<OperationId, Point> droplet_at;
  std::map<OperationId, int> droplet_module;  // module the droplet sits in
  for (const auto& [time, members] : groups) {
    ChangeoverProblem problem;
    problem.time_s = time;
    problem.blocked = blocked_at(placement, time, chip_width, chip_height);

    // Gather transfer requests for this changeover. A droplet always
    // lands at its request's `to`, so the position bookkeeping below is
    // independent of how (or in what order) a backend routes.
    std::vector<OperationId> arrivals;  // op whose droplet lands per request
    for (const int index : members) {
      const ScheduledModule& sm = schedule.module(index);
      const Point site = footprint_center(placement.module(index).footprint());
      if (sm.op_id < 0) {
        if (sm.producer_op < 0) continue;
        const auto it = droplet_at.find(sm.producer_op);
        const Point from = it != droplet_at.end() ? it->second : site;
        if (!(from == site)) {
          const auto src = droplet_module.find(sm.producer_op);
          problem.requests.push_back(TransferRequest{
              "S:" + sm.label, from, site, index,
              src != droplet_module.end() ? src->second : -1});
          arrivals.push_back(sm.producer_op);
        } else {
          droplet_at[sm.producer_op] = site;
          droplet_module[sm.producer_op] = index;
        }
        continue;
      }
      for (const OperationId pred : graph.predecessors(sm.op_id)) {
        // Dispense droplets have no on-chip position yet; the sentinel
        // makes the solver pick a conflict-free perimeter entry.
        Point from = kDispensePending;
        int source = -1;
        const auto it = droplet_at.find(pred);
        if (it != droplet_at.end()) {
          from = it->second;
          const auto src = droplet_module.find(pred);
          if (src != droplet_module.end()) source = src->second;
        }
        if (from == site) {
          droplet_at[sm.op_id] = site;
          droplet_module[sm.op_id] = index;
          continue;
        }
        problem.requests.push_back(TransferRequest{
            graph.operation(pred).label, from, site, index, source});
        arrivals.push_back(sm.op_id < 0 ? pred : sm.op_id);
      }
    }

    // Record where droplets end up (a consumed droplet's position becomes
    // the consumer's output site; storage keeps the producer op as key).
    for (std::size_t i = 0; i < problem.requests.size(); ++i) {
      droplet_at[arrivals[i]] = problem.requests[i].to;
      droplet_module[arrivals[i]] = problem.requests[i].target_module;
    }
    if (!problem.requests.empty()) problems.push_back(std::move(problem));
  }
  return problems;
}

std::vector<RouteLink> extract_links(const SequencingGraph& graph,
                                     const Schedule& schedule) {
  // The same grouping and droplet bookkeeping as extract_problems, minus
  // everything placement-dependent: which module pairs exchange droplets
  // is fixed by graph + schedule alone. (extract_problems additionally
  // drops a transfer whose endpoints happen to share a center; such an
  // edge prices to distance 0 here, so keeping it is harmless.)
  std::map<double, std::vector<int>> groups;
  for (int i = 0; i < schedule.module_count(); ++i) {
    groups[schedule.module(i).start_s].push_back(i);
  }

  std::map<std::pair<int, int>, long long> demand;
  std::map<OperationId, int> droplet_module;
  for (const auto& [time, members] : groups) {
    // Arrivals are recorded after the whole changeover is gathered, so an
    // edge always reads the droplet's module *before* this changeover.
    std::vector<std::pair<OperationId, int>> arrivals;
    for (const int index : members) {
      const ScheduledModule& sm = schedule.module(index);
      if (sm.op_id < 0) {
        if (sm.producer_op < 0) continue;
        const auto it = droplet_module.find(sm.producer_op);
        if (it != droplet_module.end()) {
          demand[{it->second, index}] += 1;
          arrivals.emplace_back(sm.producer_op, index);
        } else {
          droplet_module[sm.producer_op] = index;
        }
        continue;
      }
      for (const OperationId pred : graph.predecessors(sm.op_id)) {
        const auto it = droplet_module.find(pred);
        demand[{it != droplet_module.end() ? it->second : -1, index}] += 1;
        arrivals.emplace_back(sm.op_id, index);
      }
    }
    for (const auto& [op, module] : arrivals) droplet_module[op] = module;
  }

  std::vector<RouteLink> links;
  links.reserve(demand.size());
  for (const auto& [edge, weight] : demand) {
    links.push_back(RouteLink{edge.first, edge.second, weight});
  }
  return links;
}

std::vector<RouteLink> reweight_links(std::vector<RouteLink> links,
                                      const RoutePlan& plan) {
  std::map<std::pair<int, int>, long long> measured;
  for (const auto& changeover : plan.changeovers) {
    for (const auto& route : changeover.routes) {
      measured[{route.request.source_module, route.request.target_module}] +=
          route.arrival_step();
    }
  }
  for (auto& link : links) {
    const auto it = measured.find({link.source_module, link.target_module});
    if (it != measured.end()) link.weight += it->second;
  }
  return links;
}

std::vector<std::size_t> default_order(
    const std::vector<TransferRequest>& requests) {
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const bool dispense_a = requests[a].from == kDispensePending;
    const bool dispense_b = requests[b].from == kDispensePending;
    if (dispense_a != dispense_b) return !dispense_a;
    const int da = manhattan_distance(requests[a].from, requests[a].to);
    const int db = manhattan_distance(requests[b].from, requests[b].to);
    if (da != db) return da > db;
    return a < b;
  });
  return order;
}

std::optional<ChangeoverPlan> solve_prioritized(
    const ChangeoverProblem& problem, const std::vector<std::size_t>& order,
    const RoutePlannerOptions& options, int horizon, std::string* failure) {
  ChangeoverPlan changeover;
  changeover.time_s = problem.time_s;
  for (const std::size_t r : order) {
    TransferRequest request = problem.requests[r];
    std::optional<std::vector<Point>> positions;
    if (request.from == kDispensePending) {
      // Try perimeter entries nearest the target until one routes.
      for (const Point& entry :
           perimeter_entries(problem.blocked, request.to)) {
        request.from = entry;
        positions = route_transfer(request, problem.blocked, changeover.routes,
                                   horizon, options.separation_cells);
        if (positions) break;
      }
    } else {
      positions = route_transfer(request, problem.blocked, changeover.routes,
                                 horizon, options.separation_cells);
    }
    if (!positions) {
      if (failure) {
        std::ostringstream os;
        os << "droplet '" << problem.requests[r].label
           << "' cannot be routed to (" << problem.requests[r].to.x << ","
           << problem.requests[r].to.y << ") at t=" << problem.time_s;
        *failure = os.str();
      }
      return std::nullopt;
    }
    TimedRoute route;
    route.request = request;
    route.positions = *positions;
    changeover.makespan_steps =
        std::max(changeover.makespan_steps, route.arrival_step());
    changeover.routes.push_back(std::move(route));
  }
  return changeover;
}

void accumulate(RoutePlan& plan, ChangeoverPlan&& changeover) {
  for (const TimedRoute& route : changeover.routes) {
    plan.total_steps += route.arrival_step();
    plan.total_moved_cells += route.moved_cells();
  }
  plan.negotiation_rounds += changeover.negotiation_rounds;
  plan.changeovers.push_back(std::move(changeover));
}

RoutePlan solve_changeovers(const std::vector<ChangeoverProblem>& problems,
                            int threads, const ChangeoverSolver& solve) {
  const std::size_t count = problems.size();
  std::vector<std::optional<ChangeoverPlan>> solved(count);
  std::vector<std::string> failures(count);
  std::vector<std::exception_ptr> errors(count);

  if (detail::resolve_worker_count(count, threads) <= 1) {
    // Inline: fail fast like the pre-pool loops did — changeovers after
    // the first unroutable one are never attempted, and an exception
    // propagates from exactly where it was thrown.
    for (std::size_t index = 0; index < count; ++index) {
      solved[index] = solve(problems[index], index, &failures[index]);
      if (!solved[index]) break;
    }
  } else {
    // Workers solve everything: skipping work after a failure would make
    // which changeovers got solved (and so the reported failure) depend
    // on worker scheduling, breaking the thread-count invariance this
    // function promises. Failing assays trade some wasted solves for it.
    errors = detail::for_each_index(
        count, threads, [&](std::size_t index) {
          solved[index] = solve(problems[index], index, &failures[index]);
        });
  }

  // Fold in changeover (time) order, so totals, the reported failure and
  // even exception behavior do not depend on worker scheduling: an error
  // or routing failure surfaces exactly where the fail-fast sequential
  // walk would have hit it, and anything solved past that point is
  // discarded.
  RoutePlan plan;
  for (std::size_t c = 0; c < count; ++c) {
    if (errors[c]) std::rethrow_exception(errors[c]);
    if (!solved[c]) {
      plan.success = false;
      plan.failure_reason = failures[c];
      return plan;
    }
    accumulate(plan, std::move(*solved[c]));
  }
  plan.success = true;
  return plan;
}

RoutePlan plan_prioritized(const SequencingGraph& graph,
                           const Schedule& schedule,
                           const Placement& placement, int chip_width,
                           int chip_height,
                           const RoutePlannerOptions& options) {
  const int horizon = resolve_horizon(options, chip_width, chip_height);
  return solve_changeovers(
      extract_problems(graph, schedule, placement, chip_width, chip_height),
      options.threads,
      [&](const ChangeoverProblem& problem, std::size_t, std::string* failure) {
        return solve_prioritized(problem, default_order(problem.requests),
                                 options, horizon, failure);
      });
}

}  // namespace routing

RoutePlan plan_routes(const SequencingGraph& graph, const Schedule& schedule,
                      const Placement& placement, int chip_width,
                      int chip_height, const RoutePlannerOptions& options) {
  return routing::plan_prioritized(graph, schedule, placement, chip_width,
                                   chip_height, options);
}

std::vector<std::string> validate_changeover(
    const ChangeoverPlan& plan, const Matrix<std::uint8_t>& blocked,
    const RoutePlannerOptions& options) {
  std::vector<std::string> violations;
  auto complain = [&](const std::string& what) { violations.push_back(what); };

  for (const TimedRoute& route : plan.routes) {
    if (route.positions.empty()) {
      complain("route '" + route.request.label + "' is empty");
      continue;
    }
    if (!(route.positions.front() == route.request.from)) {
      complain("route '" + route.request.label + "' does not start at from");
    }
    if (!(route.positions.back() == route.request.to)) {
      complain("route '" + route.request.label + "' does not end at to");
    }
    for (std::size_t s = 0; s < route.positions.size(); ++s) {
      const Point p = route.positions[s];
      if (!blocked.in_bounds(p)) {
        complain("route '" + route.request.label + "' leaves the chip");
        break;
      }
      if (blocked.at(p) != 0) {
        complain("route '" + route.request.label +
                 "' crosses a functional region");
        break;
      }
      if (s > 0) {
        const int d = manhattan_distance(route.positions[s - 1], p);
        if (d > 1) {
          complain("route '" + route.request.label + "' teleports");
          break;
        }
      }
    }
  }

  const int horizon = plan.makespan_steps;
  for (std::size_t i = 0; i < plan.routes.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.routes.size(); ++j) {
      const TimedRoute& a = plan.routes[i];
      const TimedRoute& b = plan.routes[j];
      if (a.request.to == b.request.to) continue;  // merging pair
      for (int step = 0; step <= horizon; ++step) {
        if (!routing::pair_violates_at(a, b, step,
                                       options.separation_cells)) {
          continue;
        }
        const bool dynamic_only =
            chebyshev_distance(routing::position_at(a, step),
                               routing::position_at(b, step)) >=
            options.separation_cells;
        std::ostringstream os;
        os << "droplets '" << a.request.label << "' and '" << b.request.label
           << (dynamic_only ? "' violate the dynamic constraint at step "
                            : "' too close at step ")
           << step;
        complain(os.str());
        break;
      }
    }
  }
  return violations;
}

}  // namespace dmfb
