#include "sim/tester.h"

#include <stdexcept>
#include <vector>

namespace dmfb {

TestResult OnlineTester::run_test(const Chip& chip,
                                  const Matrix<std::uint8_t>& occupied,
                                  Point start) const {
  if (occupied.width() != chip.width() || occupied.height() != chip.height()) {
    throw std::invalid_argument(
        "OnlineTester: occupancy grid does not match the chip");
  }
  TestResult result;
  if (!chip.in_bounds(start) || occupied.at(start) != 0) return result;

  // Cells the droplet should be able to cover: free cells 4-connected to
  // the start (faults are unknown a priori, so they count as coverable).
  {
    Matrix<std::uint8_t> seen(chip.width(), chip.height(), 0);
    std::vector<Point> queue{start};
    seen.at(start) = 1;
    while (!queue.empty()) {
      const Point p = queue.back();
      queue.pop_back();
      ++result.cells_reachable;
      const Point steps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (const Point& s : steps) {
        const Point next{p.x + s.x, p.y + s.y};
        if (chip.in_bounds(next) && occupied.at(next) == 0 &&
            seen.at(next) == 0) {
          seen.at(next) = 1;
          queue.push_back(next);
        }
      }
    }
  }

  if (chip.is_faulty(start)) {
    // The droplet cannot even be pulled onto its entry cell.
    result.fault_detected = true;
    result.faulty_cell = start;
    return result;
  }

  // Depth-first physical walk with backtracking. Each move is one
  // actuation step; attempting to move onto a faulty electrode leaves the
  // droplet in place, which is observed (e.g. capacitively) and localizes
  // the fault to the cell that failed to actuate.
  Matrix<std::uint8_t> visited(chip.width(), chip.height(), 0);
  std::vector<Point> trail{start};
  visited.at(start) = 1;
  result.cells_visited = 1;

  while (!trail.empty()) {
    const Point here = trail.back();
    const Point steps[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    bool advanced = false;
    for (const Point& s : steps) {
      const Point next{here.x + s.x, here.y + s.y};
      if (!chip.in_bounds(next) || occupied.at(next) != 0 ||
          visited.at(next) != 0) {
        continue;
      }
      ++result.steps_taken;
      if (chip.is_faulty(next)) {
        result.fault_detected = true;
        result.faulty_cell = next;
        return result;
      }
      visited.at(next) = 1;
      ++result.cells_visited;
      trail.push_back(next);
      advanced = true;
      break;
    }
    if (!advanced) {
      trail.pop_back();
      if (!trail.empty()) ++result.steps_taken;  // backtrack move
    }
  }
  return result;
}

TestResult OnlineTester::run_test(const Chip& chip) const {
  const Matrix<std::uint8_t> occupied(chip.width(), chip.height(), 0);
  return run_test(chip, occupied, Point{0, 0});
}

}  // namespace dmfb
