#include "sim/recovery.h"

#include "sim/fault.h"

namespace dmfb {

OnlineRecoveryResult simulate_online_recovery(
    const SequencingGraph& graph, const Schedule& schedule,
    const Placement& placement, Point faulty_cell, const Rect& array,
    const Reconfigurator& reconfigurator, const SimOptions& sim_options) {
  OnlineRecoveryResult result;

  Chip chip(array.right(), array.top());
  inject_fault(chip, faulty_cell);

  const Simulator simulator(sim_options);
  result.first_run = simulator.run(graph, schedule, placement, chip);

  if (result.first_run.success) {
    // The fault never disturbed the assay (unused cell, or only routed
    // around); nothing to recover.
    result.fault_hit = false;
    result.completed = true;
    result.detail = "fault did not affect the assay";
    return result;
  }

  result.fault_hit = true;
  result.reconfiguration =
      reconfigurator.recover(placement, faulty_cell, array);
  if (!result.reconfiguration.success) {
    result.recovered = false;
    result.detail = "partial reconfiguration failed: " +
                    result.reconfiguration.failure_reason;
    return result;
  }
  result.recovered = true;

  result.second_run =
      simulator.run(graph, schedule, result.reconfiguration.placement, chip);
  result.completed = result.second_run.success;
  result.detail = result.completed
                      ? "assay completed after partial reconfiguration"
                      : "assay still failing after reconfiguration: " +
                            result.second_run.failure_reason;
  return result;
}

FaultCampaignResult exhaustive_fault_campaign(
    const Placement& placement, const Rect& array,
    const Reconfigurator& reconfigurator) {
  FaultCampaignResult result;
  result.total_cells = array.area();

  for (const Point& cell : enumerate_cells(array)) {
    // A cell unused by every module is harmless by definition (§5.2).
    bool used = false;
    for (int i = 0; i < placement.module_count() && !used; ++i) {
      used = placement.module(i).footprint().contains(cell);
    }
    if (!used) {
      ++result.survivable_cells;
      continue;
    }
    const RecoveryResult recovery =
        reconfigurator.recover(placement, cell, array);
    if (recovery.success) {
      ++result.survivable_cells;
    } else {
      result.unsurvivable.push_back(cell);
    }
  }
  return result;
}

}  // namespace dmfb
