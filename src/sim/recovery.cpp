#include "sim/recovery.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "sim/fault.h"

namespace dmfb {

OnlineRecoveryResult simulate_online_recovery(
    const SequencingGraph& graph, const Schedule& schedule,
    const Placement& placement, Point faulty_cell, const Rect& array,
    const Reconfigurator& reconfigurator, const SimOptions& sim_options) {
  OnlineRecoveryResult result;

  Chip chip(array.right(), array.top());
  inject_fault(chip, faulty_cell);

  const Simulator simulator(sim_options);
  result.first_run = simulator.run(graph, schedule, placement, chip);

  if (result.first_run.success) {
    // The fault never disturbed the assay (unused cell, or only routed
    // around); nothing to recover.
    result.fault_hit = false;
    result.completed = true;
    result.detail = "fault did not affect the assay";
    return result;
  }

  result.fault_hit = true;
  result.reconfiguration =
      reconfigurator.recover(placement, faulty_cell, array);
  if (!result.reconfiguration.success) {
    result.recovered = false;
    result.detail = "partial reconfiguration failed: " +
                    result.reconfiguration.failure_reason;
    return result;
  }
  result.recovered = true;

  result.second_run =
      simulator.run(graph, schedule, result.reconfiguration.placement, chip);
  result.completed = result.second_run.success;
  result.detail = result.completed
                      ? "assay completed after partial reconfiguration"
                      : "assay still failing after reconfiguration: " +
                            result.second_run.failure_reason;
  return result;
}

FaultCampaignResult exhaustive_fault_campaign(
    const Placement& placement, const Rect& array,
    const Reconfigurator& reconfigurator) {
  FaultCampaignResult result;
  result.total_cells = array.area();

  for (const Point& cell : enumerate_cells(array)) {
    // A cell unused by every module is harmless by definition (§5.2).
    bool used = false;
    for (int i = 0; i < placement.module_count() && !used; ++i) {
      used = placement.module(i).footprint().contains(cell);
    }
    if (!used) {
      ++result.survivable_cells;
      continue;
    }
    const RecoveryResult recovery =
        reconfigurator.recover(placement, cell, array);
    if (recovery.success) {
      ++result.survivable_cells;
    } else {
      result.unsurvivable.push_back(cell);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Online recovery engine
// ---------------------------------------------------------------------------

const char* to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kReconfigure:
      return "reconfigure";
    case RecoveryAction::kReroute:
      return "reroute";
    case RecoveryAction::kReplace:
      return "replace";
  }
  return "?";
}

namespace {

constexpr double kEps = 1e-9;

Point footprint_center(const Rect& fp) {
  return Point{fp.x + fp.width / 2, fp.y + fp.height / 2};
}

/// Moves every placed droplet sitting inside `from` to `to` — the
/// controller drags droplets along when their module is relocated (the
/// checkpoint is the droplet inventory the resume restores).
void migrate_droplets(SimCheckpoint& ckpt, const Rect& from, Point to) {
  for (std::size_t op = 0; op < ckpt.droplet_pos.size(); ++op) {
    if (op < ckpt.droplet_placed.size() && ckpt.droplet_placed[op] == 0) {
      continue;
    }
    if (!from.contains(ckpt.droplet_pos[op])) continue;
    ckpt.droplet_pos[op] = to;
    if (auto it = ckpt.op_outputs.find(static_cast<OperationId>(op));
        it != ckpt.op_outputs.end()) {
      it->second.move_to(to);
    }
    if (op < ckpt.dispensed.size() && ckpt.dispensed[op].has_value()) {
      ckpt.dispensed[op]->move_to(to);
    }
  }
}

/// Rebuilds `placement` with `schedule`'s (possibly retimed) intervals so
/// later relocation grids and conflict pairs see the current timing.
Placement with_schedule_times(const Placement& placement,
                              const Schedule& schedule) {
  std::vector<PlacedModule> modules = placement.modules();
  for (std::size_t i = 0; i < modules.size(); ++i) {
    modules[i].start_s = schedule.module(static_cast<int>(i)).start_s;
    modules[i].end_s = schedule.module(static_cast<int>(i)).end_s;
  }
  return Placement(std::move(modules), placement.canvas_width(),
                   placement.canvas_height());
}

/// Re-runs the interrupted module from the detection instant `t`: pushes
/// the tail (start >= old end) out by the lost time, then rewrites the
/// module's own interval to [t, t + duration]. Feasibility is preserved:
/// modules overlapping the new interval all overlapped the old one, and
/// shifted successors start at or after the new end. Returns the slack
/// added (0 when the module had not started yet).
double retime_interrupted(Schedule& schedule, int index, double t) {
  const ScheduledModule& m = schedule.module(index);
  const double delta = t - m.start_s;
  if (delta <= kEps) return 0.0;
  const double duration = m.end_s - m.start_s;
  schedule.shift_from(m.end_s, delta);
  schedule.retime(index, t, t + duration);
  return delta;
}

}  // namespace

OnlineRecoveryEngine::OnlineRecoveryEngine(RecoveryOptions options)
    : options_(std::move(options)) {}

OnlineRunResult OnlineRecoveryEngine::run(const SequencingGraph& graph,
                                          const Schedule& schedule,
                                          const Placement& placement,
                                          const Rect& array,
                                          const FaultInjectionPlan& plan) const {
  using Clock = std::chrono::steady_clock;
  const auto t_begin = Clock::now();
  auto wall_s = [&t_begin] {
    return std::chrono::duration<double>(Clock::now() - t_begin).count();
  };
  auto over_deadline = [&] {
    return options_.deadline_s > 0.0 && wall_s() > options_.deadline_s;
  };

  OnlineRunResult out;
  RecoveryReport& rep = out.recovery;
  Schedule sched = schedule;
  Placement plc = placement;
  Chip chip(array.right(), array.top());
  FaultInjectionPlan pending = plan;
  EventSimEngine engine(options_.sim);
  const Reconfigurator reconfigurator(options_.fti, options_.policy);

  SimCheckpoint ckpt;  // resume point; invalid on the first pass

  // Ladder position for the *current* failure signature: a repeat of the
  // same failure escalates to the next rung, a new failure starts over.
  std::string last_key;
  int ladder = 0;

  for (;;) {
    SimCheckpoint next;
    SimEngineRun run =
        engine.run_online(graph, sched, plc, chip, pending,
                          ckpt.valid ? &ckpt : nullptr, &next);
    rep.faults_injected += static_cast<int>(run.faults_fired.size());
    for (const FiredFault& fired : run.faults_fired) {
      chip.set_faulty(fired.cell, true);
    }
    pending.faults.erase(
        pending.faults.begin(),
        pending.faults.begin() +
            static_cast<std::ptrdiff_t>(run.faults_fired.size()));

    if (run.result.success) {
      out.simulation = std::move(run.result);
      rep.completed = true;
      rep.detail = rep.recovery_cycles == 0
                       ? "completed without recovery"
                       : "completed after " +
                             std::to_string(rep.recovery_cycles) +
                             " recovery cycle(s)";
      break;
    }

    if (run.stall.stalled) rep.last_stall = run.stall;
    if (!next.valid) {
      // The engine failed without a snapshot (validation-adjacent edge);
      // degrade with whatever the run produced.
      out.simulation = std::move(run.result);
      rep.detail = "failed without checkpoint: " + out.simulation.failure_reason;
      break;
    }
    if (rep.recovery_cycles >= options_.max_cycles || over_deadline()) {
      out.simulation = std::move(run.result);
      out.last_checkpoint = std::move(next);
      rep.detail = (over_deadline() ? "recovery deadline exhausted: "
                                    : "recovery cycle budget exhausted: ") +
                   out.simulation.failure_reason;
      break;
    }

    ++rep.recovery_cycles;
    ckpt = std::move(next);
    rep.resumed_from_s = ckpt.time_s;
    rep.clean_prefix_events = ckpt.events.size();

    // A fault failure names the module sitting on the fault; a stall
    // names the module whose input transfer is walled off.
    const bool fault_failure =
        !run.stall.stalled && run.result.failed_module >= 0 &&
        chip.in_bounds(run.result.fault_cell) &&
        chip.is_faulty(run.result.fault_cell);
    const std::string key =
        run.result.failure_reason + "@" + std::to_string(ckpt.time_s);
    if (key != last_key) {
      last_key = key;
      ladder = 0;
    }

    bool repaired = false;
    std::string applied;
    while (!repaired && ladder < 3 && !over_deadline()) {
      const int rung = ladder++;
      const double attempt_begin = wall_s();
      RecoveryAttempt attempt;
      attempt.cycle = rep.recovery_cycles;

      if (rung == 0) {
        // --- reconfigure: relocate the modules touching the fault ---
        if (!options_.enable_reconfigure || !fault_failure) continue;
        attempt.action = RecoveryAction::kReconfigure;
        RecoveryResult rr =
            reconfigurator.recover(plc, chip.faulty_cells(), array);
        attempt.success = rr.success;
        if (rr.success) {
          for (const RelocationOutcome& rel : rr.relocations) {
            const Rect old_fp =
                footprint_rect(plc.module(rel.module_index).spec,
                               rel.old_anchor, rel.old_rotated);
            const Rect new_fp =
                rr.placement.module(rel.module_index).footprint();
            migrate_droplets(ckpt, old_fp, footprint_center(new_fp));
          }
          plc = std::move(rr.placement);
          rep.time_lost_s +=
              retime_interrupted(sched, run.result.failed_module, ckpt.time_s);
          plc = with_schedule_times(plc, sched);
          attempt.relocations = std::move(rr.relocations);
          attempt.detail = "relocated " +
                           std::to_string(attempt.relocations.size()) +
                           " module(s)";
          repaired = true;
        } else {
          attempt.detail = rr.failure_reason;
        }
      } else if (rung == 1) {
        // --- reroute: retime the stalled changeover past its wait chain ---
        if (!options_.enable_reroute || !run.stall.stalled ||
            run.stall.blocking_modules.empty()) {
          continue;
        }
        const double delta =
            run.stall.earliest_unblock_s - run.stall.time_s;
        if (delta <= kEps) continue;
        attempt.action = RecoveryAction::kReroute;
        sched.shift_from(run.stall.time_s, delta);
        plc = with_schedule_times(plc, sched);
        rep.time_lost_s += delta;
        attempt.success = true;
        attempt.detail = "retimed changeover by " + std::to_string(delta) +
                         "s past " +
                         std::to_string(run.stall.blocking_modules.size()) +
                         " blocker(s)";
        repaired = true;
      } else {
        // --- replace: defect-aware re-place of the residual schedule ---
        if (!options_.enable_replace) continue;
        attempt.action = RecoveryAction::kReplace;
        PlacerContext context = options_.replace_context;
        if (context.canvas_width <= 0) context.canvas_width = plc.canvas_width();
        if (context.canvas_height <= 0) {
          context.canvas_height = plc.canvas_height();
        }
        context.defects = chip.faulty_cells();
        context.initial_placement = std::make_shared<Placement>(plc);
        try {
          const std::unique_ptr<Placer> placer =
              make_placer(options_.replace_placer);
          PlacementOutcome outcome = placer->place(sched, context);
          // A penalty-based backend may still cover a fault; treat that
          // as a failed attempt instead of resuming into a known wall.
          bool clear = true;
          for (int i = 0; i < outcome.placement.module_count() && clear; ++i) {
            const Rect fp = outcome.placement.module(i).footprint();
            for (const Point& f : context.defects) {
              if (fp.contains(f)) {
                clear = false;
                break;
              }
            }
          }
          if (!clear) {
            attempt.detail = "re-place still covers a faulty cell";
          } else {
            for (int i = 0; i < plc.module_count(); ++i) {
              const Rect old_fp = plc.module(i).footprint();
              const Rect new_fp = outcome.placement.module(i).footprint();
              if (old_fp.x == new_fp.x && old_fp.y == new_fp.y &&
                  old_fp.width == new_fp.width &&
                  old_fp.height == new_fp.height) {
                continue;
              }
              migrate_droplets(ckpt, old_fp, footprint_center(new_fp));
            }
            plc = std::move(outcome.placement);
            if (fault_failure) {
              rep.time_lost_s += retime_interrupted(
                  sched, run.result.failed_module, ckpt.time_s);
            }
            plc = with_schedule_times(plc, sched);
            attempt.success = true;
            attempt.detail = "re-placed " +
                             std::to_string(plc.module_count()) +
                             " module(s) around " +
                             std::to_string(context.defects.size()) +
                             " defect(s)";
            repaired = true;
          }
        } catch (const std::exception& e) {
          attempt.detail = e.what();
        }
      }

      attempt.wall_s = wall_s() - attempt_begin;
      if (repaired) applied = to_string(attempt.action);
      rep.attempts.push_back(std::move(attempt));
    }

    if (!repaired) {
      out.simulation = std::move(run.result);
      out.last_checkpoint = std::move(ckpt);
      rep.detail = over_deadline()
                       ? "recovery deadline exhausted: " +
                             out.simulation.failure_reason
                       : "escalation ladder exhausted: " +
                             out.simulation.failure_reason;
      break;
    }

    rep.recovered = true;
    if (options_.sim.record_events) {
      // The merged log tells the whole story: clean prefix, the detected
      // failure, the repair marker, then the resumed execution.
      ckpt.events.push_back(
          SimEvent{ckpt.time_s, run.result.failure_reason});
      ckpt.events.push_back(
          SimEvent{ckpt.time_s, "recovery: " + applied + " applied"});
    }
  }

  out.final_schedule = std::move(sched);
  out.final_placement = std::move(plc);
  rep.recovery_wall_s = wall_s();
  return out;
}

}  // namespace dmfb
