#include "sim/simulator.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/sim_engine.h"

namespace dmfb {

const char* to_string(SimEngineKind kind) {
  switch (kind) {
    case SimEngineKind::kEvent:
      return "event";
    case SimEngineKind::kReference:
      return "reference";
  }
  return "?";
}

template <>
SimEngineKind from_string<SimEngineKind>(std::string_view text) {
  if (text == "event") return SimEngineKind::kEvent;
  if (text == "reference") return SimEngineKind::kReference;
  throw std::invalid_argument("unknown SimEngineKind \"" + std::string(text) +
                              "\" (expected one of: event, reference)");
}

std::ostream& operator<<(std::ostream& os, SimEngineKind kind) {
  return os << to_string(kind);
}

std::istream& operator>>(std::istream& is, SimEngineKind& kind) {
  std::string token;
  is >> token;
  kind = from_string<SimEngineKind>(token);
  return is;
}

namespace {

constexpr double kEps = 1e-9;

/// Center cell of a module's footprint (always inside it).
Point footprint_center(const Rect& fp) {
  return Point{fp.x + fp.width / 2, fp.y + fp.height / 2};
}

std::string fmt_point(Point p) {
  std::ostringstream os;
  os << '(' << p.x << ',' << p.y << ')';
  return os.str();
}

/// Execution state threaded through the reference run.
struct RunState {
  SimulationResult result;
  /// Current physical location of the droplet produced by each operation
  /// (dispenses get a position lazily when first routed).
  std::map<OperationId, Point> droplet_at;
  /// Droplet contents per operation output.
  std::map<OperationId, Droplet> droplets;
  int next_droplet_id = 0;
};

/// The original straight-line implementation, kept verbatim (modulo the
/// perimeter-corner fix and the fault grid, both result-identical) as the
/// behavioural pin the event engine is audited against.
SimulationResult run_reference(const SequencingGraph& graph,
                               const Schedule& schedule,
                               const Placement& placement, const Chip& chip,
                               const SimOptions& options) {
  const Rect region{0, 0, chip.width(), chip.height()};
  RunState state;
  auto& result = state.result;
  const std::vector<Point> faults = chip.faulty_cells();
  // Fault occupancy as an O(1) grid, shared by fail_on_fault (footprint
  // scan) and blocked_at, instead of an O(F) list scan per module.
  Matrix<std::uint8_t> fault_grid(region.width, region.height, 0);
  for (const Point& f : faults) {
    if (fault_grid.in_bounds(f)) fault_grid.at(f) = 1;
  }

  auto event = [&](double t, const std::string& what) {
    if (options.record_events) result.events.push_back(SimEvent{t, what});
  };

  // Cells impassable for a droplet moving at the configuration changeover
  // at time t, headed to module `exclude`. Two modelling points from §6 of
  // the paper: (1) only the *functional* regions of modules block — the
  // segregation ring "provides a communication path for droplet movement";
  // (2) transport happens while the array is being reprogrammed, so
  // modules that end exactly at t (being torn down) or start exactly at t
  // (not yet configured) do not block; only modules running across the
  // boundary do.
  auto blocked_at = [&](double t, int exclude) {
    Matrix<std::uint8_t> blocked(region.width, region.height, 0);
    for (int i = 0; i < placement.module_count(); ++i) {
      if (i == exclude) continue;
      const auto& m = placement.module(i);
      if (m.start_s + kEps < t && t + kEps < m.end_s) {
        blocked.fill_rect(m.footprint().inflated(-kSegregationRingCells), 1);
      }
    }
    for (const Point& f : faults) {
      if (blocked.in_bounds(f)) blocked.at(f) = 1;
    }
    return blocked;
  };

  // Routes the droplet of operation `producer` to `target` at time t.
  // Returns false (setting the failure) when routing is impossible.
  auto route_droplet = [&](OperationId producer, Point target, double t,
                           int exclude_module) -> bool {
    if (!options.verify_routing) {
      state.droplet_at[producer] = target;
      return true;
    }
    const Matrix<std::uint8_t> blocked = blocked_at(t, exclude_module);

    // Dispense droplets enter at the free perimeter cell nearest the
    // target; their reservoir sits off-chip next to it.
    auto it = state.droplet_at.find(producer);
    Point from;
    if (it != state.droplet_at.end()) {
      from = it->second;
    } else {
      int best_distance = -1;
      Point best{-1, -1};
      for (int x = 0; x < region.width; ++x) {
        for (int y : {0, region.height - 1}) {
          const Point p{x, y};
          if (blocked.at(p) == 0) {
            const int d = manhattan_distance(p, target);
            if (best_distance < 0 || d < best_distance) {
              best_distance = d;
              best = p;
            }
          }
        }
      }
      // The side columns skip the corner rows: the sweep above already
      // visited them (it used to enumerate all four corners twice; with
      // the strict `<` keeping the first minimum, dropping the
      // duplicates cannot change the winner).
      for (int y = 1; y < region.height - 1; ++y) {
        for (int x : {0, region.width - 1}) {
          const Point p{x, y};
          if (blocked.at(p) == 0) {
            const int d = manhattan_distance(p, target);
            if (best_distance < 0 || d < best_distance) {
              best_distance = d;
              best = p;
            }
          }
        }
      }
      if (best_distance < 0) {
        result.failure_reason =
            "no free perimeter cell to dispense at t=" + std::to_string(t);
        return false;
      }
      from = best;
      event(t, "dispense '" + graph.operation(producer).reagent +
                   "' enters at " + fmt_point(from));
    }

    const auto path = find_path(blocked, from, target);
    if (!path) {
      std::ostringstream os;
      os << "droplet of '" << graph.operation(producer).label
         << "' cannot reach " << fmt_point(target) << " at t=" << t;
      result.failure_reason = os.str();
      return false;
    }
    ++result.routes_planned;
    result.route_cells += static_cast<long long>(path->size()) - 1;
    result.transport_seconds +=
        path_duration_s(*path, options.droplet_speed_cells_per_s);
    state.droplet_at[producer] = target;
    return true;
  };

  // Droplet bookkeeping for a dispense operation reaching its consumer.
  auto droplet_for = [&](OperationId op) -> Droplet& {
    auto it = state.droplets.find(op);
    if (it == state.droplets.end()) {
      const Operation& o = graph.operation(op);
      it = state.droplets
               .emplace(op, Droplet(state.next_droplet_id++, Point{},
                                    o.reagent.empty() ? o.label : o.reagent))
               .first;
    }
    return it->second;
  };

  // Process schedule entries in start order: storage handoffs move waiting
  // droplets; reconfigurable operations consume inputs and produce outputs.
  std::vector<int> order(static_cast<std::size_t>(schedule.module_count()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (schedule.module(a).start_s != schedule.module(b).start_s) {
      return schedule.module(a).start_s < schedule.module(b).start_s;
    }
    return a < b;
  });

  auto fail_on_fault = [&](int index, const Rect& fp, double t) -> bool {
    // Row-major footprint scan over the fault grid: finds the same first
    // fault as a linear pass over faulty_cells() (also row-major).
    const Rect clipped = fp.intersection(region);
    for (int y = clipped.y; y < clipped.top(); ++y) {
      for (int x = clipped.x; x < clipped.right(); ++x) {
        if (fault_grid.at(x, y) == 0) continue;
        const Point f{x, y};
        result.failure_reason = "module '" + schedule.module(index).label +
                                "' contains faulty cell " + fmt_point(f);
        result.failed_module = index;
        result.fault_cell = f;
        event(t, result.failure_reason);
        return true;
      }
    }
    return false;
  };

  for (int index : order) {
    const ScheduledModule& sm = schedule.module(index);
    const Rect fp = placement.module(index).footprint();
    const Point site = footprint_center(fp);

    if (fail_on_fault(index, fp, sm.start_s)) return result;

    if (sm.op_id < 0) {
      // Inserted storage: move the producer's droplet into the store.
      if (sm.producer_op >= 0) {
        if (!route_droplet(sm.producer_op, site, sm.start_s, index)) {
          result.failed_module = index;
          return result;
        }
        event(sm.start_s, "droplet of '" +
                              graph.operation(sm.producer_op).label +
                              "' stored in " + sm.label + " at " +
                              fmt_point(site));
      }
      continue;
    }

    const Operation& op = graph.operation(sm.op_id);
    event(sm.start_s,
          "start '" + op.label + "' (" + sm.spec.name + ") at " +
              fmt_point(site));

    // Route every input droplet to the module site and merge.
    Droplet mixed;
    bool first_input = true;
    for (OperationId pred : graph.predecessors(sm.op_id)) {
      if (!route_droplet(pred, site, sm.start_s, index)) {
        result.failed_module = index;
        return result;
      }
      Droplet& input = droplet_for(pred);
      if (first_input) {
        mixed = input;
        first_input = false;
      } else {
        mixed.merge(input);
      }
    }
    if (first_input) {
      // No predecessors (unusual but legal): synthesize a droplet in place.
      mixed = Droplet(state.next_droplet_id++, site, op.label);
    }
    mixed.move_to(site);

    if (op.type == OperationType::kDilute) {
      // Discard one half to waste; the remaining half is the output.
      Droplet waste = mixed.split(state.next_droplet_id++, site);
      event(sm.end_s, "'" + op.label + "' split; " +
                          std::to_string(waste.volume_nl()) +
                          " nl sent to waste");
    }

    state.droplets[sm.op_id] = mixed;
    state.droplet_at[sm.op_id] = site;
    result.op_outputs[sm.op_id] = mixed;
    event(sm.end_s, "finish '" + op.label + "'");
  }

  result.success = true;
  result.makespan_s = schedule.makespan_s();
  return result;
}

}  // namespace

SimulationResult Simulator::run(const SequencingGraph& graph,
                                const Schedule& schedule,
                                const Placement& placement,
                                const Chip& chip) const {
  if (options_.engine == SimEngineKind::kEvent) {
    EventSimEngine engine(options_);
    return std::move(engine.run(graph, schedule, placement, chip).result);
  }
  if (schedule.module_count() != placement.module_count()) {
    throw std::invalid_argument(
        "Simulator::run: schedule and placement disagree on module count");
  }
  const Rect region{0, 0, chip.width(), chip.height()};
  const Rect bbox = placement.bounding_box();
  if (!region.contains(bbox)) {
    throw std::invalid_argument(
        "Simulator::run: chip smaller than the placement bounding box");
  }
  return run_reference(graph, schedule, placement, chip, options_);
}

}  // namespace dmfb
