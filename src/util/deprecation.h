// deprecation.h — marking for the pre-pipeline free-function API.
//
// The hand-wired stage entry points (`synthesize`, `place_simulated_-
// annealing`, `place_greedy`, ...) remain as thin wrappers so existing
// callers keep compiling, but new code should go through the
// `SynthesisPipeline` facade (assay/pipeline.h) and the `PlacerRegistry`
// (core/placer.h).
//
// Translation units that implement or deliberately exercise the legacy API
// (the library itself, the legacy unit tests) define
// DMFB_SUPPRESS_DEPRECATION to silence the attribute.
#pragma once

#if defined(DMFB_SUPPRESS_DEPRECATION)
#define DMFB_DEPRECATED(msg)
#else
#define DMFB_DEPRECATED(msg) [[deprecated(msg)]]
#endif
