#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dmfb {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::size_t TextTable::column_count() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  return columns;
}

void TextTable::print(std::ostream& os) const {
  const std::size_t columns = column_count();
  if (columns == 0) return;

  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    print_row(header_);
    os << '|';
    for (std::size_t c = 0; c < columns; ++c) {
      os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_mm2(double mm2) { return format_double(mm2, 2); }

}  // namespace dmfb
