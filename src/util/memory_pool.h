// memory_pool.h — object recycling for per-step scratch state on
// simulation hot paths.
//
// The event-driven droplet simulator plans hundreds of routes per assay;
// allocating a fresh path buffer, search frontier, or grid for each one
// puts the allocator on the critical path. A MemoryPool hands out
// recycled objects instead: release() parks the object (capacity intact),
// acquire() revives it, so steady-state simulation performs no
// allocations for its per-step state. Single-threaded by design — each
// engine owns its pools (the same ownership discipline as the annealer's
// scratch buffers); pools are not shared across threads.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace dmfb {

/// A free-list pool of default-constructed T. acquire() returns a
/// pool-owned handle; destroying the handle returns the object to the
/// pool with its heap capacity intact (callers clear()/reset() state
/// themselves — the pool recycles memory, not values). Handles must not
/// outlive the pool.
template <typename T>
class MemoryPool {
 public:
  class Handle {
   public:
    Handle() = default;
    Handle(MemoryPool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    Handle(Handle&& other) noexcept = default;
    Handle& operator=(Handle&& other) noexcept {
      release();
      pool_ = std::exchange(other.pool_, nullptr);
      object_ = std::move(other.object_);
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    T& operator*() const { return *object_; }
    T* operator->() const { return object_.get(); }
    explicit operator bool() const { return object_ != nullptr; }

    /// Returns the object to its pool early (the handle becomes empty).
    void release() {
      if (pool_ != nullptr && object_ != nullptr) {
        pool_->give_back(std::move(object_));
      }
      pool_ = nullptr;
      object_ = nullptr;
    }

   private:
    MemoryPool* pool_ = nullptr;
    std::unique_ptr<T> object_;
  };

  /// A recycled object when one is parked, a fresh one otherwise.
  Handle acquire() {
    if (!free_.empty()) {
      std::unique_ptr<T> object = std::move(free_.back());
      free_.pop_back();
      ++reuses_;
      return Handle(this, std::move(object));
    }
    ++constructions_;
    return Handle(this, std::make_unique<T>());
  }

  /// Objects currently parked in the pool.
  std::size_t available() const { return free_.size(); }
  /// Total objects the pool ever constructed (telemetry: a steady-state
  /// hot loop should stop growing this).
  long long constructions() const { return constructions_; }
  /// Acquisitions served from the free list (telemetry).
  long long reuses() const { return reuses_; }

 private:
  void give_back(std::unique_ptr<T> object) {
    free_.push_back(std::move(object));
  }

  std::vector<std::unique_ptr<T>> free_;
  long long constructions_ = 0;
  long long reuses_ = 0;
};

}  // namespace dmfb
