// table.h — ASCII table rendering for the benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables/figures and
// prints it in a fixed-width layout so EXPERIMENTS.md can quote output
// verbatim.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace dmfb {

/// Column-aligned ASCII table with a header row and optional title.
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_title(std::string title) { title_ = std::move(title); }

  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows extend the column count.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const;

  /// Renders with `|` separators and a rule under the header.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style double formatting helpers used across benches.
std::string format_double(double value, int decimals);
std::string format_mm2(double mm2);

}  // namespace dmfb
