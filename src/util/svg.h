// svg.h — minimal SVG emission for placements and schedules, so the
// figure benches can write real images next to their ASCII output.
// No external dependencies: plain string building.
#pragma once

#include <string>
#include <vector>

#include "util/geometry.h"

namespace dmfb {

/// A labelled, colored rectangle in cell coordinates.
struct SvgRect {
  Rect rect;
  std::string label;
  std::string fill;  ///< CSS color, e.g. "#4e79a7"
};

/// Renders a cell grid with rectangles on it (y flipped so the paper's
/// bottom-left origin renders naturally). `grid_width`/`grid_height` are
/// in cells; `cell_px` scales to pixels.
std::string render_svg_grid(int grid_width, int grid_height,
                            const std::vector<SvgRect>& rects,
                            int cell_px = 24,
                            const std::vector<Point>& fault_marks = {});

/// Renders a Gantt chart: one row per bar; bars in seconds.
struct SvgGanttBar {
  std::string label;
  double start_s = 0.0;
  double end_s = 0.0;
  std::string fill;
};
std::string render_svg_gantt(const std::vector<SvgGanttBar>& bars,
                             double seconds_per_px = 0.1);

/// A stable qualitative palette (Tableau10); index wraps.
const std::string& palette_color(std::size_t index);

}  // namespace dmfb
