// prefix_sum.h — 2-D summed-area table over an occupancy grid.
//
// The fault-tolerance evaluator needs many "does a w-by-h all-empty
// rectangle exist in this configuration?" queries inside the annealer's
// inner loop. A summed-area table answers "how many occupied cells are in
// this rectangle" in O(1), so the existence query is O(m*n) per footprint
// instead of enumerating maximal empty rectangles.
#pragma once

#include <cstdint>
#include <optional>

#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// Summed-area table of a boolean occupancy grid (true/nonzero = occupied).
class PrefixSum2D {
 public:
  PrefixSum2D() = default;

  /// Builds the table from an occupancy grid; `occupied` maps any nonzero
  /// value to 1.
  explicit PrefixSum2D(const Matrix<std::uint8_t>& occupied) {
    rebuild(occupied);
  }

  /// Rebuilds in place over a (possibly different-sized) grid, reusing
  /// the table's capacity — scratch tables in the annealer's FTI path
  /// are rebuilt thousands of times per second.
  void rebuild(const Matrix<std::uint8_t>& occupied) {
    rebuild_from(occupied.width(), occupied.height(),
                 [&](int x, int y) { return occupied.at(x, y) != 0; });
  }

  /// Rebuilds over a width-by-height grid whose occupancy is given by
  /// `cell(x, y) -> bool`, fused into the prefix pass — the FTI
  /// relocation-query build derives its valid-anchor table this way
  /// without materializing the intermediate grid.
  template <typename CellFn>
  void rebuild_from(int width, int height, CellFn&& cell) {
    width_ = width;
    height_ = height;
    sums_.reset(width_ + 1, height_ + 1, 0);
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        sums_.at(x + 1, y + 1) = sums_.at(x, y + 1) + sums_.at(x + 1, y) -
                                 sums_.at(x, y) + (cell(x, y) ? 1 : 0);
      }
    }
  }

  int width() const { return width_; }
  int height() const { return height_; }

  /// Number of occupied cells inside `r` (must be within bounds).
  long long occupied_in(const Rect& r) const {
    if (r.empty()) return 0;
    return static_cast<long long>(sums_.at(r.right(), r.top())) -
           sums_.at(r.x, r.top()) - sums_.at(r.right(), r.y) +
           sums_.at(r.x, r.y);
  }

  bool is_rect_empty(const Rect& r) const { return occupied_in(r) == 0; }

  /// Finds the bottom-left-most position where an all-empty w-by-h rectangle
  /// fits, or nullopt. Scans bottom-to-top, left-to-right so results are
  /// deterministic.
  std::optional<Rect> find_empty_rect(int w, int h) const {
    if (w <= 0 || h <= 0 || w > width_ || h > height_) return std::nullopt;
    for (int y = 0; y + h <= height_; ++y) {
      for (int x = 0; x + w <= width_; ++x) {
        const Rect candidate{x, y, w, h};
        if (is_rect_empty(candidate)) return candidate;
      }
    }
    return std::nullopt;
  }

  /// True when some all-empty w-by-h rectangle exists.
  bool fits_empty(int w, int h) const { return find_empty_rect(w, h).has_value(); }

 private:
  int width_ = 0;
  int height_ = 0;
  Matrix<long long> sums_;
};

}  // namespace dmfb
