// cost_statistic.h — min/avg/max wall-time accumulators for per-stage
// telemetry, after the CostStatistic pattern of competition-grade traffic
// simulators: every instrumented phase records each invocation's cost
// into one accumulator, so hot-path attribution ("where do the
// microseconds go?") is a struct read, not a profiler run.
//
// Used by the event-driven droplet simulator (sim/sim_engine.h) for its
// per-phase routing/dispatch costs and by the pipeline's stage observer
// (assay/pipeline.h StageStatsCollector) for cross-run stage timing in
// the benches' JSON artifacts.
#pragma once

#include <algorithm>
#include <chrono>
#include <limits>

namespace dmfb {

/// Streaming min/avg/max/count accumulator over a sequence of sample
/// costs (seconds by convention, but unit-agnostic). Trivially mergeable,
/// so per-thread accumulators can be folded into one.
struct CostStatistic {
  long long count = 0;
  double total = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;

  void record(double sample) {
    ++count;
    total += sample;
    min = std::min(min, sample);
    max = std::max(max, sample);
  }

  /// Mean sample (0 when nothing was recorded).
  double average() const { return count > 0 ? total / count : 0.0; }

  /// Smallest sample, or 0 when nothing was recorded (so printing an
  /// untouched statistic never shows the +inf sentinel).
  double minimum() const { return count > 0 ? min : 0.0; }

  void merge(const CostStatistic& other) {
    if (other.count == 0) return;
    count += other.count;
    total += other.total;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  friend bool operator==(const CostStatistic&, const CostStatistic&) = default;
};

/// RAII sampler: records the enclosing scope's wall time into a
/// CostStatistic on destruction.
class ScopedCostTimer {
 public:
  explicit ScopedCostTimer(CostStatistic& statistic)
      : statistic_(statistic), start_(std::chrono::steady_clock::now()) {}
  ScopedCostTimer(const ScopedCostTimer&) = delete;
  ScopedCostTimer& operator=(const ScopedCostTimer&) = delete;
  ~ScopedCostTimer() {
    statistic_.record(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
  }

 private:
  CostStatistic& statistic_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dmfb
