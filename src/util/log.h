// log.h — tiny leveled logger. The annealer logs per-temperature progress
// at Debug; benches run at Info; tests at Warning to keep ctest quiet.
#pragma once

#include <sstream>
#include <string>

namespace dmfb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level. Not thread-safe by design: the library is
/// single-threaded (the annealer is a sequential heuristic, as in the paper).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` to stderr when `level` passes the global threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kDebug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warning(const Args&... args) {
  if (log_level() > LogLevel::kWarning) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kWarning, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kError, os.str());
}

}  // namespace dmfb
