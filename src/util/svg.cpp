#include "util/svg.h"

#include <algorithm>
#include <array>
#include <sstream>

namespace dmfb {
namespace {

void open_svg(std::ostringstream& os, int width_px, int height_px) {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px
     << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << width_px << ' '
     << height_px << "\">\n";
}

std::string escape_text(const std::string& text) {
  std::string out;
  for (const char ch : text) {
    switch (ch) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

}  // namespace

const std::string& palette_color(std::size_t index) {
  static const std::array<std::string, 10> kPalette = {
      "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
      "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"};
  return kPalette[index % kPalette.size()];
}

std::string render_svg_grid(int grid_width, int grid_height,
                            const std::vector<SvgRect>& rects, int cell_px,
                            const std::vector<Point>& fault_marks) {
  std::ostringstream os;
  const int width_px = grid_width * cell_px;
  const int height_px = grid_height * cell_px;
  open_svg(os, width_px, height_px);

  // Background + cell grid lines.
  os << "<rect width=\"" << width_px << "\" height=\"" << height_px
     << "\" fill=\"#ffffff\" stroke=\"#333333\"/>\n";
  for (int x = 1; x < grid_width; ++x) {
    os << "<line x1=\"" << x * cell_px << "\" y1=\"0\" x2=\"" << x * cell_px
       << "\" y2=\"" << height_px << "\" stroke=\"#dddddd\"/>\n";
  }
  for (int y = 1; y < grid_height; ++y) {
    os << "<line x1=\"0\" y1=\"" << y * cell_px << "\" x2=\"" << width_px
       << "\" y2=\"" << y * cell_px << "\" stroke=\"#dddddd\"/>\n";
  }

  // Rectangles (y flipped: cell (0,0) is bottom-left).
  for (const SvgRect& r : rects) {
    if (r.rect.empty()) continue;
    const int x = r.rect.x * cell_px;
    const int y = (grid_height - r.rect.top()) * cell_px;
    os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
       << r.rect.width * cell_px << "\" height=\"" << r.rect.height * cell_px
       << "\" fill=\"" << r.fill
       << "\" fill-opacity=\"0.75\" stroke=\"#222222\"/>\n";
    if (!r.label.empty()) {
      os << "<text x=\"" << x + r.rect.width * cell_px / 2 << "\" y=\""
         << y + r.rect.height * cell_px / 2
         << "\" text-anchor=\"middle\" dominant-baseline=\"central\" "
            "font-family=\"sans-serif\" font-size=\""
         << cell_px * 2 / 3 << "\">" << escape_text(r.label) << "</text>\n";
    }
  }

  // Fault marks: a red X over the cell.
  for (const Point& f : fault_marks) {
    const int x = f.x * cell_px;
    const int y = (grid_height - 1 - f.y) * cell_px;
    os << "<line x1=\"" << x << "\" y1=\"" << y << "\" x2=\"" << x + cell_px
       << "\" y2=\"" << y + cell_px
       << "\" stroke=\"#cc0000\" stroke-width=\"3\"/>\n"
       << "<line x1=\"" << x + cell_px << "\" y1=\"" << y << "\" x2=\"" << x
       << "\" y2=\"" << y + cell_px
       << "\" stroke=\"#cc0000\" stroke-width=\"3\"/>\n";
  }

  os << "</svg>\n";
  return os.str();
}

std::string render_svg_gantt(const std::vector<SvgGanttBar>& bars,
                             double seconds_per_px) {
  std::ostringstream os;
  constexpr int kRowPx = 28;
  constexpr int kLabelPx = 80;
  double makespan = 0.0;
  for (const auto& bar : bars) makespan = std::max(makespan, bar.end_s);
  const int width_px =
      kLabelPx + static_cast<int>(makespan / seconds_per_px) + 10;
  const int height_px = static_cast<int>(bars.size()) * kRowPx + 10;
  open_svg(os, width_px, height_px);
  os << "<rect width=\"" << width_px << "\" height=\"" << height_px
     << "\" fill=\"#ffffff\"/>\n";

  int row = 0;
  for (const auto& bar : bars) {
    const int y = 5 + row * kRowPx;
    os << "<text x=\"4\" y=\"" << y + kRowPx / 2
       << "\" dominant-baseline=\"central\" font-family=\"sans-serif\" "
          "font-size=\"13\">"
       << escape_text(bar.label) << "</text>\n";
    const int x0 = kLabelPx + static_cast<int>(bar.start_s / seconds_per_px);
    const int x1 = kLabelPx + static_cast<int>(bar.end_s / seconds_per_px);
    os << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\""
       << std::max(1, x1 - x0) << "\" height=\"" << kRowPx - 6
       << "\" fill=\"" << bar.fill << "\" stroke=\"#222222\"/>\n";
    ++row;
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace dmfb
