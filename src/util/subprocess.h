// subprocess.h — minimal fork/exec plumbing for the multi-process batch
// driver (service/batch.h): spawn a child with piped stdin/stdout, feed
// it work line by line, read its reports, wait for its exit status — and
// the crash-safe append-only line writer behind the batch's shared
// results file and checkpoint ledger.
//
// Deliberately not a general process library: no pty, no stderr capture
// (children inherit the parent's stderr, which is where diagnostics
// belong), no async I/O. The batch protocol exchanges a few hundred
// short lines per child, far below pipe capacity, so sequential
// write-all-then-read-all never deadlocks.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace dmfb {

/// One spawned child process with piped stdin/stdout.
class Subprocess {
 public:
  struct Options {
    /// Child becomes its own process-group leader (setpgid), so
    /// kill(signal, /*whole_group=*/true) reaches every process it forks
    /// in turn — how the bench kills a batch driver *and* its workers.
    bool new_process_group = false;
  };

  /// fork/execs `argv` (argv[0] is the executable path) with stdin and
  /// stdout piped to this object. Throws std::runtime_error when the
  /// pipe/fork plumbing fails; an exec failure surfaces as exit code 127
  /// from wait().
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const Options& options);
  static Subprocess spawn(const std::vector<std::string>& argv) {
    return spawn(argv, Options());
  }

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  /// Closes the pipes; does NOT wait — an unreaped child stays a zombie
  /// until the parent exits, so call wait() on every spawned child.
  ~Subprocess();

  pid_t pid() const { return pid_; }

  /// Writes `line` plus a newline to the child's stdin. Throws on a
  /// broken pipe (child exited early).
  void write_line(const std::string& line);

  /// Signals end-of-input to the child (idempotent).
  void close_stdin();

  /// Next line from the child's stdout; false at EOF. A final line
  /// without a trailing newline is still returned.
  bool read_line(std::string& line);

  /// Reaps the child: exit code, or 128 + signal when it was killed.
  /// Returns -1 if there is no child (moved-from or already waited).
  int wait();

  /// Sends `signal` to the child, or to its whole process group when
  /// `whole_group` (requires Options::new_process_group at spawn).
  void kill(int signal, bool whole_group = false);

 private:
  Subprocess() = default;

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string buffer_;
};

/// Crash-safe append-only line writer, shareable across processes: the
/// file is opened O_APPEND|O_CREAT and every append issues exactly one
/// write(2) of "line\n", so concurrent appenders (the batch's worker
/// processes) never interleave mid-line on local filesystems and a
/// killed process leaves at most one torn *trailing* line — which
/// readers skip and terminate_torn_tail() isolates before a resumed run
/// appends more.
class LineAppender {
 public:
  /// `fsync_each_line`: opt-in durability — fsync(2) after every append,
  /// so the line is on stable storage before append() returns (a machine
  /// crash can no longer lose an acknowledged checkpoint, only a torn
  /// tail). Reserve it for low-rate bookkeeping files like the batch's
  /// checkpoint ledger; per-line fsync on a bulk results file would
  /// serialize the whole batch behind the disk.
  explicit LineAppender(const std::string& path,
                        bool fsync_each_line = false);
  LineAppender(const LineAppender&) = delete;
  LineAppender& operator=(const LineAppender&) = delete;
  ~LineAppender();

  /// Appends `line` + '\n' as one write. Throws std::runtime_error on
  /// I/O failure (a short write on a regular file is an I/O failure).
  void append(const std::string& line);

 private:
  int fd_ = -1;
  bool fsync_each_line_ = false;
  std::string path_;
};

/// If `path` exists and its last byte is not '\n' — the torn trailing
/// line of a process killed mid-append — writes the missing newline, so
/// the fragment stays an isolated garbage line (skipped by tolerant
/// readers) instead of corrupting the next append. Call once from the
/// resuming driver *before* any worker opens the file.
void terminate_torn_tail(const std::string& path);

/// All lines of `path` (without newlines); empty when the file is
/// missing. For the batch's small bookkeeping files, not bulk data.
std::vector<std::string> read_lines(const std::string& path);

}  // namespace dmfb
