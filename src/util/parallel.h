// parallel.h — the shared index-space thread pool behind
// SynthesisPipeline::run_many and the per-changeover routing fan-out.
//
// One copy of the subtle parts (hardware-concurrency fallback, atomic
// work queue, per-index exception capture, join-before-return) so the
// two call sites cannot drift.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace dmfb::detail {

/// Worker count implied by a `threads` option: 0 = hardware concurrency,
/// otherwise the requested count, never more than `count` items.
inline std::size_t resolve_worker_count(std::size_t count, int threads) {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  return std::min(count, static_cast<std::size_t>(
                             threads > 0 ? static_cast<unsigned>(threads)
                                         : hardware));
}

/// Invokes fn(index) for every index in [0, count) across
/// `resolve_worker_count(count, threads)` workers (a single worker runs
/// inline in the calling thread). Returns one exception_ptr per index
/// (null = completed normally); nothing is rethrown here because callers
/// differ in how errors must surface (run_many folds them into per-item
/// ok/error status, routing folds them into its fail-fast walk).
template <typename Fn>
std::vector<std::exception_ptr> for_each_index(std::size_t count, int threads,
                                               Fn&& fn) {
  std::vector<std::exception_ptr> errors(count);
  if (count == 0) return errors;

  const std::size_t worker_count = resolve_worker_count(count, threads);
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= count) return;
      try {
        fn(index);
      } catch (...) {
        errors[index] = std::current_exception();
      }
    }
  };

  if (worker_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  return errors;
}

}  // namespace dmfb::detail
