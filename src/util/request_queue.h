// request_queue.h — the bounded blocking queue between the synthesis
// server's request reader and its compile workers.
//
// Classic mutex + two-condition-variable MPMC queue with close()
// semantics: push blocks while the queue is full (backpressure toward the
// client instead of unbounded buffering), pop blocks while it is empty,
// and close() wakes everyone — pending items still drain, then pop
// returns false so workers exit cleanly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace dmfb::detail {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1; it bounds memory and applies backpressure.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and drops the item — when the queue was closed first.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives (returns true) or the queue is closed
  /// and drained (returns false).
  bool pop(T& item) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// No new pushes are accepted; queued items still drain through pop.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dmfb::detail
