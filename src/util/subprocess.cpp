#include "util/subprocess.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace dmfb {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const Options& options) {
  if (argv.empty()) throw std::runtime_error("Subprocess: empty argv");

  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  if (::pipe(to_child) != 0) fail("pipe");
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    fail("pipe");
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    fail("fork");
  }

  if (pid == 0) {
    // Child. Only async-signal-safe calls until exec.
    if (options.new_process_group) ::setpgid(0, 0);
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    _exit(127);  // exec failed; 127 is the shell's convention
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  Subprocess child;
  child.pid_ = pid;
  child.stdin_fd_ = to_child[1];
  child.stdout_fd_ = from_child[0];
  return child;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdin_fd_(std::exchange(other.stdin_fd_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    close_if_open(stdin_fd_);
    close_if_open(stdout_fd_);
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Subprocess::~Subprocess() {
  close_if_open(stdin_fd_);
  close_if_open(stdout_fd_);
}

void Subprocess::write_line(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t wrote =
        ::write(stdin_fd_, out.data() + sent, out.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail("Subprocess::write_line");
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

void Subprocess::close_stdin() { close_if_open(stdin_fd_); }

bool Subprocess::read_line(std::string& line) {
  for (;;) {
    if (const auto newline = buffer_.find('\n');
        newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::read(stdout_fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("Subprocess::read_line");
    }
    if (got == 0) {
      if (buffer_.empty()) return false;
      line = std::exchange(buffer_, {});  // unterminated final line
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

int Subprocess::wait() {
  if (pid_ < 0) return -1;
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid_, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  pid_ = -1;
  if (reaped < 0) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

void Subprocess::kill(int signal, bool whole_group) {
  if (pid_ < 0) return;
  ::kill(whole_group ? -pid_ : pid_, signal);
}

LineAppender::LineAppender(const std::string& path, bool fsync_each_line)
    : fsync_each_line_(fsync_each_line), path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) fail("LineAppender: open " + path);
}

LineAppender::~LineAppender() { close_if_open(fd_); }

void LineAppender::append(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  // One write(2): O_APPEND makes the offset atomic, and on local
  // filesystems the whole buffer lands contiguously, so concurrent
  // appenders never interleave mid-line and a kill leaves at most a
  // torn tail. A short write would break that contract — treat it as
  // an error rather than retrying into a torn middle.
  const ssize_t wrote = ::write(fd_, out.data(), out.size());
  if (wrote != static_cast<ssize_t>(out.size())) {
    fail("LineAppender: append to " + path_);
  }
  if (fsync_each_line_ && ::fsync(fd_) != 0) {
    fail("LineAppender: fsync " + path_);
  }
}

void terminate_torn_tail(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return;  // missing file: nothing torn
  const off_t size = ::lseek(fd, 0, SEEK_END);
  char last = '\n';
  if (size > 0 && ::pread(fd, &last, 1, size - 1) == 1 && last != '\n') {
    if (::write(fd, "\n", 1) != 1) {
      ::close(fd);
      fail("terminate_torn_tail: " + path);
    }
  }
  ::close(fd);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace dmfb
