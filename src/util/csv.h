// csv.h — minimal CSV emission for benchmark series (figures are emitted
// both as ASCII tables and as CSV rows so they can be re-plotted).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dmfb {

/// Escapes a field per RFC 4180 (quotes fields containing comma/quote/NL).
std::string csv_escape(const std::string& field);

/// Writes one CSV row.
void write_csv_row(std::ostream& os, const std::vector<std::string>& fields);

}  // namespace dmfb
