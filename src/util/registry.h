// registry.h — shared machinery for the string-keyed backend factories.
//
// PlacerRegistry (core/placer.h) and RouterRegistry (sim/router_backend.h)
// are the same thread-safe name -> factory map with the same error
// contract; this template is that map, written once. The public registry
// classes keep their domain-specific names and docs and forward here, so
// a third backend family (schedulers, binders, ...) can reuse it without
// copying seventy lines of locking code again.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dmfb::detail {

/// Thread-safe string-keyed factory map for one backend family. `kind`
/// names the family in error messages ("placer", "router").
template <typename Backend>
class NamedRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Backend>()>;

  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers a factory under `name`. Throws std::invalid_argument when
  /// the name is empty, the factory is not callable, or the name is taken.
  void add(const std::string& name, Factory factory) {
    if (name.empty()) {
      throw std::invalid_argument(kind_ + " name must be non-empty");
    }
    if (!factory) {
      throw std::invalid_argument(kind_ + " factory for \"" + name +
                                  "\" must be callable");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = factories_.emplace(name, std::move(factory));
    if (!inserted) {
      throw std::invalid_argument(kind_ + " \"" + name +
                                  "\" already registered");
    }
  }

  /// Instantiates the backend registered under `name`. Throws
  /// std::invalid_argument for unknown names; the message lists every
  /// registered name, gathered under the same lock acquisition as the
  /// failed lookup so it reflects the state the lookup actually saw.
  std::unique_ptr<Backend> make(const std::string& name) const {
    Factory factory;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = factories_.find(name);
      if (it == factories_.end()) {
        std::ostringstream message;
        message << "unknown " << kind_ << " \"" << name << "\"; registered "
                << kind_ << "s:";
        for (const auto& known : names_locked()) {
          message << " \"" << known << "\"";
        }
        throw std::invalid_argument(message.str());
      }
      factory = it->second;
    }
    return factory();
  }

  bool contains(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) != 0;
  }

  /// All registered names, sorted.
  std::vector<std::string> names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return names_locked();
  }

 private:
  std::vector<std::string> names_locked() const {
    std::vector<std::string> result;
    result.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) result.push_back(name);
    return result;  // std::map iteration is already sorted
  }

  std::string kind_;
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace dmfb::detail
