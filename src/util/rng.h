// rng.h — deterministic pseudo-random number generation.
//
// Every stochastic component of the library (the annealer, random assay
// generation, fault injection) takes an explicit Rng so runs are exactly
// reproducible from a printed seed. The generator is xoshiro256** seeded
// via SplitMix64, the standard pairing recommended by the xoshiro authors.
#pragma once

#include <cstdint>
#include <limits>

namespace dmfb {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state. Also a
/// perfectly fine generator for non-critical uses.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, 256-bit state. Satisfies enough of
/// std::uniform_random_bit_generator to be used with <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedf00dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  /// The seed this generator was (re)constructed from; benches print it.
  std::uint64_t seed() const { return seed_; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection loop; expected iterations < 2 for any bound.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int next_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1). 53 random mantissa bits.
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent child generator; used to give subsystems their
  /// own streams without sharing state.
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  std::uint64_t state_[4] = {};
};

}  // namespace dmfb
