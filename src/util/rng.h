// rng.h — deterministic pseudo-random number generation.
//
// Every stochastic component of the library (the annealer, random assay
// generation, fault injection) takes an explicit Rng so runs are exactly
// reproducible from a printed seed. The generator is xoshiro256** seeded
// via SplitMix64, the standard pairing recommended by the xoshiro authors.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace dmfb {

/// Exact 64-bit division by a fixed divisor via precomputed magic numbers
/// (Granlund–Montgomery, the libdivide schemes): one widening multiply
/// and a shift instead of a hardware divide. `divide` returns exactly
/// n / bound for every n — test_rng.cpp cross-checks against the
/// hardware divider — so Rng::next_below's rejection sampling produces
/// bit-identical streams with or without it. The annealer draws three
/// bounded samples per proposal; two hardware divides each was a
/// measurable slice of the delta engine's proposal budget.
struct FastDiv {
  std::uint64_t bound = 0;
  std::uint64_t magic = 0;
  std::uint64_t threshold = 0;  ///< (2^64 - bound) % bound, Lemire rejection
  int shift = 0;
  bool add = false;   ///< round-down scheme: needs the add fixup
  bool pow2 = false;  ///< plain shift

  static FastDiv make(std::uint64_t d) {
    FastDiv f;
    f.bound = d;
    f.threshold = (0 - d) % d;
    const int sh = 63 - std::countl_zero(d);
    f.shift = sh;
    if ((d & (d - 1)) == 0) {
      f.pow2 = true;
      return f;
    }
    const unsigned __int128 power = static_cast<unsigned __int128>(1)
                                    << (64 + sh);
    std::uint64_t proposed = static_cast<std::uint64_t>(power / d);
    const std::uint64_t rem = static_cast<std::uint64_t>(power % d);
    const std::uint64_t error = d - rem;
    if (error < (static_cast<std::uint64_t>(1) << sh)) {
      // Round-up scheme: magic = floor(2^(64+sh) / d) + 1 is exact.
      f.magic = proposed + 1;
    } else {
      // Round-down scheme with the saturating add fixup.
      proposed += proposed;
      const std::uint64_t twice_rem = rem + rem;
      if (twice_rem >= d || twice_rem < rem) ++proposed;
      f.magic = proposed + 1;
      f.add = true;
    }
    return f;
  }

  std::uint64_t divide(std::uint64_t n) const {
    if (pow2) return n >> shift;
    const std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(magic) * n) >> 64);
    if (!add) return q >> shift;
    const std::uint64_t t = ((n - q) >> 1) + q;
    return t >> shift;
  }

  std::uint64_t mod(std::uint64_t n) const { return n - divide(n) * bound; }
};

/// SplitMix64: used to expand a 64-bit seed into xoshiro state. Also a
/// perfectly fine generator for non-critical uses.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, 256-bit state. Satisfies enough of
/// std::uniform_random_bit_generator to be used with <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedf00dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  /// The seed this generator was (re)constructed from; benches print it.
  std::uint64_t seed() const { return seed_; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Rejection sampling
  /// to avoid modulo bias; repeating bounds run through a per-bound
  /// FastDiv memo (the annealer redraws the same couple of bounds
  /// millions of times), while one-shot bounds (e.g. a Fisher–Yates
  /// shuffle's descending sequence) take the plain hardware-divide path
  /// — a FastDiv is only derived once a bound misses the memo twice in a
  /// row. Both paths produce bit-identical results.
  std::uint64_t next_below(std::uint64_t bound) {
    if (divs_[0].bound == bound) return next_below_with(divs_[0]);
    if (divs_[1].bound == bound) return next_below_with(divs_[1]);
    if (divs_[2].bound == bound) return next_below_with(divs_[2]);
    if (bound == last_missed_bound_) {
      FastDiv& slot = divs_[div_victim_];
      div_victim_ = (div_victim_ + 1) % 3;
      slot = FastDiv::make(bound);
      return next_below_with(slot);
    }
    last_missed_bound_ = bound;
    const std::uint64_t threshold = (0 - bound) % bound;
    // Rejection loop; expected iterations < 2 for any bound.
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int next_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1). 53 random mantissa bits.
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent child generator; used to give subsystems their
  /// own streams without sharing state.
  ///
  /// Stream-independence contract: the child is reseeded from one parent
  /// draw XOR the golden-ratio constant, and reseed() expands that 64-bit
  /// value through SplitMix64 into fresh 256-bit xoshiro state — the child
  /// does NOT continue, lag or mirror the parent's sequence. Distinct
  /// split() calls consume successive parent draws, so siblings get
  /// distinct seeds; the chance of any two of k such streams colliding
  /// within n draws is ~ k^2 * n / 2^64 states visited out of 2^256
  /// (test_rng.cpp pins no pairwise overlap across the parent and four
  /// children for the first 10^5 draws each). Note split() advances the
  /// parent: the order of split() calls matters for reproducibility —
  /// use split_n() where call order must not.
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

  /// Order-independent indexed split: derives the index-th child from the
  /// construction seed alone, consuming nothing from this generator's
  /// stream. `parent.split_n(i)` is therefore the same generator no
  /// matter how many draws or split() calls the parent has made — the
  /// portfolio placer keys replica r's stream off (seed, r) this way so
  /// replica seeds cannot depend on spawn order. Children for distinct
  /// indices are distinct SplitMix64 outputs of distinct inputs; the same
  /// overlap bound as split() applies.
  Rng split_n(std::uint64_t index) const {
    SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    return Rng(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t next_below_with(const FastDiv& div) {
    for (;;) {
      const std::uint64_t r = next();
      if (r >= div.threshold) return div.mod(r);
    }
  }

  std::uint64_t seed_ = 0;
  std::uint64_t state_[4] = {};
  /// Three-entry direct-mapped FastDiv memo: the annealer's proposal
  /// loop draws three recurring bounds — module count, the controlling
  /// window span, and count-1 from pair interchanges — so three slots
  /// cover the hot loop without thrash (the span slot turns over once
  /// per temperature step).
  FastDiv divs_[3];
  std::uint64_t last_missed_bound_ = 0;
  int div_victim_ = 0;
};

}  // namespace dmfb
