// geometry.h — integer cell geometry for microfluidic arrays.
//
// The paper addresses cells of an m-by-n electrode array with 1-based
// coordinates ((1,1) = bottom-left). Internally this library uses 0-based
// coordinates throughout; presentation code adds 1 when mirroring the
// paper's notation.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <string>

namespace dmfb {

/// A cell location on the electrode array. `x` is the column (grows right),
/// `y` is the row (grows up). Coordinates may be negative while a candidate
/// placement is being constructed; validation rejects out-of-bounds results.
struct Point {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
  friend constexpr auto operator<=>(const Point&, const Point&) = default;
};

/// Manhattan (L1) distance between two cells — droplet transport on a DMFB
/// moves one cell per actuation step in the four cardinal directions.
constexpr int manhattan_distance(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Chebyshev (L∞) distance. Fluidic constraints forbid *any* adjacency,
/// including diagonal, so droplet-separation rules are expressed with L∞.
constexpr int chebyshev_distance(Point a, Point b) {
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

/// Axis-aligned rectangle of cells, half-open is *not* used: the rectangle
/// covers columns [x, x+width-1] and rows [y, y+height-1], matching how the
/// paper counts module areas in cells (a 4x4-cell module has width=height=4).
struct Rect {
  int x = 0;       ///< left column of the rectangle (anchor, bottom-left)
  int y = 0;       ///< bottom row of the rectangle (anchor, bottom-left)
  int width = 0;   ///< number of columns covered (>= 0)
  int height = 0;  ///< number of rows covered (>= 0)

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  /// Number of cells covered.
  constexpr long long area() const {
    return static_cast<long long>(width) * height;
  }

  constexpr bool empty() const { return width <= 0 || height <= 0; }

  /// One past the rightmost covered column.
  constexpr int right() const { return x + width; }
  /// One past the topmost covered row.
  constexpr int top() const { return y + height; }

  constexpr bool contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < top();
  }

  constexpr bool contains(const Rect& other) const {
    return !other.empty() && other.x >= x && other.y >= y &&
           other.right() <= right() && other.top() <= top();
  }

  constexpr bool intersects(const Rect& other) const {
    if (empty() || other.empty()) return false;
    return x < other.right() && other.x < right() && y < other.top() &&
           other.y < top();
  }

  /// The overlapping region (empty rect if none).
  constexpr Rect intersection(const Rect& other) const {
    const int lx = std::max(x, other.x);
    const int ly = std::max(y, other.y);
    const int rx = std::min(right(), other.right());
    const int ry = std::min(top(), other.top());
    if (rx <= lx || ry <= ly) return Rect{};
    return Rect{lx, ly, rx - lx, ry - ly};
  }

  /// Number of cells shared with `other`.
  constexpr long long overlap_area(const Rect& other) const {
    return intersection(other).area();
  }

  /// Smallest rectangle containing both (treats empty rects as identity).
  constexpr Rect united(const Rect& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    const int lx = std::min(x, other.x);
    const int ly = std::min(y, other.y);
    const int rx = std::max(right(), other.right());
    const int ry = std::max(top(), other.top());
    return Rect{lx, ly, rx - lx, ry - ly};
  }

  /// Rectangle grown by `margin` cells on every side. Used for segregation
  /// rings and droplet-separation checks.
  constexpr Rect inflated(int margin) const {
    return Rect{x - margin, y - margin, width + 2 * margin,
                height + 2 * margin};
  }

  /// The same footprint rotated 90 degrees (width/height exchanged); the
  /// anchor is preserved. Module orientation changes in the annealer use
  /// this.
  constexpr Rect rotated() const { return Rect{x, y, height, width}; }

  /// True when this rectangle lies fully inside a w-by-h array anchored at
  /// the origin.
  constexpr bool within_bounds(int bound_width, int bound_height) const {
    return x >= 0 && y >= 0 && right() <= bound_width && top() <= bound_height;
  }
};

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

std::string to_string(const Point& p);
std::string to_string(const Rect& r);

}  // namespace dmfb
