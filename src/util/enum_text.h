// enum_text.h — textual round-tripping for the library's enums.
//
// Every user-facing enum provides `const char* to_string(Enum)` next to its
// definition plus an explicit specialization of `from_string<Enum>` declared
// here, so configs and CLI flags round-trip through text:
//
//   PlacerKind kind = from_string<PlacerKind>("two-stage");
//   assert(from_string<PlacerKind>(to_string(kind)) == kind);
//
// Stream operators (`operator<<` / `operator>>`) are layered on the same
// pair, in the style of poplibs' Operation: `>>` reads one whitespace-
// delimited token and parses it, throwing std::invalid_argument (with the
// list of valid spellings) on unknown input.
#pragma once

#include <string_view>

namespace dmfb {

/// Parses an enum value from its `to_string` spelling. Only the explicit
/// specializations (one per enum) are defined; there is no generic
/// implementation. Throws std::invalid_argument on unknown text.
template <typename Enum>
Enum from_string(std::string_view text);

}  // namespace dmfb
