// matrix.h — dense row-major 2-D array used for occupancy grids, staircase
// tables and prefix sums. Kept header-only: it is instantiated with small
// trivially-copyable types on hot paths of the annealer.
#pragma once

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/geometry.h"

namespace dmfb {

/// Dense width-by-height matrix addressed by (x, y) cell coordinates,
/// y-up to match the paper's array convention. Row-major with y as the
/// slow index, so scanning x within y is cache-friendly.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(int width, int height, T fill = T{})
      : width_(width), height_(height) {
    if (width < 0 || height < 0) {
      throw std::invalid_argument("Matrix: negative dimension");
    }
    data_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }
  long long size() const { return static_cast<long long>(width_) * height_; }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  bool in_bounds(Point p) const { return in_bounds(p.x, p.y); }

  T& at(int x, int y) {
    assert(in_bounds(x, y));
    return data_[index(x, y)];
  }
  const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return data_[index(x, y)];
  }
  T& at(Point p) { return at(p.x, p.y); }
  const T& at(Point p) const { return at(p.x, p.y); }

  /// Bounds-checked accessor; throws on out-of-range. Use in non-hot paths.
  const T& checked_at(int x, int y) const {
    if (!in_bounds(x, y)) throw std::out_of_range("Matrix::checked_at");
    return data_[index(x, y)];
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  /// Re-dimensions in place, reusing the underlying buffer's capacity —
  /// for scratch matrices rebuilt thousands of times per second (the
  /// incremental FTI evaluator).
  void reset(int width, int height, T fill = T{}) {
    if (width < 0 || height < 0) {
      throw std::invalid_argument("Matrix: negative dimension");
    }
    width_ = width;
    height_ = height;
    data_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  /// Assigns `value` to every cell of `r` clipped to the matrix bounds.
  void fill_rect(const Rect& r, const T& value) {
    const Rect clipped = r.intersection(Rect{0, 0, width_, height_});
    for (int y = clipped.y; y < clipped.top(); ++y) {
      for (int x = clipped.x; x < clipped.right(); ++x) {
        data_[index(x, y)] = value;
      }
    }
  }

  /// Counts cells in `r` (clipped) equal to `value`.
  long long count_in_rect(const Rect& r, const T& value) const {
    const Rect clipped = r.intersection(Rect{0, 0, width_, height_});
    long long count = 0;
    for (int y = clipped.y; y < clipped.top(); ++y) {
      for (int x = clipped.x; x < clipped.right(); ++x) {
        if (data_[index(x, y)] == value) ++count;
      }
    }
    return count;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

}  // namespace dmfb
