#include "util/csv.h"

namespace dmfb {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) os << ',';
    os << csv_escape(fields[i]);
  }
  os << '\n';
}

}  // namespace dmfb
