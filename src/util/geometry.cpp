#include "util/geometry.h"

#include <sstream>

namespace dmfb {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.x << ", " << r.y << "; " << r.width << 'x' << r.height
            << ']';
}

std::string to_string(const Point& p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

std::string to_string(const Rect& r) {
  std::ostringstream os;
  os << r;
  return os.str();
}

}  // namespace dmfb
