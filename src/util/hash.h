// hash.h — stable (process- and platform-independent) 64-bit hashing for
// content-addressed caching.
//
// std::hash makes no cross-run guarantees, so anything persisted or
// compared across processes (the synthesis service's compile-cache keys)
// hashes through these helpers instead: FNV-1a over bytes, plus a small
// accumulator for mixing heterogeneous fields. The constants are the
// standard 64-bit FNV parameters; values are stable forever by contract
// (changing them would silently invalidate every cached fingerprint).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dmfb {

/// 64-bit FNV-1a over a byte string. Deterministic across runs, platforms
/// and build modes — the property std::hash does not promise.
inline std::uint64_t stable_hash64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

/// Field-by-field hash accumulator over the same FNV-1a stream, so
/// composite keys (geometry + options + defect maps) mix without building
/// an intermediate string. Field order matters; adjacent variable-length
/// fields should be separated by a fixed tag or length (mix_bytes of a
/// string does both via its length prefix).
class HashStream {
 public:
  HashStream() = default;
  explicit HashStream(std::uint64_t seed) { mix(seed); }

  HashStream& mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= static_cast<unsigned char>(value >> (8 * i));
      hash_ *= 0x100000001b3ULL;
    }
    return *this;
  }

  HashStream& mix(std::int64_t value) {
    return mix(static_cast<std::uint64_t>(value));
  }
  HashStream& mix(int value) {
    return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }
  HashStream& mix(bool value) {
    return mix(static_cast<std::uint64_t>(value ? 1 : 0));
  }

  /// Doubles hash by bit pattern (canonicalizing -0.0 to 0.0 so the two
  /// textual spellings of zero agree).
  HashStream& mix(double value) {
    if (value == 0.0) value = 0.0;  // collapse -0.0
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return mix(bits);
  }

  /// Length-prefixed, so consecutive strings cannot alias each other.
  HashStream& mix_bytes(std::string_view bytes) {
    mix(static_cast<std::uint64_t>(bytes.size()));
    for (const char c : bytes) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
    return *this;
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace dmfb
