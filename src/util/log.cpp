#include "util/log.h"

#include <iostream>

namespace dmfb {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::cerr << "[dmfb:" << level_name(level) << "] " << message << '\n';
}

}  // namespace dmfb
