// portfolio_placer.h — the "portfolio" placement backend: N exchange-
// coupled annealing replicas raced over the shared thread pool
// (util/parallel.h), i.e. parallel tempering across whole SA runs.
//
// Each replica runs the fused delta engine's proposal path (an
// IncrementalPlacementState driven by propose_random with pre-batched
// Metropolis draws — or the kBatched speculative variant, per
// SaPlacerOptions::engine) on its own state, with its move and
// Metropolis streams derived order-independently from the master seed
// via Rng::split_n(r), and its temperature schedule scaled by
// ladder_ratio^r (the whole schedule scales, so every replica runs the
// same number of temperature steps and the exchange barriers align).
// Every exchange_period steps all replicas synchronize at a barrier
// where adjacent-temperature pairs (alternating parity per barrier, the
// standard parallel-tempering sweep) swap their placements under the
// Metropolis exchange criterion
//
//   p = min(1, exp((1/T_i - 1/T_j) * (E_i - E_j)))
//
// and the incumbent best (lowest recorded cost, lowest replica index on
// ties) is adopted. Replica segments are deterministic in isolation
// (each owns its rng and state) and the exchange pass runs single-
// threaded on a dedicated stream split from the master seed, so the
// result is bit-reproducible for a fixed (seed, N, K) at ANY thread
// count — `threads` changes wall time only. tests/test_portfolio_placer
// .cpp and test_placer_registry.cpp pin both properties.
#pragma once

#include <limits>

#include "core/sa_placer.h"

namespace dmfb {

/// Everything configurable about one portfolio run, over and above the
/// per-replica annealing options (SaPlacerOptions; the replica engine
/// must be an incremental one — kCopy is rejected).
struct PortfolioOptions {
  /// Replica count N; 0 = one per hardware thread (min 1). Part of the
  /// reproducibility key: results are a function of (seed, N, K).
  int replicas = 0;
  /// Temperature steps between exchange barriers (K).
  int exchange_period = 4;
  /// Geometric spacing of the replica temperature ladder: replica r
  /// anneals from T0 * ladder_ratio^r down to min_T * ladder_ratio^r.
  /// 1.0 degenerates to an independent-restart portfolio (exchanges
  /// then swap same-temperature chains, which is cost-neutral).
  double ladder_ratio = 1.25;
  /// Worker threads for the replica segments; 0 = hardware concurrency.
  /// Execution-only: any value yields the identical placement.
  int threads = 0;
  /// Early-stop target: the run ends at the first exchange barrier where
  /// the incumbent best cost is <= this value. Disabled at -infinity.
  /// The wall-clock-to-target benches (bench_perf_sa) race against it.
  double target_cost = -std::numeric_limits<double>::infinity();
};

/// Anneals a portfolio of replicas, every one starting from `initial`
/// (or replica 0 from `replica0_initial` when given — the warm-start
/// seam: the memoized placement seeds one chain, the fresh split seeds
/// keep the rest exploring).
///
/// The returned outcome carries the incumbent best placement.
/// `outcome.stats` aggregates all replicas; its wall_seconds is the
/// CRITICAL-PATH time — the sum over barrier intervals of the slowest
/// replica's segment plus the serial exchange passes — which equals the
/// elapsed wall time of the same run on >= N free hardware threads, and
/// is what the wall-clock-to-target benches record on any machine; its
/// seconds_to_best is that clock at the barrier where the incumbent
/// last improved. `outcome.replica_stats[r]` is replica r's own loop
/// (own wall clock). `outcome.wall_seconds` is the actually elapsed
/// time of this run, setup included.
PlacementOutcome anneal_portfolio(const Placement& initial,
                                  const SaPlacerOptions& options,
                                  const PortfolioOptions& portfolio,
                                  const Placement* replica0_initial = nullptr);

/// The "portfolio" registry backend's entry: greedy constructive initial
/// (honouring options.initial as replica 0's warm start when compatible),
/// then anneal_portfolio.
PlacementOutcome place_portfolio(const Schedule& schedule,
                                 const SaPlacerOptions& options,
                                 const PortfolioOptions& portfolio = {});

}  // namespace dmfb
