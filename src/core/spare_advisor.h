// spare_advisor.h — "how large an array should I fabricate?" (§1 of the
// paper: "solutions for the placement problem can provide the designer
// with guidelines on the size of the array to be manufactured"; spare
// cells must be placed so faulty cells can be bypassed).
//
// Given a synthesized schedule and a target FTI, the advisor sweeps the
// fault-tolerance weight of the two-stage placer and reports the smallest
// placement meeting the target, plus the full area/FTI frontier so a
// designer can pick a different point (e.g., the paper's disposable
// glucose-meter vs implantable drug-dosing trade-off, §6.3).
#pragma once

#include <vector>

#include "assay/schedule.h"
#include "core/two_stage_placer.h"

namespace dmfb {

/// One point of the area/fault-tolerance frontier.
struct FrontierPoint {
  double beta = 0.0;
  long long area_cells = 0;
  double fti = 0.0;
  Placement placement;
};

/// Advisor output.
struct SpareAdvice {
  bool target_met = false;
  FrontierPoint chosen;                 ///< valid iff target_met
  std::vector<FrontierPoint> frontier;  ///< every evaluated point
};

/// Options for the sweep.
struct SpareAdvisorOptions {
  double target_fti = 0.9;
  std::vector<double> betas{10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0};
  TwoStageOptions two_stage;  ///< annealing parameters per point
};

/// Sweeps beta, collects the frontier, and picks the smallest-area point
/// with FTI >= target. Dominated points (larger area, no more FTI) are
/// kept in the frontier for reporting but never chosen.
SpareAdvice advise_spares(const Schedule& schedule,
                          const SpareAdvisorOptions& options = {});

}  // namespace dmfb
