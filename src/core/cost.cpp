#include "core/cost.h"

#include <stdexcept>

namespace dmfb {

CostBreakdown CostEvaluator::evaluate(const Placement& placement) const {
  CostBreakdown result;
  result.area_cells = placement.bounding_box_cells();
  result.overlap_cells = placement.overlap_cells();
  result.defect_cells = defect_usage(placement);
  if (weights_.beta != 0.0) {
    const FtiResult fti = evaluate_fti(placement, fti_options_);
    result.fti = fti.fti();
  }
  result.value = weights_.alpha * static_cast<double>(result.area_cells) +
                 weights_.lambda_overlap *
                     static_cast<double>(result.overlap_cells) +
                 weights_.lambda_defect *
                     static_cast<double>(result.defect_cells) -
                 weights_.beta * result.fti;
  // Appended outside the base expression (and skipped entirely at
  // gamma == 0) so classic runs stay bit-identical; the delta engine's
  // value_of mirrors this exact shape.
  if (weights_.gamma != 0.0) {
    result.route_pressure = route_pressure(placement);
    result.value +=
        weights_.gamma * static_cast<double>(result.route_pressure);
  }
  return result;
}

long long CostEvaluator::route_pressure(const Placement& placement) const {
  if (route_links_.empty()) return 0;
  long long pressure = 0;
  const int count = placement.module_count();
  for (const RouteLink& link : route_links_) {
    if (link.target_module < 0 || link.target_module >= count ||
        link.source_module >= count) {
      throw std::invalid_argument(
          "CostEvaluator::route_pressure: link module index out of range "
          "(links extracted for a different schedule?)");
    }
    const Rect target = placement.module(link.target_module).footprint();
    const Rect source = link.source_module >= 0
                            ? placement.module(link.source_module).footprint()
                            : target;
    pressure += link.weight *
                detail::route_link_distance(link, source, target,
                                            placement.canvas_width(),
                                            placement.canvas_height());
  }
  return pressure;
}

double CostEvaluator::cost(const Placement& placement) const {
  return evaluate(placement).value;
}

long long CostEvaluator::defect_usage(const Placement& placement) const {
  if (defects_.empty()) return 0;
  long long count = 0;
  for (const auto& m : placement.modules()) {
    const Rect fp = m.footprint();
    // A module that cannot contain any defect skips the O(d) scan.
    if (!fp.intersects(defect_bounds_)) continue;
    for (const Point& defect : defects_) {
      if (fp.contains(defect)) ++count;
    }
  }
  return count;
}

}  // namespace dmfb
