#include "core/cost.h"

namespace dmfb {

CostBreakdown CostEvaluator::evaluate(const Placement& placement) const {
  CostBreakdown result;
  result.area_cells = placement.bounding_box_cells();
  result.overlap_cells = placement.overlap_cells();
  result.defect_cells = defect_usage(placement);
  if (weights_.beta != 0.0) {
    const FtiResult fti = evaluate_fti(placement, fti_options_);
    result.fti = fti.fti();
  }
  result.value = weights_.alpha * static_cast<double>(result.area_cells) +
                 weights_.lambda_overlap *
                     static_cast<double>(result.overlap_cells) +
                 weights_.lambda_defect *
                     static_cast<double>(result.defect_cells) -
                 weights_.beta * result.fti;
  return result;
}

double CostEvaluator::cost(const Placement& placement) const {
  return evaluate(placement).value;
}

long long CostEvaluator::defect_usage(const Placement& placement) const {
  if (defects_.empty()) return 0;
  long long count = 0;
  for (const auto& m : placement.modules()) {
    const Rect fp = m.footprint();
    // A module that cannot contain any defect skips the O(d) scan.
    if (!fp.intersects(defect_bounds_)) continue;
    for (const Point& defect : defects_) {
      if (fp.contains(defect)) ++count;
    }
  }
  return count;
}

}  // namespace dmfb
