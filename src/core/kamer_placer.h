// kamer_placer.h — online first-fit/best-fit placement over maximal empty
// rectangles, in the style of Bazargan et al.'s KAMER placer for
// dynamically reconfigurable FPGAs ([11] in the paper). The paper contrasts
// its annealing approach with exactly this family of template placers;
// implementing it gives the natural online baseline: modules are placed in
// start-time order into a maximal empty rectangle of the configuration
// they arrive at, with no global optimization.
#pragma once

#include <optional>
#include <string>

#include "assay/schedule.h"
#include "core/placement.h"
#include "core/reconfig.h"
#include "util/deprecation.h"

namespace dmfb {

/// Result of an online placement run.
struct KamerResult {
  bool success = false;           ///< every module found a home
  Placement placement;            ///< valid iff success
  std::string failure_reason;     ///< which module failed, when
  int modules_placed = 0;
};

/// Places modules in order of start time (ties: larger footprint first)
/// onto a fixed array of `array_width` x `array_height` cells. Each module
/// goes into a maximal empty rectangle — w.r.t. the modules it overlaps in
/// time — chosen by `policy` (kBestFit mirrors KAMER's default), anchored
/// at the rectangle's bottom-left. Orientation is tried canonical first,
/// then rotated when `allow_rotation`.
DMFB_DEPRECATED("use make_placer(\"kamer\")->place(schedule, context)")
KamerResult place_kamer(const Schedule& schedule, int array_width,
                        int array_height,
                        RelocationPolicy policy = RelocationPolicy::kBestFit,
                        bool allow_rotation = true);

/// Smallest square array on which the KAMER placer succeeds, searched by
/// increasing the side length from the largest module dimension. Returns
/// nullopt when no side up to `max_side` works.
std::optional<KamerResult> smallest_kamer_array(const Schedule& schedule,
                                                int max_side,
                                                RelocationPolicy policy =
                                                    RelocationPolicy::kBestFit);

}  // namespace dmfb
