// greedy_placer.h — the paper's baseline placement (§6.1) and the
// constructive initial placement for annealing (§4a).
//
// Modules are sorted by decreasing footprint area; each is placed at the
// first (bottom-left-most) location where it fits without overlapping any
// already-placed module whose time interval intersects its own.
#pragma once

#include <vector>

#include "assay/schedule.h"
#include "core/placement.h"
#include "util/deprecation.h"

namespace dmfb {

/// Places `schedule`'s modules greedily on a canvas. Positions whose
/// footprint would cover a cell of `defects` are skipped (defect-aware
/// constructive placement over a manufacturing defect map). Throws
/// std::runtime_error when some module cannot be placed.
DMFB_DEPRECATED("use make_placer(\"greedy\")->place(schedule, context)")
Placement place_greedy(const Schedule& schedule, int canvas_width,
                       int canvas_height,
                       const std::vector<Point>& defects = {});

/// Greedy placement of an existing Placement's modules (anchors are
/// overwritten; orientations reset to canonical). Used to build the
/// annealer's initial configuration.
void greedy_reset(Placement& placement,
                  const std::vector<Point>& defects = {});

}  // namespace dmfb
