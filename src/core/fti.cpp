#include "core/fti.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "core/mer.h"
#include "util/prefix_sum.h"

namespace dmfb {
namespace {

/// Binary occupancy of `region` by modules that time-overlap module
/// `excluded` (excluding itself), written into `grid`: exactly the cells
/// unavailable to the module were it relocated.
void occupancy_excluding_into(const Placement& placement, int excluded,
                              const Rect& region,
                              Matrix<std::uint8_t>& grid) {
  grid.reset(region.width, region.height, 0);
  const PlacedModule& target = placement.module(excluded);
  for (int i = 0; i < placement.module_count(); ++i) {
    if (i == excluded) continue;
    const PlacedModule& other = placement.module(i);
    if (!target.time_overlaps(other)) continue;
    Rect fp = other.footprint();
    fp.x -= region.x;
    fp.y -= region.y;
    grid.fill_rect(fp, 1);
  }
}

Matrix<std::uint8_t> occupancy_excluding(const Placement& placement,
                                         int excluded, const Rect& region) {
  Matrix<std::uint8_t> grid;
  occupancy_excluding_into(placement, excluded, region, grid);
  return grid;
}

/// Builds the per-orientation queries from `scratch.occupied` (already
/// filled with the excluding occupancy). The valid-anchor grid — cell
/// (x, y) is valid iff rect (x, y, w, h) is empty and inside the grid —
/// is derived fused into its prefix-sum pass, never materialized.
std::vector<OrientationQuery> queries_from_scratch(FtiBuildScratch& scratch,
                                                   int w, int h,
                                                   const FtiOptions& options) {
  scratch.occupied_sums.rebuild(scratch.occupied);
  const int grid_w = scratch.occupied_sums.width();
  const int grid_h = scratch.occupied_sums.height();

  std::vector<OrientationQuery> queries;
  auto add = [&](int qw, int qh) {
    OrientationQuery q;
    q.w = qw;
    q.h = qh;
    q.position_sums.rebuild_from(grid_w, grid_h, [&](int x, int y) {
      return x + qw <= grid_w && y + qh <= grid_h &&
             scratch.occupied_sums.is_rect_empty(Rect{x, y, qw, qh});
    });
    q.total_positions =
        q.position_sums.occupied_in(Rect{0, 0, grid_w, grid_h});
    queries.push_back(std::move(q));
  };
  add(w, h);
  if (options.allow_rotation && w != h) add(h, w);
  return queries;
}

}  // namespace

long long OrientationQuery::positions_containing(Point cell) const {
  const int x1 = std::max(0, cell.x - w + 1);
  const int y1 = std::max(0, cell.y - h + 1);
  const int x2 = std::min(cell.x, position_sums.width() - 1);
  const int y2 = std::min(cell.y, position_sums.height() - 1);
  if (x2 < x1 || y2 < y1) return 0;
  return position_sums.occupied_in(Rect{x1, y1, x2 - x1 + 1, y2 - y1 + 1});
}

bool OrientationQuery::relocatable_avoiding(Point cell) const {
  return total_positions - positions_containing(cell) > 0;
}

std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options) {
  FtiBuildScratch scratch;
  return build_relocation_queries(placement, index, region, options, scratch);
}

std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options, FtiBuildScratch& scratch) {
  const PlacedModule& m = placement.module(index);
  occupancy_excluding_into(placement, index, region, scratch.occupied);
  return queries_from_scratch(scratch, m.spec.footprint_width(),
                              m.spec.footprint_height(), options);
}

FtiResult evaluate_fti(const Placement& placement, const FtiOptions& options,
                       std::optional<Rect> region_opt) {
  const Rect region = region_opt.value_or(placement.bounding_box());
  FtiResult result;
  result.array = region;
  result.total_cells = region.area();
  result.covered = Matrix<std::uint8_t>(region.width, region.height, 1);
  if (region.empty()) return result;

  for (int index = 0; index < placement.module_count(); ++index) {
    const Rect fp_abs = placement.module(index).footprint();
    const Rect fp = fp_abs.intersection(region);
    if (fp.empty()) continue;

    const auto queries =
        build_relocation_queries(placement, index, region, options);
    for (int y = fp.y; y < fp.top(); ++y) {
      for (int x = fp.x; x < fp.right(); ++x) {
        const Point cell{x - region.x, y - region.y};
        if (result.covered.at(cell) == 0) continue;  // already uncovered
        bool relocatable = false;
        for (const auto& q : queries) {
          if (q.relocatable_avoiding(cell)) {
            relocatable = true;
            break;
          }
        }
        if (!relocatable) result.covered.at(cell) = 0;
      }
    }
  }

  long long covered = 0;
  for (const auto v : result.covered) covered += v;
  result.covered_cells = covered;
  return result;
}

long long covered_cell_count(const Placement& placement,
                             const FtiOptions& options, const Rect& region) {
  return evaluate_fti(placement, options, region).covered_cells;
}

// --- incremental evaluator --------------------------------------------

namespace {

/// Anchor clamp rectangle for a w-by-h footprint over `region`, in
/// absolute coordinates: the anchors whose footprint lies entirely
/// inside the region (empty when the region cannot hold the footprint)
/// — the exact clamp evaluate_fti's region-built queries encode
/// structurally.
Rect anchor_clamp(const Rect& region, int w, int h) {
  return Rect{region.x, region.y, region.width - w + 1,
              region.height - h + 1};
}

/// Count and bounding box (absolute coordinates) of the valid
/// (bad == 0) anchors of `grid` inside the absolute clamp rectangle —
/// one pointer scan over the clamp, clipped to the anchor area. The
/// scan stops early once the anchors provably spread wider than one
/// footprint (bbox wider than w or taller than h): that alone makes the
/// orientation block nothing, and the caller never needs the exact
/// count (`spread` set, count/bbox partial).
struct AnchorStats {
  long long count = 0;
  Rect bbox;  ///< absolute; empty when count == 0
  bool spread = false;  ///< anchors provably spread beyond one footprint
};

AnchorStats scan_anchors(const FtiIncrementalEvaluator::OrientationGrid& grid,
                         const Rect& domain, const Rect& clamp) {
  AnchorStats stats;
  if (clamp.empty()) return stats;
  Rect local{clamp.x - domain.x, clamp.y - domain.y, clamp.width,
             clamp.height};
  local = local.intersection(Rect{0, 0, grid.bad.width() - grid.w + 1,
                                  grid.bad.height() - grid.h + 1});
  if (local.empty()) return stats;
  int min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  for (int y = local.y; y < local.top(); ++y) {
    const std::uint16_t* row = &grid.bad.at(0, y);
    if (stats.count > 0 && y - min_y + 1 > grid.h) {
      // Any further anchor stretches the bbox taller than h.
      for (int x = local.x; x < local.right(); ++x) {
        if (row[x] == 0) {
          stats.spread = true;
          return stats;
        }
      }
      continue;
    }
    for (int x = local.x; x < local.right(); ++x) {
      if (row[x] != 0) continue;
      if (stats.count == 0) {
        min_x = max_x = x;
        min_y = max_y = y;
      } else {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        max_y = y;  // rows scanned bottom-up: the last hit is the top
        if (max_x - min_x + 1 > grid.w) {
          stats.spread = true;
          return stats;
        }
      }
      ++stats.count;
    }
  }
  if (stats.count > 0) {
    stats.bbox = Rect{domain.x + min_x, domain.y + min_y, max_x - min_x + 1,
                      max_y - min_y + 1};
  }
  return stats;
}

/// Appends the up-to-four rectangles of `a` minus `b` to `out`.
int subtract_rect(const Rect& a, const Rect& b, Rect out[4]) {
  const Rect inter = a.intersection(b);
  if (inter.empty()) {
    out[0] = a;
    return a.empty() ? 0 : 1;
  }
  int count = 0;
  if (inter.x > a.x) {
    out[count++] = Rect{a.x, a.y, inter.x - a.x, a.height};
  }
  if (inter.right() < a.right()) {
    out[count++] =
        Rect{inter.right(), a.y, a.right() - inter.right(), a.height};
  }
  if (inter.y > a.y) {
    out[count++] = Rect{inter.x, a.y, inter.width, inter.y - a.y};
  }
  if (inter.top() < a.top()) {
    out[count++] =
        Rect{inter.x, inter.top(), inter.width, a.top() - inter.top()};
  }
  return count;
}

/// One orientation's bad-count grid from the occupancy counts via
/// sliding footprint-window sums over the "covered by at least one
/// neighbour" indicator: `bad` holds the occupied-cell count under
/// every anchor (0 = valid). Full builds only — proposals patch the
/// grid incrementally.
void sliding_grids_into(const Matrix<std::uint16_t>& occupancy,
                        FtiIncrementalEvaluator::OrientationGrid& grid,
                        Matrix<int>& row_sums, std::vector<int>& column_acc) {
  const int grid_w = occupancy.width();
  const int grid_h = occupancy.height();
  const int w = grid.w;
  const int h = grid.h;
  grid.bad.reset(grid_w, grid_h, 0);
  if (w > grid_w || h > grid_h) return;  // no anchor fits

  row_sums.reset(grid_w, grid_h, 0);
  for (int y = 0; y < grid_h; ++y) {
    int sum = 0;
    for (int x = 0; x < w; ++x) sum += occupancy.at(x, y) > 0 ? 1 : 0;
    row_sums.at(0, y) = sum;
    for (int x = 1; x + w <= grid_w; ++x) {
      sum += (occupancy.at(x + w - 1, y) > 0 ? 1 : 0) -
             (occupancy.at(x - 1, y) > 0 ? 1 : 0);
      row_sums.at(x, y) = sum;
    }
  }
  column_acc.assign(static_cast<std::size_t>(grid_w), 0);
  for (int y = 0; y < grid_h; ++y) {
    for (int x = 0; x + w <= grid_w; ++x) {
      column_acc[static_cast<std::size_t>(x)] += row_sums.at(x, y);
      if (y >= h) {
        column_acc[static_cast<std::size_t>(x)] -= row_sums.at(x, y - h);
      }
    }
    if (y + 1 >= h) {
      const int ay = y + 1 - h;
      for (int x = 0; x + w <= grid_w; ++x) {
        grid.bad.at(x, ay) =
            static_cast<std::uint16_t>(column_acc[static_cast<std::size_t>(x)]);
      }
    }
  }
}

}  // namespace

void FtiIncrementalEvaluator::build_module(const Placement& placement,
                                           int index) {
  // The occupancy counts are built exactly like evaluate_fti's region
  // grid — every temporal neighbour's footprint, same clipping — just
  // over the shared, region-covering domain. Region bounds are applied
  // by the clamped count/extreme queries.
  ModuleGrids& grids = queries_[static_cast<std::size_t>(index)];
  const int grid_w = domain_.width;
  const int grid_h = domain_.height;
  grids.occupancy.reset(grid_w, grid_h, 0);
  for (const int neighbor : neighbors_[static_cast<std::size_t>(index)]) {
    Rect fp = placement.module(neighbor).footprint();
    fp.x -= domain_.x;
    fp.y -= domain_.y;
    const Rect clipped = fp.intersection(Rect{0, 0, grid_w, grid_h});
    for (int y = clipped.y; y < clipped.top(); ++y) {
      for (int x = clipped.x; x < clipped.right(); ++x) {
        ++grids.occupancy.at(x, y);
      }
    }
  }
  const ModuleSpec& spec = placement.module(index).spec;
  const int w = spec.footprint_width();
  const int h = spec.footprint_height();
  grids.orientation_count = (options_.allow_rotation && w != h) ? 2 : 1;
  for (int o = 0; o < grids.orientation_count; ++o) {
    OrientationGrid& grid = grids.orientations[o];
    grid.w = o == 0 ? w : h;
    grid.h = o == 0 ? h : w;
    sliding_grids_into(grids.occupancy, grid, build_scratch_.row_sums,
                       build_scratch_.column_acc);
  }
}

void FtiIncrementalEvaluator::apply_move_delta(int mover, const Rect& from,
                                               const Rect& to,
                                               std::uint64_t touch_stamp) {
  if (from == to) return;
  // Only the symmetric difference changes anyone's occupancy — a
  // one-cell displacement touches two thin strips, not two footprints.
  Rect removed[4];
  Rect added[4];
  const int removed_count = subtract_rect(from, to, removed);
  const int added_count = subtract_rect(to, from, added);

  for (const int neighbor : neighbors_[static_cast<std::size_t>(mover)]) {
    ModuleGrids& grids = queries_[static_cast<std::size_t>(neighbor)];
    const int grid_w = grids.occupancy.width();
    const int grid_h = grids.occupancy.height();
    const Rect bounds{0, 0, grid_w, grid_h};

    // A cell crossing between covered and free relaxes or constrains
    // every anchor whose footprint contains it: a w-by-h patch of bad
    // counts, applied with pointer rows — the delta engine's innermost
    // FTI loop. Validity is re-read by the next derive, so no further
    // bookkeeping happens here.
    const auto flip_cell = [&](int x, int y, bool now_occupied) {
      if (touch_stamp != 0) {
        visit_stamp_[static_cast<std::size_t>(neighbor)] = touch_stamp;
      }
      for (int o = 0; o < grids.orientation_count; ++o) {
        OrientationGrid& grid = grids.orientations[o];
        const int x1 = std::max(0, x - grid.w + 1);
        const int x2 = std::min(x, grid_w - grid.w);
        const int y1 = std::max(0, y - grid.h + 1);
        const int y2 = std::min(y, grid_h - grid.h);
        const std::uint16_t delta =
            now_occupied ? 1 : static_cast<std::uint16_t>(-1);
        for (int ay = y1; ay <= y2; ++ay) {
          std::uint16_t* bad_row = &grid.bad.at(0, ay);
          for (int ax = x1; ax <= x2; ++ax) {
            bad_row[ax] = static_cast<std::uint16_t>(bad_row[ax] + delta);
          }
        }
      }
    };
    const auto patch = [&](const Rect& rect_abs, bool adding) {
      Rect local = rect_abs;
      local.x -= domain_.x;
      local.y -= domain_.y;
      local = local.intersection(bounds);
      for (int y = local.y; y < local.top(); ++y) {
        std::uint16_t* occupancy_row = &grids.occupancy.at(0, y);
        for (int x = local.x; x < local.right(); ++x) {
          std::uint16_t& count = occupancy_row[x];
          if (adding) {
            if (count++ == 0) flip_cell(x, y, /*now_occupied=*/true);
          } else {
            if (--count == 0) flip_cell(x, y, /*now_occupied=*/false);
          }
        }
      }
    };
    for (int r = 0; r < removed_count; ++r) patch(removed[r], false);
    for (int a = 0; a < added_count; ++a) patch(added[a], true);
  }
}

FtiIncrementalEvaluator::ModuleBlock FtiIncrementalEvaluator::derive_stats(
    int index) const {
  const ModuleGrids& grids = queries_[static_cast<std::size_t>(index)];
  ModuleBlock stats;
  bool any_anchor = false;
  bool core_started = false;
  bool core_empty = false;
  Rect core;
  for (int o = 0; o < grids.orientation_count; ++o) {
    if (any_anchor && core_empty) {
      // Outcome decided: relocatable, blocks nothing. Mark the stats
      // unknown (-1) so the region certificates re-derive instead of
      // trusting them.
      stats.anchors[o] = -1;
      stats.anchor_bbox[o] = Rect{};
      continue;
    }
    const OrientationGrid& grid = grids.orientations[o];
    const AnchorStats scanned = scan_anchors(
        grid, domain_, anchor_clamp(region_, grid.w, grid.h));
    // An orientation without region-valid anchors offers no relocation at
    // all; it constrains the blocked-cell intersection with "everything".
    if (scanned.count == 0 && !scanned.spread) {
      stats.anchors[o] = 0;
      stats.anchor_bbox[o] = Rect{};
      continue;
    }
    any_anchor = true;
    if (scanned.spread) {
      // The anchors provably spread wider than one footprint: this
      // orientation blocks nothing, and the exact count/extremes were
      // never finished — sentinel as above.
      stats.anchors[o] = -1;
      stats.anchor_bbox[o] = Rect{};
      core_started = true;
      core_empty = true;
      continue;
    }
    stats.anchors[o] = scanned.count;
    stats.anchor_bbox[o] = scanned.bbox;
    if (core_empty) continue;
    // The cells every valid anchor's footprint shares: [max anchor,
    // min anchor + extent) per axis — empty as soon as the anchors
    // spread further apart than one footprint reaches.
    const Rect& bb = scanned.bbox;
    const Rect common{bb.right() - 1, bb.top() - 1, grid.w - bb.width + 1,
                      grid.h - bb.height + 1};
    if (common.empty()) {
      core_started = true;
      core_empty = true;
      continue;
    }
    core = core_started ? core.intersection(common) : common;
    core_started = true;
    core_empty = core.empty();
  }
  stats.unrelocatable = !any_anchor;
  stats.core = core_empty ? Rect{} : core;
  stats.stats_region = region_;
  return stats;
}

void FtiIncrementalEvaluator::clip_block(int index,
                                         const Placement& placement,
                                         ModuleBlock& stats) const {
  const Rect fp_in_region =
      placement.module(index).footprint().intersection(region_);
  stats.block = stats.unrelocatable
                    ? fp_in_region
                    : fp_in_region.intersection(stats.core);
}

void FtiIncrementalEvaluator::grid_ensure(const Rect& rect) {
  if (grid_bounds_.contains(rect)) return;
  // Grown with slack so low-temperature bounding-box drift re-allocates
  // rarely; counts are preserved cell for cell.
  const Rect grown = grid_bounds_.united(rect).inflated(8);
  Matrix<std::uint16_t> next(grown.width, grown.height, 0);
  for (int y = 0; y < grid_bounds_.height; ++y) {
    for (int x = 0; x < grid_bounds_.width; ++x) {
      next.at(x + grid_bounds_.x - grown.x, y + grid_bounds_.y - grown.y) =
          grid_.at(x, y);
    }
  }
  grid_ = std::move(next);
  grid_bounds_ = grown;
}

void FtiIncrementalEvaluator::grid_add(const Rect& rect) {
  if (rect.empty()) return;
  grid_ensure(rect);
  for (int y = rect.y; y < rect.top(); ++y) {
    for (int x = rect.x; x < rect.right(); ++x) {
      std::uint16_t& count =
          grid_.at(x - grid_bounds_.x, y - grid_bounds_.y);
      if (count++ == 0) ++blocked_;
    }
  }
}

void FtiIncrementalEvaluator::grid_remove(const Rect& rect) {
  if (rect.empty()) return;
  for (int y = rect.y; y < rect.top(); ++y) {
    for (int x = rect.x; x < rect.right(); ++x) {
      std::uint16_t& count =
          grid_.at(x - grid_bounds_.x, y - grid_bounds_.y);
      if (--count == 0) --blocked_;
    }
  }
}

void FtiIncrementalEvaluator::apply_block(int index, const ModuleBlock& fresh,
                                          Backup& backup) {
  ModuleBlock& current = blocks_[static_cast<std::size_t>(index)];
  backup.some_blocks.emplace_back(index, current);
  grid_remove(current.block);
  grid_add(fresh.block);
  current = fresh;
}

void FtiIncrementalEvaluator::update(const Placement& placement,
                                     const Rect& region,
                                     const MovedModule* moved,
                                     int moved_count, Backup& backup) {
  const int count = placement.module_count();
  backup.region = region_;
  backup.full = false;
  backup.all.clear();
  backup.all_blocks.clear();
  backup.some_blocks.clear();
  backup.moved_count = 0;

  const Rect canvas{0, 0, placement.canvas_width(),
                    placement.canvas_height()};
  // Full (re)builds happen on first use and when the region outgrows
  // the shared domain — never on the steady-state proposal path, where
  // the domain is the (fixed) canvas.
  if (queries_.size() != static_cast<std::size_t>(count) ||
      (!region.empty() && !domain_.contains(region))) {
    backup.full = true;
    backup.all = std::move(queries_);
    backup.all_blocks = std::move(blocks_);
    backup.grid = std::move(grid_);
    backup.grid_bounds = grid_bounds_;
    backup.domain = domain_;
    backup.blocked = blocked_;

    neighbors_.assign(static_cast<std::size_t>(count), {});
    for (const auto& [i, j] : placement.conflicting_pairs()) {
      neighbors_[static_cast<std::size_t>(i)].push_back(j);
      neighbors_[static_cast<std::size_t>(j)].push_back(i);
    }
    visit_stamp_.assign(static_cast<std::size_t>(count), 0);
    stamp_ = 0;

    region_ = region;
    domain_ = canvas.united(region);
    queries_.assign(static_cast<std::size_t>(count), ModuleGrids{});
    blocks_.assign(static_cast<std::size_t>(count), ModuleBlock{});
    grid_ = Matrix<std::uint16_t>{};
    grid_bounds_ = Rect{};
    blocked_ = 0;
    if (!region.empty()) grid_ensure(region);
    for (int i = 0; i < count; ++i) {
      build_module(placement, i);
      ModuleBlock& block = blocks_[static_cast<std::size_t>(i)];
      block = derive_stats(i);
      clip_block(i, placement, block);
      grid_add(block.block);
    }
    return;
  }

  const Rect old_region = region_;
  region_ = region;
  const bool region_changed = !(region == old_region);

  backup.moved_count = moved_count;
  const std::uint64_t touch_stamp = ++stamp_;
  for (int c = 0; c < moved_count; ++c) {
    backup.moved[c] = moved[c];
    apply_move_delta(moved[c].index, moved[c].from, moved[c].to,
                     touch_stamp);
  }

  const std::uint64_t refresh_stamp = ++stamp_;
  // Dirtied neighbours whose occupancy actually crossed: their anchor
  // sets changed, so re-derive their stats (one clamp scan per
  // orientation). Neighbours the move patched without any crossing keep
  // bit-identical grids and fall through to the region handling below.
  for (int c = 0; c < moved_count; ++c) {
    for (const int neighbor :
         neighbors_[static_cast<std::size_t>(moved[c].index)]) {
      const std::size_t n = static_cast<std::size_t>(neighbor);
      if (visit_stamp_[n] != touch_stamp) continue;
      visit_stamp_[n] = refresh_stamp;
      ModuleBlock fresh = derive_stats(neighbor);
      clip_block(neighbor, placement, fresh);
      if (!(fresh == blocks_[n])) apply_block(neighbor, fresh, backup);
    }
  }

  if (!region_changed) {
    // Same region, same anchor sets: only the moved modules' coverage
    // contribution can still change — their block follows their
    // footprint under the cached core, no anchor queries at all.
    for (int c = 0; c < moved_count; ++c) {
      const std::size_t i = static_cast<std::size_t>(moved[c].index);
      if (visit_stamp_[i] == refresh_stamp) continue;
      visit_stamp_[i] = refresh_stamp;
      ModuleBlock fresh = blocks_[i];
      clip_block(moved[c].index, placement, fresh);
      if (!(fresh == blocks_[i])) apply_block(moved[c].index, fresh, backup);
    }
    return;
  }

  // The region moved under everyone — but almost nobody's block
  // actually changes, and two monotonicity certificates prove it
  // without touching the anchor grids. Growth: a region containing the
  // stats' reference region only gains anchors, and a gained anchor can
  // only shrink the blocked-cell intersection — an empty core stays
  // empty, so the (empty) block stands. Shrink: a region inside the
  // reference whose clamp still contains every cached anchor bounding
  // box leaves the anchor sets — and so the stats — exactly as derived;
  // only the footprint clip can move the block. Everything else pays
  // one derive (a clamp scan per orientation).
  (void)old_region;
  for (int index = 0; index < count; ++index) {
    const std::size_t i = static_cast<std::size_t>(index);
    if (visit_stamp_[i] == refresh_stamp) continue;
    const ModuleBlock& current = blocks_[i];
    const ModuleGrids& grids = queries_[i];

    if (!current.unrelocatable && current.core.empty() &&
        region.contains(current.stats_region)) {
      continue;  // grown region, provably still-empty core: block empty
    }
    if (current.stats_region.contains(region)) {
      bool sets_unchanged = true;
      for (int o = 0; o < grids.orientation_count; ++o) {
        if (current.anchors[o] == 0) continue;  // empty shrinks to empty
        const OrientationGrid& grid = grids.orientations[o];
        // Unknown (sentinel, -1) stats have an empty bbox, which
        // contains() rejects — they always re-derive.
        if (!anchor_clamp(region, grid.w, grid.h)
                 .contains(current.anchor_bbox[o])) {
          sets_unchanged = false;
          break;
        }
      }
      if (sets_unchanged) {
        ModuleBlock fresh = current;
        clip_block(index, placement, fresh);
        if (!(fresh == current)) apply_block(index, fresh, backup);
        continue;
      }
    }
    ModuleBlock fresh = derive_stats(index);
    clip_block(index, placement, fresh);
    if (!(fresh == current)) apply_block(index, fresh, backup);
  }
}

void FtiIncrementalEvaluator::restore(Backup& backup) {
  region_ = backup.region;
  if (backup.full) {
    queries_ = std::move(backup.all);
    blocks_ = std::move(backup.all_blocks);
    grid_ = std::move(backup.grid);
    grid_bounds_ = backup.grid_bounds;
    domain_ = backup.domain;
    blocked_ = backup.blocked;
    return;
  }
  // The grid patches are exact integer increments: applying the swapped
  // deltas in reverse order undoes them bit for bit.
  for (int c = backup.moved_count - 1; c >= 0; --c) {
    apply_move_delta(backup.moved[c].index, backup.moved[c].to,
                     backup.moved[c].from);
  }
  backup.moved_count = 0;
  for (auto& [index, saved] : backup.some_blocks) {
    grid_remove(blocks_[static_cast<std::size_t>(index)].block);
    grid_add(saved.block);
    blocks_[static_cast<std::size_t>(index)] = saved;
  }
}

bool FtiIncrementalEvaluator::is_cell_covered(Point cell) const {
  if (!region_.contains(cell)) return false;
  if (!grid_bounds_.contains(Rect{cell.x, cell.y, 1, 1})) return true;
  return grid_.at(cell.x - grid_bounds_.x, cell.y - grid_bounds_.y) == 0;
}

bool is_cell_covered_reference(const Placement& placement, Point cell,
                               const FtiOptions& options, const Rect& region) {
  if (!region.contains(cell)) return false;
  for (int index = 0; index < placement.module_count(); ++index) {
    const PlacedModule& m = placement.module(index);
    if (!m.footprint().contains(cell)) continue;

    // Encode the configuration per §5.3: cells of concurrently operational
    // modules are 1, the faulty cell is 1, the failed module's own cells
    // are freed (it is "temporarily removed from the placement").
    Matrix<std::uint8_t> occupied =
        occupancy_excluding(placement, index, region);
    occupied.at(cell.x - region.x, cell.y - region.y) = 1;

    const int w = m.spec.footprint_width();
    const int h = m.spec.footprint_height();
    bool relocatable = false;
    for (const Rect& mer : maximal_empty_rectangles(occupied)) {
      if ((mer.width >= w && mer.height >= h) ||
          (options.allow_rotation && mer.width >= h && mer.height >= w)) {
        relocatable = true;
        break;
      }
    }
    if (!relocatable) return false;
  }
  return true;
}

}  // namespace dmfb
