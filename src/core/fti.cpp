#include "core/fti.h"

#include <algorithm>

#include "core/mer.h"
#include "util/prefix_sum.h"

namespace dmfb {
namespace {

/// Binary occupancy of `region` by modules that time-overlap module
/// `excluded` (excluding itself): exactly the cells unavailable to the
/// module were it relocated.
Matrix<std::uint8_t> occupancy_excluding(const Placement& placement,
                                         int excluded, const Rect& region) {
  Matrix<std::uint8_t> grid(region.width, region.height, 0);
  const PlacedModule& target = placement.module(excluded);
  for (int i = 0; i < placement.module_count(); ++i) {
    if (i == excluded) continue;
    const PlacedModule& other = placement.module(i);
    if (!target.time_overlaps(other)) continue;
    Rect fp = other.footprint();
    fp.x -= region.x;
    fp.y -= region.y;
    grid.fill_rect(fp, 1);
  }
  return grid;
}

/// Grid of anchor positions where a w-by-h footprint fits entirely on empty
/// cells. Cell (x, y) of the returned matrix is 1 iff rect (x, y, w, h) is
/// empty; the matrix has the same dimensions as `occupied` with infeasible
/// anchors (footprint sticking out) left 0.
Matrix<std::uint8_t> valid_anchor_grid(const PrefixSum2D& sums, int w,
                                       int h) {
  Matrix<std::uint8_t> valid(sums.width(), sums.height(), 0);
  for (int y = 0; y + h <= sums.height(); ++y) {
    for (int x = 0; x + w <= sums.width(); ++x) {
      if (sums.is_rect_empty(Rect{x, y, w, h})) valid.at(x, y) = 1;
    }
  }
  return valid;
}

/// Per-orientation relocation query data for one module.
struct OrientationQuery {
  int w = 0;
  int h = 0;
  long long total_positions = 0;
  PrefixSum2D position_sums;

  /// Number of valid anchors whose footprint would contain `cell`
  /// (region-relative coordinates).
  long long positions_containing(Point cell) const {
    const int x1 = std::max(0, cell.x - w + 1);
    const int y1 = std::max(0, cell.y - h + 1);
    const int x2 = std::min(cell.x, position_sums.width() - 1);
    const int y2 = std::min(cell.y, position_sums.height() - 1);
    if (x2 < x1 || y2 < y1) return 0;
    return position_sums.occupied_in(Rect{x1, y1, x2 - x1 + 1, y2 - y1 + 1});
  }

  /// Relocation avoiding a fault at `cell` succeeds in this orientation iff
  /// some valid anchor's footprint does not contain the cell.
  bool relocatable_avoiding(Point cell) const {
    return total_positions - positions_containing(cell) > 0;
  }
};

/// Builds the queries (one or two orientations) for module `index`.
std::vector<OrientationQuery> build_queries(const Placement& placement,
                                            int index, const Rect& region,
                                            const FtiOptions& options) {
  const PlacedModule& m = placement.module(index);
  const Matrix<std::uint8_t> occupied =
      occupancy_excluding(placement, index, region);
  const PrefixSum2D occupied_sums(occupied);

  const int w = m.spec.footprint_width();
  const int h = m.spec.footprint_height();

  std::vector<OrientationQuery> queries;
  auto add = [&](int qw, int qh) {
    OrientationQuery q;
    q.w = qw;
    q.h = qh;
    const Matrix<std::uint8_t> valid = valid_anchor_grid(occupied_sums, qw, qh);
    long long total = 0;
    for (const auto v : valid) total += v;
    q.total_positions = total;
    q.position_sums = PrefixSum2D(valid);
    queries.push_back(std::move(q));
  };
  add(w, h);
  if (options.allow_rotation && w != h) add(h, w);
  return queries;
}

}  // namespace

FtiResult evaluate_fti(const Placement& placement, const FtiOptions& options,
                       std::optional<Rect> region_opt) {
  const Rect region = region_opt.value_or(placement.bounding_box());
  FtiResult result;
  result.array = region;
  result.total_cells = region.area();
  result.covered = Matrix<std::uint8_t>(region.width, region.height, 1);
  if (region.empty()) return result;

  for (int index = 0; index < placement.module_count(); ++index) {
    const Rect fp_abs = placement.module(index).footprint();
    const Rect fp = fp_abs.intersection(region);
    if (fp.empty()) continue;

    const auto queries = build_queries(placement, index, region, options);
    for (int y = fp.y; y < fp.top(); ++y) {
      for (int x = fp.x; x < fp.right(); ++x) {
        const Point cell{x - region.x, y - region.y};
        if (result.covered.at(cell) == 0) continue;  // already uncovered
        bool relocatable = false;
        for (const auto& q : queries) {
          if (q.relocatable_avoiding(cell)) {
            relocatable = true;
            break;
          }
        }
        if (!relocatable) result.covered.at(cell) = 0;
      }
    }
  }

  long long covered = 0;
  for (const auto v : result.covered) covered += v;
  result.covered_cells = covered;
  return result;
}

long long covered_cell_count(const Placement& placement,
                             const FtiOptions& options, const Rect& region) {
  return evaluate_fti(placement, options, region).covered_cells;
}

bool is_cell_covered_reference(const Placement& placement, Point cell,
                               const FtiOptions& options, const Rect& region) {
  if (!region.contains(cell)) return false;
  for (int index = 0; index < placement.module_count(); ++index) {
    const PlacedModule& m = placement.module(index);
    if (!m.footprint().contains(cell)) continue;

    // Encode the configuration per §5.3: cells of concurrently operational
    // modules are 1, the faulty cell is 1, the failed module's own cells
    // are freed (it is "temporarily removed from the placement").
    Matrix<std::uint8_t> occupied =
        occupancy_excluding(placement, index, region);
    occupied.at(cell.x - region.x, cell.y - region.y) = 1;

    const int w = m.spec.footprint_width();
    const int h = m.spec.footprint_height();
    bool relocatable = false;
    for (const Rect& mer : maximal_empty_rectangles(occupied)) {
      if ((mer.width >= w && mer.height >= h) ||
          (options.allow_rotation && mer.width >= h && mer.height >= w)) {
        relocatable = true;
        break;
      }
    }
    if (!relocatable) return false;
  }
  return true;
}

}  // namespace dmfb
