#include "core/fti.h"

#include <algorithm>

#include "core/mer.h"
#include "util/prefix_sum.h"

namespace dmfb {
namespace {

/// Binary occupancy of `region` by modules that time-overlap module
/// `excluded` (excluding itself), written into `grid`: exactly the cells
/// unavailable to the module were it relocated.
void occupancy_excluding_into(const Placement& placement, int excluded,
                              const Rect& region,
                              Matrix<std::uint8_t>& grid) {
  grid.reset(region.width, region.height, 0);
  const PlacedModule& target = placement.module(excluded);
  for (int i = 0; i < placement.module_count(); ++i) {
    if (i == excluded) continue;
    const PlacedModule& other = placement.module(i);
    if (!target.time_overlaps(other)) continue;
    Rect fp = other.footprint();
    fp.x -= region.x;
    fp.y -= region.y;
    grid.fill_rect(fp, 1);
  }
}

Matrix<std::uint8_t> occupancy_excluding(const Placement& placement,
                                         int excluded, const Rect& region) {
  Matrix<std::uint8_t> grid;
  occupancy_excluding_into(placement, excluded, region, grid);
  return grid;
}

/// Grid of anchor positions where a w-by-h footprint fits entirely on empty
/// cells, written into `valid`. Cell (x, y) is 1 iff rect (x, y, w, h) is
/// empty; the matrix has the same dimensions as the source grid with
/// infeasible anchors (footprint sticking out) left 0.
void valid_anchor_grid_into(const PrefixSum2D& sums, int w, int h,
                            Matrix<std::uint8_t>& valid) {
  valid.reset(sums.width(), sums.height(), 0);
  for (int y = 0; y + h <= sums.height(); ++y) {
    for (int x = 0; x + w <= sums.width(); ++x) {
      if (sums.is_rect_empty(Rect{x, y, w, h})) valid.at(x, y) = 1;
    }
  }
}

}  // namespace

long long OrientationQuery::positions_containing(Point cell) const {
  const int x1 = std::max(0, cell.x - w + 1);
  const int y1 = std::max(0, cell.y - h + 1);
  const int x2 = std::min(cell.x, position_sums.width() - 1);
  const int y2 = std::min(cell.y, position_sums.height() - 1);
  if (x2 < x1 || y2 < y1) return 0;
  return position_sums.occupied_in(Rect{x1, y1, x2 - x1 + 1, y2 - y1 + 1});
}

bool OrientationQuery::relocatable_avoiding(Point cell) const {
  return total_positions - positions_containing(cell) > 0;
}

std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options) {
  FtiBuildScratch scratch;
  return build_relocation_queries(placement, index, region, options, scratch);
}

std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options, FtiBuildScratch& scratch) {
  const PlacedModule& m = placement.module(index);
  occupancy_excluding_into(placement, index, region, scratch.occupied);
  scratch.occupied_sums.rebuild(scratch.occupied);

  const int w = m.spec.footprint_width();
  const int h = m.spec.footprint_height();

  std::vector<OrientationQuery> queries;
  auto add = [&](int qw, int qh) {
    OrientationQuery q;
    q.w = qw;
    q.h = qh;
    valid_anchor_grid_into(scratch.occupied_sums, qw, qh, scratch.valid);
    long long total = 0;
    for (const auto v : scratch.valid) total += v;
    q.total_positions = total;
    q.position_sums = PrefixSum2D(scratch.valid);
    queries.push_back(std::move(q));
  };
  add(w, h);
  if (options.allow_rotation && w != h) add(h, w);
  return queries;
}

FtiResult evaluate_fti(const Placement& placement, const FtiOptions& options,
                       std::optional<Rect> region_opt) {
  const Rect region = region_opt.value_or(placement.bounding_box());
  FtiResult result;
  result.array = region;
  result.total_cells = region.area();
  result.covered = Matrix<std::uint8_t>(region.width, region.height, 1);
  if (region.empty()) return result;

  for (int index = 0; index < placement.module_count(); ++index) {
    const Rect fp_abs = placement.module(index).footprint();
    const Rect fp = fp_abs.intersection(region);
    if (fp.empty()) continue;

    const auto queries =
        build_relocation_queries(placement, index, region, options);
    for (int y = fp.y; y < fp.top(); ++y) {
      for (int x = fp.x; x < fp.right(); ++x) {
        const Point cell{x - region.x, y - region.y};
        if (result.covered.at(cell) == 0) continue;  // already uncovered
        bool relocatable = false;
        for (const auto& q : queries) {
          if (q.relocatable_avoiding(cell)) {
            relocatable = true;
            break;
          }
        }
        if (!relocatable) result.covered.at(cell) = 0;
      }
    }
  }

  long long covered = 0;
  for (const auto v : result.covered) covered += v;
  result.covered_cells = covered;
  return result;
}

long long covered_cell_count(const Placement& placement,
                             const FtiOptions& options, const Rect& region) {
  return evaluate_fti(placement, options, region).covered_cells;
}

FtiIncrementalEvaluator::ModuleQueries FtiIncrementalEvaluator::build(
    const Placement& placement, int index, const Rect& domain) {
  // The domain grid is built exactly like evaluate_fti's region grid —
  // same occupancy, same valid-anchor derivation — just over the larger,
  // region-covering rectangle. Region bounds are applied at query time
  // (anchors_in_region below).
  ModuleQueries queries;
  queries.domain = domain;
  queries.orientations =
      build_relocation_queries(placement, index, domain, options_,
                               build_scratch_);
  return queries;
}

void FtiIncrementalEvaluator::update(const Placement& placement,
                                     const Rect& region,
                                     const std::vector<int>& dirty,
                                     Backup& backup) {
  const int count = placement.module_count();
  backup.region = region_;
  backup.full = false;
  backup.all.clear();
  backup.some.clear();

  // The domain trades build cost (grids are O(domain area)) against
  // rebuild frequency (a region drifting outside a module's domain
  // forces its rebuild): region plus a slack ring, clipped to the canvas.
  // Low-temperature annealing moves the bounding box a cell or two at a
  // time, so the slack absorbs most drifts.
  constexpr int kDomainSlack = 2;
  const Rect canvas{0, 0, placement.canvas_width(),
                    placement.canvas_height()};
  const Rect domain =
      region.inflated(kDomainSlack).intersection(canvas).united(region);

  if (queries_.size() != static_cast<std::size_t>(count)) {
    // First use: build everything.
    backup.full = true;
    backup.all = std::move(queries_);
    queries_.clear();
    queries_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      queries_.push_back(build(placement, i, domain));
    }
    region_ = region;
    return;
  }

  backup.some.reserve(dirty.size());
  for (const int index : dirty) {
    auto& slot = queries_[static_cast<std::size_t>(index)];
    backup.some.emplace_back(index, std::move(slot));
    slot = build(placement, index, domain);
  }
  // A cached domain the region has drifted out of (it outgrew the slack
  // ring since that module's last build) is rebuilt too. Modules rebuilt
  // by the dirty loop above cannot re-trigger here: their fresh domain
  // contains the region by construction.
  for (int i = 0; i < count; ++i) {
    auto& slot = queries_[static_cast<std::size_t>(i)];
    if (slot.domain.contains(region) || region.empty()) continue;
    backup.some.emplace_back(i, std::move(slot));
    slot = build(placement, i, domain);
  }
  region_ = region;
}

void FtiIncrementalEvaluator::restore(Backup& backup) {
  region_ = backup.region;
  if (backup.full) {
    queries_ = std::move(backup.all);
    return;
  }
  for (auto& [index, saved] : backup.some) {
    queries_[static_cast<std::size_t>(index)] = std::move(saved);
  }
}

namespace {

/// Valid anchors of orientation `q` (domain grid) that lie inside
/// `region` — the same count evaluate_fti's region-built grid calls
/// `total_positions`.
long long anchors_in_region(const OrientationQuery& q, const Rect& domain,
                            const Rect& region) {
  const int bw = region.width - q.w + 1;
  const int bh = region.height - q.h + 1;
  if (bw <= 0 || bh <= 0) return 0;
  return q.position_sums.occupied_in(
      Rect{region.x - domain.x, region.y - domain.y, bw, bh});
}

/// Valid region-interior anchors whose footprint would contain `cell`
/// (absolute coordinates).
long long anchors_containing(const OrientationQuery& q, const Rect& domain,
                             const Rect& region, Point cell) {
  const int x1 = std::max(region.x, cell.x - q.w + 1);
  const int y1 = std::max(region.y, cell.y - q.h + 1);
  const int x2 = std::min(cell.x, region.right() - q.w);
  const int y2 = std::min(cell.y, region.top() - q.h);
  if (x2 < x1 || y2 < y1) return 0;
  return q.position_sums.occupied_in(
      Rect{x1 - domain.x, y1 - domain.y, x2 - x1 + 1, y2 - y1 + 1});
}

}  // namespace

long long FtiIncrementalEvaluator::covered_cells(const Placement& placement) {
  if (region_.empty()) return 0;
  if (covered_scratch_.width() != region_.width ||
      covered_scratch_.height() != region_.height) {
    covered_scratch_ = Matrix<std::uint8_t>(region_.width, region_.height, 1);
  } else {
    covered_scratch_.fill(1);
  }

  // Same pass as evaluate_fti, with the per-module query build replaced
  // by the cache lookup — the whole point of incremental evaluation.
  for (int index = 0; index < placement.module_count(); ++index) {
    const Rect fp = placement.module(index).footprint().intersection(region_);
    if (fp.empty()) continue;
    const ModuleQueries& queries = queries_[static_cast<std::size_t>(index)];

    // Per-orientation totals over the region, once per module.
    long long totals[2] = {0, 0};
    const std::size_t orientation_count = queries.orientations.size();
    for (std::size_t o = 0; o < orientation_count; ++o) {
      totals[o] = anchors_in_region(queries.orientations[o], queries.domain,
                                    region_);
    }

    for (int y = fp.y; y < fp.top(); ++y) {
      for (int x = fp.x; x < fp.right(); ++x) {
        const Point cell{x - region_.x, y - region_.y};
        if (covered_scratch_.at(cell) == 0) continue;  // already uncovered
        bool relocatable = false;
        for (std::size_t o = 0; o < orientation_count; ++o) {
          if (totals[o] - anchors_containing(queries.orientations[o],
                                             queries.domain, region_,
                                             Point{x, y}) >
              0) {
            relocatable = true;
            break;
          }
        }
        if (!relocatable) covered_scratch_.at(cell) = 0;
      }
    }
  }

  long long covered = 0;
  for (const auto v : covered_scratch_) covered += v;
  return covered;
}

bool is_cell_covered_reference(const Placement& placement, Point cell,
                               const FtiOptions& options, const Rect& region) {
  if (!region.contains(cell)) return false;
  for (int index = 0; index < placement.module_count(); ++index) {
    const PlacedModule& m = placement.module(index);
    if (!m.footprint().contains(cell)) continue;

    // Encode the configuration per §5.3: cells of concurrently operational
    // modules are 1, the faulty cell is 1, the failed module's own cells
    // are freed (it is "temporarily removed from the placement").
    Matrix<std::uint8_t> occupied =
        occupancy_excluding(placement, index, region);
    occupied.at(cell.x - region.x, cell.y - region.y) = 1;

    const int w = m.spec.footprint_width();
    const int h = m.spec.footprint_height();
    bool relocatable = false;
    for (const Rect& mer : maximal_empty_rectangles(occupied)) {
      if ((mer.width >= w && mer.height >= h) ||
          (options.allow_rotation && mer.width >= h && mer.height >= w)) {
        relocatable = true;
        break;
      }
    }
    if (!relocatable) return false;
  }
  return true;
}

}  // namespace dmfb
