#include "core/reconfig.h"

#include <algorithm>
#include <limits>

#include "core/mer.h"

namespace dmfb {
namespace {

/// Binary occupancy of `array` by modules time-overlapping module `index`
/// (itself excluded), with every faulty cell marked occupied — the 0/1
/// encoding of §5.3 generalized to a fault set.
Matrix<std::uint8_t> relocation_grid(const Placement& placement, int index,
                                     const std::vector<Point>& faulty_cells,
                                     const Rect& array) {
  Matrix<std::uint8_t> grid(array.width, array.height, 0);
  const PlacedModule& target = placement.module(index);
  for (int i = 0; i < placement.module_count(); ++i) {
    if (i == index) continue;
    const PlacedModule& other = placement.module(i);
    if (!target.time_overlaps(other)) continue;
    Rect fp = other.footprint();
    fp.x -= array.x;
    fp.y -= array.y;
    grid.fill_rect(fp, 1);
  }
  for (const Point& cell : faulty_cells) {
    if (array.contains(cell)) {
      grid.at(cell.x - array.x, cell.y - array.y) = 1;
    }
  }
  return grid;
}

/// Anchor (region-relative) inside `mer` for a w-by-h footprint, as close
/// to `preferred` as the rectangle allows.
Point anchor_within(const Rect& mer, int w, int h, Point preferred) {
  const int max_x = mer.x + mer.width - w;
  const int max_y = mer.y + mer.height - h;
  return Point{std::clamp(preferred.x, mer.x, max_x),
               std::clamp(preferred.y, mer.y, max_y)};
}

}  // namespace

std::optional<RelocationOutcome> Reconfigurator::relocate_module(
    const Placement& placement, int module_index,
    const std::vector<Point>& faulty_cells, const Rect& array) const {
  const PlacedModule& m = placement.module(module_index);
  const Matrix<std::uint8_t> grid =
      relocation_grid(placement, module_index, faulty_cells, array);
  const std::vector<Rect> mers = maximal_empty_rectangles(grid);

  const int w = m.spec.footprint_width();
  const int h = m.spec.footprint_height();
  const Point old_anchor_rel{m.anchor.x - array.x, m.anchor.y - array.y};

  struct Candidate {
    Rect mer;
    Point anchor;  // region-relative
    bool rotated;
  };
  std::optional<Candidate> best;
  auto consider = [&](const Rect& mer, bool rotated) {
    const int cw = rotated ? h : w;
    const int ch = rotated ? w : h;
    if (mer.width < cw || mer.height < ch) return;
    const Point anchor = anchor_within(mer, cw, ch, old_anchor_rel);
    const Candidate candidate{mer, anchor, rotated};
    if (!best) {
      best = candidate;
      return;
    }
    switch (policy_) {
      case RelocationPolicy::kFirstFit:
        break;  // keep the first found (MERs arrive in scan order)
      case RelocationPolicy::kBestFit:
        if (mer.area() < best->mer.area()) best = candidate;
        break;
      case RelocationPolicy::kNearest:
        if (manhattan_distance(anchor, old_anchor_rel) <
            manhattan_distance(best->anchor, old_anchor_rel)) {
          best = candidate;
        }
        break;
    }
  };

  for (const Rect& mer : mers) {
    consider(mer, false);
    if (options_.allow_rotation && w != h) consider(mer, true);
  }
  if (!best) return std::nullopt;

  RelocationOutcome outcome;
  outcome.module_index = module_index;
  outcome.module_label = m.label;
  outcome.old_anchor = m.anchor;
  outcome.old_rotated = m.rotated;
  outcome.new_anchor =
      Point{best->anchor.x + array.x, best->anchor.y + array.y};
  outcome.new_rotated = best->rotated;
  outcome.target_mer =
      Rect{best->mer.x + array.x, best->mer.y + array.y, best->mer.width,
           best->mer.height};
  outcome.move_distance = manhattan_distance(outcome.new_anchor, m.anchor);
  return outcome;
}

std::optional<RelocationOutcome> Reconfigurator::relocate_module(
    const Placement& placement, int module_index, Point faulty_cell,
    const Rect& array) const {
  return relocate_module(placement, module_index,
                         std::vector<Point>{faulty_cell}, array);
}

RecoveryResult Reconfigurator::recover(
    const Placement& placement, const std::vector<Point>& faulty_cells,
    const Rect& array) const {
  RecoveryResult result;
  result.placement = placement;

  auto touches_fault = [&](const Rect& footprint) {
    for (const Point& cell : faulty_cells) {
      if (footprint.contains(cell)) return true;
    }
    return false;
  };

  // Relocate until no module touches a fault. A relocation target never
  // contains a fault (faults are marked occupied in the grid), so each
  // module needs at most one move; the loop guards the invariant anyway.
  for (int index = 0; index < placement.module_count(); ++index) {
    if (!touches_fault(result.placement.module(index).footprint())) continue;
    const auto outcome =
        relocate_module(result.placement, index, faulty_cells, array);
    if (!outcome) {
      result.success = false;
      result.placement = placement;  // roll back
      result.relocations.clear();
      result.failure_reason =
          "no maximal empty rectangle accommodates module '" +
          placement.module(index).label + "'";
      return result;
    }
    result.placement.set_anchor(index, outcome->new_anchor);
    result.placement.set_rotated(index, outcome->new_rotated);
    result.relocations.push_back(*outcome);
  }
  result.success = true;
  return result;
}

RecoveryResult Reconfigurator::recover(const Placement& placement,
                                       Point faulty_cell,
                                       const Rect& array) const {
  return recover(placement, std::vector<Point>{faulty_cell}, array);
}

RecoveryResult Reconfigurator::recover(const Placement& placement,
                                       Point faulty_cell) const {
  return recover(placement, faulty_cell, placement.bounding_box());
}

}  // namespace dmfb
