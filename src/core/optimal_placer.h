// optimal_placer.h — exact branch-and-bound placement for small instances.
//
// The paper's placement problem is NP-complete (§4), so the annealer is a
// heuristic; this module provides ground truth for instances small enough
// to enumerate, letting tests and the ablation bench measure the SA
// optimality gap exactly.
//
// The search normalizes candidate anchors: for a minimum-bounding-box
// packing there is always an optimal solution in which every module's
// anchor coordinates are 0 or flush against an edge of some temporally
// overlapping module (push-left/push-down argument), so only those
// positions are branched on.
#pragma once

#include <optional>

#include "assay/schedule.h"
#include "core/placement.h"
#include "util/deprecation.h"

namespace dmfb {

/// Configuration of the exact search.
struct OptimalPlacerOptions {
  int max_modules = 8;            ///< refuse instances larger than this
  bool allow_rotation = true;
  long long max_nodes = 50'000'000;  ///< search-node budget (throws beyond)
};

/// Result of the exact search.
struct OptimalResult {
  Placement placement;
  long long area_cells = 0;
  long long nodes_visited = 0;
};

/// Finds a placement of provably minimum bounding-box area. Throws
/// std::invalid_argument for instances over options.max_modules and
/// std::runtime_error when the node budget is exhausted.
DMFB_DEPRECATED("use make_placer(\"optimal\")->place(schedule, context)")
OptimalResult place_optimal(const Schedule& schedule,
                            const OptimalPlacerOptions& options = {});

}  // namespace dmfb
