#include "core/placement.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dmfb {

Placement::Placement(const Schedule& schedule, int canvas_width,
                     int canvas_height) {
  std::vector<PlacedModule> modules;
  for (const auto& m : schedule.modules()) {
    PlacedModule placed;
    placed.label = m.label;
    placed.spec = m.spec;
    placed.start_s = m.start_s;
    placed.end_s = m.end_s;
    modules.push_back(std::move(placed));
  }
  *this = Placement(std::move(modules), canvas_width, canvas_height);
}

Placement::Placement(std::vector<PlacedModule> modules, int canvas_width,
                     int canvas_height)
    : canvas_width_(canvas_width),
      canvas_height_(canvas_height),
      modules_(std::move(modules)) {
  if (canvas_width <= 0 || canvas_height <= 0) {
    throw std::invalid_argument("Placement: canvas must be positive");
  }
  for (const auto& m : modules_) {
    const int max_dim =
        std::max(m.spec.footprint_width(), m.spec.footprint_height());
    if (max_dim > std::max(canvas_width, canvas_height)) {
      throw std::invalid_argument("Placement: module '" + m.label +
                                  "' cannot fit the canvas");
    }
  }

  for (int i = 0; i < module_count(); ++i) {
    for (int j = i + 1; j < module_count(); ++j) {
      if (modules_[i].time_overlaps(modules_[j])) {
        conflicting_pairs_.emplace_back(i, j);
      }
    }
  }

  // Slice decomposition mirrors Schedule::time_slices but on our indices.
  std::set<double> boundaries;
  for (const auto& m : modules_) {
    boundaries.insert(m.start_s);
    boundaries.insert(m.end_s);
  }
  if (boundaries.size() >= 2) {
    auto it = boundaries.begin();
    double prev = *it++;
    for (; it != boundaries.end(); ++it) {
      const double next = *it;
      std::vector<int> members;
      for (int i = 0; i < module_count(); ++i) {
        if (modules_[i].start_s <= prev && next <= modules_[i].end_s) {
          members.push_back(i);
        }
      }
      if (!members.empty()) {
        slice_members_.push_back(std::move(members));
        slice_times_.emplace_back(prev, next);
      }
      prev = next;
    }
  }
}

void Placement::set_anchor(int index, Point anchor) {
  modules_.at(index).anchor = anchor;
}

void Placement::set_rotated(int index, bool rotated) {
  modules_.at(index).rotated = rotated;
}

std::vector<int> Placement::temporal_neighbors(int index) const {
  std::vector<int> neighbors;
  for (int i = 0; i < module_count(); ++i) {
    if (i != index && modules_[index].time_overlaps(modules_[i])) {
      neighbors.push_back(i);
    }
  }
  return neighbors;
}

Rect Placement::bounding_box() const {
  Rect box;
  for (const auto& m : modules_) box = box.united(m.footprint());
  return box;
}

long long Placement::bounding_box_cells() const {
  return bounding_box().area();
}

long long Placement::overlap_cells() const {
  long long total = 0;
  for (const auto& [i, j] : conflicting_pairs_) {
    total += modules_[i].footprint().overlap_area(modules_[j].footprint());
  }
  return total;
}

bool Placement::within_canvas() const {
  for (const auto& m : modules_) {
    if (!m.footprint().within_bounds(canvas_width_, canvas_height_)) {
      return false;
    }
  }
  return true;
}

OccupancyGrid Placement::slice_occupancy(int slice, const Rect& region) const {
  OccupancyGrid grid(region.width, region.height, 0);
  for (int index : slice_members_.at(slice)) {
    Rect fp = modules_[index].footprint();
    fp.x -= region.x;
    fp.y -= region.y;
    grid.fill_rect(fp, static_cast<std::int16_t>(index + 1));
  }
  return grid;
}

OccupancyGrid Placement::occupancy_during(double begin_s, double end_s,
                                          const Rect& region) const {
  OccupancyGrid grid(region.width, region.height, 0);
  for (int i = 0; i < module_count(); ++i) {
    const auto& m = modules_[i];
    if (m.start_s < end_s && begin_s < m.end_s) {
      Rect fp = m.footprint();
      fp.x -= region.x;
      fp.y -= region.y;
      grid.fill_rect(fp, static_cast<std::int16_t>(i + 1));
    }
  }
  return grid;
}

std::string Placement::render(const Rect& region) const {
  std::ostringstream os;
  for (std::size_t s = 0; s < slice_members_.size(); ++s) {
    os << "t = [" << slice_times_[s].first << "s, " << slice_times_[s].second
       << "s):";
    for (int index : slice_members_[s]) {
      os << ' ' << modules_[index].label << '@'
         << to_string(modules_[index].footprint());
    }
    os << '\n'
       << render_grid(slice_occupancy(static_cast<int>(s), region)) << '\n';
  }
  return os.str();
}

std::string Placement::render() const { return render(bounding_box()); }

}  // namespace dmfb
