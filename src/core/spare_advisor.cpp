#include "core/spare_advisor.h"

#include <algorithm>

#include "core/fti.h"

namespace dmfb {

SpareAdvice advise_spares(const Schedule& schedule,
                          const SpareAdvisorOptions& options) {
  SpareAdvice advice;

  for (const double beta : options.betas) {
    TwoStageOptions two_stage = options.two_stage;
    two_stage.beta = beta;
    // Vary the stage-2 seed with beta so points are independent samples.
    two_stage.stage2_seed ^= static_cast<std::uint64_t>(beta * 1021.0);
    const TwoStageOutcome outcome = place_two_stage(schedule, two_stage);

    FrontierPoint point;
    point.beta = beta;
    point.area_cells = outcome.stage2.cost.area_cells;
    point.fti = evaluate_fti(outcome.stage2.placement).fti();
    point.placement = outcome.stage2.placement;
    advice.frontier.push_back(std::move(point));
  }

  // Smallest area among points meeting the target; ties broken by FTI.
  const FrontierPoint* best = nullptr;
  for (const auto& point : advice.frontier) {
    if (point.fti + 1e-12 < options.target_fti) continue;
    if (!best || point.area_cells < best->area_cells ||
        (point.area_cells == best->area_cells && point.fti > best->fti)) {
      best = &point;
    }
  }
  if (best) {
    advice.target_met = true;
    advice.chosen = *best;
  }
  return advice;
}

}  // namespace dmfb
