#include "core/portfolio_placer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/greedy_placer.h"
#include "core/incremental_cost.h"
#include "util/parallel.h"

namespace dmfb {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One annealing chain of the portfolio. The rng streams, temperature
/// schedule, stats and best-so-far belong to the SLOT (its rung of the
/// temperature ladder); only `state` and `current_cost` — the
/// configuration — are swapped by the exchange pass. Heap-allocated one
/// per replica so concurrently running segments never share a cache
/// line.
struct Replica {
  // Configuration (swapped at exchange barriers).
  std::unique_ptr<IncrementalPlacementState> state;
  double current_cost = 0.0;

  // Slot-owned.
  Rng move_rng{0};
  Rng metropolis_rng{0};
  AnnealingSchedule schedule;  ///< ladder-scaled copy of the base schedule
  double temperature = 0.0;
  const MoveOptions* moves = nullptr;
  int inner_iterations = 0;
  bool batched = false;
  int lookahead = 1;
  std::vector<double> draws;

  AnnealingStats stats;
  long long proposals_by_kind[AnnealingStats::kMoveKindSlots] = {0, 0, 0, 0};
  long long accepted_by_kind[AnnealingStats::kMoveKindSlots] = {0, 0, 0, 0};

  struct Pose {
    Point anchor;
    bool rotated = false;
  };
  std::vector<Pose> best_pose;
  double best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;

  /// Own-loop clocks: total annealing seconds across segments, the clock
  /// value when the best was last improved, and the latest segment alone
  /// (the critical-path accumulator reads it at each barrier).
  double anneal_seconds = 0.0;
  double best_seconds = 0.0;
  double last_segment_seconds = 0.0;

  bool recordable() const {
    return state->feasible() && state->defect_cells() == 0;
  }

  void record_initial() {
    current_cost = state->cost();
    best_pose.resize(
        static_cast<std::size_t>(state->placement().module_count()));
    if (recordable()) {
      best_cost = current_cost;
      have_best = true;
      snapshot_best();
    }
  }

  void snapshot_best() {
    const auto& modules = state->placement().modules();
    for (std::size_t i = 0; i < best_pose.size(); ++i) {
      best_pose[i] = Pose{modules[i].anchor, modules[i].rotated};
    }
  }

  void decide(double delta, double draw, Clock::time_point segment_start) {
    ++stats.proposals;
    const int kind = static_cast<int>(state->last_move_kind());
    ++proposals_by_kind[kind];
    bool accept = delta < 0.0;
    if (!accept && temperature > 0.0) {
      // Same exp-skips as anneal_fused: a zero delta always accepts, and
      // below -746 exp() is exactly 0.
      if (delta == 0.0) {
        accept = true;
      } else {
        const double exponent = -delta / temperature;
        accept = exponent > -746.0 && draw < std::exp(exponent);
      }
      if (accept) ++stats.uphill_accepted;
    }
    if (accept) {
      current_cost = state->commit();
      ++stats.accepted;
      ++accepted_by_kind[kind];
      if (current_cost < best_cost && recordable()) {
        best_cost = current_cost;
        have_best = true;
        snapshot_best();
        best_seconds = anneal_seconds + seconds_since(segment_start);
      }
    } else {
      state->revert();
    }
  }

  /// Runs `steps` temperature steps of this chain's schedule — exactly
  /// anneal_fused's (or anneal_batched's) loop body, segmented so the
  /// exchange barriers can interleave. Driven by step COUNT, not the
  /// min-temperature test: every slot then runs the same number of steps
  /// regardless of ladder position, keeping the barriers aligned.
  void run_segment(int steps) {
    const auto t0 = Clock::now();
    for (int s = 0; s < steps; ++s) {
      const double fraction = schedule.initial_temperature > 0.0
                                  ? temperature / schedule.initial_temperature
                                  : 0.0;
      const int span =
          controlling_window_span(state->placement(), fraction, *moves);
      for (double& draw : draws) draw = metropolis_rng.next_double();
      if (batched) {
        int i = 0;
        while (i < inner_iterations) {
          const int filled = state->speculate_batch(
              span, *moves, move_rng,
              std::min(lookahead, inner_iterations - i));
          if (filled <= 0) break;
          for (int b = 0; b < filled; ++b, ++i) {
            decide(state->activate(b), draws[static_cast<std::size_t>(i)],
                   t0);
          }
        }
      } else {
        for (int i = 0; i < inner_iterations; ++i) {
          decide(state->propose_random(span, *moves, move_rng),
                 draws[static_cast<std::size_t>(i)], t0);
        }
      }
      temperature *= schedule.cooling_rate;
      ++stats.temperature_steps;
    }
    last_segment_seconds = seconds_since(t0);
    anneal_seconds += last_segment_seconds;
  }
};

}  // namespace

PlacementOutcome anneal_portfolio(const Placement& initial,
                                  const SaPlacerOptions& options,
                                  const PortfolioOptions& portfolio,
                                  const Placement* replica0_initial) {
  const auto start_time = Clock::now();

  if (options.engine == AnnealingEngine::kCopy) {
    throw std::invalid_argument(
        "portfolio placer requires an incremental engine (delta, fused or "
        "batched), not copy");
  }
  if (!(portfolio.ladder_ratio > 0.0)) {
    throw std::invalid_argument(
        "portfolio placer: ladder_ratio must be positive");
  }
  const int replica_count =
      portfolio.replicas > 0
          ? portfolio.replicas
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  const int exchange_period = std::max(1, portfolio.exchange_period);

  CostEvaluator evaluator(options.weights, options.fti_options);
  evaluator.set_defects(options.defects);
  evaluator.set_route_links(options.route_links);

  // Total temperature steps, from the BASE schedule: the ladder scales
  // initial and minimum temperature together, so every rung runs this
  // same count and the exchange barriers align exactly.
  int total_steps = 0;
  for (double t = options.schedule.initial_temperature;
       t > options.schedule.min_temperature;
       t *= options.schedule.cooling_rate) {
    ++total_steps;
  }

  const int inner_iterations =
      options.schedule.iterations_per_module *
      std::max(1, initial.module_count());
  const bool batched = options.engine == AnnealingEngine::kBatched;

  Rng master(options.seed);
  // Replica r's streams come from split_n(r) — order-independent, so the
  // seeds are a pure function of (seed, r) — and the exchange pass draws
  // from split_n(N), outside the replica index range.
  Rng exchange_rng =
      master.split_n(static_cast<std::uint64_t>(replica_count));

  std::vector<std::unique_ptr<Replica>> replicas;
  replicas.reserve(static_cast<std::size_t>(replica_count));
  for (int r = 0; r < replica_count; ++r) {
    auto replica = std::make_unique<Replica>();
    const Placement& start =
        (r == 0 && replica0_initial != nullptr) ? *replica0_initial : initial;
    replica->state =
        std::make_unique<IncrementalPlacementState>(start, evaluator);
    replica->move_rng = master.split_n(static_cast<std::uint64_t>(r));
    // Mirrors anneal_fused: the Metropolis stream splits off the move
    // stream at entry (consuming its first draw).
    replica->metropolis_rng = replica->move_rng.split();
    const double rung = std::pow(portfolio.ladder_ratio, r);
    replica->schedule = options.schedule;
    replica->schedule.initial_temperature *= rung;
    replica->schedule.min_temperature *= rung;
    replica->temperature = replica->schedule.initial_temperature;
    replica->moves = &options.moves;
    replica->inner_iterations = inner_iterations;
    replica->batched = batched;
    replica->lookahead = std::max(1, options.speculation_lookahead);
    replica->draws.resize(static_cast<std::size_t>(inner_iterations));
    replica->record_initial();
    replicas.push_back(std::move(replica));
  }

  // Incumbent best across the whole portfolio, maintained at the
  // barriers (lowest cost, lowest replica index on ties — the bests live
  // with the ladder slots, which are seed-ordered).
  double incumbent_cost = std::numeric_limits<double>::infinity();
  int incumbent_slot = -1;
  double incumbent_seconds = 0.0;
  double critical_path = 0.0;
  long long exchanges_attempted = 0;
  long long exchanges_accepted = 0;

  const auto adopt_incumbent = [&] {
    for (int r = 0; r < replica_count; ++r) {
      const Replica& replica = *replicas[r];
      if (replica.have_best && replica.best_cost < incumbent_cost) {
        incumbent_cost = replica.best_cost;
        incumbent_slot = r;
        incumbent_seconds = critical_path;
      }
    }
  };
  adopt_incumbent();

  int done = 0;
  int barrier_index = 0;
  while (done < total_steps &&
         !(incumbent_cost <= portfolio.target_cost)) {
    const int chunk = std::min(exchange_period, total_steps - done);
    const auto errors = detail::for_each_index(
        static_cast<std::size_t>(replica_count), portfolio.threads,
        [&](std::size_t r) { replicas[r]->run_segment(chunk); });
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    done += chunk;

    // Critical-path accounting: the barrier waits for the slowest
    // replica; the exchange pass below is serial on top.
    double slowest = 0.0;
    for (const auto& replica : replicas) {
      slowest = std::max(slowest, replica->last_segment_seconds);
    }
    critical_path += slowest;

    const auto exchange_start = Clock::now();
    if (done < total_steps && replica_count > 1) {
      // Adjacent-pair exchange sweep, alternating parity per barrier.
      // One draw per attempted pair, drawn unconditionally, keeps the
      // exchange stream's alignment independent of the outcomes.
      for (int r = barrier_index % 2; r + 1 < replica_count; r += 2) {
        Replica& cooler = *replicas[r];
        Replica& hotter = *replicas[r + 1];
        const double draw = exchange_rng.next_double();
        ++exchanges_attempted;
        ++cooler.stats.exchanges_attempted;
        ++hotter.stats.exchanges_attempted;
        const double x =
            (1.0 / cooler.temperature - 1.0 / hotter.temperature) *
            (cooler.current_cost - hotter.current_cost);
        if (draw < std::exp(x)) {
          std::swap(cooler.state, hotter.state);
          std::swap(cooler.current_cost, hotter.current_cost);
          ++exchanges_accepted;
          ++cooler.stats.exchanges_accepted;
          ++hotter.stats.exchanges_accepted;
        }
      }
      ++barrier_index;
    }
    critical_path += seconds_since(exchange_start);
    adopt_incumbent();
  }

  PlacementOutcome outcome;
  if (incumbent_slot >= 0) {
    Placement best = replicas[static_cast<std::size_t>(incumbent_slot)]
                         ->state->placement();
    const auto& poses =
        replicas[static_cast<std::size_t>(incumbent_slot)]->best_pose;
    for (std::size_t i = 0; i < poses.size(); ++i) {
      best.set_position(static_cast<int>(i), poses[i].anchor,
                        poses[i].rotated);
    }
    outcome.placement = std::move(best);
  } else {
    // No recordable state anywhere (callers that start feasible never hit
    // this): fall back to replica 0's final state, as the single-run
    // engines do.
    outcome.placement = replicas[0]->state->placement();
  }

  outcome.replica_stats.reserve(static_cast<std::size_t>(replica_count));
  AnnealingStats& total = outcome.stats;
  for (int r = 0; r < replica_count; ++r) {
    Replica& replica = *replicas[r];
    AnnealingStats& rs = replica.stats;
    for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
      rs.proposals_by_kind[k] = replica.proposals_by_kind[k];
      rs.accepted_by_kind[k] = replica.accepted_by_kind[k];
      total.proposals_by_kind[k] += replica.proposals_by_kind[k];
      total.accepted_by_kind[k] += replica.accepted_by_kind[k];
    }
    rs.final_temperature = replica.temperature;
    rs.best_cost = replica.best_cost;
    rs.wall_seconds = replica.anneal_seconds;
    rs.seconds_to_best = replica.best_seconds;
    rs.proposals_per_second =
        rs.wall_seconds > 0.0
            ? static_cast<double>(rs.proposals) / rs.wall_seconds
            : 0.0;
    rs.speculated = replica.state->speculation_priced();
    rs.speculation_hits = replica.state->speculation_hits();
    total.proposals += rs.proposals;
    total.accepted += rs.accepted;
    total.uphill_accepted += rs.uphill_accepted;
    total.speculated += rs.speculated;
    total.speculation_hits += rs.speculation_hits;
    outcome.replica_stats.push_back(rs);
  }
  total.temperature_steps = done;
  total.final_temperature = replicas[0]->temperature;
  total.best_cost = incumbent_cost;
  total.exchanges_attempted = exchanges_attempted;
  total.exchanges_accepted = exchanges_accepted;
  total.wall_seconds = critical_path;
  total.seconds_to_best = incumbent_seconds;
  total.proposals_per_second =
      critical_path > 0.0
          ? static_cast<double>(total.proposals) / critical_path
          : 0.0;

  outcome.cost = evaluator.evaluate(outcome.placement);
  outcome.wall_seconds = seconds_since(start_time);
  return outcome;
}

PlacementOutcome place_portfolio(const Schedule& schedule,
                                 const SaPlacerOptions& options,
                                 const PortfolioOptions& portfolio) {
  const Placement initial =
      place_greedy(schedule, options.canvas_width, options.canvas_height,
                   options.defects);
  if (options.initial) {
    // Warm-start seam: the memoized placement seeds replica 0 only;
    // replicas 1..N-1 keep their fresh split-seeded chains from the
    // greedy initial.
    Placement seeded(schedule, options.canvas_width, options.canvas_height);
    if (detail::seed_from_warm_start(seeded, *options.initial, options)) {
      return anneal_portfolio(initial, options, portfolio, &seeded);
    }
  }
  return anneal_portfolio(initial, options, portfolio);
}

}  // namespace dmfb
