// sa_placer.h — simulated-annealing module placement (§4 of the paper).
//
// Operates directly on physical coordinates, sizes and orientations of the
// modules (no problem encoding); infeasible intermediate placements are
// allowed and priced by an overlap penalty the annealer drives to zero.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "assay/schedule.h"
#include "core/annealer.h"
#include "core/cost.h"
#include "core/moves.h"
#include "core/placement.h"
#include "util/deprecation.h"
#include "util/enum_text.h"

namespace dmfb {

/// How the annealer evaluates proposals.
enum class AnnealingEngine {
  /// In-place move/undo over an IncrementalPlacementState: each proposal
  /// re-prices only the cost terms the move touched. The fast path, and
  /// seed-for-seed identical to kCopy (test_incremental_cost.cpp).
  kDelta,
  /// Per-proposal Placement copy + full cost re-evaluation — the original
  /// engine, kept as the cross-check oracle and for custom problem forms.
  kCopy,
  /// kDelta plus a fused proposal loop (anneal_fused): move generation
  /// fused into the delta pricing, the controlling-window span hoisted
  /// per temperature step, and the Metropolis draws batched from a
  /// dedicated stream split off the run seed. Deterministic per seed and
  /// same acceptance rule, but a *different* (versioned) random
  /// discipline — results are NOT the kDelta/kCopy placement. Pinned by
  /// tests/test_sa_placer.cpp and test_annealer.cpp.
  kFused,
  /// kFused plus speculative batched proposal pricing (anneal_batched):
  /// SaPlacerOptions::speculation_lookahead moves are drawn and priced
  /// ahead of the serial Metropolis decisions; a price is discarded
  /// (re-priced fresh) when an intervening acceptance touched its
  /// module/adjacency dependency footprint. Its own versioned stream —
  /// bit-identical to kFused at lookahead 1, deterministic per seed
  /// otherwise. AnnealingStats::speculated / speculation_hits report the
  /// hit-rate.
  kBatched,
};

/// Textual round-trip ("delta", "copy", "fused", "batched") for logs and
/// bench JSON; `from_string` and `>>` throw std::invalid_argument on
/// unknown text.
const char* to_string(AnnealingEngine engine);
template <>
AnnealingEngine from_string<AnnealingEngine>(std::string_view text);
std::ostream& operator<<(std::ostream& os, AnnealingEngine engine);
std::istream& operator>>(std::istream& is, AnnealingEngine& engine);

/// Everything configurable about one annealing run.
struct SaPlacerOptions {
  int canvas_width = 24;   ///< core-area bound (Fig. 4(a))
  int canvas_height = 24;
  AnnealingSchedule schedule;  ///< paper defaults: T0=1e4, alpha=0.9, Na=400
  MoveOptions moves;
  CostWeights weights;     ///< beta = 0 reproduces stage-1 (area-only)
  FtiOptions fti_options;
  /// Electrodes known defective before placement (manufacturing test
  /// results). The annealer refuses to record placements using them, so
  /// the result routes modules around the defect map.
  std::vector<Point> defects;
  /// Droplet-transfer demand edges priced by weights.gamma (routing-aware
  /// placement; routing::extract_links produces them). Ignored at
  /// gamma = 0.
  std::vector<RouteLink> route_links;
  std::uint64_t seed = 0xDA7E2005ULL;
  /// Proposal-evaluation engine; kDelta and kCopy produce identical
  /// results (kDelta just much faster), kFused trades the legacy random
  /// stream for the fastest proposal loop, kBatched adds speculative
  /// batched pricing on top of kFused.
  AnnealingEngine engine = AnnealingEngine::kDelta;
  /// kBatched only: how many moves are drawn and priced ahead of their
  /// Metropolis decisions per batch. 1 reproduces kFused's trajectory
  /// bit for bit; larger values amortize generation at the price of
  /// re-pricing speculation an acceptance invalidated.
  int speculation_lookahead = 8;
  /// Optional warm start (the synthesis service's placement memo): module
  /// poses are copied index-by-index onto the new schedule's placement and
  /// annealed from there instead of the greedy constructive initial. Used
  /// only when compatible — same module count and the seeded placement is
  /// feasible and defect-free — otherwise silently falls back to greedy.
  /// Poses only; the time structure always comes from the schedule given
  /// to place_simulated_annealing.
  std::shared_ptr<const Placement> initial;
};

/// Result of a placement run.
struct PlacementOutcome {
  Placement placement;
  CostBreakdown cost;      ///< of the returned placement
  AnnealingStats stats;
  double wall_seconds = 0.0;
  /// Per-replica loop stats, filled by the "portfolio" backend only
  /// (core/portfolio_placer.h); empty for single-run placers. `stats`
  /// above then aggregates across replicas (see anneal_portfolio).
  std::vector<AnnealingStats> replica_stats;
};

namespace detail {

/// Transfers module poses from a warm-start placement onto `seeded` (built
/// from the *current* schedule) and validates the result. Returns false —
/// leaving the caller to fall back to a greedy initial — when the counts
/// differ or the transferred poses are infeasible or touch a defect.
/// Shared by the "sa" warm path and the portfolio's replica-0 seeding.
bool seed_from_warm_start(Placement& seeded, const Placement& warm,
                          const SaPlacerOptions& options);

}  // namespace detail

/// Anneals from a greedy constructive initial placement. The returned
/// placement is the best feasible (overlap-free, in-canvas) one seen;
/// since the initial placement is feasible, the result always is.
DMFB_DEPRECATED("use make_placer(\"sa\")->place(schedule, context)")
PlacementOutcome place_simulated_annealing(const Schedule& schedule,
                                           const SaPlacerOptions& options = {});

/// Same, but annealing from a caller-supplied initial placement (used by
/// the two-stage placer's refinement step and by tests).
PlacementOutcome anneal_from(const Placement& initial,
                             const SaPlacerOptions& options);

}  // namespace dmfb
