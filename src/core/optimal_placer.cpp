#include "core/optimal_placer.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/greedy_placer.h"

namespace dmfb {
namespace {

/// Depth-first feasibility search: can every module be placed in a
/// W x H box? Modules are tried largest-first; positions scan bottom-left
/// to top-right; both orientations when allowed.
class BoxSearch {
 public:
  BoxSearch(Placement& placement, const std::vector<int>& order, int box_w,
            int box_h, bool allow_rotation, long long node_budget,
            long long& nodes)
      : placement_(placement),
        order_(order),
        box_w_(box_w),
        box_h_(box_h),
        allow_rotation_(allow_rotation),
        node_budget_(node_budget),
        nodes_(nodes),
        placed_(static_cast<std::size_t>(placement.module_count()), false) {}

  bool solve() { return place_next(0); }

 private:
  bool collides(int index, const Rect& fp) const {
    for (int other = 0; other < placement_.module_count(); ++other) {
      if (other == index || !placed_[static_cast<std::size_t>(other)]) {
        continue;
      }
      if (!placement_.module(index).time_overlaps(placement_.module(other))) {
        continue;
      }
      if (fp.intersects(placement_.module(other).footprint())) return true;
    }
    return false;
  }

  bool place_next(std::size_t depth) {
    if (depth == order_.size()) return true;
    const int index = order_[depth];
    const auto& spec = placement_.module(index).spec;

    const int orientations = allow_rotation_ && !spec.square() ? 2 : 1;
    for (int orientation = 0; orientation < orientations; ++orientation) {
      const bool rotated = orientation == 1;
      const int w = rotated ? spec.footprint_height() : spec.footprint_width();
      const int h = rotated ? spec.footprint_width() : spec.footprint_height();
      if (w > box_w_ || h > box_h_) continue;
      for (int y = 0; y + h <= box_h_; ++y) {
        for (int x = 0; x + w <= box_w_; ++x) {
          if (++nodes_ > node_budget_) {
            throw std::runtime_error(
                "place_optimal: node budget exhausted");
          }
          const Rect fp{x, y, w, h};
          if (collides(index, fp)) continue;
          placement_.set_rotated(index, rotated);
          placement_.set_anchor(index, Point{x, y});
          placed_[static_cast<std::size_t>(index)] = true;
          if (place_next(depth + 1)) return true;
          placed_[static_cast<std::size_t>(index)] = false;
        }
      }
    }
    return false;
  }

  Placement& placement_;
  const std::vector<int>& order_;
  const int box_w_;
  const int box_h_;
  const bool allow_rotation_;
  const long long node_budget_;
  long long& nodes_;
  std::vector<bool> placed_;
};

}  // namespace

OptimalResult place_optimal(const Schedule& schedule,
                            const OptimalPlacerOptions& options) {
  if (schedule.module_count() > options.max_modules) {
    throw std::invalid_argument(
        "place_optimal: instance too large for exact search (" +
        std::to_string(schedule.module_count()) + " modules)");
  }
  if (schedule.module_count() == 0) {
    throw std::invalid_argument("place_optimal: empty schedule");
  }

  // Upper bound from the greedy placer.
  int max_dim = 0;
  int min_fit = 1;  // every box side must hold each module's smaller dim
  for (const auto& m : schedule.modules()) {
    max_dim = std::max({max_dim, m.spec.footprint_width(),
                        m.spec.footprint_height()});
    min_fit = std::max(min_fit, std::min(m.spec.footprint_width(),
                                         m.spec.footprint_height()));
  }
  const Placement greedy =
      place_greedy(schedule, std::max(max_dim, 24), std::max(max_dim, 24));
  const Rect greedy_box = greedy.bounding_box();
  long long best_area =
      static_cast<long long>(greedy_box.width) * greedy_box.height;

  // Every module must fit the candidate box in some allowed orientation.
  auto all_fit = [&](int w, int h) {
    for (const auto& m : schedule.modules()) {
      const int fw = m.spec.footprint_width();
      const int fh = m.spec.footprint_height();
      const bool fits =
          (fw <= w && fh <= h) ||
          (options.allow_rotation && fh <= w && fw <= h);
      if (!fits) return false;
    }
    return true;
  };

  // Candidate boxes in increasing area. Boxes can be long and thin (a
  // 9x5 box is legal even when the largest module dimension is 6, as long
  // as every module fits), so sides range up to best_area / min_fit.
  struct Box {
    int w, h;
  };
  std::vector<Box> boxes;
  const int side_cap = static_cast<int>(best_area / min_fit);
  for (int w = min_fit; w <= side_cap; ++w) {
    for (int h = min_fit; static_cast<long long>(w) * h <= best_area; ++h) {
      if (all_fit(w, h)) boxes.push_back(Box{w, h});
    }
  }
  std::sort(boxes.begin(), boxes.end(), [](const Box& a, const Box& b) {
    const long long area_a = static_cast<long long>(a.w) * a.h;
    const long long area_b = static_cast<long long>(b.w) * b.h;
    if (area_a != area_b) return area_a < area_b;
    return a.w < b.w;
  });

  const long long lower_bound = schedule.peak_concurrent_cells();

  OptimalResult result;
  result.placement = greedy;
  result.area_cells = best_area;

  std::vector<int> order(static_cast<std::size_t>(schedule.module_count()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const long long area_a = schedule.module(a).spec.footprint_cells();
    const long long area_b = schedule.module(b).spec.footprint_cells();
    if (area_a != area_b) return area_a > area_b;
    return a < b;
  });

  for (const Box& box : boxes) {
    const long long area = static_cast<long long>(box.w) * box.h;
    if (area >= result.area_cells) break;  // boxes are sorted by area
    if (area < lower_bound) continue;
    Placement candidate(schedule, box.w, box.h);
    BoxSearch search(candidate, order, box.w, box.h, options.allow_rotation,
                     options.max_nodes, result.nodes_visited);
    if (search.solve()) {
      result.placement = candidate;
      result.area_cells = area;
      // Keep scanning: a later box with smaller area cannot exist (sorted),
      // so we are done.
      break;
    }
  }
  return result;
}

}  // namespace dmfb
