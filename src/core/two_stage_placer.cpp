#include "core/two_stage_placer.h"

namespace dmfb {

TwoStageOutcome place_two_stage(const Schedule& schedule,
                                const TwoStageOptions& options) {
  TwoStageOutcome outcome;

  SaPlacerOptions stage1 = options.stage1;
  stage1.weights.beta = 0.0;  // fault-oblivious by definition
  outcome.stage1 = place_simulated_annealing(schedule, stage1);

  // Inherits stage 1's engine: with the default delta engine, stage-2's
  // beta > 0 objective runs on cached FTI relocation queries instead of
  // rebuilding every module's prefix sums per proposal.
  SaPlacerOptions stage2 = options.stage1;
  stage2.schedule = options.ltsa;
  stage2.weights.beta = options.beta;
  stage2.seed = options.stage2_seed;
  // LTSA performs only single-module displacement (§6.2).
  stage2.moves.single_move_probability = 1.0;
  stage2.moves.rotate_probability = 0.0;
  outcome.stage2 = anneal_from(outcome.stage1.placement, stage2);

  return outcome;
}

}  // namespace dmfb
